"""Capture the 64-core golden baseline (run from the repo root).

Writes ``tests/data/golden_64core.json`` with pinned SimulationResult
numbers for the four paper configurations, a faulted run, and the
telemetry island summary -- the reference the bit-for-bit regression
test (``tests/core/test_golden_64core.py``) compares against.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

import numpy as np

from repro.core.experiment import run_app_study
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.telemetry import RecordingTracer, use_tracer
from repro.telemetry.summary import island_summary, phase_summary

APP = "histogram"
SCALE = 0.05
SEED = 9
WORKERS = 64


def result_fingerprint(result):
    return {
        "total_time_s": result.total_time_s,
        "total_energy_j": result.total_energy_j,
        "core_dynamic_j": result.energy.core_dynamic_j,
        "core_static_j": result.energy.core_static_j,
        "noc_dynamic_j": result.energy.noc_dynamic_j,
        "noc_static_j": result.energy.noc_static_j,
        "busy_sum_s": float(np.sum(result.busy_s)),
        "committed_sum": float(np.sum(result.committed_instructions)),
        "bits_moved": result.network.bits_moved,
        "average_hops": result.network.average_hops,
        "wireless_fraction": result.network.wireless_fraction,
        "num_phases": len(result.phases),
    }


def fault_plan():
    return FaultPlan(
        events=(
            FaultSpec(FaultKind.CORE_FAILURE, 0.002, (13,)),
            FaultSpec(FaultKind.ISLAND_THROTTLE, 0.001, (2,), magnitude=1),
        ),
        name="golden",
    )


def main():
    golden = {"app": APP, "scale": SCALE, "seed": SEED, "num_workers": WORKERS}

    tracer = RecordingTracer()
    with use_tracer(tracer):
        study = run_app_study(
            APP, scale=SCALE, seed=SEED, num_workers=WORKERS, use_cache=False
        )
    golden["configs"] = {
        name: result_fingerprint(result)
        for name, result in study.results.items()
    }
    vfi2 = "vfi2-mesh"
    golden["telemetry"] = {
        "phase_summary": phase_summary(tracer, pid=vfi2)[vfi2],
        "island_summary": island_summary(
            tracer, vfi2, study.design.worker_clusters
        ),
    }

    faulted = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        use_cache=False, fault_plan=fault_plan(),
    )
    golden["faulted"] = {
        name: result_fingerprint(result)
        for name, result in faulted.results.items()
    }
    impact = faulted.result("vfi2_mesh").faults
    golden["fault_impact"] = impact.to_dict() if impact is not None else None

    out = os.path.join(os.path.dirname(__file__), "golden_64core.json")
    with open(out, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
