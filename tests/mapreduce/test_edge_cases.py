"""Degenerate configurations the engine must survive."""

import pytest

from repro.mapreduce.job import JobConfig, MapReduceJob
from repro.mapreduce.runtime import run_job
from repro.mapreduce.splitter import split_evenly


class TinyJob(MapReduceJob):
    name = "tiny"

    def __init__(self, items, config=JobConfig()):
        super().__init__(config)
        self.items = items

    def split(self, num_tasks):
        return split_evenly(self.items, num_tasks)

    def map(self, chunk, emit):
        for item in chunk:
            emit(item % 3, 1)
        return float(len(chunk))


class TestSingleWorker:
    def test_runs_and_is_correct(self):
        result, trace = run_job(TinyJob(list(range(30))), num_workers=1)
        assert result[0] == 10 and result[1] == 10 and result[2] == 10
        assert trace.num_workers == 1
        # no merge partners with a single worker
        assert all(not it.merge_stages for it in trace.iterations)

    def test_flow_matrix_empty(self):
        _, trace = run_job(TinyJob(list(range(30))), num_workers=1)
        assert trace.worker_flow_matrix().sum() == 0.0


class TestFewerItemsThanWorkers:
    def test_two_items_eight_workers(self):
        result, trace = run_job(TinyJob([0, 1]), num_workers=8)
        assert result == {0: 1, 1: 1}
        assert trace.map_task_count() == 2


class TestSingleChunk:
    def test_one_task(self):
        class OneChunk(TinyJob):
            def num_map_tasks(self, num_workers):
                return 1

        result, trace = run_job(OneChunk(list(range(12))), num_workers=4)
        assert sum(result.values()) == 12
        assert trace.map_task_count() == 1


class TestOddWorkerCounts:
    @pytest.mark.parametrize("workers", [3, 5, 7])
    def test_merge_funnel_handles_odd_widths(self, workers):
        result, trace = run_job(TinyJob(list(range(60))), num_workers=workers)
        assert sum(result.values()) == 60
        for iteration in trace.iterations:
            # funnel terminates with exactly one surviving buffer
            widths = [len(stage.tasks) for stage in iteration.merge_stages]
            assert all(width >= 1 for width in widths)


class TestEmptyInput:
    def test_no_chunks_rejected(self):
        with pytest.raises(ValueError):
            run_job(TinyJob([]), num_workers=4)
