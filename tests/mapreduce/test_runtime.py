"""Functional runtime: correctness, trace structure, key-value flow."""

import numpy as np
import pytest

from repro.mapreduce.containers import stable_key_hash
from repro.mapreduce.job import JobConfig, MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime, run_job
from repro.mapreduce.scheduler import CappedStealingPolicy
from repro.mapreduce.splitter import split_evenly
from repro.mapreduce.tasks import Phase


class WordCountLike(MapReduceJob):
    name = "wc-test"

    def __init__(self, words, config=JobConfig()):
        super().__init__(config)
        self.words = words

    def split(self, num_tasks):
        return split_evenly(self.words, num_tasks)

    def map(self, chunk, emit):
        for word in chunk:
            emit(word, 1)
        return float(len(chunk))


class TwoIterationJob(WordCountLike):
    name = "two-iter"

    def max_iterations(self):
        return 2


@pytest.fixture(scope="module")
def words():
    return ("alpha beta gamma alpha delta beta alpha " * 30).split()


@pytest.fixture(scope="module")
def wc_run(words):
    return run_job(WordCountLike(words), num_workers=8)


class TestFunctionalCorrectness:
    def test_counts(self, wc_run, words):
        result, _ = wc_run
        assert result["alpha"] == words.count("alpha")
        assert result["beta"] == words.count("beta")
        assert sum(result.values()) == len(words)

    def test_result_independent_of_worker_count(self, words):
        r4, _ = run_job(WordCountLike(words), num_workers=4)
        r16, _ = run_job(WordCountLike(words), num_workers=16)
        assert r4 == r16

    def test_result_unchanged_by_capped_policy(self, words):
        policy = CappedStealingPolicy([2.5e9] * 4 + [1.5e9] * 4)
        r_default, _ = run_job(WordCountLike(words), num_workers=8)
        r_capped, _ = run_job(WordCountLike(words), num_workers=8, policy=policy)
        assert r_default == r_capped


class TestTraceStructure:
    def test_phases_present(self, wc_run):
        _, trace = wc_run
        assert trace.num_iterations == 1
        it = trace.iterations[0]
        assert it.lib_init.phase is Phase.LIB_INIT
        assert len(it.map_phase) == 12  # 8 workers * 1.5
        assert len(it.reduce_phase) == 8
        assert len(it.merge_stages) == 3  # log2(8)

    def test_merge_funnel_halves(self, wc_run):
        _, trace = wc_run
        sizes = [len(stage.tasks) for stage in trace.iterations[0].merge_stages]
        assert sizes == [4, 2, 1]

    def test_merge_partners_distinct(self, wc_run):
        _, trace = wc_run
        for stage in trace.iterations[0].merge_stages:
            for record in stage.tasks:
                assert record.partner_worker is not None
                assert record.partner_worker != record.home_worker

    def test_costs_nonnegative_and_map_positive(self, wc_run):
        _, trace = wc_run
        for record in trace.all_tasks():
            assert record.cost.instructions >= 0
        for record in trace.iterations[0].map_phase.tasks:
            assert record.cost.instructions > 0
        assert trace.iterations[0].lib_init.cost.instructions > 0

    def test_reduce_partition_assignment_matches_hash(self, wc_run, words):
        _, trace = wc_run
        for record in trace.iterations[0].reduce_phase.tasks:
            assert record.phase is Phase.REDUCE
        # every unique word lands in exactly one partition
        partitions = {stable_key_hash(w) % 8 for w in set(words)}
        assert partitions.issubset(set(range(8)))

    def test_two_iterations(self, words):
        _, trace = run_job(TwoIterationJob(words), num_workers=4)
        assert trace.num_iterations == 2


class TestFlowMatrix:
    def test_shape_and_nonnegative(self, wc_run):
        _, trace = wc_run
        flow = trace.worker_flow_matrix()
        assert flow.shape == (8, 8)
        assert (flow >= 0).all()
        assert np.allclose(np.diag(flow), 0.0)

    def test_flow_scales_with_trace(self, wc_run):
        _, trace = wc_run
        doubled = trace.scaled(2.0)
        assert np.allclose(doubled.worker_flow_matrix(), 2 * trace.worker_flow_matrix())


class TestMissWeight:
    def test_tuple_return_scales_misses(self, words):
        class Weighted(WordCountLike):
            def map(self, chunk, emit):
                for word in chunk:
                    emit(word, 1)
                return float(len(chunk)), 2.0

        _, trace_plain = run_job(WordCountLike(words), num_workers=4)
        _, trace_weighted = run_job(Weighted(words), num_workers=4)
        plain = trace_plain.iterations[0].map_phase.tasks[0]
        weighted = trace_weighted.iterations[0].map_phase.tasks[0]
        assert weighted.cost.l2_accesses == pytest.approx(2 * plain.cost.l2_accesses)
        assert weighted.cost.instructions == pytest.approx(plain.cost.instructions)

    def test_negative_weight_rejected(self, words):
        class Bad(WordCountLike):
            def map(self, chunk, emit):
                return 1.0, -1.0

        with pytest.raises(ValueError):
            run_job(Bad(words), num_workers=4)

    def test_negative_work_rejected(self, words):
        class Bad(WordCountLike):
            def map(self, chunk, emit):
                return -1.0

        with pytest.raises(ValueError):
            run_job(Bad(words), num_workers=4)


class TestTraceScale:
    def test_trace_scale_multiplies_costs(self, words):
        base, trace1 = run_job(WordCountLike(words, JobConfig()), num_workers=4)
        _, trace3 = run_job(
            WordCountLike(words, JobConfig(trace_scale=3.0)), num_workers=4
        )
        assert trace3.total_instructions() == pytest.approx(
            3 * trace1.total_instructions()
        )


class TestRuntimeValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(0)

    def test_rejects_bad_master(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(4, master_worker=4)

    def test_no_merge_job_has_no_stages(self, words):
        class NoMerge(WordCountLike):
            def merge_enabled(self):
                return False

        _, trace = run_job(NoMerge(words), num_workers=4)
        assert trace.iterations[0].merge_stages == []
