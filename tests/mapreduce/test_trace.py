"""JobTrace containers and transforms."""

import numpy as np
import pytest

from repro.mapreduce.tasks import Phase, TaskCost
from repro.mapreduce.trace import (
    IterationTrace,
    JobTrace,
    MergeStageTrace,
    PhaseTrace,
    TaskRecord,
)


def record(task_id, phase, worker, instr=100.0, **kwargs):
    return TaskRecord(
        task_id=task_id,
        phase=phase,
        cost=TaskCost(instructions=instr, kv_bytes_in=kwargs.pop("kv_in", 0.0)),
        home_worker=worker,
        **kwargs,
    )


@pytest.fixture
def trace():
    lib = record(0, Phase.LIB_INIT, 0, instr=50.0)
    map_phase = PhaseTrace(
        Phase.MAP, [record(1, Phase.MAP, 0), record(2, Phase.MAP, 1)]
    )
    reduce_phase = PhaseTrace(
        Phase.REDUCE,
        [
            TaskRecord(
                3,
                Phase.REDUCE,
                TaskCost(instructions=30.0),
                home_worker=1,
                input_bytes_by_worker={0: 64.0, 1: 32.0},
            )
        ],
    )
    merge = MergeStageTrace(
        0,
        [record(4, Phase.MERGE, 0, instr=20.0, kv_in=16.0, partner_worker=1)],
    )
    iteration = IterationTrace(0, lib, map_phase, reduce_phase, [merge])
    return JobTrace(app_name="t", num_workers=2, iterations=[iteration])


class TestAggregates:
    def test_all_tasks(self, trace):
        assert len(trace.all_tasks()) == 5

    def test_total_instructions(self, trace):
        assert trace.total_instructions() == pytest.approx(50 + 200 + 30 + 20)

    def test_map_task_count(self, trace):
        assert trace.map_task_count() == 2

    def test_phase_total_cost(self, trace):
        assert trace.iterations[0].map_phase.total_cost.instructions == 200.0


class TestFlowMatrix:
    def test_reduce_flow_excludes_self(self, trace):
        flow = trace.worker_flow_matrix()
        # reduce task on worker 1 pulls 64 B from worker 0; its own 32 B
        # contribution never touches the network.
        assert flow[0, 1] == pytest.approx(64.0)
        assert flow[1, 1] == 0.0

    def test_merge_flow(self, trace):
        flow = trace.worker_flow_matrix()
        assert flow[1, 0] == pytest.approx(16.0)


class TestScaled:
    def test_uniform_scaling(self, trace):
        doubled = trace.scaled(2.0)
        assert doubled.total_instructions() == pytest.approx(
            2 * trace.total_instructions()
        )
        assert np.allclose(
            doubled.worker_flow_matrix(), 2 * trace.worker_flow_matrix()
        )
        # original untouched
        assert trace.total_instructions() == pytest.approx(300.0)

    def test_structure_preserved(self, trace):
        scaled = trace.scaled(3.0)
        assert scaled.num_iterations == 1
        assert scaled.iterations[0].merge_stages[0].tasks[0].partner_worker == 1
