"""Property-based invariants of the task-stealing queues.

Whatever the policy and drain order, tasks are conserved: every loaded
task is executed exactly once, across own-queue pops, steals, and the
force-drain fallback.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.scheduler import (
    CappedStealingPolicy,
    DefaultStealingPolicy,
    TaskQueueSet,
)
from repro.mapreduce.tasks import Phase, Task


def make_tasks(home_workers):
    return [
        Task(task_id=i, phase=Phase.MAP, payload=None, home_worker=home)
        for i, home in enumerate(home_workers)
    ]


def executed_total(queues):
    return sum(
        queues.executed_count(w) for w in range(queues.num_workers)
    )


@st.composite
def workload(draw):
    num_workers = draw(st.integers(min_value=1, max_value=8))
    homes = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_workers - 1),
            min_size=0,
            max_size=60,
        )
    )
    return num_workers, homes


@st.composite
def capped_workload(draw):
    num_workers, homes = draw(workload())
    # Frequencies below fmax produce real caps; include ties with fmax.
    freqs = draw(
        st.lists(
            st.sampled_from([1.0e9, 1.5e9, 2.0e9, 2.5e9]),
            min_size=num_workers,
            max_size=num_workers,
        )
    )
    fmax = draw(st.sampled_from([None, 2.5e9, 3.0e9]))
    return num_workers, homes, freqs, fmax


@settings(max_examples=60, deadline=None)
@given(workload())
def test_default_policy_conserves_tasks(case):
    num_workers, homes = case
    queues = TaskQueueSet(num_workers, DefaultStealingPolicy())
    tasks = make_tasks(homes)
    queues.load(tasks)
    order = queues.drain_serial()
    assert len(order) == len(tasks)
    assert queues.remaining == 0
    assert executed_total(queues) == len(tasks)
    assert sorted(task.task_id for _, task in order) == sorted(
        task.task_id for task in tasks
    )


@settings(max_examples=60, deadline=None)
@given(capped_workload())
def test_capped_policy_conserves_tasks(case):
    num_workers, homes, freqs, fmax = case
    policy = CappedStealingPolicy(freqs, fmax_hz=fmax)
    queues = TaskQueueSet(num_workers, policy)
    tasks = make_tasks(homes)
    queues.load(tasks)
    order = queues.drain_serial()
    assert len(order) == len(tasks)
    assert queues.remaining == 0
    assert executed_total(queues) == len(tasks)
    assert sorted(task.task_id for _, task in order) == sorted(
        task.task_id for task in tasks
    )


@settings(max_examples=60, deadline=None)
@given(workload(), st.data())
def test_requeue_conserves_tasks(case, data):
    """Fault re-execution: popping a task and requeueing it (as a core
    failure kills the execution) still drains every task exactly once --
    the re-execution charges its own pop, so executed counts exceed the
    task count by exactly the number of requeues."""
    num_workers, homes = case
    queues = TaskQueueSet(num_workers, DefaultStealingPolicy())
    tasks = make_tasks(homes)
    queues.load(tasks)

    requeues = 0
    seen = []
    while queues.remaining > 0:
        worker = data.draw(
            st.integers(0, num_workers - 1), label="scheduling worker"
        )
        task = queues.next_task(worker)
        if task is None:
            continue
        # Bound the kills so the drain always terminates within the
        # entropy hypothesis provides.
        kill = requeues < len(tasks) and data.draw(
            st.booleans(), label="kill this execution"
        )
        if kill:
            victim = data.draw(
                st.integers(0, num_workers - 1), label="requeue victim"
            )
            queues.requeue(victim, task)
            requeues += 1
            # The requeued task goes to the head of the victim's queue.
            assert queues.queue_length(victim) >= 1
        else:
            seen.append(task.task_id)

    assert sorted(seen) == sorted(task.task_id for task in tasks)
    assert executed_total(queues) == len(tasks) + requeues


@settings(max_examples=60, deadline=None)
@given(workload())
def test_requeue_preserves_head_position(case):
    """A requeued task is the very next own-queue pop for that worker."""
    num_workers, homes = case
    if not homes:
        return
    queues = TaskQueueSet(num_workers, DefaultStealingPolicy())
    tasks = make_tasks(homes)
    queues.load(tasks)
    home = tasks[0].home_worker
    first = queues.next_task(home)
    assert first is not None
    queues.requeue(home, first)
    assert queues.next_task(home) is first


@settings(max_examples=60, deadline=None)
@given(workload())
def test_force_drain_conserves_tasks(case):
    """Force-draining straight after load attributes everything to the
    chosen worker and leaves no task behind or duplicated."""
    num_workers, homes = case
    queues = TaskQueueSet(num_workers, DefaultStealingPolicy())
    tasks = make_tasks(homes)
    queues.load(tasks)
    order = queues.force_drain(0)
    assert len(order) == len(tasks)
    assert queues.remaining == 0
    assert queues.executed_count(0) == len(tasks)
    assert all(worker == 0 for worker, _ in order)
    assert sorted(task.task_id for _, task in order) == sorted(
        task.task_id for task in tasks
    )
