"""Combiner semantics, including the associativity/commutativity the
reduce phase depends on (property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.combiners import (
    BufferCombiner,
    CountCombiner,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SumCombiner,
)

floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)


def fold(combiner, values):
    acc = combiner.identity()
    for value in values:
        acc = combiner.add(acc, value)
    return acc


class TestSumCombiner:
    def test_basic(self):
        c = SumCombiner()
        assert c.finalize(fold(c, [1, 2, 3])) == 6

    @given(st.lists(floats, min_size=1), st.lists(floats, min_size=1))
    def test_merge_matches_concatenated_fold(self, left, right):
        c = SumCombiner()
        merged = c.merge(fold(c, left), fold(c, right))
        assert merged == pytest.approx(fold(c, left + right), rel=1e-9, abs=1e-6)

    @given(st.lists(floats), st.lists(floats))
    def test_merge_commutative(self, left, right):
        c = SumCombiner()
        a, b = fold(c, left), fold(c, right)
        assert c.merge(a, b) == pytest.approx(c.merge(b, a))


class TestCountCombiner:
    @given(st.lists(st.text(max_size=5)))
    def test_counts_everything(self, values):
        c = CountCombiner()
        assert fold(c, values) == len(values)

    def test_merge(self):
        c = CountCombiner()
        assert c.merge(3, 4) == 7


class TestMinMax:
    @given(st.lists(floats, min_size=1))
    def test_min(self, values):
        c = MinCombiner()
        assert c.finalize(fold(c, values)) == min(values)

    @given(st.lists(floats, min_size=1))
    def test_max(self, values):
        c = MaxCombiner()
        assert c.finalize(fold(c, values)) == max(values)

    @given(st.lists(floats, min_size=1), st.lists(floats, min_size=1))
    def test_min_merge_associates(self, a, b):
        c = MinCombiner()
        assert c.merge(fold(c, a), fold(c, b)) == fold(c, a + b)


class TestMeanCombiner:
    @given(st.lists(floats, min_size=1, max_size=50))
    def test_mean(self, values):
        c = MeanCombiner()
        assert c.finalize(fold(c, values)) == pytest.approx(
            sum(values) / len(values), rel=1e-9, abs=1e-9
        )

    def test_empty_finalize_raises(self):
        c = MeanCombiner()
        with pytest.raises(ValueError):
            c.finalize(c.identity())


class TestBufferCombiner:
    @given(st.lists(st.integers()))
    def test_keeps_all_values(self, values):
        c = BufferCombiner()
        assert fold(c, values) == values

    def test_merge_extends(self):
        c = BufferCombiner()
        assert c.merge([1], [2, 3]) == [1, 2, 3]
