"""Split-phase invariants (property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.splitter import chunk_indices, default_task_count, split_evenly


class TestChunkIndices:
    @given(st.integers(0, 5000), st.integers(1, 200))
    def test_ranges_cover_exactly(self, total, chunks):
        ranges = chunk_indices(total, chunks)
        covered = sum(hi - lo for lo, hi in ranges)
        assert covered == total
        # contiguity
        position = 0
        for lo, hi in ranges:
            assert lo == position
            assert hi > lo
            position = hi

    @given(st.integers(1, 5000), st.integers(1, 200))
    def test_similarly_sized(self, total, chunks):
        ranges = chunk_indices(total, chunks)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_indices(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 4)
        with pytest.raises(ValueError):
            chunk_indices(10, 0)


class TestSplitEvenly:
    def test_preserves_order(self):
        data = list(range(10))
        parts = split_evenly(data, 3)
        assert [x for part in parts for x in part] == data


class TestDefaultTaskCount:
    def test_caps_at_data_units(self):
        assert default_task_count(3, 64) == 3

    def test_over_decomposition(self):
        assert default_task_count(1000, 64) == 128

    def test_no_data(self):
        assert default_task_count(0, 8) == 8

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            default_task_count(10, 0)
