"""Task queues, stealing policies and the Eq. (3) cap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.scheduler import (
    CappedStealingPolicy,
    DefaultStealingPolicy,
    TaskQueueSet,
    vfi_task_cap,
)
from repro.mapreduce.tasks import Phase, Task


def make_tasks(count, workers):
    return [
        Task(task_id=i, phase=Phase.MAP, home_worker=i % workers)
        for i in range(count)
    ]


class TestVfiTaskCap:
    def test_paper_word_count_case(self):
        # Paper Sec. 4.3: N=100 tasks, C=64 cores, f=2.0 GHz vs fmax=2.5:
        # Nf = floor(100/64 * (1 - 0.5/2.5)) = floor(1.5625 * 0.8) = 1.
        assert vfi_task_cap(100, 64, 2.0e9, 2.5e9) == 1

    def test_fmax_core_uncapped(self):
        assert vfi_task_cap(100, 64, 2.5e9, 2.5e9) == 100

    def test_zero_possible_at_small_ratio(self):
        assert vfi_task_cap(64, 64, 1.5e9, 2.5e9) == 0

    def test_monotone_in_frequency(self):
        caps = [
            vfi_task_cap(640, 64, f, 2.5e9)
            for f in (1.5e9, 1.75e9, 2.0e9, 2.25e9, 2.5e9)
        ]
        assert caps == sorted(caps)

    @given(
        st.integers(0, 2000),
        st.integers(1, 128),
        st.sampled_from([1.5e9, 1.75e9, 2.0e9, 2.25e9]),
    )
    def test_never_exceeds_fair_share(self, n, c, f):
        assert vfi_task_cap(n, c, f, 2.5e9) <= n / c

    def test_rejects_f_above_fmax(self):
        with pytest.raises(ValueError):
            vfi_task_cap(10, 4, 3e9, 2.5e9)

    def test_rejects_negative_tasks(self):
        with pytest.raises(ValueError):
            vfi_task_cap(-1, 4, 1e9, 2e9)


class TestDefaultStealing:
    def test_all_tasks_executed(self):
        queues = TaskQueueSet(4, DefaultStealingPolicy())
        queues.load(make_tasks(10, 4))
        order = queues.drain_serial()
        assert len(order) == 10
        assert queues.remaining == 0

    def test_steals_from_longest_queue(self):
        queues = TaskQueueSet(3, DefaultStealingPolicy())
        tasks = [Task(task_id=i, phase=Phase.MAP, home_worker=0) for i in range(5)]
        queues.load(tasks)
        # Worker 1 has nothing; must steal from worker 0 (the only victim).
        task = queues.next_task(1)
        assert task is not None
        # Steals from the tail (cold end).
        assert task.task_id == 4

    def test_own_queue_first(self):
        queues = TaskQueueSet(2, DefaultStealingPolicy())
        queues.load(make_tasks(4, 2))
        task = queues.next_task(1)
        assert task.home_worker == 1
        assert task.task_id == 1  # FIFO from own queue


class TestCappedStealing:
    def test_own_queue_always_allowed(self):
        # 2 workers at different speeds; 4 tasks -> 2 own tasks each.
        policy = CappedStealingPolicy([2.5e9, 1.5e9])
        queues = TaskQueueSet(2, policy)
        queues.load(make_tasks(4, 2))
        # Slow worker may still run both of its own tasks.
        assert queues.next_task(1) is not None
        assert queues.next_task(1) is not None

    def test_capped_worker_cannot_steal(self):
        policy = CappedStealingPolicy([2.5e9, 2.0e9])
        queues = TaskQueueSet(2, policy)
        # All 10 tasks live on worker 0; worker 1 has an empty queue and a
        # stealing budget of max(1, floor(5 * 0.8)) = 4.
        tasks = [Task(task_id=i, phase=Phase.MAP, home_worker=0) for i in range(10)]
        queues.load(tasks)
        stolen = 0
        while queues.next_task(1) is not None:
            stolen += 1
        assert stolen == policy.cap_for(1) == 4

    def test_fast_worker_unbounded(self):
        policy = CappedStealingPolicy([2.5e9, 2.0e9])
        queues = TaskQueueSet(2, policy)
        tasks = [Task(task_id=i, phase=Phase.MAP, home_worker=1) for i in range(10)]
        queues.load(tasks)
        taken = 0
        while queues.next_task(0) is not None:
            taken += 1
        assert taken == 10

    def test_cap_floor_at_initial_allocation(self):
        # Eq. (3) floors to zero here, but a worker's own allocation is
        # always runnable.
        policy = CappedStealingPolicy([2.5e9, 1.5e9])
        queues = TaskQueueSet(2, policy)
        queues.load(make_tasks(2, 2))
        assert policy.cap_for(1) >= 1

    def test_rejects_freq_above_fmax(self):
        with pytest.raises(ValueError):
            CappedStealingPolicy([2.0e9, 3.0e9], fmax_hz=2.5e9)

    def test_prepare_validates_worker_count(self):
        policy = CappedStealingPolicy([2.5e9, 2.0e9])
        with pytest.raises(ValueError):
            policy.prepare(10, 3)

    def test_drain_serial_completes_under_caps(self):
        policy = CappedStealingPolicy([2.5e9, 2.0e9, 1.75e9, 1.5e9])
        queues = TaskQueueSet(4, policy)
        queues.load(make_tasks(13, 4))
        order = queues.drain_serial()
        assert len(order) == 13


class TestQueueValidation:
    def test_rejects_foreign_home_worker(self):
        queues = TaskQueueSet(2)
        with pytest.raises(ValueError):
            queues.load([Task(task_id=0, phase=Phase.MAP, home_worker=5)])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            TaskQueueSet(0)
