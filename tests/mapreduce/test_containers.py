"""Phoenix++-style container behaviour and partitioning determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.containers import (
    ArrayContainer,
    HashContainer,
    OneBucketContainer,
    stable_key_hash,
)


class TestStableKeyHash:
    @given(st.text(max_size=30))
    def test_string_hash_deterministic_and_nonnegative(self, key):
        assert stable_key_hash(key) == stable_key_hash(key)
        assert stable_key_hash(key) >= 0

    @given(st.integers(min_value=0, max_value=2**40))
    def test_int_hash_nonnegative(self, key):
        assert stable_key_hash(key) >= 0

    @given(st.tuples(st.integers(0, 100), st.integers(0, 100)))
    def test_tuple_hash_deterministic(self, key):
        assert stable_key_hash(key) == stable_key_hash(key)

    def test_distinct_strings_mostly_distinct(self):
        hashes = {stable_key_hash(f"word{i}") for i in range(1000)}
        assert len(hashes) > 990

    def test_bool_is_not_confused_with_int_path(self):
        assert stable_key_hash(True) == 1
        assert stable_key_hash(False) == 0


class TestHashContainer:
    def test_emit_and_fold(self):
        c = HashContainer(SumCombiner())
        c.emit("a", 1)
        c.emit("a", 2)
        c.emit("b", 5)
        assert dict(c.items()) == {"a": 3, "b": 5}
        assert len(c) == 2

    def test_partition_items_cover_everything_once(self):
        c = HashContainer(SumCombiner())
        for i in range(100):
            c.emit(f"k{i}", 1)
        seen = []
        for p in range(8):
            seen.extend(k for k, _ in c.partition_items(8, p))
        assert sorted(seen) == sorted(f"k{i}" for i in range(100))

    def test_partition_out_of_range(self):
        c = HashContainer(SumCombiner())
        with pytest.raises(ValueError):
            list(c.partition_items(4, 4))


class TestArrayContainer:
    def test_dense_keys(self):
        c = ArrayContainer(SumCombiner(), 4)
        c.emit(0, 1.0)
        c.emit(3, 2.0)
        c.emit(0, 1.0)
        assert dict(c.items()) == {0: 2.0, 3: 2.0}
        assert len(c) == 2

    def test_rejects_out_of_range(self):
        c = ArrayContainer(SumCombiner(), 4)
        with pytest.raises(KeyError):
            c.emit(4, 1.0)

    def test_rejects_non_int_keys(self):
        c = ArrayContainer(SumCombiner(), 4)
        with pytest.raises(TypeError):
            c.emit("0", 1.0)
        with pytest.raises(TypeError):
            c.emit(True, 1.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ArrayContainer(SumCombiner(), 0)


class TestOneBucketContainer:
    def test_single_accumulator(self):
        c = OneBucketContainer(SumCombiner())
        assert len(c) == 0
        c.emit("ignored", 2.0)
        c.emit("also-ignored", 3.0)
        items = list(c.items())
        assert len(items) == 1
        assert items[0][1] == 5.0
        assert len(c) == 1
