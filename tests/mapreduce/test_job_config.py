"""JobConfig validation and job defaults."""

import pytest

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.containers import HashContainer
from repro.mapreduce.job import JobConfig, MapReduceJob


class TestJobConfig:
    @pytest.mark.parametrize(
        "field",
        [
            "instructions_per_map_unit",
            "instructions_per_reduce_pair",
            "instructions_per_merge_byte",
            "bytes_per_pair",
            "trace_scale",
            "tasks_per_worker",
        ],
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            JobConfig(**{field: 0})

    def test_mpki_may_be_zero(self):
        config = JobConfig(l1_mpki=0.0, l2_mpki=0.0)
        assert config.l1_mpki == 0.0


class TestJobDefaults:
    def test_default_container_is_hash_with_sum(self):
        job = MapReduceJob()
        container = job.make_container()
        assert isinstance(container, HashContainer)
        assert isinstance(container.combiner, SumCombiner)

    def test_default_task_count(self):
        job = MapReduceJob()
        assert job.num_map_tasks(64) == 96  # 64 * 1.5

    def test_single_iteration_by_default(self):
        job = MapReduceJob()
        assert job.max_iterations() == 1
        assert job.begin_iteration(0)
        assert not job.begin_iteration(1)

    def test_abstract_hooks_raise(self):
        job = MapReduceJob()
        with pytest.raises(NotImplementedError):
            job.split(4)
        with pytest.raises(NotImplementedError):
            job.map(None, lambda k, v: None)

    def test_reduce_work_default_is_fan_in(self):
        job = MapReduceJob()
        assert job.reduce_work("key", [1, 2, 3]) == 3.0
