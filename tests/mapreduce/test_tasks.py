"""TaskCost arithmetic and Task plumbing."""

import pytest

from repro.mapreduce.tasks import Phase, Task, TaskCost


class TestTaskCost:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TaskCost(instructions=-1)

    def test_scaled(self):
        cost = TaskCost(instructions=100, l2_accesses=10, kv_bytes_out=4)
        doubled = cost.scaled(2.0)
        assert doubled.instructions == 200
        assert doubled.l2_accesses == 20
        assert doubled.kv_bytes_out == 8

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            TaskCost(instructions=1).scaled(-1)

    def test_add(self):
        total = TaskCost(instructions=1, l2_accesses=2) + TaskCost(
            instructions=3, memory_accesses=4
        )
        assert total.instructions == 4
        assert total.l2_accesses == 2
        assert total.memory_accesses == 4

    def test_zero_identity(self):
        cost = TaskCost(instructions=5, kv_bytes_in=3)
        summed = cost + TaskCost.zero()
        assert summed.instructions == cost.instructions
        assert summed.kv_bytes_in == cost.kv_bytes_in


class TestTask:
    def test_require_cost_raises_before_execution(self):
        task = Task(task_id=1, phase=Phase.MAP)
        with pytest.raises(RuntimeError):
            task.require_cost()

    def test_require_cost_after(self):
        task = Task(task_id=1, phase=Phase.MAP, cost=TaskCost(instructions=1))
        assert task.require_cost().instructions == 1
