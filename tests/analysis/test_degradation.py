"""The fault-degradation section of the analysis report."""

import pytest

from repro.analysis.report import (
    DEGRADATION_COLUMNS,
    degradation_rows,
    degradation_section,
)
from repro.core.experiment import run_app_study
from repro.faults import preset_plan


@pytest.fixture(scope="module")
def clean():
    return run_app_study("histogram", scale=0.05, seed=9, num_workers=16)


@pytest.fixture(scope="module")
def faulted(clean):
    plan = preset_plan(
        "core_failure", clean.result("nvfi_mesh").total_time_s, 16
    )
    return run_app_study(
        "histogram", scale=0.05, seed=9, num_workers=16, fault_plan=plan
    )


class TestDegradationRows:
    def test_one_row_per_shared_config(self, clean, faulted):
        rows = degradation_rows(clean, faulted)
        assert [row["config"] for row in rows] == [
            "nvfi_mesh", "vfi1_mesh", "vfi2_mesh", "vfi2_winoc"
        ]
        assert all(set(DEGRADATION_COLUMNS) <= set(row) for row in rows)

    def test_values_reflect_the_failure(self, clean, faulted):
        for row in degradation_rows(clean, faulted):
            assert float(row["makespan x"]) > 1.0
            assert float(row["EDP x"]) > 1.0
            assert int(row["re-executed"]) + int(row["substituted"]) > 0
            assert row["events"].startswith("1/0")

    def test_identical_studies_degrade_nowhere(self, clean):
        for row in degradation_rows(clean, clean):
            assert float(row["makespan x"]) == pytest.approx(1.0)
            assert row["energy %"] == "+0.0"
            assert int(row["re-executed"]) == 0


class TestDegradationSection:
    def test_renders_markdown_table(self, clean, faulted):
        text = degradation_section(
            {"histogram": clean}, {"histogram": faulted}
        )
        assert text.startswith("## Fault degradation")
        assert "### HIST" in text
        assert "failed cores [4]" in text
        assert "| makespan x |" in text
        assert "| nvfi_mesh |" in text

    def test_disjoint_study_sets_say_so(self, clean, faulted):
        text = degradation_section({"histogram": clean}, {"kmeans": faulted})
        assert "No app present in both" in text

    def test_generate_report_appends_the_section(self, clean, faulted):
        from repro.analysis.figures import ALL_APPS
        from repro.analysis.report import generate_report

        # The figure sections index all six app names; aliasing them to
        # the same small study keeps this an end-to-end report test.
        studies = {name: clean for name in ALL_APPS}
        text = generate_report(
            studies=studies, faulted_studies={"histogram": faulted}
        )
        assert "## Fault degradation" in text
        assert "failed cores [4]" in text
        assert text.index("## Fault degradation") > text.index(
            "## Per-configuration summary"
        )
