"""Figure-series builders over scaled-down studies."""

import numpy as np
import pytest

from repro.analysis.figures import (
    FIG4_APPS,
    figure2_utilization,
    figure4_vfi1_vs_vfi2,
    figure5_bottleneck_utilization,
    figure7_phase_times,
    figure8_full_system_edp,
    collect_studies,
)

SCALE = 0.3
SEED = 9


@pytest.fixture(scope="module")
def studies():
    return collect_studies(scale=SCALE, seed=SEED)


class TestFigure2:
    def test_sorted_descending(self, studies):
        series = figure2_utilization(studies)
        assert set(series) == {"Kmeans", "PCA", "MM", "HIST"}
        for values in series.values():
            assert (np.diff(values) <= 1e-12).all()
            assert len(values) == 64
            assert values.max() <= 1.0


class TestFigure4:
    def test_structure(self, studies):
        data = figure4_vfi1_vs_vfi2(studies)
        assert set(data) == {"execution_time", "edp"}
        for metric in data.values():
            assert set(metric) == {"PCA", "HIST", "MM"}
            for vfi1, vfi2 in metric.values():
                assert vfi1 > 0 and vfi2 > 0

    def test_vfi2_no_slower(self, studies):
        data = figure4_vfi1_vs_vfi2(studies)
        for label, (vfi1, vfi2) in data["execution_time"].items():
            assert vfi2 <= vfi1 + 1e-9


class TestFigure5:
    def test_bottleneck_above_average(self, studies):
        data = figure5_bottleneck_utilization(studies)
        for label, (average, bottleneck) in data.items():
            assert bottleneck > average


class TestFigure7:
    def test_phase_breakdown(self, studies):
        data = figure7_phase_times(studies)
        assert len(data) == 6
        for app_label, configs in data.items():
            assert set(configs) == {"VFI Mesh", "VFI WiNoC"}
            for phases in configs.values():
                assert set(phases) == {"map", "reduce", "merge", "lib_init"}
                total = sum(phases.values())
                assert 0.5 < total < 2.0  # normalized to NVFI total


class TestFigure8:
    def test_pairs(self, studies):
        data = figure8_full_system_edp(studies)
        assert len(data) == 6
        for mesh_edp, winoc_edp in data.values():
            assert mesh_edp > 0 and winoc_edp > 0
