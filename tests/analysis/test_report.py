"""Markdown report generation."""

import pytest

from repro.analysis.figures import collect_studies
from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    studies = collect_studies(scale=0.3, seed=9)
    return generate_report(studies=studies, scale=0.3, seed=9)


def test_report_sections(report_text):
    for section in (
        "# Reproduction report",
        "## Table 1",
        "## Table 2",
        "## Figure 2",
        "## Figure 4",
        "## Figure 5",
        "## Figure 7",
        "## Figure 8",
        "## Per-configuration summary",
    ):
        assert section in report_text


def test_report_mentions_all_apps(report_text):
    for label in ("MM", "Kmeans", "PCA", "HIST", "WC", "LR"):
        assert label in report_text


def test_report_mentions_all_configs(report_text):
    for config in ("nvfi_mesh", "vfi1_mesh", "vfi2_mesh", "vfi2_winoc"):
        assert config in report_text


def test_report_markdown_tables_well_formed(report_text):
    for line in report_text.splitlines():
        if line.startswith("|") and not line.startswith("|-"):
            assert line.endswith("|"), line
