"""Sensitivity machinery (scaled down)."""

import pytest

from repro.analysis.sensitivity import (
    PERTURBABLE,
    SensitivityRow,
    _perturbed_params,
    resimulate_with_power,
    sensitivity_sweep,
)
from repro.core.experiment import run_app_study
from repro.energy.core_power import CorePowerParams
from repro.noc.energy import NocEnergyParams


@pytest.fixture(scope="module")
def study():
    return run_app_study("histogram", scale=0.3, seed=9, num_workers=16)


class TestPerturbedParams:
    def test_core_domain(self):
        core, noc = _perturbed_params("core_dynamic", 2.0)
        assert core.dynamic_w_nominal == pytest.approx(
            2 * CorePowerParams().dynamic_w_nominal
        )
        assert noc == NocEnergyParams()

    def test_noc_domain(self):
        core, noc = _perturbed_params("wire_energy", 0.5)
        assert noc.wire_pj_per_bit_per_mm == pytest.approx(
            0.5 * NocEnergyParams().wire_pj_per_bit_per_mm
        )
        assert core == CorePowerParams()

    def test_all_registered_parameters_resolve(self):
        for parameter in PERTURBABLE:
            _perturbed_params(parameter, 1.5)


class TestResimulate:
    def test_identity_matches_study(self, study):
        edps = resimulate_with_power(study, seed=9)
        assert edps["vfi2_mesh"] == pytest.approx(
            study.normalized_edp("vfi2_mesh"), rel=1e-6
        )
        assert edps["vfi2_winoc"] == pytest.approx(
            study.normalized_edp("vfi2_winoc"), rel=1e-6
        )

    def test_heavier_cores_do_not_weaken_vfi_savings(self, study):
        from dataclasses import replace

        heavy = replace(CorePowerParams(), dynamic_w_nominal=4.0)
        edps = resimulate_with_power(study, core_power_params=heavy, seed=9)
        # More dynamic weight means the V^2 f reduction buys relatively
        # more energy, so normalized EDP must not get worse (on a small
        # die with near-nominal islands the effect can be ~0).
        assert edps["vfi2_mesh"] <= study.normalized_edp("vfi2_mesh") + 1e-3


class TestSweep:
    def test_rows_cover_grid(self, study):
        rows = sensitivity_sweep(
            study, multipliers=(0.5,), parameters=["core_dynamic"], seed=9
        )
        assert len(rows) == 1
        row = rows[0]
        assert isinstance(row, SensitivityRow)
        assert row.vfi_mesh_edp > 0 and row.vfi_winoc_edp > 0
