"""Table formatting and paper-table builders."""

import pytest

from repro.analysis.tables import ascii_bars, format_table, table1_datasets


class TestFormatTable:
    def test_alignment_and_rows(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a ")
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_empty(self):
        assert "empty" in format_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in format_table(rows, columns=["a"])


class TestAsciiBars:
    def test_scaling(self):
        text = ascii_bars({"x": 1.0, "y": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_reference(self):
        text = ascii_bars({"x": 0.5}, width=10, reference=1.0)
        assert text.count("#") == 5

    def test_empty(self):
        assert ascii_bars({}) == "(no data)"


def test_table1_contains_all_apps():
    text = table1_datasets()
    for label in ("MM", "Kmeans", "PCA", "HIST", "WC", "LR"):
        assert label in text
    assert "999 x 999" in text
