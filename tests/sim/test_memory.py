"""Memory-system model: bank distribution, latency, energy expectations."""

import numpy as np
import pytest

from repro.core.platforms import build_nvfi_mesh
from repro.sim.memory import MemorySystem


@pytest.fixture(scope="module")
def memory_uniform():
    return MemorySystem(build_nvfi_mesh(), locality=0.0)


@pytest.fixture(scope="module")
def memory_local():
    return MemorySystem(build_nvfi_mesh(), locality=0.8)


class TestBankDistribution:
    def test_rows_sum_to_one(self, memory_local):
        assert np.allclose(memory_local.bank_prob.sum(axis=1), 1.0)

    def test_uniform_when_no_locality(self, memory_uniform):
        assert np.allclose(memory_uniform.bank_prob, 1.0 / 64)

    def test_locality_prefers_nearby_banks(self, memory_local):
        geo = memory_local.platform.layout.geometry
        p = memory_local.bank_prob
        # own bank beats a distant bank for every source
        for src in (0, 27, 63):
            far = max(range(64), key=lambda b: geo.manhattan_hops(src, b))
            assert p[src, src] > 5 * p[src, far]

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            MemorySystem(build_nvfi_mesh(), locality=1.2)


class TestLatency:
    def test_round_trip_positive(self, memory_uniform):
        for node in range(0, 64, 9):
            assert memory_uniform.l2_round_trip_s(node) > 0

    def test_local_traffic_is_faster(self, memory_uniform, memory_local):
        assert (
            memory_local._l2_round_trip.mean()
            < memory_uniform._l2_round_trip.mean()
        )

    def test_memory_extra_includes_dram(self, memory_uniform):
        dram = memory_uniform.platform.memory_params.dram_latency_s
        for node in range(0, 64, 13):
            assert memory_uniform.memory_extra_s(node) >= dram

    def test_stall_scales_with_accesses(self, memory_uniform):
        one = memory_uniform.task_stall_s(0, 100, 10, mlp=4)
        two = memory_uniform.task_stall_s(0, 200, 20, mlp=4)
        assert two == pytest.approx(2 * one)

    def test_mlp_divides_stall(self, memory_uniform):
        assert memory_uniform.task_stall_s(0, 100, 0, mlp=4) == pytest.approx(
            memory_uniform.task_stall_s(0, 100, 0, mlp=2) / 2
        )

    def test_bad_mlp_rejected(self, memory_uniform):
        with pytest.raises(ValueError):
            memory_uniform.task_stall_s(0, 1, 0, mlp=0)

    def test_load_raises_latency(self):
        memory = MemorySystem(build_nvfi_mesh(), locality=0.0)
        before = memory._l2_round_trip.mean()
        for node in range(64):
            memory.add_miss_flows(node, 2e8)
        memory.refresh_latencies()
        assert memory._l2_round_trip.mean() > before


class TestEnergy:
    def test_miss_energy_positive_and_linear(self, memory_uniform):
        e1 = memory_uniform.record_miss_energy(0, 1000, 100)
        e2 = memory_uniform.record_miss_energy(0, 2000, 200)
        assert e2 == pytest.approx(2 * e1)

    def test_counters_accumulate(self):
        memory = MemorySystem(build_nvfi_mesh(), locality=0.0)
        memory.record_miss_energy(5, 1000, 0)
        counters = memory.platform.network.energy
        assert counters.bits_moved > 0
        assert counters.dynamic_joules > 0

    def test_negative_rejected(self, memory_uniform):
        with pytest.raises(ValueError):
            memory_uniform.record_miss_energy(0, -1, 0)
        with pytest.raises(ValueError):
            memory_uniform.add_miss_flows(0, -1)
