"""SimulationResult derived metrics."""

import json

import numpy as np
import pytest

from repro.core.serialization import result_from_dict, result_to_dict
from repro.energy.metrics import EnergyBreakdown
from repro.mapreduce.tasks import Phase
from repro.sim.stats import NetworkStats, PhaseStats, SimulationResult


def make_result(total=2.0):
    busy = np.full(4, 1.0)
    committed = np.full(4, 2.5e9)
    freqs = np.full(4, 2.5e9)
    return SimulationResult(
        app_name="x",
        platform_name="p",
        total_time_s=total,
        busy_s=busy,
        committed_instructions=committed,
        worker_frequencies_hz=freqs,
        issue_width=2.0,
        phases=[
            PhaseStats(Phase.LIB_INIT, 0, 0.0, 0.2),
            PhaseStats(Phase.MAP, 0, 0.2, 1.5),
            PhaseStats(Phase.REDUCE, 0, 1.5, 1.8),
            PhaseStats(Phase.MERGE, 0, 1.8, 2.0),
        ],
        energy=EnergyBreakdown(10.0, 2.0, 1.0, 0.5),
        network=NetworkStats(1e9, 3.0, 0.1, 1.0, 0.5),
    )


class TestUtilization:
    def test_ipc_based(self):
        result = make_result()
        # 2.5e9 instr over 2 s at 2.5 GHz, width 2 -> 0.25
        assert result.utilization[0] == pytest.approx(0.25)

    def test_busy_fraction_separate(self):
        result = make_result()
        assert result.busy_fraction[0] == pytest.approx(0.5)

    def test_clipped_to_one(self):
        result = make_result()
        result.committed_instructions[:] = 1e12
        assert (result.utilization <= 1.0).all()

    def test_zero_duration_rejected(self):
        result = make_result(total=0.0)
        with pytest.raises(ValueError):
            _ = result.utilization


class TestPhases:
    def test_phase_duration(self):
        result = make_result()
        assert result.phase_duration_s(Phase.MAP) == pytest.approx(1.3)

    def test_breakdown_sums_to_total(self):
        result = make_result()
        assert sum(result.phase_breakdown().values()) == pytest.approx(2.0)


class TestMetrics:
    def test_edp(self):
        result = make_result()
        assert result.edp == pytest.approx(13.5 * 2.0)

    def test_network_edp(self):
        result = make_result()
        assert result.network_edp == pytest.approx(1.5 * 2.0)

    def test_summary_keys(self):
        summary = make_result().summary()
        for key in ("total_time_s", "edp", "network_edp", "avg_utilization"):
            assert key in summary


class TestNetworkStats:
    def test_energy_total(self):
        stats = NetworkStats(1.0, 2.0, 0.5, 3.0, 4.0)
        assert stats.energy_j == 7.0

    def test_defaults_empty(self):
        stats = NetworkStats()
        assert stats.bits_moved == 0.0
        assert stats.energy_j == 0.0


class TestSerializationRoundTrip:
    def test_result_round_trip(self):
        result = make_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.app_name == result.app_name
        assert rebuilt.platform_name == result.platform_name
        assert rebuilt.total_time_s == result.total_time_s
        np.testing.assert_array_equal(rebuilt.busy_s, result.busy_s)
        np.testing.assert_array_equal(
            rebuilt.committed_instructions, result.committed_instructions
        )
        np.testing.assert_array_equal(
            rebuilt.worker_frequencies_hz, result.worker_frequencies_hz
        )
        assert rebuilt.edp == pytest.approx(result.edp)

    def test_phase_stats_survive(self):
        rebuilt = result_from_dict(result_to_dict(make_result()))
        original = make_result()
        assert len(rebuilt.phases) == len(original.phases)
        for a, b in zip(rebuilt.phases, original.phases):
            assert a.phase is b.phase
            assert a.iteration == b.iteration
            assert a.start_s == b.start_s
            assert a.end_s == b.end_s
            assert a.duration_s == pytest.approx(b.duration_s)
        for phase in Phase:
            assert rebuilt.phase_duration_s(phase) == pytest.approx(
                original.phase_duration_s(phase)
            )

    def test_network_stats_survive(self):
        rebuilt = result_from_dict(result_to_dict(make_result()))
        network = make_result().network
        assert rebuilt.network.bits_moved == network.bits_moved
        assert rebuilt.network.average_hops == network.average_hops
        assert rebuilt.network.wireless_fraction == network.wireless_fraction
        assert rebuilt.network.energy_j == pytest.approx(network.energy_j)

    def test_dict_is_json_compatible(self):
        data = result_to_dict(make_result())
        rebuilt = result_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.total_time_s == 2.0

    def test_zero_duration_round_trip(self):
        """A zero-length run serializes; only utilization refuses it."""
        result = make_result(total=0.0)
        result.phases = [PhaseStats(Phase.MAP, 0, 0.5, 0.5)]
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.total_time_s == 0.0
        assert rebuilt.phases[0].duration_s == 0.0
        assert rebuilt.phase_duration_s(Phase.MAP) == 0.0
        assert rebuilt.edp == 0.0
        with pytest.raises(ValueError):
            _ = rebuilt.utilization

    def test_empty_network_round_trip(self):
        result = make_result()
        result.network = NetworkStats()
        result.phases = []
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.network == NetworkStats()
        assert rebuilt.phases == []
        assert rebuilt.network_edp == 0.0
        assert rebuilt.phase_breakdown() == {}
