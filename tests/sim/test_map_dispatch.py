"""Epoch-batched map dispatch vs the pure event-driven scheduler.

``SystemSimulator._schedule_map`` commits each worker's own-queue run
in one vectorized batch when the phase-invariant ``dispatch`` indices
are supplied (and no faults are armed); with ``dispatch=None`` it runs
the original per-task heap loop.  Both must produce *identical*
schedules -- same records, workers, start times, and durations, in the
same order -- because downstream energy accounting folds floats in
schedule order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import DieGeometry
from repro.core.platforms import build_nvfi_mesh
from repro.mapreduce.scheduler import CappedStealingPolicy, TaskQueueSet
from repro.mapreduce.tasks import Phase, TaskCost, Task
from repro.mapreduce.trace import TaskRecord
from repro.sim.system import SystemSimulator


def _records(rng, num_tasks, num_workers, skew=1.0):
    records = []
    for task_id in range(num_tasks):
        home = int(rng.integers(num_workers))
        if skew != 1.0 and home == 0:
            home = int(rng.integers(num_workers))  # thin out worker 0
        records.append(
            TaskRecord(
                task_id=task_id,
                phase=Phase.MAP,
                cost=TaskCost(
                    instructions=float(rng.integers(1_000, 50_000)),
                    l2_accesses=float(rng.integers(0, 500)),
                    memory_accesses=float(rng.integers(0, 50)),
                ),
                home_worker=home,
            )
        )
    return records


def _dispatch_indices(records, num_workers):
    """The phase-invariant scatter indices exactly as _run_map builds them."""
    home = np.fromiter(
        (r.home_worker for r in records), dtype=np.int64, count=len(records)
    )
    order = np.argsort(home, kind="stable")
    boundaries = np.searchsorted(home[order], np.arange(num_workers + 1))
    lengths = np.diff(boundaries)
    return (
        order,
        lengths,
        np.repeat(np.arange(num_workers), lengths),
        np.arange(len(records)) - np.repeat(boundaries[:-1], lengths),
    )


def _run_both(simulator, records, durations, start=3.25):
    num_workers = simulator.platform.num_cores
    legacy = simulator._schedule_map(records, start, durations)
    batched = simulator._schedule_map(
        records, start, durations,
        dispatch=_dispatch_indices(records, num_workers),
    )
    return legacy, batched


def _assert_identical(legacy, batched):
    schedule_a, end_a, queues_a, _ = legacy
    schedule_b, end_b, queues_b, _ = batched
    assert end_a == end_b
    assert len(schedule_a) == len(schedule_b)
    for item_a, item_b in zip(schedule_a, schedule_b):
        assert item_a.record is item_b.record
        assert item_a.worker == item_b.worker
        assert item_a.start_s == item_b.start_s  # bit-for-bit
        assert item_a.duration_s == item_b.duration_s
    assert queues_a.steals == queues_b.steals
    assert queues_a.steal_attempts == queues_b.steal_attempts
    assert queues_a.cap_rejections == queues_b.cap_rejections
    for worker in range(queues_a.num_workers):
        assert queues_a.executed_count(worker) == queues_b.executed_count(
            worker
        )


@pytest.fixture(scope="module")
def simulator():
    platform = build_nvfi_mesh(DieGeometry.for_cores(16))
    return SystemSimulator(platform, locality=0.6)


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("num_tasks", [5, 48, 200])
def test_batched_matches_event_loop(simulator, seed, num_tasks):
    rng = np.random.default_rng(seed)
    num_workers = simulator.platform.num_cores
    records = _records(rng, num_tasks, num_workers)
    durations = rng.uniform(1e-4, 5e-3, (num_tasks, num_workers))
    _assert_identical(*_run_both(simulator, records, durations))


def test_batched_matches_with_stealing(simulator):
    # A strongly skewed allocation forces the stealing tail to do real
    # work after the batched prologue.
    rng = np.random.default_rng(42)
    num_workers = simulator.platform.num_cores
    records = [
        TaskRecord(
            task_id=r.task_id, phase=r.phase, cost=r.cost,
            home_worker=3 if r.task_id < 60 else r.home_worker,
        )
        for r in _records(rng, 120, num_workers)
    ]  # half the work piled on worker 3
    durations = rng.uniform(1e-4, 5e-3, (120, num_workers))
    legacy, batched = _run_both(simulator, records, durations)
    assert legacy[2].steals > 0  # the scenario exercises stealing
    _assert_identical(legacy, batched)


def test_batched_matches_with_capped_policy(simulator):
    rng = np.random.default_rng(3)
    num_workers = simulator.platform.num_cores
    records = _records(rng, 150, num_workers)
    durations = rng.uniform(1e-4, 5e-3, (150, num_workers))
    freqs = rng.choice([1.5e9, 2.0e9, 2.5e9], size=num_workers)
    simulator.policy = CappedStealingPolicy(list(freqs), fmax_hz=2.5e9)
    try:
        legacy, batched = _run_both(simulator, records, durations)
    finally:
        simulator.policy = None
    _assert_identical(legacy, batched)


def test_batched_handles_workers_without_tasks(simulator):
    # Worker queues with zero home tasks collapse t* to the phase start:
    # the prologue commits nothing and the event loop does all the work.
    num_workers = simulator.platform.num_cores
    records = [
        TaskRecord(
            task_id=i, phase=Phase.MAP,
            cost=TaskCost(instructions=1000.0, l2_accesses=0.0,
                          memory_accesses=0.0),
            home_worker=0,
        )
        for i in range(10)
    ]
    rng = np.random.default_rng(0)
    durations = rng.uniform(1e-4, 5e-3, (10, num_workers))
    _assert_identical(*_run_both(simulator, records, durations))


_SIMULATORS = {}


def _simulator_for(num_cores):
    if num_cores not in _SIMULATORS:
        platform = build_nvfi_mesh(DieGeometry.for_cores(num_cores))
        _SIMULATORS[num_cores] = SystemSimulator(platform, locality=0.6)
    return _SIMULATORS[num_cores]


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_property_batched_identical_to_event_loop(data):
    """Schedule identity across random queue shapes, policies and sizes.

    Draws worker counts, skewed home allocations (including every task
    piled on one hot worker), tie-heavy quantized duration grids, and
    capped vs greedy stealing policies; the epoch-batched dispatch must
    match the pure event loop bit for bit on every one of them.
    """
    num_cores = data.draw(st.sampled_from([4, 16]), label="num_cores")
    simulator = _simulator_for(num_cores)
    seed = data.draw(st.integers(0, 2**16 - 1), label="rng_seed")
    num_tasks = data.draw(st.integers(1, 150), label="num_tasks")
    rng = np.random.default_rng(seed)
    hot_worker = data.draw(st.integers(0, num_cores - 1), label="hot_worker")
    hot_fraction = data.draw(
        st.sampled_from([0.0, 0.5, 0.95, 1.0]), label="hot_fraction"
    )
    homes = np.where(
        rng.random(num_tasks) < hot_fraction,
        hot_worker,
        rng.integers(0, num_cores, num_tasks),
    )
    records = [
        TaskRecord(
            task_id=i, phase=Phase.MAP,
            cost=TaskCost(instructions=1000.0, l2_accesses=0.0,
                          memory_accesses=0.0),
            home_worker=int(homes[i]),
        )
        for i in range(num_tasks)
    ]
    durations = rng.uniform(1e-4, 5e-3, (num_tasks, num_cores))
    if data.draw(st.booleans(), label="tie_heavy"):
        # Snap to a coarse grid: many equal durations force exact float
        # ties at epoch boundaries and simultaneous drain times.
        durations = np.round(durations, 3) + 1e-4
    if data.draw(st.booleans(), label="capped_policy"):
        freqs = rng.choice([1.5e9, 2.0e9, 2.5e9], size=num_cores)
        simulator.policy = CappedStealingPolicy(list(freqs), fmax_hz=2.5e9)
    else:
        simulator.policy = None
    try:
        _assert_identical(*_run_both(simulator, records, durations))
    finally:
        simulator.policy = None


def test_commit_own_semantics():
    queues = TaskQueueSet(2)
    tasks = [
        Task(task_id=i, phase=Phase.MAP, payload=None, home_worker=i % 2)
        for i in range(6)
    ]
    queues.load(tasks)
    popped = queues.commit_own(0, 2)
    assert [t.task_id for t in popped] == [0, 2]
    assert queues.executed_count(0) == 2
    assert queues.queue_length(0) == 1
    assert queues.steals == 0 and queues.steal_attempts == 0
    with pytest.raises(ValueError):
        queues.commit_own(1, 4)
