"""Phase-relaxation modes: legacy fixed-round equivalence and adaptive
convergence.

The legacy goldens below were captured from the pre-vectorization
simulator (fixed ``relaxation_iterations=2`` rounds plus a final pass,
per-call flow registration); pinning ``relaxation_rtol=None`` must keep
reproducing them to float tolerance.
"""

import numpy as np
import pytest

from repro.apps import create_app
from repro.core.design_flow import design_vfi, structural_bottleneck_workers
from repro.core.platforms import build_nvfi_mesh, build_vfi_winoc, geometry_for
from repro.core.traffic import total_node_traffic
from repro.sim.config import SimulationParams
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed

LEGACY = SimulationParams(relaxation_rtol=None)

#: Captured from the pre-change simulator (histogram, scale 0.25, seed 13,
#: 64 workers, NVFI mesh).
GOLDEN_MESH = {
    "total_time_s": 11.170587333172145,
    "total_energy_j": 1482.3986895602088,
    "core_dynamic_j": 1194.0842594548753,
    "core_static_j": 178.7293973307545,
    "noc_dynamic_j": 106.72536241728706,
    "noc_static_j": 2.859670357292068,
    "bits_moved": 7259845639627.693,
    "average_hops": 4.291762369675085,
    "busy_sum_s": 623.9152844704645,
    "phase_ends": [
        0.8881801303019502,
        10.128596113437734,
        10.935189553684662,
        10.939737636800094,
        10.947797475666876,
        10.963914444888406,
        10.995207575310195,
        11.054543236746142,
        11.170587333172145,
    ],
}

#: Captured from the pre-change simulator (wordcount, scale 0.2, seed 7,
#: full VFI-2 WiNoC design flow).
GOLDEN_WINOC = {
    "total_time_s": 1.9604288234959255,
    "total_energy_j": 102.90119862385218,
    "core_dynamic_j": 66.86960551022793,
    "core_static_j": 15.407352261682549,
    "noc_dynamic_j": 20.181183937831626,
    "noc_static_j": 0.4430569141100787,
    "bits_moved": 1138765886760.4597,
    "average_hops": 3.048311009870378,
    "wireless_fraction": 0.0013308502707764108,
    "busy_sum_s": 78.16290590188679,
    "phase_ends": [
        0.061733014657768745,
        1.597232506599525,
        1.8344081259896514,
        1.8369458651235755,
        1.8411805062161042,
        1.8491563883891284,
        1.8651381774152642,
        1.8972856883065203,
        1.9604288234959255,
    ],
}

REL = 1e-6  # cross-platform / cross-numpy float headroom


def _check_golden(result, golden):
    assert result.total_time_s == pytest.approx(golden["total_time_s"], rel=REL)
    assert result.total_energy_j == pytest.approx(
        golden["total_energy_j"], rel=REL
    )
    assert result.energy.core_dynamic_j == pytest.approx(
        golden["core_dynamic_j"], rel=REL
    )
    assert result.energy.core_static_j == pytest.approx(
        golden["core_static_j"], rel=REL
    )
    assert result.energy.noc_dynamic_j == pytest.approx(
        golden["noc_dynamic_j"], rel=REL
    )
    assert result.energy.noc_static_j == pytest.approx(
        golden["noc_static_j"], rel=REL
    )
    assert result.network.bits_moved == pytest.approx(
        golden["bits_moved"], rel=REL
    )
    assert result.network.average_hops == pytest.approx(
        golden["average_hops"], rel=REL
    )
    if "wireless_fraction" in golden:
        assert result.network.wireless_fraction == pytest.approx(
            golden["wireless_fraction"], rel=REL
        )
    assert float(result.busy_s.sum()) == pytest.approx(
        golden["busy_sum_s"], rel=REL
    )
    assert [p.end_s for p in result.phases] == pytest.approx(
        golden["phase_ends"], rel=REL
    )


@pytest.fixture(scope="module")
def mesh_case():
    app = create_app("histogram", scale=0.25, seed=13)
    return app, app.run(num_workers=64)


@pytest.fixture(scope="module")
def winoc_case():
    app = create_app("wordcount", scale=0.2, seed=7)
    locality = app.profile.l2_locality
    trace = app.run(num_workers=64)
    geometry = geometry_for(64)
    nvfi = simulate(
        build_nvfi_mesh(geometry), trace, locality=locality, params=LEGACY
    )
    traffic = total_node_traffic(trace, locality)
    design = design_vfi(
        utilization=nvfi.utilization,
        traffic=traffic,
        seed=spawn_seed(7, "wordcount", "clustering"),
        structural_workers=structural_bottleneck_workers(trace),
    )
    platform = build_vfi_winoc(
        design,
        "vfi2",
        geometry=geometry,
        seed=spawn_seed(7, "wordcount", "winoc"),
        traffic_rate_bps=traffic * 8.0 / nvfi.total_time_s,
    )
    return trace, locality, design, platform


class TestLegacyEquivalence:
    def test_mesh_golden(self, mesh_case):
        app, trace = mesh_case
        result = simulate(
            build_nvfi_mesh(),
            trace,
            locality=app.profile.l2_locality,
            params=LEGACY,
        )
        _check_golden(result, GOLDEN_MESH)

    def test_winoc_golden(self, winoc_case):
        trace, locality, design, platform = winoc_case
        result = simulate(
            platform,
            trace,
            locality=locality,
            stealing_policy=design.stealing_policy("vfi2"),
            params=LEGACY,
        )
        _check_golden(result, GOLDEN_WINOC)


class TestAdaptiveConvergence:
    def test_matches_legacy_closely(self, mesh_case):
        """The converged fixed point agrees with the legacy rounds."""
        app, trace = mesh_case
        adaptive = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality
        )
        assert adaptive.total_time_s == pytest.approx(
            GOLDEN_MESH["total_time_s"], rel=1e-3
        )
        assert adaptive.total_energy_j == pytest.approx(
            GOLDEN_MESH["total_energy_j"], rel=1e-3
        )

    def test_tighter_tolerance_converges_further(self, mesh_case):
        """Shrinking rtol moves the result toward the true fixed point,
        and two tight tolerances agree with each other."""
        app, trace = mesh_case
        locality = app.profile.l2_locality
        loose = simulate(
            build_nvfi_mesh(), trace, locality=locality,
            params=SimulationParams(relaxation_rtol=1e-3),
        )
        tight = simulate(
            build_nvfi_mesh(), trace, locality=locality,
            params=SimulationParams(relaxation_rtol=1e-8),
        )
        tighter = simulate(
            build_nvfi_mesh(), trace, locality=locality,
            params=SimulationParams(relaxation_rtol=1e-10),
        )
        assert tight.total_time_s == pytest.approx(
            tighter.total_time_s, rel=1e-6
        )
        gap_loose = abs(loose.total_time_s - tighter.total_time_s)
        gap_tight = abs(tight.total_time_s - tighter.total_time_s)
        assert gap_tight <= gap_loose

    def test_iteration_cap_bounds_work(self, mesh_case):
        """An rtol far below float precision still terminates (the
        max_relaxation_iterations bound)."""
        app, trace = mesh_case
        result = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality,
            params=SimulationParams(
                relaxation_rtol=1e-300, max_relaxation_iterations=3
            ),
        )
        assert result.total_time_s > 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(relaxation_rtol=0.0)
        with pytest.raises(ValueError):
            SimulationParams(relaxation_rtol=-1e-6)
        with pytest.raises(ValueError):
            SimulationParams(max_relaxation_iterations=0)
        # None is the legacy switch, not an error.
        SimulationParams(relaxation_rtol=None)


class TestResidualCriterion:
    """The ``worker_residual`` convergence criterion (per-worker busy-time
    movement) and the relaxation telemetry instrumentation."""

    def test_criterion_validation(self):
        SimulationParams(relaxation_criterion="phase_end")
        SimulationParams(relaxation_criterion="worker_residual")
        with pytest.raises(ValueError):
            SimulationParams(relaxation_criterion="nope")

    def test_residual_criterion_converges_near_phase_end(self, mesh_case):
        app, trace = mesh_case
        locality = app.profile.l2_locality
        by_end = simulate(
            build_nvfi_mesh(), trace, locality=locality,
            params=SimulationParams(relaxation_rtol=1e-8),
        )
        by_residual = simulate(
            build_nvfi_mesh(), trace, locality=locality,
            params=SimulationParams(
                relaxation_rtol=1e-8, relaxation_criterion="worker_residual"
            ),
        )
        # Both criteria drive the same fixed-point iteration; at tight
        # tolerance they must land on (essentially) the same point.
        assert by_residual.total_time_s == pytest.approx(
            by_end.total_time_s, rel=1e-5
        )
        assert float(by_residual.busy_s.sum()) == pytest.approx(
            float(by_end.busy_s.sum()), rel=1e-5
        )

    def test_residual_criterion_is_deterministic(self, mesh_case):
        app, trace = mesh_case
        params = SimulationParams(relaxation_criterion="worker_residual")
        first = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality,
            params=params,
        )
        second = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality,
            params=params,
        )
        assert first.total_time_s == second.total_time_s
        assert np.array_equal(first.busy_s, second.busy_s)

    @pytest.mark.parametrize("criterion", ["phase_end", "worker_residual"])
    def test_relaxation_telemetry_recorded(self, mesh_case, criterion):
        from repro.telemetry import RecordingTracer, use_tracer

        app, trace = mesh_case
        tracer = RecordingTracer()
        with use_tracer(tracer):
            simulate(
                build_nvfi_mesh(), trace, locality=app.profile.l2_locality,
                params=SimulationParams(relaxation_criterion=criterion),
            )
        # One iteration count per relaxed phase, plus the histogram view.
        total_iterations = tracer.counter_total("sim.relaxation_iterations")
        assert total_iterations >= 2.0  # adaptive mode always runs >= 2
        histogram = tracer.histograms["sim.relaxation_iterations"]
        assert histogram.count >= 1
        residuals = [
            s for s in tracer.samples if s.name == "sim.relaxation_residual"
        ]
        assert residuals
        assert all(s.value >= 0.0 for s in residuals)
