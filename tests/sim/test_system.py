"""Full-system simulator: physical sanity and paper-relevant behaviours."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.core.platforms import build_nvfi_mesh
from repro.mapreduce.tasks import Phase
from repro.sim.system import SystemSimulator, simulate
from repro.vfi.islands import DVFS_LADDER, NOMINAL


@pytest.fixture(scope="module")
def app():
    return create_app("histogram", scale=0.25, seed=13)


@pytest.fixture(scope="module")
def trace(app):
    return app.run(num_workers=64)


@pytest.fixture(scope="module")
def nvfi_result(trace, app):
    return simulate(build_nvfi_mesh(), trace, locality=app.profile.l2_locality)


class TestSanity:
    def test_positive_duration_and_energy(self, nvfi_result):
        assert nvfi_result.total_time_s > 0
        assert nvfi_result.total_energy_j > 0
        assert nvfi_result.energy.noc_dynamic_j > 0

    def test_busy_bounded_by_walltime(self, nvfi_result):
        assert (nvfi_result.busy_s <= nvfi_result.total_time_s + 1e-12).all()

    def test_utilization_in_unit_interval(self, nvfi_result):
        u = nvfi_result.utilization
        assert (u >= 0).all() and (u <= 1).all()

    def test_phases_cover_walltime(self, nvfi_result):
        covered = sum(p.duration_s for p in nvfi_result.phases)
        assert covered == pytest.approx(nvfi_result.total_time_s, rel=1e-9)

    def test_phase_order_is_contiguous(self, nvfi_result):
        phases = nvfi_result.phases
        for before, after in zip(phases, phases[1:]):
            assert after.start_s == pytest.approx(before.end_s)

    def test_all_phase_kinds_present(self, nvfi_result):
        kinds = {p.phase for p in nvfi_result.phases}
        assert kinds == {Phase.LIB_INIT, Phase.MAP, Phase.REDUCE, Phase.MERGE}

    def test_master_committed_includes_lib_init(self, nvfi_result, trace):
        lib_instr = trace.iterations[0].lib_init.cost.instructions
        assert nvfi_result.committed_instructions[0] >= lib_instr

    def test_total_committed_matches_trace(self, nvfi_result, trace):
        assert nvfi_result.committed_instructions.sum() == pytest.approx(
            trace.total_instructions(), rel=1e-9
        )


class TestFrequencyBehaviour:
    def test_lower_vf_is_slower_but_saves_core_energy(self, trace, app):
        nominal = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality
        )
        slow_platform = build_nvfi_mesh().with_vf([DVFS_LADDER[2]] * 4, name="slow")
        slow = simulate(slow_platform, trace, locality=app.profile.l2_locality)
        assert slow.total_time_s > nominal.total_time_s
        assert slow.total_energy_j < nominal.total_energy_j

    def test_half_slow_chip_between_extremes(self, trace, app):
        mixed_platform = build_nvfi_mesh().with_vf(
            [NOMINAL, NOMINAL, DVFS_LADDER[2], DVFS_LADDER[2]], name="mixed"
        )
        mixed = simulate(mixed_platform, trace, locality=app.profile.l2_locality)
        nominal = simulate(
            build_nvfi_mesh(), trace, locality=app.profile.l2_locality
        )
        slow = simulate(
            build_nvfi_mesh().with_vf([DVFS_LADDER[2]] * 4, name="slow"),
            trace,
            locality=app.profile.l2_locality,
        )
        assert nominal.total_time_s < mixed.total_time_s < slow.total_time_s


class TestDeterminism:
    def test_repeatable(self, trace, app):
        a = simulate(build_nvfi_mesh(), trace, locality=app.profile.l2_locality)
        b = simulate(build_nvfi_mesh(), trace, locality=app.profile.l2_locality)
        assert a.total_time_s == pytest.approx(b.total_time_s, rel=1e-12)
        assert a.total_energy_j == pytest.approx(b.total_energy_j, rel=1e-12)


class TestValidation:
    def test_worker_count_mismatch(self, app):
        small_trace = create_app("histogram", scale=0.25, seed=13).run(num_workers=32)
        with pytest.raises(ValueError):
            simulate(build_nvfi_mesh(), small_trace)
