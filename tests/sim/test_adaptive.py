"""Phase-adaptive VFI simulation."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.core.design_flow import design_vfi, structural_bottleneck_workers
from repro.core.platforms import build_nvfi_mesh, build_vfi_mesh
from repro.core.traffic import total_node_traffic
from repro.mapreduce.tasks import Phase
from repro.sim.adaptive import (
    PhaseAdaptiveSimulator,
    VfSchedule,
    phase_adaptive_schedule,
)
from repro.sim.system import simulate
from repro.vfi.islands import DVFS_LADDER, NOMINAL


@pytest.fixture(scope="module")
def setup():
    app = create_app("pca", scale=0.4, seed=21)
    trace = app.run(num_workers=64)
    nvfi = simulate(build_nvfi_mesh(), trace, locality=app.profile.l2_locality)
    design = design_vfi(
        nvfi.utilization,
        total_node_traffic(trace, app.profile.l2_locality),
        seed=3,
        structural_workers=structural_bottleneck_workers(trace),
    )
    platform = build_vfi_mesh(design, "vfi2", seed=3)
    return app, trace, design, platform, nvfi


class TestVfSchedule:
    def test_requires_map_entry(self):
        with pytest.raises(ValueError):
            VfSchedule(phase_points={Phase.MERGE: (NOMINAL,) * 4})

    def test_fallback_to_map(self):
        schedule = VfSchedule(phase_points={Phase.MAP: (NOMINAL,) * 4})
        assert schedule.points_for(Phase.REDUCE) == (NOMINAL,) * 4

    def test_distinct_assignments(self):
        serial = (DVFS_LADDER[0],) * 4
        schedule = VfSchedule(
            phase_points={Phase.MAP: (NOMINAL,) * 4, Phase.MERGE: serial}
        )
        assert len(schedule.distinct_assignments()) == 2

    def test_negative_transition_rejected(self):
        with pytest.raises(ValueError):
            VfSchedule(
                phase_points={Phase.MAP: (NOMINAL,) * 4}, transition_s=-1.0
            )


class TestScheduleBuilder:
    def test_master_island_keeps_its_point(self, setup):
        _, _, design, _, _ = setup
        schedule = phase_adaptive_schedule(design)
        master_island = design.worker_clusters[0]
        serial = schedule.points_for(Phase.LIB_INIT)
        assert serial[master_island] == design.vfi2.points[master_island]
        for island, point in enumerate(serial):
            if island != master_island:
                assert point == DVFS_LADDER[0]

    def test_map_uses_static_vfi2(self, setup):
        _, _, design, _, _ = setup
        schedule = phase_adaptive_schedule(design)
        assert schedule.points_for(Phase.MAP) == tuple(design.vfi2.points)


class TestPhaseAdaptiveSimulator:
    def test_sanity_and_energy_direction(self, setup):
        app, trace, design, platform, nvfi = setup
        static = simulate(
            build_vfi_mesh(design, "vfi2", seed=3),
            trace,
            locality=app.profile.l2_locality,
            stealing_policy=design.stealing_policy("vfi2"),
        )
        adaptive = PhaseAdaptiveSimulator(
            platform,
            phase_adaptive_schedule(design),
            locality=app.profile.l2_locality,
            stealing_policy=design.stealing_policy("vfi2"),
        ).run(trace)
        assert adaptive.total_time_s > 0
        assert adaptive.total_energy_j > 0
        # parking idle islands saves energy on a merge-heavy app
        assert adaptive.total_energy_j < static.total_energy_j
        # transitions cost a little time, never an order of magnitude
        assert adaptive.total_time_s < static.total_time_s * 1.1

    def test_identity_schedule_matches_static(self, setup):
        app, trace, design, platform, _ = setup
        schedule = VfSchedule(
            phase_points={Phase.MAP: tuple(design.vfi2.points)},
            transition_s=0.0,
        )
        adaptive = PhaseAdaptiveSimulator(
            platform,
            schedule,
            locality=app.profile.l2_locality,
            stealing_policy=design.stealing_policy("vfi2"),
        ).run(trace)
        static = simulate(
            build_vfi_mesh(design, "vfi2", seed=3),
            trace,
            locality=app.profile.l2_locality,
            stealing_policy=design.stealing_policy("vfi2"),
        )
        assert adaptive.total_time_s == pytest.approx(static.total_time_s, rel=1e-9)
        assert adaptive.total_energy_j == pytest.approx(
            static.total_energy_j, rel=1e-9
        )

    def test_phases_cover_walltime_minus_transitions(self, setup):
        app, trace, design, platform, _ = setup
        schedule = phase_adaptive_schedule(design)
        result = PhaseAdaptiveSimulator(
            platform, schedule, locality=app.profile.l2_locality
        ).run(trace)
        covered = sum(p.duration_s for p in result.phases)
        gap = result.total_time_s - covered
        assert gap >= 0
        # the gap is exactly the transition penalties (a whole multiple of
        # transition_s up to float noise, which can land on either side)
        assert gap == pytest.approx(
            round(gap / schedule.transition_s) * schedule.transition_s,
            abs=1e-9,
        )

    def test_worker_count_checked(self, setup):
        app, trace, design, platform, _ = setup
        small = create_app("pca", scale=0.4, seed=21).run(num_workers=32)
        simulator = PhaseAdaptiveSimulator(platform, phase_adaptive_schedule(design))
        with pytest.raises(ValueError):
            simulator.run(small)
