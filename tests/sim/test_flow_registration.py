"""Vectorized miss-flow registration vs the per-call reference."""

import numpy as np
import pytest

from repro.core.platforms import (
    build_nvfi_mesh,
    default_geometry,
    memory_params_for,
)
from repro.noc.placement import center_wireless_placement
from repro.noc.routing import build_routing_table
from repro.noc.smallworld import build_small_world
from repro.sim.memory import MemorySystem
from repro.sim.platform import Platform
from repro.vfi.islands import NOMINAL, quadrant_clusters


def winoc_platform():
    geometry = default_geometry()
    layout = quadrant_clusters(geometry)
    clusters = list(layout.node_cluster)
    wireline = build_small_world(geometry, clusters, seed=3)
    from repro.noc.wireless import assign_wireless_links

    winoc = assign_wireless_links(
        wireline, center_wireless_placement(geometry, clusters)
    )
    return Platform(
        name="winoc-test",
        layout=layout,
        vf_points=[NOMINAL] * layout.num_clusters,
        topology=winoc,
        routing=build_routing_table(winoc),
        memory_params=memory_params_for(geometry),
    )


def reference_miss_flows(memory, node, accesses_per_s):
    """The pre-vectorization per-bank add_flow loop."""
    network = memory.platform.network
    for bank in range(memory.num_nodes):
        share = accesses_per_s * memory.bank_prob[node, bank]
        if share <= 0:
            continue
        network.add_flow(node, bank, share * memory._ctrl_bits)
        network.add_flow(bank, node, share * memory._data_bits, bulk=True)


@pytest.fixture(
    scope="module", params=["mesh", "winoc"], ids=["mesh", "winoc"]
)
def memory(request):
    platform = (
        build_nvfi_mesh() if request.param == "mesh" else winoc_platform()
    )
    return MemorySystem(platform, locality=0.6)


class TestMissFlowEquivalence:
    def test_single_node_matches_reference(self, memory):
        network = memory.platform.network
        network.reset_flows()
        memory.add_miss_flows(13, 2.5e8)
        vec_link = network.load.link_load.copy()
        vec_chan = network.load.channel_load.copy()
        network.reset_flows()
        reference_miss_flows(memory, 13, 2.5e8)
        np.testing.assert_allclose(
            vec_link, network.load.link_load, rtol=1e-12, atol=1e-3
        )
        np.testing.assert_allclose(
            vec_chan, network.load.channel_load, rtol=1e-12, atol=1e-3
        )

    def test_batch_matches_per_node(self, memory):
        rng = np.random.default_rng(7)
        rates = rng.random(memory.num_nodes) * 1e8
        rates[::5] = 0.0
        network = memory.platform.network
        network.reset_flows()
        memory.add_miss_flows_batch(rates)
        vec_link = network.load.link_load.copy()
        vec_chan = network.load.channel_load.copy()
        network.reset_flows()
        for node, rate in enumerate(rates):
            reference_miss_flows(memory, node, float(rate))
        np.testing.assert_allclose(
            vec_link, network.load.link_load, rtol=1e-12, atol=1e-3
        )
        np.testing.assert_allclose(
            vec_chan, network.load.channel_load, rtol=1e-12, atol=1e-3
        )

    def test_zero_rates_are_noop(self, memory):
        network = memory.platform.network
        network.reset_flows()
        memory.add_miss_flows(0, 0.0)
        memory.add_miss_flows_batch(np.zeros(memory.num_nodes))
        assert not network.load.link_load.any()
        assert not network.load.channel_load.any()

    def test_validation(self, memory):
        with pytest.raises(ValueError):
            memory.add_miss_flows(0, -1.0)
        with pytest.raises(ValueError):
            memory.add_miss_flows_batch(np.full(memory.num_nodes, -1.0))
        with pytest.raises(ValueError):
            memory.add_miss_flows_batch(np.zeros(3))
