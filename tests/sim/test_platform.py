"""Platform wiring and accessors."""

import pytest

from repro.core.platforms import build_nvfi_mesh, build_vfi_mesh, build_vfi_winoc
from repro.sim.platform import Platform
from repro.vfi.islands import DVFS_LADDER, NOMINAL


class TestNvfiMesh:
    def test_basics(self, nvfi_platform):
        assert nvfi_platform.num_cores == 64
        assert nvfi_platform.fmax_hz == NOMINAL.frequency_hz
        assert all(p == NOMINAL for p in nvfi_platform.vf_points)

    def test_identity_mapping(self, nvfi_platform):
        for worker in range(64):
            assert nvfi_platform.node_of_worker(worker) == worker

    def test_worker_frequencies(self, nvfi_platform):
        freqs = nvfi_platform.worker_frequencies()
        assert len(freqs) == 64
        assert set(freqs) == {NOMINAL.frequency_hz}

    def test_bulk_routing_defaults_to_latency_routing(self, nvfi_platform):
        # mesh has no wireless: bulk == latency routing
        assert nvfi_platform.network.bulk_routing is nvfi_platform.routing


class TestValidation:
    def test_vf_count_checked(self, nvfi_platform):
        with pytest.raises(ValueError):
            Platform(
                name="bad",
                layout=nvfi_platform.layout,
                vf_points=[NOMINAL] * 3,
                topology=nvfi_platform.topology,
                routing=nvfi_platform.routing,
            )

    def test_with_vf(self, nvfi_platform):
        low = [DVFS_LADDER[0]] * 4
        platform = nvfi_platform.with_vf(low, name="slow")
        assert platform.name == "slow"
        assert platform.fmax_hz == DVFS_LADDER[0].frequency_hz
        # original untouched
        assert nvfi_platform.fmax_hz == NOMINAL.frequency_hz


class TestWinocPlatform:
    def test_bulk_routing_avoids_wireless(self):
        import numpy as np

        from repro.core.design_flow import design_vfi

        rng = np.random.default_rng(0)
        traffic = rng.random((64, 64))
        np.fill_diagonal(traffic, 0.0)
        utilization = rng.uniform(0.3, 0.8, 64)
        design = design_vfi(utilization, traffic, seed=1)
        platform = build_vfi_winoc(design, seed=5)
        from repro.noc.topology import LinkKind

        network = platform.network
        for src, dst in [(0, 63), (7, 56), (20, 44)]:
            links, _ = network._path(src, dst, bulk=True)
            assert all(link.kind is LinkKind.WIRE for link in links)
