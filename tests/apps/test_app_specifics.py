"""App-specific semantics beyond the generic functional checks."""

import numpy as np
import pytest

from repro.apps.histogram import NUM_BINS, HistogramApp, HistogramJob
from repro.apps.kmeans import (
    CONVERGENCE_TOL,
    CentroidCombiner,
    KmeansApp,
)
from repro.apps.linear_regression import (
    LinearRegressionApp,
    StatsCombiner,
    fit_from_stats,
)
from repro.apps.matrix_multiply import MatrixMultiplyApp, RowCombiner
from repro.apps.pca import PcaApp, ValueCombiner
from repro.apps.wordcount import WordCountApp
from repro.mapreduce.runtime import run_job

SCALE = 0.3
SEED = 17


class TestWordCount:
    def test_verify_catches_wrong_counts(self):
        app = WordCountApp(scale=SCALE, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        word = next(iter(result))
        result[word] += 1
        with pytest.raises(AssertionError):
            app.verify_result(result)

    def test_map_returns_miss_weight(self):
        app = WordCountApp(scale=SCALE, seed=SEED)
        job = app.make_job()
        chunk = job.split(100)[0]
        emitted = []
        work, weight = job.map(chunk, lambda k, v: emitted.append(k))
        assert work > 0 and weight > 0
        assert len(emitted) == len(chunk)


class TestHistogram:
    def test_bins_bounded(self):
        app = HistogramApp(scale=SCALE, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        assert all(0 <= bin_index < NUM_BINS for bin_index in result)

    def test_verify_catches_miscount(self):
        app = HistogramApp(scale=SCALE, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        some_bin = next(iter(result))
        result[some_bin] += 1
        with pytest.raises(AssertionError):
            app.verify_result(result)


class TestKmeans:
    def test_centroid_combiner_merges_sums(self):
        combiner = CentroidCombiner()
        acc = combiner.add(combiner.identity(), (np.array([1.0, 2.0]), 1))
        acc = combiner.add(acc, (np.array([3.0, 4.0]), 1))
        assert combiner.finalize(acc) == (2.0, 3.0)

    def test_empty_accumulator_rejected(self):
        combiner = CentroidCombiner()
        with pytest.raises(ValueError):
            combiner.finalize(combiner.identity())

    def test_some_clusters_converge_after_first_iteration(self):
        app = KmeansApp(scale=0.5, seed=SEED)
        job = app.make_job()
        run_job(job, 64)
        history = job.centroid_history
        movement = np.linalg.norm(history[1] - history[0], axis=1)
        converged = (movement < CONVERGENCE_TOL).sum()
        assert 0 < converged < app.NUM_CLUSTERS  # partial convergence

    def test_miss_weight_varies_in_second_iteration(self):
        app = KmeansApp(scale=0.5, seed=SEED)
        trace = app.run(num_workers=64)
        tasks = trace.iterations[1].map_phase.tasks
        mpki = np.array(
            [t.cost.l2_accesses / (t.cost.instructions / 1000) for t in tasks]
        )
        assert mpki.max() > 2 * mpki.min()


class TestLinearRegression:
    def test_fit_from_stats_closed_form(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 2 * x + 1
        stats = (
            len(x),
            x.sum(),
            y.sum(),
            (x * x).sum(),
            (y * y).sum(),
            (x * y).sum(),
        )
        slope, intercept = fit_from_stats(stats)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_from_stats((3.0, 3.0, 3.0, 3.0, 3.0, 3.0))
        with pytest.raises(ValueError):
            fit_from_stats((1.0, 0, 0, 0, 0, 0))

    def test_stats_combiner_is_elementwise_sum(self):
        combiner = StatsCombiner()
        merged = combiner.merge((1,) * 6, (2,) * 6)
        assert merged == (3,) * 6

    def test_recovers_true_slope(self):
        app = LinearRegressionApp(scale=SCALE, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        slope, intercept = result
        assert slope == pytest.approx(app.TRUE_SLOPE, abs=0.05)
        assert intercept == pytest.approx(app.TRUE_INTERCEPT, abs=0.1)


class TestMatrixMultiply:
    def test_row_combiner_rejects_double_emission(self):
        combiner = RowCombiner()
        acc = combiner.add(combiner.identity(), (1.0, 2.0))
        with pytest.raises(ValueError):
            combiner.add(acc, (3.0, 4.0))

    def test_dimension_multiple_of_64(self):
        app = MatrixMultiplyApp(scale=1.0, seed=SEED)
        assert app.dimension % 64 == 0

    def test_product_correct(self):
        app = MatrixMultiplyApp(scale=0.5, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        app.verify_result(result)


class TestPca:
    def test_value_combiner_single_emission(self):
        combiner = ValueCombiner()
        acc = combiner.add(combiner.identity(), 3.5)
        assert combiner.finalize(acc) == 3.5
        with pytest.raises(ValueError):
            combiner.add(acc, 4.0)

    def test_covariance_symmetric(self):
        app = PcaApp(scale=0.5, seed=SEED)
        result, _ = run_job(app.make_job(), 16)
        assert np.allclose(result, result.T)

    def test_row_means_computed_in_first_iteration(self):
        app = PcaApp(scale=0.5, seed=SEED)
        job = app.make_job()
        run_job(job, 16)
        assert len(job.row_means) == app.dimension
