"""Every benchmark app computes the right answer (verified against plain
numpy references) and produces a calibrated trace with the declared
structure."""

import numpy as np
import pytest

from repro.apps import APP_NAMES, create_app
from repro.apps.calibration import idealized_phase_walls
from repro.mapreduce.tasks import Phase

SCALE = 0.35  # keep functional runs quick


@pytest.fixture(scope="module")
def runs():
    out = {}
    for name in APP_NAMES:
        app = create_app(name, scale=SCALE, seed=11)
        out[name] = (app, app.run(num_workers=64))
    return out


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_runs_and_verifies(runs, name):
    # app.run() calls verify_result internally; arriving here means the
    # functional answer matched the reference implementation.
    app, trace = runs[name]
    assert trace.num_workers == 64
    assert trace.total_instructions() > 0


@pytest.mark.parametrize("name", APP_NAMES)
def test_iteration_count_matches_profile(runs, name):
    app, trace = runs[name]
    assert trace.num_iterations == app.profile.iterations


@pytest.mark.parametrize("name", APP_NAMES)
def test_merge_presence_matches_profile(runs, name):
    app, trace = runs[name]
    has_merge = any(it.merge_stages for it in trace.iterations)
    assert has_merge == app.profile.has_merge


@pytest.mark.parametrize("name", APP_NAMES)
def test_calibrated_shares_match_profile(runs, name):
    app, trace = runs[name]
    walls = idealized_phase_walls(trace)
    total = sum(walls.values())
    targets = app.profile.wall_shares.normalized()
    for phase in (Phase.LIB_INIT, Phase.MAP, Phase.REDUCE, Phase.MERGE):
        assert walls[phase] / total == pytest.approx(targets[phase], abs=1e-6)


@pytest.mark.parametrize("name", APP_NAMES)
def test_trace_deterministic(name):
    app1 = create_app(name, scale=SCALE, seed=11)
    app2 = create_app(name, scale=SCALE, seed=11)
    t1 = app1.run(num_workers=64)
    t2 = app2.run(num_workers=64)
    assert t1.total_instructions() == pytest.approx(t2.total_instructions())
    assert np.allclose(t1.worker_flow_matrix(), t2.worker_flow_matrix())


def test_wordcount_creates_100_map_tasks():
    # Paper Sec. 4.3: the scheduler creates 100 map tasks for the 100 MB
    # Word Count input on 64 cores.
    app = create_app("wordcount", scale=SCALE, seed=11)
    trace = app.run(num_workers=64)
    assert trace.map_task_count() == 100


def test_kmeans_second_iteration_heterogeneous():
    app = create_app("kmeans", scale=0.5, seed=11)
    trace = app.run(num_workers=64)
    first, second = trace.iterations
    instr1 = np.array([t.cost.instructions for t in first.map_phase.tasks])
    instr2 = np.array([t.cost.instructions for t in second.map_phase.tasks])
    cv1 = instr1.std() / instr1.mean()
    cv2 = instr2.std() / instr2.mean()
    assert cv2 > 3 * cv1  # convergence makes iteration 2 highly imbalanced


def test_linear_regression_single_key():
    app = create_app("linear_regression", scale=SCALE, seed=11)
    trace = app.run(num_workers=64)
    reduce_tasks = [
        t for t in trace.iterations[0].reduce_phase.tasks if t.cost.kv_bytes_out > 0
    ]
    assert len(reduce_tasks) == 1  # one global key


def test_pca_iteration_roles():
    app = create_app("pca", scale=0.5, seed=11)
    job = app.make_job()
    job.begin_iteration(0)
    rows = job.split(16)
    assert all(kind == "rows" for kind, _, _ in rows)
    job.row_means = {i: 0.0 for i in range(app.dimension)}
    job.begin_iteration(1)
    pairs = job.split(16)
    assert all(kind == "pairs" for kind, _, _ in pairs)


def test_scale_validation():
    with pytest.raises(ValueError):
        create_app("wordcount", scale=0.0)
    with pytest.raises(ValueError):
        create_app("wordcount", scale=1.5)
