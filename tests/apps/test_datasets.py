"""Synthetic dataset generators: determinism and statistical shape."""

import numpy as np
import pytest

from repro.apps import datasets


class TestZipfText:
    def test_deterministic(self):
        a = datasets.zipf_text(500, seed=1)
        b = datasets.zipf_text(500, seed=1)
        assert a == b

    def test_length(self):
        assert len(datasets.zipf_text(1234, seed=0)) == 1234

    def test_zipf_skew(self):
        words = datasets.zipf_text(20_000, vocabulary_size=1000, seed=2)
        counts = {}
        for w in words:
            counts[w] = counts.get(w, 0) + 1
        top = max(counts.values())
        assert top > len(words) * 0.05  # hot head
        assert len(counts) > 100  # long tail

    def test_segments_vary_entropy(self):
        words = datasets.zipf_text(40_000, num_segments=20, seed=3)
        # unique-word ratio per block should vary notably across blocks
        block = 2000
        ratios = [
            len(set(words[i : i + block])) / block
            for i in range(0, len(words) - block, block)
        ]
        assert max(ratios) > 2 * min(ratios)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            datasets.zipf_text(10, zipf_exponent=1.0)


class TestPixelImage:
    def test_dtype_and_range(self):
        pixels = datasets.pixel_image(5000, seed=1)
        assert pixels.dtype == np.uint8
        assert pixels.min() >= 0 and pixels.max() <= 255

    def test_deterministic(self):
        assert np.array_equal(
            datasets.pixel_image(100, seed=5), datasets.pixel_image(100, seed=5)
        )

    def test_multimodal(self):
        pixels = datasets.pixel_image(50_000, num_modes=3, seed=2)
        hist = np.bincount(pixels, minlength=256)
        assert (hist > 0).sum() > 64  # spread over many intensities


class TestClusteredPoints:
    def test_shapes(self):
        points, labels = datasets.clustered_points(300, 8, 5, seed=1)
        assert points.shape == (300, 8)
        assert labels.shape == (300,)
        assert set(np.unique(labels)) == set(range(5))

    def test_contiguous_by_cluster(self):
        _, labels = datasets.clustered_points(200, 4, 6, seed=2)
        # labels must be non-decreasing (contiguous blocks)
        assert (np.diff(labels) >= 0).all()

    def test_unequal_sizes(self):
        _, labels = datasets.clustered_points(1000, 4, 8, seed=3)
        sizes = np.bincount(labels)
        assert sizes.max() > 1.5 * sizes.min()

    def test_exact_total(self):
        points, _ = datasets.clustered_points(997, 3, 7, seed=4)
        assert len(points) == 997


class TestLinearSamples:
    def test_fit_recovers_slope(self):
        samples = datasets.linear_samples(50_000, slope=3.0, intercept=1.0, seed=1)
        x, y = samples[:, 0], samples[:, 1]
        slope = np.polyfit(x, y, 1)[0]
        assert slope == pytest.approx(3.0, abs=0.05)


class TestMatrices:
    def test_dense_matrix_range(self):
        m = datasets.dense_matrix(20, 30, seed=1)
        assert m.shape == (20, 30)
        assert (np.abs(m) <= 1).all()

    def test_correlated_matrix_low_rank_structure(self):
        m = datasets.correlated_matrix(60, 60, rank=4, noise=0.01, seed=2)
        s = np.linalg.svd(m, compute_uv=False)
        assert s[3] > 20 * s[6]  # spectrum drops after the planted rank
