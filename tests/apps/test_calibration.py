"""Phase-share rebalancing."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.calibration import (
    PhaseShares,
    idealized_phase_walls,
    rebalance_trace,
)
from repro.mapreduce.tasks import Phase


@pytest.fixture(scope="module")
def raw_trace():
    app = create_app("wordcount", scale=0.3, seed=5)
    return app.run(num_workers=64, calibrate=False)


class TestPhaseShares:
    def test_normalization(self):
        shares = PhaseShares(lib_init=1, map=2, reduce=1, merge=0)
        normalized = shares.normalized()
        assert normalized[Phase.MAP] == pytest.approx(0.5)
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseShares(lib_init=-0.1, map=1, reduce=0, merge=0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            PhaseShares(lib_init=0, map=0, reduce=0, merge=0)


class TestRebalance:
    def test_target_shares_reached(self, raw_trace):
        target = PhaseShares(lib_init=0.1, map=0.6, reduce=0.2, merge=0.1)
        rebalanced = rebalance_trace(raw_trace, target)
        walls = idealized_phase_walls(rebalanced)
        total = sum(walls.values())
        assert walls[Phase.MAP] / total == pytest.approx(0.6, abs=1e-9)
        assert walls[Phase.LIB_INIT] / total == pytest.approx(0.1, abs=1e-9)

    def test_total_wall_preserved(self, raw_trace):
        target = PhaseShares(lib_init=0.1, map=0.6, reduce=0.2, merge=0.1)
        before = sum(idealized_phase_walls(raw_trace).values())
        after = sum(idealized_phase_walls(rebalance_trace(raw_trace, target)).values())
        assert after == pytest.approx(before)

    def test_within_phase_heterogeneity_preserved(self, raw_trace):
        target = PhaseShares(lib_init=0.1, map=0.6, reduce=0.2, merge=0.1)
        rebalanced = rebalance_trace(raw_trace, target)
        before = np.array(
            [t.cost.instructions for t in raw_trace.iterations[0].map_phase.tasks]
        )
        after = np.array(
            [t.cost.instructions for t in rebalanced.iterations[0].map_phase.tasks]
        )
        assert np.allclose(after / after.sum(), before / before.sum())

    def test_share_for_missing_phase_rejected(self):
        app = create_app("linear_regression", scale=0.3, seed=5)
        trace = app.run(num_workers=64, calibrate=False)  # LR has no merge
        with pytest.raises(ValueError, match="merge"):
            rebalance_trace(
                trace, PhaseShares(lib_init=0.1, map=0.6, reduce=0.2, merge=0.1)
            )

    def test_flow_matrix_scaled_consistently(self, raw_trace):
        target = PhaseShares(lib_init=0.1, map=0.6, reduce=0.2, merge=0.1)
        rebalanced = rebalance_trace(raw_trace, target)
        # kv flow lives in reduce+merge records; rescaling keeps it finite
        # and nonnegative.
        flow = rebalanced.worker_flow_matrix()
        assert (flow >= 0).all() and np.isfinite(flow).all()
