import pytest

from repro.apps import APP_NAMES, create_app, paper_dataset_table
from repro.apps.base import BenchmarkApp


def test_app_names_cover_six_paper_apps():
    assert len(APP_NAMES) == 6
    assert set(APP_NAMES) == {
        "matrix_multiply",
        "kmeans",
        "pca",
        "histogram",
        "wordcount",
        "linear_regression",
    }


@pytest.mark.parametrize("name", APP_NAMES)
def test_create_by_name(name):
    app = create_app(name, scale=0.3)
    assert isinstance(app, BenchmarkApp)
    assert app.profile.name == name


@pytest.mark.parametrize("alias,canonical", [
    ("mm", "matrix_multiply"),
    ("WC", "wordcount"),
    ("hist", "histogram"),
    ("lr", "linear_regression"),
    ("km", "kmeans"),
])
def test_aliases(alias, canonical):
    assert create_app(alias, scale=0.3).profile.name == canonical


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        create_app("sorting")


def test_paper_dataset_table_matches_paper():
    rows = {row["application"]: row for row in paper_dataset_table()}
    assert rows["MM"]["input_dataset"] == "Matrix with dimension 999 x 999"
    assert rows["Kmeans"]["input_dataset"] == "Vectors with dimension of 512"
    assert rows["PCA"]["input_dataset"] == "Matrix with dimension 960 x 960"
    assert rows["HIST"]["input_dataset"] == "Medium (399 MB)"
    assert rows["WC"]["input_dataset"] == "Large (100 MB)"
    assert rows["LR"]["input_dataset"] == "Medium (100 MB)"
    assert rows["Kmeans"]["iterations"] == 2
    assert rows["PCA"]["iterations"] == 2
