"""The beyond-paper String Match application."""

import pytest

from repro.apps import create_app
from repro.apps.string_match import SEARCH_KEYS, StringMatchApp
from repro.mapreduce.runtime import run_job


class TestStringMatch:
    def test_functional_correctness(self):
        app = StringMatchApp(scale=0.3, seed=5)
        trace = app.run(num_workers=32)  # run() verifies internally
        assert trace.app_name == "string_match"

    def test_counts_match_brute_force(self):
        app = StringMatchApp(scale=0.3, seed=5)
        result, _ = run_job(app.make_job(), 16)
        for index, key in enumerate(SEARCH_KEYS):
            assert result[index] == app._words.count(key)

    def test_reachable_via_registry_and_alias(self):
        assert create_app("string_match", scale=0.3).profile.label == "SM"
        assert create_app("sm", scale=0.3).profile.label == "SM"

    def test_not_in_paper_canon(self):
        from repro.apps import APP_NAMES

        assert "string_match" not in APP_NAMES

    def test_runs_through_full_pipeline(self):
        from repro.core.experiment import run_app_study

        study = run_app_study("string_match", scale=0.3, seed=9, num_workers=16)
        assert study.normalized_edp("vfi2_winoc") > 0
