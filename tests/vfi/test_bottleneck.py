"""Bottleneck detection heuristics."""

import numpy as np
import pytest

from repro.vfi.bottleneck import BottleneckReport, detect_bottlenecks, needs_reassignment


def homogeneous_with_master(n=64, body=0.55, master=0.75):
    u = np.full(n, body)
    u += np.linspace(-0.005, 0.005, n)  # tiny measurement noise
    u[0] = master
    return u


class TestDetect:
    def test_single_master_detected(self):
        report = detect_bottlenecks(homogeneous_with_master())
        assert report.bottleneck_workers == [0]
        assert report.ratio > 1.2
        assert report.body_cv < 0.05

    def test_flat_profile_has_no_bottleneck(self):
        report = detect_bottlenecks(np.full(64, 0.6))
        assert not report.has_bottleneck
        assert report.ratio >= 1.0

    def test_wide_hot_cohort_not_a_bottleneck(self):
        # A third of the cores hot: heterogeneity, not isolated outliers.
        u = np.full(64, 0.3)
        u[:24] = 0.7
        report = detect_bottlenecks(u)
        assert not report.has_bottleneck

    def test_candidates_sorted_by_utilization(self):
        u = np.full(64, 0.5)
        u[10] = 0.9
        u[20] = 0.8
        report = detect_bottlenecks(u)
        assert report.bottleneck_workers[:2] == [10, 20]

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            detect_bottlenecks(np.array([0.5, 1.2]))
        with pytest.raises(ValueError):
            detect_bottlenecks(np.array([]))

    def test_ratio_property_zero_mean(self):
        report = BottleneckReport([], 0.0, 0.0, 0.0)
        assert report.ratio == 0.0


class TestNeedsReassignment:
    def test_homogeneous_with_master_triggers(self):
        report = detect_bottlenecks(homogeneous_with_master())
        assert needs_reassignment(report)

    def test_heterogeneous_body_blocks(self):
        rng = np.random.default_rng(0)
        u = np.clip(rng.uniform(0.1, 0.6, 64), 0, 1)
        u[0] = 0.95
        report = detect_bottlenecks(u)
        if report.has_bottleneck:
            assert not needs_reassignment(report)

    def test_weak_bottleneck_blocks(self):
        u = homogeneous_with_master(master=0.58)
        report = detect_bottlenecks(u)
        assert not needs_reassignment(report)

    def test_threshold_validation(self):
        report = detect_bottlenecks(homogeneous_with_master())
        with pytest.raises(ValueError):
            needs_reassignment(report, homogeneity_cv=0)
