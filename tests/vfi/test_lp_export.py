"""LP export of the Eq. (1) program."""

import numpy as np
import pytest

from repro.vfi.clustering import ClusteringProblem, export_lp


@pytest.fixture
def problem():
    rng = np.random.default_rng(1)
    traffic = rng.random((4, 4))
    np.fill_diagonal(traffic, 0.0)
    return ClusteringProblem(traffic, rng.random(4), 2)


class TestExportLp:
    def test_sections_present(self, problem):
        text = export_lp(problem)
        for section in ("Minimize", "Subject To", "Binary", "End"):
            assert section in text

    def test_one_assignment_constraint_per_core(self, problem):
        text = export_lp(problem)
        assert sum(1 for line in text.splitlines() if line.startswith(" assign_")) == 4

    def test_one_size_constraint_per_cluster(self, problem):
        text = export_lp(problem)
        size_lines = [line for line in text.splitlines() if line.startswith(" size_")]
        assert len(size_lines) == 2
        assert all(line.endswith("= 2") for line in size_lines)

    def test_all_binaries_declared(self, problem):
        text = export_lp(problem)
        binary_block = text.split("Binary")[1]
        for i in range(4):
            for j in range(2):
                assert f"x_{i}_{j}" in binary_block

    def test_quadratic_terms_present(self, problem):
        text = export_lp(problem)
        assert "] / 2" in text
        assert "*" in text
