"""V/F assignment and the VFI-2 reassignment."""

import numpy as np
import pytest

from repro.vfi.bottleneck import BottleneckReport
from repro.vfi.islands import DVFS_LADDER, NOMINAL
from repro.vfi.vf_assign import (
    VfAssignment,
    assign_vf,
    island_utilizations,
    reassign_for_bottlenecks,
    vf_table_row,
)

ASSIGNMENT = np.repeat([0, 1, 2, 3], 16)


def profile(island_means):
    return np.repeat(island_means, 16).astype(float)


class TestIslandUtilizations:
    def test_means(self):
        utilization = profile([0.8, 0.6, 0.4, 0.2])
        means = island_utilizations(utilization, ASSIGNMENT, 4)
        assert np.allclose(means, [0.8, 0.6, 0.4, 0.2])

    def test_empty_island_rejected(self):
        with pytest.raises(ValueError):
            island_utilizations(np.ones(4), [0, 0, 1, 1], 3)


class TestAssignVf:
    def test_hot_island_keeps_nominal(self):
        vf = assign_vf(profile([0.85, 0.8, 0.78, 0.8]), ASSIGNMENT, 4)
        assert vf.points[0] == NOMINAL

    def test_monotone_in_utilization(self):
        vf = assign_vf(profile([0.8, 0.5, 0.3, 0.15]), ASSIGNMENT, 4)
        freqs = vf.frequencies_hz()
        assert freqs == sorted(freqs, reverse=True)

    def test_kmeans_like_spread(self):
        # Strongly heterogeneous profile spreads down the ladder.
        vf = assign_vf(profile([0.45, 0.3, 0.18, 0.12]), ASSIGNMENT, 4)
        volts = vf.voltages_v()
        assert max(volts) >= 0.8
        assert min(volts) <= 0.7

    def test_homogeneous_lands_uniform(self):
        vf = assign_vf(profile([0.58, 0.57, 0.57, 0.56]), ASSIGNMENT, 4)
        assert len(set(vf.labels())) == 1

    def test_points_on_ladder(self):
        vf = assign_vf(profile([0.7, 0.5, 0.33, 0.2]), ASSIGNMENT, 4)
        for point in vf.points:
            assert point in DVFS_LADDER

    def test_u_full_validation(self):
        with pytest.raises(ValueError):
            assign_vf(profile([0.5] * 4), ASSIGNMENT, 4, u_full=1.5)


class TestReassignment:
    def make_initial(self):
        return assign_vf(profile([0.58, 0.57, 0.57, 0.56]), ASSIGNMENT, 4)

    def test_bumps_bottleneck_island_one_step(self):
        initial = self.make_initial()
        utilization = profile([0.58, 0.57, 0.57, 0.56])
        utilization[0] = 0.95  # master core in island 0
        final = reassign_for_bottlenecks(initial, utilization, ASSIGNMENT)
        assert final.reassigned_islands == (0,)
        idx0 = DVFS_LADDER.index(initial.points[0])
        assert final.points[0] == DVFS_LADDER[idx0 + 1]
        # other islands untouched
        assert final.points[1:] == initial.points[1:]

    def test_no_bottleneck_no_change(self):
        initial = self.make_initial()
        utilization = profile([0.58, 0.57, 0.57, 0.56])
        final = reassign_for_bottlenecks(initial, utilization, ASSIGNMENT)
        assert final is initial

    def test_heterogeneous_profile_skipped(self):
        initial = assign_vf(profile([0.8, 0.55, 0.3, 0.15]), ASSIGNMENT, 4)
        utilization = np.linspace(0.95, 0.05, 64)  # smooth continuum
        final = reassign_for_bottlenecks(initial, utilization, np.argsort(np.argsort(-utilization)) // 16)
        assert final.reassigned_islands == ()

    def test_explicit_report(self):
        initial = self.make_initial()
        report = BottleneckReport(
            bottleneck_workers=[5],
            average_utilization=0.5,
            bottleneck_utilization=0.9,
            body_cv=0.05,
        )
        final = reassign_for_bottlenecks(
            initial, profile([0.58, 0.57, 0.57, 0.56]), ASSIGNMENT, report
        )
        assert final.reassigned_islands == (0,)  # worker 5 is in island 0

    def test_nominal_island_cannot_rise(self):
        initial = VfAssignment(
            points=(NOMINAL, NOMINAL, NOMINAL, NOMINAL),
            island_utilization=(0.9, 0.9, 0.9, 0.9),
        )
        report = BottleneckReport([0], 0.8, 0.99, 0.02)
        final = reassign_for_bottlenecks(
            initial, profile([0.9] * 4), ASSIGNMENT, report
        )
        assert final is initial


def test_vf_table_row():
    vf1 = assign_vf(profile([0.58, 0.57, 0.57, 0.56]), ASSIGNMENT, 4)
    u = profile([0.58, 0.57, 0.57, 0.56])
    u[0] = 0.95
    vf2 = reassign_for_bottlenecks(vf1, u, ASSIGNMENT)
    row = vf_table_row("PCA", vf1, vf2)
    assert row["application"] == "PCA"
    assert len(row["vfi1"]) == 4
    assert row["reassigned"] == [0]
