"""DVFS ladder and physical island layout."""

import pytest

from repro.noc.topology import GridGeometry
from repro.vfi.islands import (
    DVFS_LADDER,
    NOMINAL,
    VfPoint,
    cluster_frequency_vector,
    ladder_step_up,
    nearest_ladder_point,
    quadrant_clusters,
    uniform_vf,
)


class TestLadder:
    def test_ladder_matches_paper_points(self):
        labels = [p.label for p in DVFS_LADDER]
        assert "0.6V/1.5GHz" in labels
        assert "0.8V/2GHz" in labels
        assert "0.9V/2.25GHz" in labels
        assert "1.0V/2.5GHz" in labels

    def test_sorted_ascending(self):
        freqs = [p.frequency_hz for p in DVFS_LADDER]
        assert freqs == sorted(freqs)

    def test_nominal_is_top(self):
        assert NOMINAL == DVFS_LADDER[-1]

    def test_nearest(self):
        assert nearest_ladder_point(2.4e9) == NOMINAL
        assert nearest_ladder_point(2.1e9).label == "0.8V/2GHz"

    def test_step_up_saturates(self):
        assert ladder_step_up(NOMINAL) == NOMINAL
        assert ladder_step_up(DVFS_LADDER[0]).label == "0.7V/1.75GHz"
        assert ladder_step_up(DVFS_LADDER[0], steps=10) == NOMINAL

    def test_step_up_rejects_off_ladder(self):
        with pytest.raises(ValueError):
            ladder_step_up(VfPoint(3.0e9, 1.1))

    def test_vfpoint_validation(self):
        with pytest.raises(ValueError):
            VfPoint(-1.0, 1.0)


class TestQuadrantLayout:
    def test_four_equal_islands(self, layout):
        members = layout.members()
        assert sorted(members) == [0, 1, 2, 3]
        assert all(len(nodes) == 16 for nodes in members.values())

    def test_contiguous_blocks(self, layout):
        geo = layout.geometry
        for cid, nodes in layout.members().items():
            cols = [geo.coordinates(n)[0] for n in nodes]
            rows = [geo.coordinates(n)[1] for n in nodes]
            assert max(cols) - min(cols) == 3
            assert max(rows) - min(rows) == 3

    def test_row_major_ids(self, layout):
        assert layout.cluster_of(0) == 0
        assert layout.cluster_of(7) == 1
        assert layout.cluster_of(56) == 2
        assert layout.cluster_of(63) == 3

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            quadrant_clusters(GridGeometry(7, 8))

    def test_uniform_vf(self, layout):
        points = uniform_vf(layout)
        assert len(points) == 4
        assert all(p == NOMINAL for p in points)

    def test_cluster_frequency_vector(self, layout):
        points = [DVFS_LADDER[4], DVFS_LADDER[3], DVFS_LADDER[2], DVFS_LADDER[0]]
        freqs = cluster_frequency_vector(layout, points)
        assert freqs[0] == 2.5e9
        assert freqs[63] == 1.5e9
        with pytest.raises(ValueError):
            cluster_frequency_vector(layout, points[:2])
