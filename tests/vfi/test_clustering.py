"""Eq. (1) clustering: objective, exact solver, annealing."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfi.clustering import (
    ClusteringProblem,
    cluster_cost,
    solve,
    solve_branch_and_bound,
    solve_simulated_annealing,
    utilization_sorted_assignment,
)


def random_problem(n, m, seed):
    rng = np.random.default_rng(seed)
    traffic = rng.random((n, n))
    np.fill_diagonal(traffic, 0.0)
    utilization = rng.random(n)
    return ClusteringProblem(traffic, utilization, m)


def brute_force(problem):
    """Exhaustive minimum over all equal-size assignments."""
    n, m, size = problem.num_cores, problem.num_clusters, problem.cluster_size
    best_cost, best = np.inf, None
    for perm in itertools.permutations(range(n)):
        # canonical form to cut duplicates: require each cluster's members
        # sorted and clusters ordered by first member
        assignment = [0] * n
        for rank, core in enumerate(perm):
            assignment[core] = rank // size
        cost = cluster_cost(problem, assignment)
        if cost < best_cost:
            best_cost, best = cost, assignment
    return best_cost


class TestProblem:
    def test_normalizes_inputs(self):
        problem = random_problem(8, 2, 0)
        assert problem.traffic.max() == pytest.approx(1.0)
        assert problem.utilization.max() == pytest.approx(1.0)

    def test_quantile_targets_descending(self):
        problem = random_problem(8, 2, 0)
        targets = problem.cluster_target_util
        assert (np.diff(targets) <= 1e-12).all()

    def test_phi(self):
        problem = random_problem(8, 4, 0)
        assert problem.phi(0, 0) == pytest.approx(0.5)  # 1/sqrt(4)
        assert problem.phi(0, 1) == 1.0

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            random_problem(7, 2, 0)

    def test_rejects_negative_traffic(self):
        with pytest.raises(ValueError):
            ClusteringProblem(-np.ones((4, 4)), np.ones(4), 2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ClusteringProblem(np.ones((4, 4)), np.ones(6), 2)


class TestCost:
    def test_rejects_uneven_assignment(self):
        problem = random_problem(4, 2, 1)
        with pytest.raises(ValueError):
            cluster_cost(problem, [0, 0, 0, 1])

    def test_intra_cheaper_than_inter(self):
        # Two chatty pairs: co-locating them must cost less.
        traffic = np.zeros((4, 4))
        traffic[0, 1] = traffic[2, 3] = 1.0
        problem = ClusteringProblem(traffic, np.full(4, 0.5), 2, util_weight=0.0)
        together = cluster_cost(problem, [0, 0, 1, 1])
        apart = cluster_cost(problem, [0, 1, 0, 1])
        assert together < apart

    def test_utilization_grouping_preferred(self):
        utilization = np.array([0.9, 0.9, 0.1, 0.1])
        problem = ClusteringProblem(np.zeros((4, 4)), utilization, 2, comm_weight=0.0)
        grouped = cluster_cost(problem, utilization_sorted_assignment(problem))
        mixed = cluster_cost(problem, [0, 1, 0, 1])
        assert grouped < mixed


class TestExactSolver:
    def test_matches_brute_force_small(self):
        problem = random_problem(6, 2, 3)
        result = solve_branch_and_bound(problem)
        assert result.cost == pytest.approx(brute_force(problem))

    def test_matches_brute_force_three_clusters(self):
        problem = random_problem(6, 3, 4)
        result = solve_branch_and_bound(problem)
        assert result.cost == pytest.approx(brute_force(problem))

    def test_equal_sizes(self):
        problem = random_problem(12, 4, 5)
        result = solve_branch_and_bound(problem)
        counts = np.bincount(result.assignment, minlength=4)
        assert (counts == 3).all()

    def test_refuses_large_instances(self):
        problem = random_problem(64, 4, 6)
        with pytest.raises(ValueError):
            solve_branch_and_bound(problem)


class TestAnnealing:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reaches_exact_optimum_on_small_instances(self, seed):
        problem = random_problem(8, 2, seed)
        exact = solve_branch_and_bound(problem)
        annealed = solve_simulated_annealing(problem, iterations=4000, seed=seed)
        assert annealed.cost == pytest.approx(exact.cost, rel=1e-9)

    def test_never_worse_than_seed(self):
        problem = random_problem(64, 4, 7)
        seed_cost = cluster_cost(problem, utilization_sorted_assignment(problem))
        result = solve_simulated_annealing(problem, seed=7)
        assert result.cost <= seed_cost + 1e-12

    def test_deterministic(self):
        problem = random_problem(16, 4, 8)
        a = solve_simulated_annealing(problem, iterations=500, seed=3)
        b = solve_simulated_annealing(problem, iterations=500, seed=3)
        assert a.assignment == b.assignment

    def test_equal_size_invariant(self):
        problem = random_problem(64, 4, 9)
        result = solve_simulated_annealing(problem, iterations=1000, seed=1)
        counts = np.bincount(result.assignment, minlength=4)
        assert (counts == 16).all()


class TestDispatch:
    def test_small_uses_exact(self):
        result = solve(random_problem(8, 2, 10))
        assert result.method == "branch-and-bound"

    def test_large_uses_annealing(self):
        result = solve(random_problem(64, 4, 11), seed=0)
        assert result.method == "simulated-annealing"


class TestSeedAssignment:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_seed_is_quantile_optimal_for_util_only(self, seed):
        """The utilization-sorted seed minimizes the utilization term."""
        rng = np.random.default_rng(seed)
        problem = ClusteringProblem(
            np.zeros((8, 8)), rng.random(8), 2, comm_weight=0.0
        )
        seed_cost = cluster_cost(problem, utilization_sorted_assignment(problem))
        exact = solve_branch_and_bound(problem)
        assert seed_cost == pytest.approx(exact.cost, rel=1e-9)
