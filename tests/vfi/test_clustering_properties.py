"""Property-based invariants of the Eq. (1) objective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfi.clustering import ClusteringProblem, cluster_cost


def make_problem(seed, n=8, m=2, comm=1.0, util=1.0):
    rng = np.random.default_rng(seed)
    traffic = rng.random((n, n))
    np.fill_diagonal(traffic, 0.0)
    return ClusteringProblem(traffic, rng.random(n), m, comm, util)


def swap_islands(assignment, a, b):
    return [b if c == a else a if c == b else c for c in assignment]


class TestCommTermInvariance:
    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_comm_cost_invariant_under_island_relabeling(self, seed):
        """phi(j, q) only distinguishes intra vs inter, so the pure
        communication term cannot depend on island labels."""
        problem = make_problem(seed, util=0.0)
        assignment = [0, 0, 0, 0, 1, 1, 1, 1]
        relabeled = swap_islands(assignment, 0, 1)
        assert cluster_cost(problem, assignment) == pytest.approx(
            cluster_cost(problem, relabeled)
        )

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_util_term_depends_on_island_identity(self, seed):
        """ubar[j] comes from the j-th utilization quantile, so island
        labels matter for the utilization term (unless by coincidence)."""
        problem = make_problem(seed, comm=0.0)
        sorted_best = [0] * 4 + [1] * 4  # not utilization-sorted in general
        cost_a = cluster_cost(problem, sorted_best)
        cost_b = cluster_cost(problem, swap_islands(sorted_best, 0, 1))
        # they differ whenever the two quantile targets differ
        targets = problem.cluster_target_util
        if abs(targets[0] - targets[1]) > 1e-9:
            assert cost_a != pytest.approx(cost_b)


class TestCostScaling:
    @given(st.integers(0, 50), st.floats(0.1, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_weights_scale_linearly(self, seed, factor):
        base = make_problem(seed)
        scaled = make_problem(seed, comm=factor, util=factor)
        assignment = [0, 1] * 4
        assert cluster_cost(scaled, assignment) == pytest.approx(
            factor * cluster_cost(base, assignment)
        )

    @given(st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_cost_nonnegative(self, seed):
        problem = make_problem(seed)
        assignment = [0, 0, 1, 1, 0, 1, 0, 1]
        assert cluster_cost(problem, assignment) >= 0.0
