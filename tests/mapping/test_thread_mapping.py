"""Thread-to-core mapping strategies."""

import numpy as np
import pytest

from repro.mapping.thread_mapping import (
    ThreadMapping,
    communication_aware_mapping,
    identity_mapping,
    mapping_cost,
    wireless_centric_mapping,
    _grid_distance_matrix,
    _initial_cluster_mapping,
)
from repro.noc.topology import GridGeometry
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
LAYOUT = quadrant_clusters(GEO)
WORKER_CLUSTERS = np.repeat([0, 1, 2, 3], 16)
WI_NODES = [9, 10, 17, 13, 14, 21, 41, 42, 49, 45, 46, 53]


def random_traffic(seed=0):
    rng = np.random.default_rng(seed)
    traffic = rng.random((64, 64)) ** 2
    np.fill_diagonal(traffic, 0.0)
    return traffic


class TestThreadMapping:
    def test_identity(self):
        mapping = identity_mapping(8)
        assert mapping.worker_to_node == tuple(range(8))
        assert mapping.node_of(3) == 3

    def test_bijection_enforced(self):
        with pytest.raises(ValueError):
            ThreadMapping((0, 0, 1))

    def test_node_to_worker(self):
        mapping = ThreadMapping((2, 0, 1))
        assert mapping.node_to_worker() == {2: 0, 0: 1, 1: 2}

    def test_map_traffic_permutes(self):
        mapping = ThreadMapping((1, 0))
        traffic = np.array([[0.0, 5.0], [3.0, 0.0]])
        node_traffic = mapping.map_traffic(traffic)
        assert node_traffic[1, 0] == 5.0
        assert node_traffic[0, 1] == 3.0

    def test_map_traffic_preserves_total(self):
        traffic = random_traffic()
        mapping = communication_aware_mapping(
            WORKER_CLUSTERS, LAYOUT, traffic, iterations=50, seed=0
        )
        assert mapping.map_traffic(traffic).sum() == pytest.approx(traffic.sum())


class TestClusterConstraint:
    @pytest.mark.parametrize("strategy", ["comm", "wireless"])
    def test_workers_land_on_their_island(self, strategy):
        traffic = random_traffic()
        if strategy == "comm":
            mapping = communication_aware_mapping(
                WORKER_CLUSTERS, LAYOUT, traffic, iterations=100, seed=1
            )
        else:
            mapping = wireless_centric_mapping(
                WORKER_CLUSTERS, LAYOUT, traffic, WI_NODES, seed=1
            )
        for worker, node in enumerate(mapping.worker_to_node):
            assert LAYOUT.cluster_of(node) == WORKER_CLUSTERS[worker]

    def test_oversubscribed_cluster_rejected(self):
        bad_clusters = [0] * 20 + [1] * 44
        with pytest.raises(ValueError):
            _initial_cluster_mapping(bad_clusters, LAYOUT)


class TestCommunicationAware:
    def test_improves_on_naive_placement(self):
        traffic = random_traffic(3)
        distance = _grid_distance_matrix(GEO)
        naive = _initial_cluster_mapping(WORKER_CLUSTERS, LAYOUT)
        optimized = communication_aware_mapping(
            WORKER_CLUSTERS, LAYOUT, traffic, iterations=1500, seed=3
        )
        assert mapping_cost(optimized.worker_to_node, traffic, distance) <= mapping_cost(
            naive, traffic, distance
        )

    def test_deterministic(self):
        traffic = random_traffic(4)
        a = communication_aware_mapping(WORKER_CLUSTERS, LAYOUT, traffic, 100, seed=9)
        b = communication_aware_mapping(WORKER_CLUSTERS, LAYOUT, traffic, 100, seed=9)
        assert a.worker_to_node == b.worker_to_node


class TestWirelessCentric:
    def test_heavy_communicators_near_wis(self):
        traffic = np.zeros((64, 64))
        # worker 5 talks heavily across islands
        traffic[5, 20] = traffic[20, 5] = 100.0
        mapping = wireless_centric_mapping(
            WORKER_CLUSTERS, LAYOUT, traffic, WI_NODES, seed=0
        )
        node5 = mapping.node_of(5)
        island_wis = [n for n in WI_NODES if LAYOUT.cluster_of(n) == 0]
        dist5 = min(GEO.manhattan_hops(node5, wi) for wi in island_wis)
        # a silent worker in the same island
        node_quiet = mapping.node_of(12)
        dist_quiet = min(GEO.manhattan_hops(node_quiet, wi) for wi in island_wis)
        assert dist5 <= dist_quiet

    def test_requires_wi_nodes(self):
        with pytest.raises(ValueError):
            wireless_centric_mapping(WORKER_CLUSTERS, LAYOUT, random_traffic(), [])

    def test_traffic_shape_checked(self):
        with pytest.raises(ValueError):
            wireless_centric_mapping(
                WORKER_CLUSTERS, LAYOUT, np.ones((4, 4)), WI_NODES
            )
