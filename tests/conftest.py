"""Shared fixtures: small, fast instances of the heavyweight objects."""

import pytest

from repro.core.platforms import build_nvfi_mesh
from repro.noc.topology import GridGeometry, build_mesh
from repro.vfi.islands import quadrant_clusters


@pytest.fixture(scope="session")
def geometry():
    return GridGeometry(8, 8)


@pytest.fixture(scope="session")
def small_geometry():
    return GridGeometry(4, 4)


@pytest.fixture(scope="session")
def mesh(geometry):
    return build_mesh(geometry)


@pytest.fixture(scope="session")
def layout(geometry):
    return quadrant_clusters(geometry)


@pytest.fixture(scope="session")
def quadrants(layout):
    return list(layout.node_cluster)


@pytest.fixture()
def nvfi_platform():
    return build_nvfi_mesh()
