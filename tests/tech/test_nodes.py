"""Technology-node tables and DVFS-ladder derivation."""

import pytest

from repro.tech.nodes import (
    BASE_DYNAMIC_W,
    BASE_FREQ_GHZ,
    BASE_LEAKAGE_W,
    BASE_VDD_V,
    NODES,
    PAPER_NODE_NM,
    VARIANTS,
    TechNode,
    dvfs_ladder,
    get_node,
    node_names,
    nominal_point,
    paper_node,
)
from repro.utils.units import GHZ
from repro.vfi.islands import DVFS_LADDER, NOMINAL


class TestTables:
    def test_every_variant_has_every_node(self):
        names = node_names()
        assert names == ["90nm", "65nm", "45nm", "32nm", "22nm", "16nm"]
        for variant in VARIANTS:
            assert sorted(NODES[variant]) == sorted(
                int(n[:-2]) for n in names
            )

    def test_paper_node_is_the_identity(self):
        for variant in VARIANTS:
            node = get_node(PAPER_NODE_NM, variant)
            assert node.vdd_nominal_v == BASE_VDD_V
            assert node.freq_scale == 1.0
            assert node.dynamic_scale == 1.0
            assert node.leakage_scale == 1.0
            assert node.area_scale == 1.0
            assert node.is_paper_node

    def test_area_halves_per_node(self):
        areas = [get_node(nm).area_scale for nm in (65, 45, 32, 22, 16)]
        for bigger, smaller in zip(areas, areas[1:]):
            assert smaller == pytest.approx(bigger / 2, rel=0.05)

    def test_supply_falls_with_the_node(self):
        for variant in VARIANTS:
            vdds = [get_node(name, variant).vdd_nominal_v for name in node_names()]
            assert vdds == sorted(vdds, reverse=True)

    def test_itrs_clocks_outpace_conservative(self):
        for name in ("45nm", "32nm", "22nm", "16nm"):
            assert (
                get_node(name, "itrs").freq_scale
                > get_node(name, "cons").freq_scale
            )


class TestLookup:
    @pytest.mark.parametrize("key", [65, "65", "65nm", " 65NM "])
    def test_accepts_int_and_string_forms(self, key):
        assert get_node(key) is paper_node()

    def test_unknown_node_lists_choices(self):
        with pytest.raises(ValueError, match="unknown technology node"):
            get_node("14nm")
        with pytest.raises(ValueError, match="unknown technology node"):
            get_node("bogus")

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown technology variant"):
            get_node(65, "optimistic")

    def test_vth_must_stay_below_vdd(self):
        with pytest.raises(ValueError, match="vth"):
            TechNode(65, "itrs", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class TestLadder:
    def test_65nm_ladder_reproduces_the_paper_ladder_bit_for_bit(self):
        # The golden pin of the whole tech axis: deriving the paper
        # node's ladder from the tables must give the exact literal
        # DVFS_LADDER the simulator has always used.
        assert dvfs_ladder(paper_node()) == DVFS_LADDER
        assert nominal_point(paper_node()) == NOMINAL

    def test_ladder_shape(self):
        for variant in VARIANTS:
            for name in node_names():
                node = get_node(name, variant)
                ladder = dvfs_ladder(node)
                assert len(ladder) == 5
                assert ladder[-1].voltage_v == node.vdd_nominal_v
                assert ladder[-1].frequency_hz == pytest.approx(
                    node.frequency_nominal_hz
                )

    def test_frequency_scales_linearly_with_voltage(self):
        node = get_node("45nm")
        ladder = dvfs_ladder(node)
        for point in ladder:
            assert point.frequency_hz == pytest.approx(
                node.frequency_nominal_hz * point.voltage_v / node.vdd_nominal_v,
                rel=1e-4,
            )

    def test_vmin_bounded_by_threshold_guard(self):
        node = get_node("16nm")
        # 0.6 * 0.68 = 0.408 > 1.2 * 0.24 = 0.288: the paper ratio wins.
        assert node.vmin_v() == pytest.approx(0.408)
        # A harsher guard lifts vmin above the paper ratio.
        assert node.vmin_v(vth_guard=2.0) == pytest.approx(0.48)
        assert dvfs_ladder(node, vth_guard=2.0)[0].voltage_v == pytest.approx(0.48)

    def test_no_headroom_is_refused(self):
        node = get_node("16nm")
        with pytest.raises(ValueError, match="no ladder headroom"):
            dvfs_ladder(node, vth_guard=node.vdd_nominal_v / node.vth_v)

    def test_num_points_validated(self):
        with pytest.raises(ValueError, match="num_points"):
            dvfs_ladder(paper_node(), num_points=1)


def test_base_anchors_match_the_paper_constants():
    assert BASE_FREQ_GHZ == 2.5
    assert BASE_VDD_V == 1.0
    assert BASE_DYNAMIC_W == 1.9
    assert BASE_LEAKAGE_W == 0.25
    assert paper_node().frequency_nominal_hz == 2.5 * GHZ
