"""TechSpec canonicalization and the default-collapses-to-None rule."""

import pytest

from repro.tech.spec import TechSpec, canonical_tech_json, normalize_tech
from repro.vfi.islands import DVFS_LADDER


class TestCanonicalization:
    def test_default_is_the_paper_configuration(self):
        spec = TechSpec()
        assert spec.node == "65nm"
        assert spec.variant == "itrs"
        assert spec.cores == "ooo"
        assert spec.is_default
        assert spec.label == "65nm-itrs/ooo"

    def test_node_forms_canonicalize(self):
        assert TechSpec(node=45) == TechSpec(node="45nm")
        assert TechSpec(node=" 45NM ") == TechSpec(node="45nm")

    def test_paper_node_collapses_the_variant(self):
        # 65 nm is the identity in both tables; one cache identity only.
        assert TechSpec(node=65, variant="cons") == TechSpec()
        assert TechSpec(node=45, variant="cons") != TechSpec(node=45)

    def test_homogeneous_tuple_collapses_to_the_name(self):
        assert TechSpec(cores=("io", "io", "io")).cores == "io"
        mixed = TechSpec(cores=("ooo", "io"))
        assert mixed.cores == ("ooo", "io")
        assert mixed.label == "65nm-itrs/ooo+io"

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            TechSpec(node="14nm")
        with pytest.raises(ValueError):
            TechSpec(variant="optimistic")
        with pytest.raises(ValueError):
            TechSpec(cores="vliw")
        with pytest.raises(ValueError):
            TechSpec(cores=())


class TestAccessors:
    def test_default_ladder_is_the_paper_ladder(self):
        assert TechSpec().ladder() == DVFS_LADDER

    def test_tech_node_and_mix(self):
        spec = TechSpec(node="32nm", cores="big_little")
        assert spec.tech_node().nm == 32
        assert spec.mix_for(4).types == ("ooo", "ooo", "io", "io")


class TestJson:
    def test_round_trip(self):
        for spec in (
            TechSpec(),
            TechSpec(node="22nm", variant="cons", cores="io"),
            TechSpec(cores=("ooo", "io", "io", "io")),
        ):
            assert TechSpec.from_json(spec.to_json()) == spec

    def test_canonical_json_is_key_sorted_and_compact(self):
        text = TechSpec(node="45nm").to_json()
        assert text == '{"cores":"ooo","node":"45nm","variant":"itrs"}'


class TestCarryingConvention:
    def test_default_collapses_to_none(self):
        assert canonical_tech_json(None) is None
        assert canonical_tech_json(TechSpec()) is None
        assert canonical_tech_json(TechSpec().to_json()) is None
        assert normalize_tech(TechSpec()) is None
        assert normalize_tech(None) is None

    def test_non_default_round_trips(self):
        spec = TechSpec(node="45nm", cores="big_little")
        text = canonical_tech_json(spec)
        assert TechSpec.from_json(text) == spec
        assert normalize_tech(text) == spec
        # JSON text re-canonicalizes: whitespace never splits a cache.
        loose = '{ "node": "45nm", "variant": "itrs", "cores": "big_little" }'
        assert canonical_tech_json(loose) == text

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="tech must be"):
            canonical_tech_json(65)
