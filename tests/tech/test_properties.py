"""Property tests: ladder and power-budget invariants.

For *any* node, variant, ladder shape and guard, the derived DVFS
ladder must be a physically sensible grid: voltages strictly rising
within [max(vmin-ratio, guard x vth), Vdd], frequencies nondecreasing in
voltage, nominal on top.  For *any* cap, the active-core ceiling must be
monotone in the cap and bounded by the die -- tightening a power budget
can never light more cores.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.budget import active_core_ceiling, chip_peak_power_w
from repro.tech.cores import CoreMix
from repro.tech.nodes import (
    VMIN_RATIO,
    dvfs_ladder,
    get_node,
    node_names,
)

nodes = st.sampled_from(node_names())
variants = st.sampled_from(("itrs", "cons"))
mixes = st.sampled_from(
    (
        CoreMix.homogeneous("ooo", 4),
        CoreMix.homogeneous("io", 4),
        CoreMix.big_little(4),
        CoreMix.big_little(8),
    )
)


@given(
    node=nodes,
    variant=variants,
    num_points=st.integers(min_value=2, max_value=12),
    vth_guard=st.floats(min_value=0.5, max_value=1.6),
)
@settings(max_examples=200, deadline=None)
def test_ladder_grid_invariants(node, variant, num_points, vth_guard):
    resolved = get_node(node, variant)
    ladder = dvfs_ladder(resolved, num_points=num_points, vth_guard=vth_guard)

    assert len(ladder) == num_points
    voltages = [p.voltage_v for p in ladder]
    frequencies = [p.frequency_hz for p in ladder]

    # Voltages strictly rise to the nominal rail; frequencies follow.
    assert voltages == sorted(voltages)
    assert len(set(voltages)) == num_points
    assert frequencies == sorted(frequencies)

    # Every rail stays inside [vmin bound, Vdd] (snapping tolerance).
    lower = max(VMIN_RATIO * resolved.vdd_nominal_v, vth_guard * resolved.vth_v)
    assert voltages[0] >= round(lower, 4) - 1e-9
    assert voltages[-1] == resolved.vdd_nominal_v
    # Rails never dip to the threshold region the leakage model cannot
    # describe, whatever guard was requested.
    assert voltages[0] > resolved.vth_v


@given(
    node=nodes,
    variant=variants,
    mix=mixes,
    cap_a=st.floats(min_value=0.0, max_value=250.0),
    cap_b=st.floats(min_value=0.0, max_value=250.0),
)
@settings(max_examples=200, deadline=None)
def test_ceiling_monotone_in_the_cap(node, variant, mix, cap_a, cap_b):
    resolved = get_node(node, variant)
    num_cores = mix.num_islands * 8
    low, high = sorted((cap_a, cap_b))

    ceiling_low = active_core_ceiling(low, resolved, mix, num_cores)
    ceiling_high = active_core_ceiling(high, resolved, mix, num_cores)

    # Loosening the cap never darkens cores; every ceiling is a count
    # within the die; the whole-die peak always lights everything.
    assert 0 <= ceiling_low <= ceiling_high <= num_cores
    peak = chip_peak_power_w(resolved, mix, num_cores)
    assert active_core_ceiling(peak, resolved, mix, num_cores) == num_cores
