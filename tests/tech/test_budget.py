"""Chip power budgets: peak pricing, active-core ceiling, frontier."""

import pytest

from repro.tech.budget import (
    active_core_ceiling,
    budget_row,
    chip_peak_power_w,
    core_peak_power_w,
    dark_fraction,
    frontier,
    throughput_proxy,
)
from repro.tech.cores import CoreMix, get_core_type
from repro.tech.nodes import get_node, paper_node

OOO = get_core_type("ooo")
IO = get_core_type("io")
HOMOGENEOUS = CoreMix.homogeneous("ooo", 4)
BIG_LITTLE = CoreMix.big_little(4)


class TestPeakPower:
    def test_paper_core_peak_is_dynamic_plus_leakage(self):
        # 1.9 W busy dynamic + 0.25 W leakage at 1.0 V nominal.
        assert core_peak_power_w(paper_node(), OOO) == pytest.approx(2.15)

    def test_inorder_core_is_cheaper(self):
        node = paper_node()
        assert core_peak_power_w(node, IO) < core_peak_power_w(node, OOO) / 2

    def test_chip_peak_sums_the_die(self):
        node = paper_node()
        assert chip_peak_power_w(node, HOMOGENEOUS, 64) == pytest.approx(
            64 * core_peak_power_w(node, OOO)
        )
        hetero = chip_peak_power_w(node, BIG_LITTLE, 64)
        assert hetero == pytest.approx(
            32 * core_peak_power_w(node, OOO) + 32 * core_peak_power_w(node, IO)
        )

    def test_uneven_island_split_rejected(self):
        with pytest.raises(ValueError, match="do not split evenly"):
            chip_peak_power_w(paper_node(), BIG_LITTLE, 30)
        with pytest.raises(ValueError, match="num_cores"):
            chip_peak_power_w(paper_node(), HOMOGENEOUS, 0)


class TestCeiling:
    def test_uncapped_die_is_fully_lit(self):
        node = paper_node()
        peak = chip_peak_power_w(node, HOMOGENEOUS, 64)
        assert active_core_ceiling(peak, node, HOMOGENEOUS, 64) == 64
        assert dark_fraction(peak, node, HOMOGENEOUS, 64) == 0.0

    def test_zero_cap_leaves_the_die_dark(self):
        node = paper_node()
        assert active_core_ceiling(0.0, node, HOMOGENEOUS, 64) == 0
        assert active_core_ceiling(-5.0, node, HOMOGENEOUS, 64) == 0
        assert dark_fraction(0.0, node, HOMOGENEOUS, 64) == 1.0

    def test_homogeneous_ceiling_is_cap_over_core_power(self):
        node = paper_node()
        per_core = core_peak_power_w(node, OOO)
        assert active_core_ceiling(40.0, node, HOMOGENEOUS, 64) == int(
            40.0 / per_core
        )

    def test_heterogeneity_lifts_the_ceiling(self):
        # Under a tight cap the cheap in-order cores light up first, so
        # the mixed die always fits at least as many cores.
        node = get_node("32nm")
        for cap in (5.0, 10.0, 20.0, 40.0):
            assert active_core_ceiling(
                cap, node, BIG_LITTLE, 64
            ) >= active_core_ceiling(cap, node, HOMOGENEOUS, 64)


class TestThroughput:
    def test_uncapped_throughput_counts_every_core(self):
        node = paper_node()
        peak = chip_peak_power_w(node, HOMOGENEOUS, 64)
        assert throughput_proxy(peak, node, HOMOGENEOUS, 64) == pytest.approx(64.0)

    def test_node_clock_scales_throughput(self):
        node = get_node("45nm")
        peak = chip_peak_power_w(node, HOMOGENEOUS, 64)
        assert throughput_proxy(peak, node, HOMOGENEOUS, 64) == pytest.approx(
            64 * node.frequency_nominal_hz / paper_node().frequency_nominal_hz
        )

    def test_dark_die_has_zero_throughput(self):
        assert throughput_proxy(0.0, paper_node(), BIG_LITTLE, 64) == 0.0


class TestFrontier:
    def test_row_contents(self):
        row = budget_row(40.0, paper_node(), HOMOGENEOUS, 64)
        assert row["node"] == "65nm"
        assert row["mix"] == "ooo"
        assert row["cap_w"] == 40.0
        assert row["active_cores"] == active_core_ceiling(
            40.0, paper_node(), HOMOGENEOUS, 64
        )
        assert row["dark_fraction"] == pytest.approx(
            1.0 - row["active_cores"] / 64
        )

    def test_node_major_order_and_size(self):
        rows = frontier(["65nm", "45nm"], ["ooo", "big_little"], [40.0, 80.0])
        assert len(rows) == 2 * 2 * 2
        assert [r["node"] for r in rows[:4]] == ["65nm"] * 4
        assert [r["node"] for r in rows[4:]] == ["45nm"] * 4

    def test_accepts_resolved_objects(self):
        rows = frontier([paper_node()], [BIG_LITTLE], [40.0], num_cores=16)
        assert rows[0]["mix"] == "ooo+ooo+io+io"
