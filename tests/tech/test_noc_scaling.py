"""NoC energy follows the technology node (and stays put by default).

The ``tech=None`` path is pinned bit-for-bit by the 64-core golden
tests; here we check the platform-construction rule directly: no tech
means the stock :class:`NocEnergyParams`, a tech node scales the per-bit
dynamic constants by its C*V^2 trajectory and the switch leakage by its
leakage trajectory.
"""

import pytest

from repro.core.experiment import VFI2_WINOC, run_app_study
from repro.core.platforms import build_nvfi_mesh, geometry_for
from repro.noc.energy import NocEnergyParams
from repro.tech import TechSpec, get_node


def test_default_platform_keeps_stock_noc_params():
    platform = build_nvfi_mesh(geometry_for(16))
    assert platform.noc_energy_params == NocEnergyParams()


@pytest.mark.parametrize("node_name", ["45nm", "32nm", "22nm"])
def test_tech_platform_scales_noc_params_with_the_node(node_name):
    node = get_node(node_name)
    platform = build_nvfi_mesh(
        geometry_for(16), tech=TechSpec(node=node_name)
    )
    stock = NocEnergyParams()
    params = platform.noc_energy_params
    assert params.router_pj_per_bit == pytest.approx(
        stock.router_pj_per_bit * node.dynamic_scale
    )
    assert params.wire_pj_per_bit_per_mm == pytest.approx(
        stock.wire_pj_per_bit_per_mm * node.dynamic_scale
    )
    assert params.wireless_pj_per_bit == pytest.approx(
        stock.wireless_pj_per_bit * node.dynamic_scale
    )
    assert params.switch_leakage_w == pytest.approx(
        stock.switch_leakage_w * node.leakage_scale
    )


def test_shrunk_node_measures_less_noc_energy():
    kwargs = dict(scale=0.05, seed=9, num_workers=16)
    base = run_app_study("histogram", **kwargs).result(VFI2_WINOC)
    shrunk = run_app_study(
        "histogram", tech=TechSpec(node="32nm"), **kwargs
    ).result(VFI2_WINOC)
    assert shrunk.energy.noc_dynamic_j < base.energy.noc_dynamic_j
