"""The tech axis must not perturb the paper's default pipeline.

An explicit default :class:`TechSpec` (65 nm, ITRS, homogeneous OoO)
must collapse to the *same identity* as passing no tech at all -- same
memoized study object, same platform objects -- and a non-default spec
must actually change the physics.  The 64-core default path is pinned
bit-for-bit against the golden file in
``tests/core/test_golden_64core.py``; this module covers the identity
rules at the cheap 16-core size.
"""

import pytest

from repro.core.experiment import VFI2_WINOC, run_app_study
from repro.core.platforms import build_nvfi_mesh, build_vfi_mesh, geometry_for
from repro.energy.core_power import CorePowerParams
from repro.tech import TechSpec
from repro.vfi.islands import DVFS_LADDER

APP = "histogram"
SCALE = 0.05
SEED = 9
WORKERS = 16


def test_default_techspec_is_the_same_memoized_study():
    plain = run_app_study(APP, scale=SCALE, seed=SEED, num_workers=WORKERS)
    explicit = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS, tech=TechSpec()
    )
    # Not merely equal: the default spec collapses to None before the
    # memo key, so both calls resolve to one cache entry.
    assert explicit is plain


def test_default_platform_carries_no_tech_state():
    platform = build_nvfi_mesh(geometry_for(WORKERS))
    assert platform.dvfs_ladder is None
    assert platform.island_core_power is None
    assert platform.perf_scales is None
    assert platform.ladder == DVFS_LADDER
    assert platform.core_power_of(0) is platform.core_power
    assert platform.effective_worker_frequencies() == platform.worker_frequencies()


def test_tech_platform_carries_ladder_mix_and_power():
    tech = TechSpec(node="32nm", cores="big_little")
    platform = build_nvfi_mesh(geometry_for(WORKERS), tech=tech)
    assert platform.dvfs_ladder == tech.ladder()
    assert platform.ladder == tech.ladder()
    num_islands = platform.layout.num_clusters
    mix = tech.mix_for(num_islands)
    assert platform.perf_scales == mix.perf_scales()
    assert len(platform.island_core_power) == num_islands
    node = tech.tech_node()
    assert platform.core_power_of(0).params == CorePowerParams.from_tech(
        node, "ooo"
    )
    assert platform.core_power_of(num_islands - 1).params == (
        CorePowerParams.from_tech(node, "io")
    )
    # Little islands run at a perf discount: effective < physical clock.
    little_worker = next(
        w for w in range(WORKERS)
        if platform.island_of_worker(w) == num_islands - 1
    )
    assert platform.effective_frequency_of_worker(
        little_worker
    ) == pytest.approx(platform.frequency_of_worker(little_worker) * 0.55)


def test_non_default_tech_changes_the_measured_physics():
    plain = run_app_study(APP, scale=SCALE, seed=SEED, num_workers=WORKERS)
    shrunk = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        tech=TechSpec(node="32nm"),
    )
    base = plain.result(VFI2_WINOC)
    scaled = shrunk.result(VFI2_WINOC)
    # 32 nm: faster clock -> shorter makespan; less dynamic power -> and
    # the energy drops even further.
    assert scaled.total_time_s < base.total_time_s
    assert scaled.total_energy_j < base.total_energy_j


def test_big_little_trades_time_for_energy():
    plain = run_app_study(APP, scale=SCALE, seed=SEED, num_workers=WORKERS)
    mixed = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        tech=TechSpec(cores="big_little"),
    )
    base = plain.result(VFI2_WINOC)
    hetero = mixed.result(VFI2_WINOC)
    # In-order islands slow the run but cut core power.
    assert hetero.total_time_s > base.total_time_s
    assert hetero.total_energy_j < base.total_energy_j
