"""The `repro tech` CLI: list / frontier / export and the error contract."""

import json

import pytest

from repro.cli import main


def test_tech_list_prints_both_variants_and_core_types(capsys):
    rc = main(["tech", "list"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "technology nodes (itrs):" in captured.out
    assert "technology nodes (cons):" in captured.out
    assert "core types:" in captured.out
    for name in ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm"):
        assert name in captured.out
    assert "ooo" in captured.out and "io" in captured.out


def test_tech_export_markdown(capsys, tmp_path):
    output = tmp_path / "tech.md"
    rc = main(["tech", "export", "--output", str(output)])
    assert rc == 0
    text = output.read_text()
    assert "## Technology frontier" in text
    assert "| node | variant |" in text
    assert "dark %" in text


def test_tech_export_json_round_trips(capsys, tmp_path):
    output = tmp_path / "tech.json"
    rc = main([
        "tech", "export", "--format", "json", "--nodes", "65nm", "45nm",
        "--output", str(output),
    ])
    assert rc == 0
    payload = json.loads(output.read_text())
    assert [n["nm"] for n in payload["nodes"]] == [65, 45]
    assert payload["core_types"]["io"]["perf_scale"] == 0.55
    assert payload["frontier"]  # nodes x mixes x caps rows
    assert {row["node"] for row in payload["frontier"]} == {"65nm", "45nm"}


def test_tech_frontier_end_to_end(capsys, tmp_path):
    report = tmp_path / "section.md"
    manifest = tmp_path / "manifest.json"
    rc = main([
        "tech", "frontier", "--app", "histogram",
        "--nodes", "65nm", "45nm", "32nm", "--mixes", "ooo", "big_little",
        "--scale", "0.05", "--seed", "9", "--num-workers", "16",
        "--cache-dir", str(tmp_path / "cache"),
        "--report", str(report), "--manifest", str(manifest),
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "6 technology configurations" in captured.out
    assert "default (65nm)" in captured.out
    assert "32nm-itrs/big_little" in captured.out
    text = report.read_text()
    assert "## Technology frontier" in text
    assert "### Measured sweep" in text
    assert manifest.exists()
    assert (tmp_path / "manifest.trace.json").exists()
    # 3 nodes x 2 mixes = 6 units in the campaign manifest.
    assert len(json.loads(manifest.read_text())["records"]) == 6


@pytest.mark.parametrize(
    "argv",
    [
        ["tech", "frontier", "--nodes", "14nm", "--num-workers", "16",
         "--scale", "0.05"],
        ["tech", "frontier", "--mixes", "vliw", "--num-workers", "16",
         "--scale", "0.05"],
        ["tech", "export", "--nodes", "bogus"],
    ],
)
def test_tech_errors_are_one_line_on_stderr(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("repro: error: ")
    assert len(captured.err.strip().splitlines()) == 1
