"""Core-type registry and per-island mixes."""

import pytest

from repro.tech.cores import (
    CORE_TYPES,
    DEFAULT_CORE,
    MIX_PRESETS,
    CoreMix,
    core_type_names,
    get_core_type,
    resolve_mix,
)


class TestRegistry:
    def test_default_core_is_the_identity(self):
        core = get_core_type(DEFAULT_CORE)
        assert core.perf_scale == 1.0
        assert core.dynamic_scale == 1.0
        assert core.leakage_scale == 1.0
        assert core.area_scale == 1.0

    def test_inorder_trades_perf_for_power(self):
        io = get_core_type("io")
        assert io.perf_scale < 1.0
        assert io.dynamic_scale < io.perf_scale  # perf/W leads the OoO core
        assert io.area_scale < 1.0

    def test_names_sorted(self):
        assert core_type_names() == sorted(CORE_TYPES)

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown core type"):
            get_core_type("vliw")


class TestCoreMix:
    def test_homogeneous(self):
        mix = CoreMix.homogeneous("ooo", 4)
        assert mix.types == ("ooo",) * 4
        assert mix.is_homogeneous
        assert mix.label == "ooo"
        assert mix.perf_scales() == (1.0, 1.0, 1.0, 1.0)

    def test_big_little_splits_the_die(self):
        mix = CoreMix.big_little(4)
        assert mix.types == ("ooo", "ooo", "io", "io")
        assert not mix.is_homogeneous
        assert mix.label == "ooo+ooo+io+io"
        assert mix.perf_scales() == (1.0, 1.0, 0.55, 0.55)

    def test_big_little_rounds_the_big_half_up(self):
        # The master island (island 0) must always land on a big core.
        assert CoreMix.big_little(3).types == ("ooo", "ooo", "io")
        assert CoreMix.big_little(1).types == ("ooo",)

    def test_island_accessors(self):
        mix = CoreMix.big_little(4)
        assert mix.core_type(0).name == "ooo"
        assert mix.core_type(3).name == "io"
        assert [c.name for c in mix.core_types()] == list(mix.types)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one island"):
            CoreMix(types=())
        with pytest.raises(ValueError, match="unknown core type"):
            CoreMix(types=("ooo", "vliw"))


class TestResolveMix:
    def test_type_name_resolves_homogeneous(self):
        assert resolve_mix("io", 4) == CoreMix.homogeneous("io", 4)

    def test_preset_resolves_against_island_count(self):
        assert "big_little" in MIX_PRESETS
        assert resolve_mix("big_little", 6) == CoreMix.big_little(6)

    def test_explicit_sequence_must_match_island_count(self):
        assert resolve_mix(("ooo", "io"), 2).types == ("ooo", "io")
        with pytest.raises(ValueError, match="covers 2 islands"):
            resolve_mix(("ooo", "io"), 4)

    def test_unknown_mix_name(self):
        with pytest.raises(ValueError, match="unknown core mix"):
            resolve_mix("medium_little", 4)
