"""PowerCapSpec canonicalization, validation and round trips."""

import json

import pytest

from repro.power import (
    CapImpact,
    PowerCapSpec,
    canonical_cap_json,
    normalize_cap,
)


class TestValidation:
    def test_chip_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="chip_cap_w"):
            PowerCapSpec(chip_cap_w=0.0)
        with pytest.raises(ValueError, match="chip_cap_w"):
            PowerCapSpec(chip_cap_w=-3.0)

    def test_island_caps_must_be_positive(self):
        with pytest.raises(ValueError, match="island 1 cap"):
            PowerCapSpec(island_caps_w=((1, 0.0),))
        with pytest.raises(ValueError, match="island must be >= 0"):
            PowerCapSpec(island_caps_w=((-1, 5.0),))

    def test_duplicate_islands_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PowerCapSpec(island_caps_w=((1, 5.0), (1, 6.0)))

    def test_island_caps_canonically_sorted(self):
        spec = PowerCapSpec(island_caps_w=((3, 5.0), (0, 9.0)))
        assert spec.island_caps_w == ((0, 9.0), (3, 5.0))


class TestIdentity:
    def test_default_is_unbounded(self):
        spec = PowerCapSpec()
        assert spec.is_default
        assert spec.label == "uncapped"
        assert spec.island_cap(0) is None

    def test_labels(self):
        assert PowerCapSpec(chip_cap_w=96).label == "96W"
        assert PowerCapSpec(island_caps_w=((1, 10),)).label == "isl1@10W"
        assert (
            PowerCapSpec(chip_cap_w=96, island_caps_w=((1, 10),)).label
            == "96W+isl1@10W"
        )
        assert (
            PowerCapSpec(chip_cap_w=50, name="tdp").label == "tdp(50W)"
        )

    def test_island_cap_accessor(self):
        spec = PowerCapSpec(island_caps_w=((0, 9.0), (2, 4.0)))
        assert spec.island_cap(0) == 9.0
        assert spec.island_cap(1) is None
        assert spec.island_cap(2) == 4.0


class TestRoundTrip:
    def test_dict_and_json(self):
        spec = PowerCapSpec(
            chip_cap_w=80.0, island_caps_w=((1, 12.5),), name="tdp"
        )
        assert PowerCapSpec.from_dict(spec.to_dict()) == spec
        assert PowerCapSpec.from_json(spec.to_json()) == spec

    def test_json_is_canonical(self):
        spec = PowerCapSpec(chip_cap_w=80.0)
        loose = json.dumps(spec.to_dict(), indent=2)
        assert canonical_cap_json(loose) == spec.to_json()


class TestCanonicalCapJson:
    def test_none_and_default_collapse(self):
        assert canonical_cap_json(None) is None
        assert canonical_cap_json(PowerCapSpec()) is None
        assert canonical_cap_json(PowerCapSpec().to_json()) is None

    def test_bare_watts_become_a_chip_cap(self):
        text = canonical_cap_json(96)
        assert text == PowerCapSpec(chip_cap_w=96.0).to_json()
        assert canonical_cap_json(96.0) == text

    def test_bool_is_not_a_cap(self):
        with pytest.raises(TypeError):
            canonical_cap_json(True)

    def test_normalize_cap_decodes(self):
        assert normalize_cap(None) is None
        assert normalize_cap(PowerCapSpec()) is None
        assert normalize_cap(64.0) == PowerCapSpec(chip_cap_w=64.0)


class TestCapImpact:
    def test_round_trip_with_string_residency_keys(self):
        impact = CapImpact(
            cap_w=50.0,
            boundaries_polled=9,
            unmet_boundaries=1,
            throttle_events=[
                {"t_s": 1.0, "island": 2, "from_step": 4, "to_step": 3,
                 "from_hz": 2.5e9, "to_hz": 2.1e9},
            ],
            residency_s={4: 12.0, 3: 2.5},
            throttled_s=2.5,
            throttled_islands=[2],
            peak_power_w=49.0,
        )
        encoded = impact.to_dict()
        # JSON object keys are strings; the decode restores ints.
        assert set(encoded["residency_s"]) == {"3", "4"}
        decoded = CapImpact.from_dict(json.loads(json.dumps(encoded)))
        assert decoded == impact
