"""The `repro power` CLI: list / sweep / export and the error contract."""

import json

import pytest

from repro.cli import main


def test_power_list_prints_fractions_and_ladders(capsys):
    rc = main(["power", "list"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "0.9 0.75 0.6 0.45" in captured.out
    assert "est. peak (W)" in captured.out
    for cores in ("16", "64", "256"):
        assert cores in captured.out


def test_power_export_json_round_trips(tmp_path):
    output = tmp_path / "power.json"
    rc = main([
        "power", "export", "--format", "json", "--num-workers", "16", "64",
        "--output", str(output),
    ])
    assert rc == 0
    payload = json.loads(output.read_text())
    assert payload["cap_fractions"] == [0.9, 0.75, 0.6, 0.45]
    assert [d["num_workers"] for d in payload["dies"]] == [16, 64]
    for die in payload["dies"]:
        assert len(die["default_caps_w"]) == 4
        assert max(die["default_caps_w"]) < die["estimated_peak_w"]


def test_power_export_markdown(capsys):
    rc = main(["power", "export", "--num-workers", "16"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "## Power-cap ladders" in captured.out
    assert "| cores |" in captured.out


def test_power_sweep_end_to_end(capsys, tmp_path):
    report = tmp_path / "section.md"
    manifest = tmp_path / "manifest.json"
    rc = main([
        "power", "sweep", "--app", "histogram",
        "--caps", "25", "16",
        "--scale", "0.05", "--seed", "9", "--num-workers", "16",
        "--cache-dir", str(tmp_path / "cache"),
        "--report", str(report), "--manifest", str(manifest),
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "uncapped baseline + 2 cap levels" in captured.out
    assert "uncapped" in captured.out
    text = report.read_text()
    assert "## Power-cap frontier" in text
    assert "DVFS-ladder residency" in text
    assert manifest.exists()
    assert (tmp_path / "manifest.trace.json").exists()
    # Baseline + 2 caps = 3 units in the campaign manifest.
    assert len(json.loads(manifest.read_text())["records"]) == 3


@pytest.mark.parametrize(
    "argv",
    [
        ["power", "sweep", "--caps", "-5", "--num-workers", "16",
         "--scale", "0.05"],
        ["power", "sweep", "--plan", "/nonexistent/plan.json",
         "--num-workers", "16", "--scale", "0.05"],
        ["power", "list", "--num-workers", "17"],
    ],
)
def test_power_errors_are_one_line_on_stderr(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("repro: error: ")
    assert len(captured.err.strip().splitlines()) == 1
