"""Property tests for the cap governor's boundary decisions.

The governor is a pure function of (platform, cap, measured activity):
these tests drive it directly with synthetic busy-time observations --
no simulator -- and check the contracts the frontier rests on:
determinism across replays, caps honored whenever they are honorable,
and a tighter cap never buying more throughput.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platforms import build_nvfi_mesh, geometry_for
from repro.power import CapGovernor, PowerCapSpec

PLATFORM = build_nvfi_mesh(geometry_for(16))
NUM_ISLANDS = PLATFORM.layout.num_clusters
ISLAND_WORKERS = tuple(
    [w for w in range(PLATFORM.num_cores)
     if PLATFORM.island_of_worker(w) == island]
    for island in range(NUM_ISLANDS)
)

#: Per-boundary, per-island busy fractions driving the governor.
activity_rows = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=NUM_ISLANDS, max_size=NUM_ISLANDS,
    ),
    min_size=1, max_size=6,
)

#: Chip caps spanning deeply-binding to non-binding for the 16-core die
#: (whose estimated uncapped peak is ~34 W).
chip_caps = st.floats(min_value=4.0, max_value=40.0)


def drive(cap: PowerCapSpec, rows) -> CapGovernor:
    """Replay *rows* of island activity through a fresh governor, one
    phase boundary per row (1 simulated second apart)."""
    governor = CapGovernor(PLATFORM, cap)
    busy = np.zeros(PLATFORM.num_cores)
    for boundary, row in enumerate(rows):
        for island, activity in enumerate(row):
            for worker in ISLAND_WORKERS[island]:
                busy[worker] += activity
        governor.poll(float(boundary + 1), busy)
    return governor


@settings(max_examples=60, deadline=None)
@given(rows=activity_rows, cap_w=chip_caps)
def test_decisions_deterministic_across_replays(rows, cap_w):
    cap = PowerCapSpec(chip_cap_w=cap_w)
    first = drive(cap, rows)
    second = drive(cap, rows)
    assert first._steps == second._steps
    assert first.impact().to_dict() == second.impact().to_dict()


@settings(max_examples=60, deadline=None)
@given(rows=activity_rows, cap_w=chip_caps)
def test_estimated_power_honors_an_honorable_cap(rows, cap_w):
    governor = drive(PowerCapSpec(chip_cap_w=cap_w), rows)
    impact = governor.impact()
    assert impact.boundaries_polled == len(rows)
    if impact.unmet_boundaries == 0:
        # Every boundary's post-decision estimate fit the cap -- so the
        # peak the governor observed did too.
        assert impact.peak_power_w <= cap_w * (1.0 + 1e-9)
        assert governor.estimated_chip_power_w() <= cap_w * (1.0 + 1e-9)
    else:
        # The cap was unmeetable at some boundary: the governor must at
        # least have tried (throttle moves were recorded on the way to
        # the ladder floor).
        assert impact.throttle_events


@settings(max_examples=60, deadline=None)
@given(
    rows=activity_rows,
    caps=st.tuples(chip_caps, chip_caps),
)
def test_tighter_cap_never_buys_throughput(rows, caps):
    loose_w, tight_w = max(caps), min(caps)
    loose = drive(PowerCapSpec(chip_cap_w=loose_w), rows)
    tight = drive(PowerCapSpec(chip_cap_w=tight_w), rows)
    assert tight.throughput_proxy_hz() <= loose.throughput_proxy_hz() * (
        1.0 + 1e-12
    )
    # The tighter governor sits at or below the looser one, per island.
    assert all(
        t >= l for t, l in zip(tight._steps, loose._steps)
    )


@settings(max_examples=60, deadline=None)
@given(rows=activity_rows, cap_w=chip_caps)
def test_master_islands_are_throttled_only_as_last_resort(rows, cap_w):
    governor = CapGovernor(PLATFORM, PowerCapSpec(chip_cap_w=cap_w))
    governor.master_workers = {0}
    master = PLATFORM.island_of_worker(0)
    busy = np.zeros(PLATFORM.num_cores)
    for boundary, row in enumerate(rows):
        for island, activity in enumerate(row):
            for worker in ISLAND_WORKERS[island]:
                busy[worker] += activity
        governor.poll(float(boundary + 1), busy)
        if governor._steps[master] > 0:
            for island in range(NUM_ISLANDS):
                if island == master:
                    continue
                assert (
                    governor._base_indices[island]
                    == governor._steps[island]
                ), "master throttled while another island had headroom"


def test_no_observations_assumes_full_activity():
    governor = CapGovernor(PLATFORM, PowerCapSpec(chip_cap_w=10.0))
    governor.poll(0.0, np.zeros(PLATFORM.num_cores))
    assert governor._activities is not None
    assert float(np.min(governor._activities)) == 1.0
    assert any(step > 0 for step in governor._steps)


def test_re_raises_when_headroom_returns():
    governor = CapGovernor(PLATFORM, PowerCapSpec(chip_cap_w=20.0))
    busy = np.zeros(PLATFORM.num_cores)
    # Boundary 1: everyone flat out -> the cap binds.
    busy += 1.0
    governor.poll(1.0, busy)
    assert any(step > 0 for step in governor._steps)
    throttled = governor.effective_platform()
    assert throttled is not PLATFORM
    # Boundary 2: the chip goes idle -> the assignment relaxes back to
    # base and the effective platform is the base object again.
    governor.poll(2.0, busy)
    assert governor._steps == [0] * NUM_ISLANDS
    assert governor.effective_platform() is PLATFORM
    up_moves = [
        e for e in governor.impact().throttle_events
        if e["to_step"] > e["from_step"]
    ]
    assert up_moves


def test_island_cap_binds_locally():
    cap = PowerCapSpec(island_caps_w=((1, 4.0),))
    governor = CapGovernor(PLATFORM, cap)
    governor.poll(0.0, np.zeros(PLATFORM.num_cores))
    assert governor._steps[1] > 0
    assert all(
        governor._steps[i] == 0 for i in range(NUM_ISLANDS) if i != 1
    )
    # Islands beyond the die are tolerated (lenient, like fault plans).
    lenient = CapGovernor(
        PLATFORM, PowerCapSpec(island_caps_w=((99, 1.0),))
    )
    lenient.poll(0.0, np.zeros(PLATFORM.num_cores))
    assert lenient._steps == [0] * NUM_ISLANDS
