"""The power axis through the real simulator (cheap 16-core pipeline).

The 64-core uncapped default is pinned bit-for-bit in
``tests/core/test_golden_64core.py``; here the cheap 16-core pipeline
covers the measured behavior of capped runs: identity of the no-cap
default, the monotone cap frontier, cap x fault composition, and the
serialization round trip of the ``power`` record.
"""

import pytest

from repro.core.experiment import VFI2_WINOC, run_app_study
from repro.core.serialization import result_from_dict, result_to_dict
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.power import PowerCapSpec, default_caps_w

APP = "histogram"
KWARGS = dict(scale=0.05, seed=9, num_workers=16)


def study_at(cap=None, **extra):
    return run_app_study(APP, power_cap=cap, **KWARGS, **extra)


def test_uncapped_run_carries_no_power_record():
    result = study_at().result(VFI2_WINOC)
    assert result.power is None
    assert "power" not in result_to_dict(result)


def test_default_cap_is_the_same_memoized_study():
    # The unbounded spec collapses to None before the memo key: not
    # merely an equal study -- the same object.
    assert study_at(PowerCapSpec()) is study_at()


def test_capped_run_records_impact_and_honors_the_cap():
    cap_w = default_caps_w(16)[-1]  # the tightest default level
    result = study_at(cap_w).result(VFI2_WINOC)
    impact = result.power
    assert impact is not None
    assert impact.cap_w == cap_w
    assert impact.boundaries_polled > 0
    assert len(impact.throttle_events) > 0
    assert impact.throttled_s > 0.0
    assert impact.unmet_boundaries == 0
    assert impact.peak_power_w <= cap_w * (1.0 + 1e-9)


def test_cap_frontier_is_monotone_over_four_levels():
    caps = default_caps_w(16)
    assert len(caps) >= 4
    times = []
    throttled = []
    for cap_w in (None,) + caps:
        result = study_at(cap_w).result(VFI2_WINOC)
        times.append(result.total_time_s)
        impact = result.power
        throttled.append(0.0 if impact is None else impact.throttled_s)
    # Tighter cap: throughput never improves (makespan non-decreasing)
    # and the governor throttles at least as much.
    assert times == sorted(times)
    assert throttled == sorted(throttled)
    assert times[-1] > times[0]


def test_power_record_round_trips_through_serialization():
    result = study_at(default_caps_w(16)[-1]).result(VFI2_WINOC)
    decoded = result_from_dict(result_to_dict(result))
    assert decoded.power == result.power
    assert decoded.total_time_s == result.total_time_s


def test_cap_composes_with_faults():
    plan = FaultPlan(
        events=(
            FaultSpec(FaultKind.CORE_FAILURE, 0.002, (13,)),
            FaultSpec(FaultKind.ISLAND_THROTTLE, 0.001, (2,), magnitude=1),
        ),
        name="compose",
    )
    cap_w = default_caps_w(16)[-2]
    both = study_at(cap_w, fault_plan=plan).result(VFI2_WINOC)
    assert both.faults is not None
    assert both.power is not None
    assert len(both.faults.events_applied) > 0
    assert both.power.boundaries_polled > 0
    # The capped+faulted run is no faster than the faulted-only run.
    faulted = study_at(fault_plan=plan).result(VFI2_WINOC)
    assert both.total_time_s >= faulted.total_time_s
    # And deterministic: rerunning reproduces the exact numbers.
    again = run_app_study(
        APP, power_cap=cap_w, fault_plan=plan, use_cache=False, **KWARGS
    ).result(VFI2_WINOC)
    assert again.total_time_s == both.total_time_s
    assert again.total_energy_j == both.total_energy_j
    assert again.power.to_dict() == both.power.to_dict()
