"""Cap-sweep helpers: peak estimates, default ladders, row extraction."""

import pytest

from repro.energy.core_power import CorePowerModel, CorePowerParams
from repro.power import (
    DEFAULT_CAP_FRACTIONS,
    PowerCapSpec,
    cap_sweep_specs,
    chip_peak_power_w,
    default_caps_w,
    frontier_rows,
)
from repro.tech import TechSpec


class TestChipPeak:
    def test_default_platform_prices_every_core_at_nominal(self):
        model = CorePowerModel(CorePowerParams())
        nominal = model.params.nominal
        per_core = model.dynamic_power_w(nominal, 1.0) + model.leakage_power_w(
            nominal
        )
        assert chip_peak_power_w(64) == pytest.approx(64 * per_core)
        assert chip_peak_power_w(16) == pytest.approx(16 * per_core)

    def test_smaller_node_peaks_lower(self):
        assert chip_peak_power_w(64, tech=TechSpec(node="32nm")) < (
            chip_peak_power_w(64)
        )

    def test_default_caps_are_fractions_of_the_peak(self):
        peak = chip_peak_power_w(64)
        caps = default_caps_w(64)
        assert len(caps) == len(DEFAULT_CAP_FRACTIONS)
        for cap, fraction in zip(caps, DEFAULT_CAP_FRACTIONS):
            assert cap == pytest.approx(peak * fraction, abs=0.05)
        # Tightest last, and the sweep spans at least 4 levels.
        assert list(caps) == sorted(caps, reverse=True)
        assert len(caps) >= 4


class TestSweepSpecs:
    def test_uncapped_baseline_leads_the_sweep(self):
        specs = cap_sweep_specs(
            "histogram", (40.0, 20.0), scale=0.05, seed=9, num_workers=16
        )
        assert len(specs) == 3
        assert specs[0].power_cap is None
        assert specs[1].cap() == PowerCapSpec(chip_cap_w=40.0)
        assert specs[2].cap() == PowerCapSpec(chip_cap_w=20.0)
        # The caps split the cache while every other axis is shared.
        assert len({spec.cache_key() for spec in specs}) == 3
        assert {spec.app for spec in specs} == {"histogram"}


class _Result:
    def __init__(self, time_s, energy_j, power=None):
        self.total_time_s = time_s
        self.total_energy_j = energy_j
        self.edp = energy_j * time_s
        self.power = power


class _Study:
    def __init__(self, result):
        self._result = result

    def result(self, config):
        return self._result


class TestFrontierRows:
    def test_rows_order_loosest_first_and_carry_accounting(self):
        from repro.power import CapImpact

        impact = CapImpact(
            cap_w=20.0, boundaries_polled=3, throttle_events=[{}, {}],
            throttled_islands=[1, 2], throttled_s=4.0, peak_power_w=19.0,
        )
        studies = {
            20.0: _Study(_Result(12.0, 90.0, impact)),
            None: _Study(_Result(10.0, 100.0)),
            40.0: _Study(_Result(11.0, 95.0, CapImpact(cap_w=40.0))),
        }
        rows = frontier_rows(studies)
        assert [row["cap_w"] for row in rows] == [None, 40.0, 20.0]
        uncapped = rows[0]
        assert uncapped["throttle_events"] == 0
        assert uncapped["peak_power_w"] is None
        assert uncapped["throughput_per_s"] == pytest.approx(0.1)
        tight = rows[-1]
        assert tight["throttle_events"] == 2
        assert tight["throttled_islands"] == [1, 2]
        assert tight["peak_power_w"] == 19.0
