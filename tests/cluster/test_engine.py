"""Event engine: golden replay pins, legacy round-trip, heap order.

The golden records under ``tests/data/cluster_golden/`` were written by
the pre-engine monolithic ``ClusterService.run`` loop.  Replaying them
through the event engine must reproduce every byte -- that is the
refactor's central contract -- and loading them at all pins the legacy
schema (no ``attempts``/``preemptions``/``source`` keys) against the
extended one.
"""

import json
import pathlib

import pytest

from repro.cluster.events import (
    ARRIVAL,
    COMPLETE,
    DISPATCH,
    EVENT_RANK,
    PREEMPT,
    RETRY,
    EventEngine,
)
from repro.cluster.jobs import TERMINAL_STATUSES
from repro.cluster.record import ClusterRunResult, replay, verify_replay
from repro.utils.jsonutil import canonical_json

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "data" / "cluster_golden"
GOLDEN_POLICIES = ("fifo", "priority", "edf")


class TestGoldenReplay:
    """The engine reproduces pre-engine records byte for byte."""

    @pytest.mark.parametrize("policy", GOLDEN_POLICIES)
    def test_golden_record_replays_byte_identical(self, policy, study_cache):
        record = ClusterRunResult.load(GOLDEN_DIR / f"smoke_{policy}.json")
        fresh = replay(record, cache=study_cache)
        assert verify_replay(record, fresh) is None
        assert fresh.payload_json() == record.payload_json()

    def test_golden_trace_matches_record_traces(self):
        with open(GOLDEN_DIR / "smoke.trace.json") as handle:
            trace_dict = json.load(handle)
        for policy in GOLDEN_POLICIES:
            record = ClusterRunResult.load(GOLDEN_DIR / f"smoke_{policy}.json")
            assert record.trace.to_dict() == trace_dict


class TestLegacyRoundTrip:
    """Pre-engine record files load, re-serialize and verify unchanged."""

    @pytest.mark.parametrize("policy", GOLDEN_POLICIES)
    def test_load_reserialize_is_byte_identical(self, policy):
        path = GOLDEN_DIR / f"smoke_{policy}.json"
        record = ClusterRunResult.load(path)
        with open(path) as handle:
            on_disk = handle.read()
        assert canonical_json(record.to_dict()) + "\n" == on_disk

    @pytest.mark.parametrize("policy", GOLDEN_POLICIES)
    def test_stored_digest_matches_recomputed(self, policy):
        path = GOLDEN_DIR / f"smoke_{policy}.json"
        with open(path) as handle:
            raw = json.load(handle)
        record = ClusterRunResult.from_dict(raw)
        assert record.replay_digest == raw["replay_digest"]

    def test_legacy_records_read_schema_defaults(self):
        record = ClusterRunResult.load(GOLDEN_DIR / "smoke_fifo.json")
        assert record.source is None
        for job_record in record.records:
            assert job_record.attempts == 1
            assert job_record.preemptions == 0
            assert job_record.wasted_transfer_s == 0.0
            assert job_record.status in TERMINAL_STATUSES

    def test_legacy_payload_has_no_new_keys(self):
        record = ClusterRunResult.load(GOLDEN_DIR / "smoke_fifo.json")
        payload = record.payload_dict()
        assert "source" not in payload
        for job_record in payload["records"]:
            assert "attempts" not in job_record
            assert "preemptions" not in job_record
            assert "wasted_transfer_s" not in job_record
        assert "retries" not in payload["report"]
        assert "preemptions" not in payload["report"]


class TestEventEngine:
    def test_rank_order_at_one_timestamp(self):
        engine = EventEngine()
        # Schedule in reverse application order; the heap must undo it.
        engine.schedule(1.0, DISPATCH, tie=0, payload="d")
        engine.schedule(1.0, PREEMPT, tie=0, payload="p")
        engine.schedule(1.0, ARRIVAL, tie=5, payload="a")
        engine.schedule(1.0, RETRY, tie=9, payload="r")
        engine.schedule(1.0, COMPLETE, tie=3, payload="c")
        seen = []
        engine.run(lambda e: seen.append(e.payload), lambda now: False)
        assert seen == ["c", "r", "a", "p", "d"]

    def test_tie_breaks_on_domain_id_then_seq(self):
        engine = EventEngine()
        engine.schedule(2.0, COMPLETE, tie=7, payload="chip7")
        engine.schedule(2.0, COMPLETE, tie=1, payload="chip1")
        engine.schedule(2.0, ARRIVAL, tie=4, payload="job4")
        engine.schedule(2.0, ARRIVAL, tie=2, payload="job2")
        seen = []
        engine.run(lambda e: seen.append(e.payload), lambda now: False)
        assert seen == ["chip1", "chip7", "job2", "job4"]

    def test_time_advances_only_when_round_is_quiet(self):
        engine = EventEngine()
        engine.schedule(0.0, ARRIVAL, tie=0)
        engine.schedule(1.0, ARRIVAL, tie=1)
        rounds = []

        def round_fn(now):
            rounds.append(now)
            if now == 0.0 and rounds.count(0.0) == 1:
                # First round at t=0 produces same-instant work.
                engine.schedule(0.0, DISPATCH, tie=0)
                return True
            return False

        applied = []
        engine.run(lambda e: applied.append((e.time_s, e.kind)), round_fn)
        assert applied == [
            (0.0, ARRIVAL), (0.0, DISPATCH), (1.0, ARRIVAL),
        ]
        # Round re-ran after the same-instant dispatch, then at t=1.
        assert rounds == [0.0, 0.0, 1.0]
        assert engine.counts[ARRIVAL] == 2
        assert engine.counts[DISPATCH] == 1

    def test_unknown_kind_rejected(self):
        engine = EventEngine()
        with pytest.raises(ValueError, match="unknown event kind"):
            engine.schedule(0.0, "quiesce")

    def test_ranks_cover_every_kind(self):
        assert set(EVENT_RANK) == {
            COMPLETE, RETRY, ARRIVAL, PREEMPT, DISPATCH,
        }
