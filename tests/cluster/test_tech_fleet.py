"""Tech-aware fleets: per-chip nodes, hetero preset, job resolution."""

import pytest

from repro.cluster.fleet import ChipSpec, Fleet, fleet_for, hetero_fleet
from repro.cluster.jobs import ClusterJob
from repro.tech import TechSpec


class TestChipSpecTech:
    def test_default_chip_has_no_tech(self):
        chip = ChipSpec(chip_id=0)
        assert chip.tech is None
        assert chip.tech_spec() is None
        assert "tech=" not in chip.label

    def test_default_techspec_collapses_to_none(self):
        assert ChipSpec(chip_id=0, tech=TechSpec()) == ChipSpec(chip_id=0)

    def test_tech_round_trips_and_labels(self):
        tech = TechSpec(node="32nm", cores="big_little")
        chip = ChipSpec(chip_id=1, num_workers=64, tech=tech)
        assert chip.tech_spec() == tech
        assert "tech=32nm-itrs/big_little" in chip.label
        assert ChipSpec.from_dict(chip.to_dict()) == chip

    def test_tech_splits_the_class_key(self):
        plain = ChipSpec(chip_id=0)
        shrunk = ChipSpec(chip_id=1, tech=TechSpec(node="45nm"))
        assert plain.class_key != shrunk.class_key


class TestFleets:
    def test_fleet_for_applies_one_tech_everywhere(self):
        tech = TechSpec(node="45nm")
        fleet = fleet_for(3, tech=tech)
        assert all(chip.tech_spec() == tech for chip in fleet)

    def test_hetero_fleet_cycles_the_four_classes(self):
        fleet = hetero_fleet(6)
        chips = list(fleet)
        assert [c.num_workers for c in chips] == [16, 64, 16, 64, 16, 64]
        assert chips[0].tech is None
        assert chips[1].tech_spec() == TechSpec(node="45nm")
        assert chips[2].tech_spec() == TechSpec(node="32nm", cores="big_little")
        assert chips[3].tech_spec() == TechSpec(node="22nm", cores="io")
        # Cycle wraps: chip 4 repeats chip 0's class.
        assert chips[4].class_key == chips[0].class_key

    def test_hetero_fleet_round_trips_through_json(self):
        fleet = hetero_fleet(4)
        assert Fleet.from_dict(fleet.to_dict()) == fleet

    def test_hetero_fleet_validates_size(self):
        with pytest.raises(ValueError, match="num_chips"):
            hetero_fleet(0)


class TestJobResolution:
    def test_spec_for_carries_the_chip_tech(self):
        job = ClusterJob(job_id=0, app="histogram", arrival_s=0.0)
        tech = TechSpec(node="32nm", cores="big_little")
        chip = ChipSpec(chip_id=2, tech=tech)
        spec = job.spec_for(chip)
        assert spec.tech_spec() == tech
        assert job.spec_for(ChipSpec(chip_id=0)).tech is None

    def test_same_class_chips_collapse_to_one_spec(self):
        job = ClusterJob(job_id=0, app="histogram", arrival_s=0.0)
        a = ChipSpec(chip_id=0, tech=TechSpec(node="45nm"))
        b = ChipSpec(chip_id=1, tech=TechSpec(node="45nm"))
        assert job.spec_for(a) == job.spec_for(b)
