"""Policy registry and per-policy choice behavior (stub context)."""

import pytest

from repro.cluster.costmodel import JobEstimate
from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import ClusterJob
from repro.cluster.policies import (
    SCHEDULERS,
    ClusterScheduler,
    create_scheduler,
    register_scheduler,
    scheduler_names,
)


class StubContext:
    """A SchedulingContext with scripted costs.

    ``estimates`` maps (job_id, chip_id) -> (service_s, energy_j);
    ``resident`` is a set of (job_id, chip_id) pairs with a local copy of
    the dataset; non-resident pairs pay ``transfer`` seconds of staging.
    """

    def __init__(self, estimates=None, resident=(), transfer=0.5):
        self.estimates = estimates or {}
        self.resident = set(resident)
        self.transfer = transfer

    def estimate(self, job, chip):
        service, energy = self.estimates.get(
            (job.job_id, chip.chip_id), (10.0, 1000.0)
        )
        return JobEstimate(service_s=service, energy_j=energy)

    def transfer_s(self, job, chip):
        return 0.0 if self.is_resident(job, chip) else self.transfer

    def is_resident(self, job, chip):
        return (job.job_id, chip.chip_id) in self.resident


def job(job_id, arrival=0.0, priority=0, deadline=None):
    return ClusterJob(
        job_id=job_id, app="histogram", arrival_s=arrival,
        priority=priority, deadline_s=deadline,
    )


CHIPS = (ChipSpec(chip_id=0), ChipSpec(chip_id=1), ChipSpec(chip_id=2))


class TestRegistry:
    def test_at_least_five_policies(self):
        assert len(SCHEDULERS) >= 5
        assert scheduler_names() == list(SCHEDULERS)
        assert {"fifo", "priority", "edf", "least_edp", "locality"} <= set(
            SCHEDULERS
        )

    def test_create_by_name_sets_name(self):
        for name in scheduler_names():
            assert create_scheduler(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            create_scheduler("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("fifo", ClusterScheduler)

    def test_empty_inputs_yield_none(self):
        ctx = StubContext()
        for name in scheduler_names():
            policy = create_scheduler(name)
            assert policy.select(0.0, [], list(CHIPS), ctx) is None
            assert policy.select(0.0, [job(0)], [], ctx) is None


class TestFifo:
    def test_arrival_order_lowest_chip(self):
        queue = [job(1, arrival=5.0), job(0, arrival=2.0)]
        picked, chip = create_scheduler("fifo").select(
            6.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 0
        assert chip.chip_id == 0

    def test_tie_breaks_on_job_id(self):
        queue = [job(7, arrival=1.0), job(3, arrival=1.0)]
        picked, _ = create_scheduler("fifo").select(
            2.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 3


class TestPriority:
    def test_highest_priority_first(self):
        queue = [job(0, arrival=0.0, priority=0), job(1, arrival=9.0, priority=3)]
        picked, _ = create_scheduler("priority").select(
            10.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 1

    def test_fifo_within_tier(self):
        queue = [job(1, arrival=5.0, priority=2), job(0, arrival=1.0, priority=2)]
        picked, _ = create_scheduler("priority").select(
            6.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 0


class TestDeadline:
    def test_earliest_deadline_first(self):
        queue = [
            job(0, arrival=0.0, deadline=500.0),
            job(1, arrival=1.0, deadline=100.0),
            job(2, arrival=2.0),  # best effort runs last
        ]
        picked, _ = create_scheduler("edf").select(
            3.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 1

    def test_best_effort_after_deadlined(self):
        queue = [job(0, arrival=0.0), job(1, arrival=9.0, deadline=1e6)]
        picked, _ = create_scheduler("edf").select(
            10.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 1

    def test_chip_minimizes_completion(self):
        # chip1 is slower but resident (no transfer); chip0 fast but cold.
        ctx = StubContext(
            estimates={(0, 0): (10.0, 1.0), (0, 1): (9.8, 1.0)},
            resident={(0, 1)},
            transfer=0.5,
        )
        _, chip = create_scheduler("edf").select(
            0.0, [job(0, deadline=50.0)], list(CHIPS[:2]), ctx
        )
        assert chip.chip_id == 1  # 9.8 < 10.5


class TestLeastEdp:
    def test_chip_minimizes_energy_delay_product(self):
        # chip0: 10 s x 1000 J = 10000; chip1: 12 s x 700 J = 8400.
        ctx = StubContext(
            estimates={(0, 0): (9.5, 1000.0), (0, 1): (11.5, 700.0)},
            transfer=0.5,
        )
        _, chip = create_scheduler("least_edp").select(
            0.0, [job(0)], list(CHIPS[:2]), ctx
        )
        assert chip.chip_id == 1

    def test_fifo_job_order(self):
        queue = [job(4, arrival=4.0), job(2, arrival=2.0)]
        picked, _ = create_scheduler("least_edp").select(
            5.0, queue, list(CHIPS), StubContext()
        )
        assert picked.job_id == 2


class TestLocality:
    def test_prefers_resident_pair(self):
        # Head job is cold everywhere; job 1's data lives on chip 2.
        ctx = StubContext(resident={(1, 2)})
        queue = [job(0, arrival=0.0), job(1, arrival=5.0)]
        picked, chip = create_scheduler("locality").select(
            6.0, queue, list(CHIPS), ctx
        )
        assert (picked.job_id, chip.chip_id) == (1, 2)

    def test_falls_back_to_head_job_cheapest_transfer(self):
        ctx = StubContext()  # nothing resident; uniform transfer
        queue = [job(1, arrival=5.0), job(0, arrival=0.0)]
        picked, chip = create_scheduler("locality").select(
            6.0, queue, list(CHIPS), ctx
        )
        assert (picked.job_id, chip.chip_id) == (0, 0)


def running(job_, chip, dispatched=0.0, transfer_end=0.5, completion=20.0,
            preemptable=True, token=1):
    from repro.cluster.policies import RunningJob

    return RunningJob(
        job=job_, chip=chip, dispatched_s=dispatched,
        transfer_end_s=transfer_end, completion_s=completion,
        preemptable=preemptable, token=token,
    )


class TestEdfPreempt:
    """Victim choice of the checkpoint-and-requeue EDF variant."""

    def setup_method(self):
        self.policy = create_scheduler("edf_preempt")
        # 10 s service + 0.5 s transfer everywhere (StubContext default).
        self.ctx = StubContext()

    def test_no_deadline_challenger_no_preemption(self):
        busy = [running(job(0), CHIPS[0], completion=50.0)]
        assert (
            self.policy.select_preemption(1.0, [job(1)], busy, self.ctx)
            is None
        )

    def test_evicts_the_latest_deadline_for_a_tight_one(self):
        busy = [
            running(job(0, deadline=100.0), CHIPS[0], completion=40.0),
            running(job(1), CHIPS[1], completion=60.0),  # best effort
        ]
        challenger = job(2, arrival=1.0, deadline=15.0)
        victim = self.policy.select_preemption(
            1.0, [challenger], busy, self.ctx
        )
        # Best-effort (deadline = inf) outranks any dated deadline.
        assert victim is not None and victim.chip.chip_id == 1

    def test_never_evicts_a_tighter_or_equal_deadline(self):
        busy = [running(job(0, deadline=15.0), CHIPS[0], completion=14.0)]
        challenger = job(1, arrival=1.0, deadline=15.0)
        assert (
            self.policy.select_preemption(1.0, [challenger], busy, self.ctx)
            is None
        )

    def test_no_eviction_when_preempting_cannot_meet(self):
        busy = [running(job(0), CHIPS[0], completion=40.0)]
        # Needs 1 + 0.5 + 10 = 11.5 but is due at 11: a lost cause.
        challenger = job(1, arrival=1.0, deadline=11.0)
        assert (
            self.policy.select_preemption(1.0, [challenger], busy, self.ctx)
            is None
        )

    def test_no_eviction_when_waiting_still_meets(self):
        busy = [running(job(0), CHIPS[0], completion=5.0)]
        # Earliest free chip at 5; 5 + 0.5 + 10 = 15.5 <= 30: just wait.
        challenger = job(1, arrival=1.0, deadline=30.0)
        assert (
            self.policy.select_preemption(1.0, [challenger], busy, self.ctx)
            is None
        )

    def test_skips_non_preemptable_executions(self):
        busy = [
            running(job(0), CHIPS[0], completion=40.0, preemptable=False),
        ]
        challenger = job(1, arrival=1.0, deadline=20.0)
        assert (
            self.policy.select_preemption(1.0, [challenger], busy, self.ctx)
            is None
        )


class TestSpeedScale:
    """Demotion of lost causes and slack-driven DVFS selection."""

    def setup_method(self):
        self.policy = create_scheduler("speed_scale")
        self.ctx = StubContext()  # 10 s service, 0.5 s transfer

    def test_demotes_unmeetable_deadline_jobs(self):
        doomed = job(0, arrival=0.0, deadline=1.0)  # needs 10.5 s
        feasible = job(1, arrival=5.0, deadline=100.0)
        picked, _ = self.policy.select(
            6.0, [doomed, feasible], list(CHIPS), self.ctx
        )
        # Plain EDF would pick the doomed job (earliest deadline);
        # demotion hands the slot to the meetable one.
        assert picked.job_id == 1

    def test_demoted_jobs_still_run_as_best_effort(self):
        doomed = job(0, arrival=0.0, deadline=1.0)
        picked, _ = self.policy.select(6.0, [doomed], list(CHIPS), self.ctx)
        assert picked.job_id == 0

    def test_no_scaling_while_deadline_work_waits(self):
        waiting = [job(1, arrival=0.0, deadline=500.0)]
        step = self.policy.speed_for(
            0.0, job(0, deadline=1e6), CHIPS[0], waiting, self.ctx
        )
        assert step is None

    def test_scales_to_slowest_step_that_meets(self):
        from repro.cluster.policies import speed_steps_for

        step = self.policy.speed_for(
            0.0, job(0, deadline=1e6), CHIPS[0], [], self.ctx
        )
        assert step is not None
        assert step == speed_steps_for(CHIPS[0])[0]
        assert not step.is_nominal
        assert step.time_scale > 1.0
        assert step.energy_scale < 1.0

    def test_runs_flat_out_when_nothing_meets(self):
        step = self.policy.speed_for(
            0.0, job(0, deadline=1.0), CHIPS[0], [], self.ctx
        )
        assert step is None

    def test_best_effort_jobs_never_scale(self):
        assert (
            self.policy.speed_for(0.0, job(0), CHIPS[0], [], self.ctx)
            is None
        )


class TestTechAware:
    """Deadline work to advanced nodes, background to efficiency mixes."""

    def setup_method(self):
        from repro.tech import TechSpec

        self.policy = create_scheduler("tech_aware")
        self.ctx = StubContext()
        self.hetero = [
            ChipSpec(chip_id=0),  # 65 nm out-of-order (paper default)
            ChipSpec(chip_id=1, num_workers=64, tech=TechSpec(node="45nm")),
            ChipSpec(
                chip_id=2, tech=TechSpec(node="32nm", cores="big_little")
            ),
            ChipSpec(
                chip_id=3, num_workers=64, tech=TechSpec(node="22nm", cores="io")
            ),
        ]

    def test_deadline_jobs_land_on_the_smallest_node(self):
        _, chip = self.policy.select(
            0.0, [job(0, deadline=100.0)], self.hetero, self.ctx
        )
        assert chip.chip_id == 3  # the 22 nm part

    def test_best_effort_soaks_the_efficiency_mixes(self):
        _, chip = self.policy.select(0.0, [job(0)], self.hetero, self.ctx)
        assert chip.chip_id == 2  # big.LITTLE 32 nm before the 22 nm io

    def test_chip_class_properties(self):
        assert [c.node_nm for c in self.hetero] == [65, 45, 32, 22]
        assert [c.core_class for c in self.hetero] == [
            "ooo", "ooo", "big_little", "io",
        ]
        assert [c.is_efficiency_class for c in self.hetero] == [
            False, False, True, True,
        ]
