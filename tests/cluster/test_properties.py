"""Property tests: engine conservation invariants over random workloads.

A scripted :class:`FakeCostModel` stands in for the simulator, so
Hypothesis can drive thousands of randomized traces, fleets, policies
and source disciplines through the *real* event engine and check the
invariants that must hold for every schedule:

* every arrival ends in exactly one terminal status, with a coherent
  timeline when it completed;
* checkpointed (preempted) work is charged exactly once -- segment
  fractions partition [0, 1] and segment sums equal the record totals;
* the engine is a pure function of its inputs: serving the same source
  twice yields byte-identical canonical payloads.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ArrivalTrace,
    ClusterJob,
    ClusterService,
    CostModel,
    JobEstimate,
    fleet_for,
)
from repro.cluster.jobs import COMPLETED, REJECTED, TERMINAL_STATUSES

#: Policies under test -- every registered discipline, preemptive and not.
POLICIES = (
    "fifo", "priority", "edf", "least_edp", "locality",
    "edf_preempt", "speed_scale", "tech_aware",
)


class FakeCostModel(CostModel):
    """Deterministic, simulation-free estimates keyed on (job, chip)."""

    def __init__(self):
        super().__init__(None)

    def estimate(self, job, chip):
        key = f"{job.app}|{job.scale:g}|{job.seed}|{chip.num_workers}"
        digest = hashlib.sha256(key.encode()).digest()
        service = 1.0 + digest[0] / 16.0  # 1.0 .. ~17
        energy = 50.0 + digest[1] * 2.0
        return JobEstimate(service_s=service, energy_j=energy)


APPS = ("histogram", "wordcount", "kmeans")


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    jobs = []
    for job_id in range(n):
        arrival = draw(
            st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
        )
        deadline = None
        if draw(st.booleans()):
            deadline = arrival + draw(
                st.floats(min_value=0.5, max_value=40.0, allow_nan=False)
            )
        jobs.append(
            ClusterJob(
                job_id=job_id,
                app=draw(st.sampled_from(APPS)),
                arrival_s=arrival,
                seed=draw(st.sampled_from((7, 9))),
                priority=draw(st.integers(min_value=0, max_value=3)),
                deadline_s=deadline,
                input_mb=draw(
                    st.floats(min_value=0.0, max_value=256.0, allow_nan=False)
                ),
            )
        )
        # ArrivalTrace requires time-sorted jobs.
        jobs.sort(key=lambda j: (j.arrival_s, j.job_id))
        jobs = [
            ClusterJob(**{**j.to_dict(), "job_id": idx})
            for idx, j in enumerate(jobs)
        ]
    return ArrivalTrace(name="prop", seed=1, jobs=tuple(jobs))


RUN_CONFIGS = st.fixed_dictionaries(
    {
        "trace": traces(),
        "policy": st.sampled_from(POLICIES),
        "chips": st.integers(min_value=1, max_value=3),
        "depth": st.integers(min_value=1, max_value=4),
        "closed": st.booleans(),
    }
)


def serve(config):
    service = ClusterService(
        fleet_for(config["chips"], num_workers=16),
        policy=config["policy"],
        max_queue_depth=config["depth"],
        cost_model=FakeCostModel(),
    )
    options = None
    source = "open"
    if config["closed"]:
        source = "closed"
        options = {"retry_limit": 2, "backoff_base_s": 1.0, "seed": 5}
    return service.run(
        config["trace"], source=source, source_options=options
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=RUN_CONFIGS)
def test_every_arrival_ends_in_exactly_one_terminal_status(config):
    result = serve(config)
    trace = config["trace"]
    assert len(result.records) == len(trace.jobs)
    for record, job in zip(result.records, trace.jobs):
        assert record.job.job_id == job.job_id
        assert record.status in TERMINAL_STATUSES
        assert record.attempts >= 1
        if record.status == COMPLETED:
            assert record.admitted_s is not None
            assert record.admitted_s >= job.arrival_s
            assert record.dispatched_s >= record.admitted_s
            assert record.completed_s >= record.dispatched_s
            assert record.service_s >= 0.0
            assert record.energy_j >= 0.0
        else:
            assert record.status == REJECTED
            assert record.completed_s is None
    report = result.report
    assert report.completed + report.rejected == len(trace.jobs)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=RUN_CONFIGS)
def test_preempted_work_is_charged_exactly_once(config):
    result = serve(config)
    model = FakeCostModel()
    fleet = result.fleet
    for record in result.records:
        if record.status != COMPLETED:
            continue
        if record.preemptions == 0:
            assert "segments" not in record.extra
            continue
        segments = record.extra["segments"]
        assert len(segments) == record.preemptions + 1
        assert segments[0]["from"] == 0.0
        assert segments[-1]["to"] == 1.0
        for left, right in zip(segments, segments[1:]):
            assert right["from"] == left["to"]
            assert left["to"] >= left["from"]
        assert sum(s["service_s"] for s in segments) == pytest.approx(
            record.service_s, abs=1e-9
        )
        assert sum(s["energy_j"] for s in segments) == pytest.approx(
            record.energy_j, abs=1e-9
        )
        # The energy charge never exceeds the job's priciest nominal
        # estimate: checkpointing cannot double-bill a single fraction.
        ceiling = max(
            model.estimate(record.job, chip).energy_j for chip in fleet
        )
        assert record.energy_j <= ceiling * (1.0 + 1e-9)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=RUN_CONFIGS)
def test_same_inputs_reproduce_byte_identical_payloads(config):
    first = serve(config)
    second = serve(config)
    assert first.payload_json() == second.payload_json()
    assert first.replay_digest == second.replay_digest
