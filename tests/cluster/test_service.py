"""ClusterService: the discrete-event loop end to end.

These tests run real studies (tiny scale-0.05 workloads on 16-core
chips) through the session-scoped StudyCache, so each unique StudySpec
simulates once per pytest session no matter how many tests replay it.
"""

import pytest

from repro.cluster import (
    ClusterService,
    fleet_for,
    generate_trace,
    run_workload,
)
from repro.cluster.jobs import COMPLETED
from repro.cluster.policies import ClusterScheduler
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.orchestrator.cache import StudyCache
from repro.telemetry import RecordingTracer, use_tracer


@pytest.fixture(scope="module")
def smoke_run(smoke_trace, small_fleet, study_cache):
    return run_workload(smoke_trace, small_fleet, "fifo", cache=study_cache)


class TestConservation:
    def test_every_job_accounted(self, smoke_run, smoke_trace):
        assert len(smoke_run.records) == len(smoke_trace)
        report = smoke_run.report
        assert report.completed + report.rejected == report.num_jobs
        assert report.admitted == report.completed

    def test_records_in_trace_order(self, smoke_run, smoke_trace):
        assert [r.job.job_id for r in smoke_run.records] == [
            j.job_id for j in smoke_trace.jobs
        ]

    def test_completed_timeline_is_ordered(self, smoke_run):
        for record in smoke_run.records:
            if record.status != COMPLETED:
                continue
            assert record.admitted_s >= record.job.arrival_s
            assert record.dispatched_s >= record.admitted_s
            assert record.completed_s == pytest.approx(
                record.dispatched_s + record.transfer_s + record.service_s
            )
            assert record.service_s > 0.0
            assert record.energy_j > 0.0

    def test_report_totals_match_records(self, smoke_run):
        done = [r for r in smoke_run.records if r.status == COMPLETED]
        assert smoke_run.report.total_energy_j == pytest.approx(
            sum(r.energy_j for r in done)
        )
        assert smoke_run.report.makespan_s == pytest.approx(
            max(r.completed_s for r in done)
        )
        assert 0.0 < smoke_run.report.throughput_jobs_per_s


class TestChipExclusivity:
    def test_no_chip_overlap(self, smoke_run):
        # Per chip, the (dispatch, completion) intervals must not overlap.
        by_chip = {}
        for record in smoke_run.records:
            if record.status == COMPLETED:
                by_chip.setdefault(record.chip_id, []).append(
                    (record.dispatched_s, record.completed_s)
                )
        for intervals in by_chip.values():
            intervals.sort()
            for (_, end), (start, _) in zip(intervals, intervals[1:]):
                assert start >= end - 1e-9


class TestBackpressure:
    def test_bounded_queue_rejects(self, burst_trace, small_fleet, study_cache):
        result = run_workload(
            burst_trace, small_fleet, "fifo",
            cache=study_cache, max_queue_depth=1,
        )
        assert result.report.rejected > 0
        rejected = [r for r in result.records if r.rejected]
        assert all(r.chip_id is None for r in rejected)
        assert all(r.completed_s is None for r in rejected)
        assert result.report.rejection_rate == pytest.approx(
            result.report.rejected / result.report.num_jobs
        )

    def test_deeper_queue_rejects_fewer(
        self, burst_trace, small_fleet, study_cache
    ):
        shallow = run_workload(
            burst_trace, small_fleet, "fifo",
            cache=study_cache, max_queue_depth=1,
        )
        deep = run_workload(
            burst_trace, small_fleet, "fifo",
            cache=study_cache, max_queue_depth=64,
        )
        assert deep.report.rejected <= shallow.report.rejected
        assert deep.report.completed >= shallow.report.completed

    def test_queue_depth_validated(self, small_fleet):
        with pytest.raises(ValueError, match="max_queue_depth"):
            ClusterService(small_fleet, max_queue_depth=0)


class TestResidency:
    def test_transfer_charged_once_per_chip_dataset(self, smoke_run):
        seen = set()
        for record in smoke_run.records:
            if record.status != COMPLETED:
                continue
            key = (record.chip_id, record.job.dataset_key)
            if key in seen:
                assert record.transfer_s == 0.0
            else:
                assert record.transfer_s > 0.0
                seen.add(key)


class TestDeterminism:
    def test_cold_runs_are_byte_identical(
        self, smoke_trace, small_fleet, study_cache
    ):
        a = run_workload(smoke_trace, small_fleet, "fifo", cache=study_cache)
        b = run_workload(smoke_trace, small_fleet, "fifo", cache=study_cache)
        assert a.payload_json() == b.payload_json()
        assert a.replay_digest == b.replay_digest


class TestStudyDedup:
    def test_cold_then_warm_cache(self, smoke_trace, small_fleet, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        cold = run_workload(smoke_trace, small_fleet, "fifo", cache=cache)
        stats = cold.study_stats
        # Every unique (job, chip-class) spec simulated exactly once;
        # repeat jobs resolved from the in-process memo.
        assert stats["computed"] == stats["unique_specs"]
        assert stats["cache_hits"] == 0
        assert stats["computed"] < len(smoke_trace)  # dedup happened
        warm = run_workload(smoke_trace, small_fleet, "fifo", cache=cache)
        assert warm.study_stats["computed"] == 0
        assert warm.study_stats["cache_hits"] == stats["unique_specs"]
        # ...and the dedup changed no metric.
        assert warm.replay_digest == cold.replay_digest


class TestFaultComposition:
    def test_faulty_chip_serves_degraded(self, smoke_trace, study_cache):
        plan = FaultPlan(
            name="stragglers",
            events=tuple(
                FaultSpec(
                    kind=FaultKind.CORE_SLOWDOWN, time_s=0.0,
                    target=(w,), magnitude=4.0,
                )
                for w in range(4)
            ),
        )
        fleet = fleet_for(2, num_workers=16, fault_plans=[plan, None])
        service = ClusterService(fleet, "fifo", cache=study_cache)
        job = smoke_trace.jobs[0]
        degraded = service.estimate(job, fleet.chip(0))
        clean = service.estimate(job, fleet.chip(1))
        assert degraded.service_s > clean.service_s
        # The faulty chip resolves to a distinct cached study.
        assert job.spec_for(fleet.chip(0)) != job.spec_for(fleet.chip(1))
        # And a run over the mixed fleet still completes every job.
        result = service.run(smoke_trace)
        assert result.report.completed + result.report.rejected == len(
            smoke_trace
        )


class TestTelemetry:
    def test_counters_and_spans(self, smoke_trace, small_fleet, study_cache):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            result = run_workload(
                smoke_trace, small_fleet, "fifo", cache=study_cache
            )
        report = result.report
        assert tracer.counter_total("cluster.admitted") == report.admitted
        assert tracer.counter_total("cluster.rejected") == report.rejected
        assert tracer.counter_total("cluster.dispatched") == report.completed
        assert tracer.counter_total("cluster.completed") == report.completed
        misses = report.deadlined - report.deadlines_met
        assert tracer.counter_total("cluster.deadline_misses") == misses
        spans = tracer.spans_by(cat="cluster")
        # One execution span per completed job (plus any queue spans).
        chip_spans = [s for s in spans if str(s.tid).startswith("chip")]
        assert len(chip_spans) == report.completed
        assert tracer.histograms["cluster.latency_s"].count == report.completed

    def test_silent_without_tracer(self, smoke_trace, small_fleet, study_cache):
        # NULL_TRACER path: must run cleanly with telemetry disabled.
        result = run_workload(
            smoke_trace, small_fleet, "fifo", cache=study_cache
        )
        assert result.report.completed > 0


class TestPolicyMisbehavior:
    def test_invalid_pick_raises(self, smoke_trace, small_fleet, study_cache):
        class RogueScheduler(ClusterScheduler):
            name = "rogue"

            def select(self, now, queue, free_chips, ctx):
                if not queue or not free_chips:
                    return None
                # Return a job that is not in the queue.
                bogus = queue[0]
                fake = type(bogus)(
                    job_id=10_000, app=bogus.app, arrival_s=0.0
                )
                return fake, free_chips[0]

        service = ClusterService(
            small_fleet, RogueScheduler(), cache=study_cache
        )
        with pytest.raises(RuntimeError, match="invalid"):
            service.run(smoke_trace)

    def test_equal_copy_is_not_the_queued_job(
        self, smoke_trace, small_fleet, study_cache
    ):
        # ClusterJob is a frozen dataclass with field equality, so a
        # policy returning a *reconstructed* copy of a queued job used
        # to slip past the equality-based membership check and remove.
        # The dispatch contract is identity: the policy must hand back
        # one of the exact objects it was given.
        from dataclasses import replace

        class CopyScheduler(ClusterScheduler):
            name = "copy"

            def select(self, now, queue, free_chips, ctx):
                if not queue or not free_chips:
                    return None
                return replace(queue[0]), free_chips[0]

        service = ClusterService(
            small_fleet, CopyScheduler(), cache=study_cache
        )
        with pytest.raises(RuntimeError, match="invalid"):
            service.run(smoke_trace)


class TestContextBeforeRun:
    def test_context_queries_work_before_first_run(
        self, smoke_trace, small_fleet, study_cache
    ):
        # estimate/transfer_s/is_resident form the SchedulingContext a
        # policy probes; they used to crash with AttributeError before
        # the first run() because residency state was created lazily.
        service = ClusterService(small_fleet, "fifo", cache=study_cache)
        job = smoke_trace.jobs[0]
        chip = next(iter(small_fleet))
        assert service.is_resident(job, chip) is False
        assert service.transfer_s(job, chip) == pytest.approx(
            small_fleet.transfer_s(job.input_mb)
        )
        assert service.estimate(job, chip).service_s > 0.0

    def test_residency_resets_between_runs(
        self, smoke_trace, small_fleet, study_cache
    ):
        service = ClusterService(small_fleet, "fifo", cache=study_cache)
        first = service.run(smoke_trace)
        served = [r for r in first.records if r.status == COMPLETED]
        # After a run the served datasets are resident on their chips...
        assert any(
            service.is_resident(r.job, small_fleet.chip(r.chip_id))
            for r in served
        )
        # ...but a new run starts cold: stale residency must not leak
        # into the second trace's transfer charges.
        second = service.run(smoke_trace)
        assert [r.transfer_s for r in second.records] == [
            r.transfer_s for r in first.records
        ]
        assert [r.completed_s for r in second.records] == [
            r.completed_s for r in first.records
        ]


class TestCompletionsBeforeArrivals:
    def test_freed_chip_visible_to_simultaneous_arrival(self, tmp_path):
        # One chip, queue depth 1: job B arrives exactly when job A
        # completes; the freed chip must admit and dispatch B, not
        # reject it.
        cache = StudyCache(tmp_path / "cache")
        fleet = fleet_for(1, num_workers=16)
        probe = run_workload(
            generate_trace("probe", seed=1, num_jobs=1, mean_gap_s=0.0,
                           apps=(("histogram", 1.0),), dataset_seeds=(9,)),
            fleet, "fifo", cache=cache,
        )
        first = probe.records[0]
        completion = first.completed_s
        trace = generate_trace(
            "edge", seed=1, num_jobs=1, mean_gap_s=0.0,
            apps=(("histogram", 1.0),), dataset_seeds=(9,),
        )
        from repro.cluster.arrivals import ArrivalTrace
        from repro.cluster.jobs import ClusterJob

        b = ClusterJob(
            job_id=1, app="histogram", arrival_s=completion,
            seed=9, input_mb=trace.jobs[0].input_mb,
        )
        edge = ArrivalTrace(name="edge", seed=1, jobs=trace.jobs + (b,))
        result = run_workload(
            edge, fleet, "fifo", cache=cache, max_queue_depth=1
        )
        assert result.report.rejected == 0
        assert result.records[1].dispatched_s == pytest.approx(completion)
