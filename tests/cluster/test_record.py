"""Run records: canonical persistence, replay verification, tampering."""

import json

import pytest

from repro.cluster import run_workload
from repro.cluster.record import (
    RECORD_SCHEMA_VERSION,
    ClusterRunResult,
    replay,
    verify_replay,
)
from repro.utils.jsonutil import canonical_json


@pytest.fixture(scope="module")
def recorded(smoke_trace, small_fleet, study_cache):
    return run_workload(smoke_trace, small_fleet, "priority", cache=study_cache)


class TestPersistence:
    def test_save_load_round_trip(self, recorded, tmp_path):
        path = tmp_path / "run.json"
        recorded.save(path)
        loaded = ClusterRunResult.load(path)
        assert loaded.payload_json() == recorded.payload_json()
        assert loaded.replay_digest == recorded.replay_digest
        assert loaded.study_stats == recorded.study_stats

    def test_file_is_canonical_json(self, recorded, tmp_path):
        path = tmp_path / "run.json"
        recorded.save(path)
        text = path.read_text()
        assert text.endswith("\n")
        data = json.loads(text)
        assert text == canonical_json(data) + "\n"
        assert data["schema_version"] == RECORD_SCHEMA_VERSION
        assert data["replay_digest"] == recorded.replay_digest

    def test_schema_version_rejected(self, recorded):
        data = recorded.to_dict()
        data["schema_version"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ClusterRunResult.from_dict(data)

    def test_digest_excludes_study_stats(self, recorded):
        # The cold/warm split must not leak into the replay contract.
        clone = ClusterRunResult.from_dict(recorded.to_dict())
        clone.study_stats = {"computed": 0, "cache_hits": 99}
        assert clone.replay_digest == recorded.replay_digest


class TestReplay:
    def test_warm_replay_matches_and_recomputes_nothing(
        self, recorded, study_cache
    ):
        fresh = replay(recorded, cache=study_cache)
        assert verify_replay(recorded, fresh) is None
        assert fresh.study_stats["computed"] == 0

    def test_tampered_record_diverges(self, recorded, study_cache):
        data = recorded.to_dict()
        data["report"]["total_energy_j"] += 1.0
        tampered = ClusterRunResult.from_dict(data)
        fresh = replay(tampered, cache=study_cache)
        divergence = verify_replay(tampered, fresh)
        assert divergence is not None
        assert "report" in divergence

    def test_different_policy_diverges(
        self, burst_trace, small_fleet, study_cache
    ):
        # Under the bursty workload fifo and locality genuinely schedule
        # differently; a record relabeled with the other policy must not
        # verify against its own replay.
        fifo = run_workload(
            burst_trace, small_fleet, "fifo", cache=study_cache
        )
        data = fifo.to_dict()
        data["policy"] = "locality"
        relabeled = ClusterRunResult.from_dict(data)
        fresh = replay(relabeled, cache=study_cache)
        assert fresh.policy == "locality"
        assert verify_replay(relabeled, fresh) is not None
