"""Power-capped chips, fleet budgets and the power_aware policy."""

import pytest

from repro.cluster.costmodel import JobEstimate
from repro.cluster.fleet import ChipSpec, Fleet, fleet_for
from repro.cluster.jobs import ClusterJob
from repro.cluster.policies import create_scheduler
from repro.power import PowerCapSpec
from repro.power.frontier import chip_peak_power_w


def job(job_id, arrival=0.0, deadline=None):
    return ClusterJob(
        job_id=job_id, app="histogram", arrival_s=arrival, deadline_s=deadline
    )


class StubContext:
    """Scripted SchedulingContext, optionally exposing a fleet."""

    def __init__(self, fleet=None):
        self.fleet = fleet

    def estimate(self, job, chip):
        return JobEstimate(service_s=10.0, energy_j=1000.0)

    def transfer_s(self, job, chip):
        return 0.0

    def is_resident(self, job, chip):
        return False


class TestCappedChips:
    def test_chip_cap_canonicalizes_and_labels(self):
        chip = ChipSpec(chip_id=0, power_cap=20.0)
        assert chip.power_cap == PowerCapSpec(chip_cap_w=20.0).to_json()
        assert chip.cap() == PowerCapSpec(chip_cap_w=20.0)
        assert "cap=20W" in chip.label
        # Default spec collapses: an uncapped chip has exactly one form.
        assert ChipSpec(chip_id=0, power_cap=PowerCapSpec()).power_cap is None

    def test_cap_splits_the_chip_class(self):
        uncapped = ChipSpec(chip_id=0)
        capped = ChipSpec(chip_id=1, power_cap=20.0)
        assert uncapped.class_key[:-1] == capped.class_key[:-1]
        assert uncapped.class_key != capped.class_key

    def test_job_spec_carries_the_chip_cap(self):
        capped = ChipSpec(chip_id=1, power_cap=20.0)
        spec = job(0).spec_for(capped)
        assert spec.cap() == PowerCapSpec(chip_cap_w=20.0)
        assert job(0).spec_for(ChipSpec(chip_id=0)).power_cap is None


class TestFleetBudget:
    def test_budget_round_trips_and_validates(self):
        fleet = fleet_for(2, power_budget_w=60.0)
        assert fleet.power_budget_w == 60.0
        assert Fleet.from_dict(fleet.to_dict()) == fleet
        # Unbudgeted fleets stay byte-identical to the pre-power form.
        assert "power_budget_w" not in fleet_for(2).to_dict()
        with pytest.raises(ValueError, match="power_budget_w"):
            fleet_for(2, power_budget_w=0.0)

    def test_per_chip_caps_mirror_fault_plans(self):
        fleet = fleet_for(3, power_caps=[None, 20.0, 25.0])
        assert fleet.chip(0).power_cap is None
        assert fleet.chip(1).cap().chip_cap_w == 20.0
        assert fleet.chip(2).cap().chip_cap_w == 25.0
        with pytest.raises(ValueError, match="power_caps"):
            fleet_for(3, power_caps=[20.0])


class TestPowerAwarePolicy:
    CHIPS = (
        ChipSpec(chip_id=0),
        ChipSpec(chip_id=1, power_cap=20.0),
        ChipSpec(chip_id=2, power_cap=10.0),
    )

    def test_deadline_jobs_land_on_the_least_capped_chip(self):
        policy = create_scheduler("power_aware")
        picked = policy.select(
            0.0, [job(0, deadline=50.0)], list(self.CHIPS), StubContext()
        )
        assert picked is not None
        assert picked[1].chip_id == 0  # uncapped first for deadlines

    def test_best_effort_jobs_soak_up_the_capped_chips(self):
        policy = create_scheduler("power_aware")
        picked = policy.select(0.0, [job(0)], list(self.CHIPS), StubContext())
        assert picked[1].chip_id == 2  # tightest cap first for best-effort

    def test_earliest_deadline_runs_first(self):
        policy = create_scheduler("power_aware")
        queue = [job(0), job(1, deadline=90.0), job(2, deadline=40.0)]
        picked = policy.select(0.0, queue, list(self.CHIPS), StubContext())
        assert picked[0].job_id == 2

    def test_budget_holds_dispatches_until_headroom_returns(self):
        peak = chip_peak_power_w(16)
        fleet = Fleet(
            chips=(ChipSpec(chip_id=0), ChipSpec(chip_id=1)),
            power_budget_w=peak * 1.5,
        )
        policy = create_scheduler("power_aware")
        ctx = StubContext(fleet=fleet)
        # Chip 0 is busy (not free): its draw eats the budget, so the
        # second dispatch would overshoot and must wait.
        held = policy.select(0.0, [job(0)], [fleet.chip(1)], ctx)
        assert held is None
        # With the whole fleet free there is headroom for one chip.
        picked = policy.select(0.0, [job(0)], list(fleet.chips), ctx)
        assert picked is not None

    def test_unaffordable_job_still_runs_on_an_idle_fleet(self):
        fleet = Fleet(
            chips=(ChipSpec(chip_id=0), ChipSpec(chip_id=1, power_cap=20.0)),
            power_budget_w=5.0,  # below even the capped chip's draw
        )
        policy = create_scheduler("power_aware")
        picked = policy.select(
            0.0, [job(0)], list(fleet.chips), StubContext(fleet=fleet)
        )
        # Anti-starvation: nothing is running, so the cheapest chip runs.
        assert picked is not None
        assert picked[1].chip_id == 1


class TestServiceIntegration:
    def test_power_aware_serves_a_budgeted_fleet(self, study_cache):
        from repro.cluster import preset_trace
        from repro.cluster.service import ClusterService

        fleet = fleet_for(
            2, num_workers=16, power_caps=[None, 20.0],
            power_budget_w=chip_peak_power_w(16) + 25.0,
        )
        trace = preset_trace("smoke", seed=7)
        service = ClusterService(
            fleet, policy="power_aware", cache=study_cache
        )
        outcome = service.run(trace)
        completed = [r for r in outcome.records if not r.rejected]
        assert completed
        assert all(r.completed_s is not None for r in completed)
        # Replays are deterministic.
        again = ClusterService(
            fleet, policy="power_aware", cache=study_cache
        ).run(trace)
        assert [r.to_dict() for r in outcome.records] == [
            r.to_dict() for r in again.records
        ]
