"""analysis.report integration: the cluster policy-comparison section."""

import inspect

import pytest

from repro.analysis.report import (
    CLUSTER_COLUMNS,
    cluster_rows,
    cluster_section,
    generate_report,
)
from repro.analysis.tables import format_table
from repro.cluster import run_workload, scheduler_names


@pytest.fixture(scope="module")
def two_runs(smoke_trace, small_fleet, study_cache):
    return [
        run_workload(smoke_trace, small_fleet, name, cache=study_cache)
        for name in ("fifo", "edf")
    ]


class TestClusterRows:
    def test_one_row_per_policy_with_all_columns(self, two_runs):
        rows = cluster_rows(two_runs)
        assert len(rows) == len(two_runs)
        assert [row["policy"] for row in rows] == ["fifo", "edf"]
        for row in rows:
            assert set(row) == set(CLUSTER_COLUMNS)
            assert all(isinstance(cell, str) for cell in row.values())

    def test_rows_render_through_format_table(self, two_runs):
        text = format_table(cluster_rows(two_runs))
        assert "fifo" in text and "edf" in text
        assert "throughput (/ks)" in text


class TestClusterSection:
    def test_renders_markdown_table(self, two_runs):
        text = cluster_section(two_runs)
        assert "## Cluster service" in text
        assert "| policy |" in text
        assert "fifo" in text and "edf" in text
        # Workload identity is named so tables aren't ambiguous.
        assert two_runs[0].trace.name in text
        assert two_runs[0].trace.trace_key[:12] in text

    def test_groups_by_trace(
        self, two_runs, burst_trace, small_fleet, study_cache
    ):
        other = run_workload(
            burst_trace, small_fleet, "fifo", cache=study_cache
        )
        text = cluster_section(two_runs + [other])
        assert text.count("| policy |") == 2
        assert text.count("### workload") == 2

    def test_empty_results(self):
        text = cluster_section([])
        assert "No cluster runs recorded." in text

    def test_generate_report_accepts_cluster_results(self):
        assert "cluster_results" in inspect.signature(
            generate_report
        ).parameters


class TestFullComparisonTable:
    def test_all_registered_policies_render(
        self, smoke_trace, small_fleet, study_cache
    ):
        results = [
            run_workload(smoke_trace, small_fleet, name, cache=study_cache)
            for name in scheduler_names()
        ]
        rows = cluster_rows(results)
        assert len(rows) == len(scheduler_names())
        text = cluster_section(results)
        for name in scheduler_names():
            assert name in text
