"""Arrival traces: determinism, canonical JSON, decorrelated knobs."""

import json

import pytest

from repro.cluster.arrivals import (
    TRACE_SCHEMA_VERSION,
    WORKLOADS,
    ArrivalTrace,
    generate_trace,
    preset_trace,
)
from repro.cluster.jobs import ClusterJob


class TestArrivalTrace:
    def test_jobs_sorted_by_arrival(self):
        late = ClusterJob(job_id=0, app="histogram", arrival_s=9.0)
        early = ClusterJob(job_id=1, app="wordcount", arrival_s=2.0)
        trace = ArrivalTrace(name="t", seed=1, jobs=(late, early))
        assert [j.job_id for j in trace.jobs] == [1, 0]
        assert trace.horizon_s == 9.0

    def test_duplicate_job_ids_rejected(self):
        a = ClusterJob(job_id=0, app="histogram", arrival_s=0.0)
        b = ClusterJob(job_id=0, app="wordcount", arrival_s=1.0)
        with pytest.raises(ValueError):
            ArrivalTrace(name="t", seed=1, jobs=(a, b))

    def test_json_round_trip(self):
        trace = preset_trace("smoke", seed=7)
        rebuilt = ArrivalTrace.from_json(trace.to_json())
        assert rebuilt == trace
        assert rebuilt.to_json() == trace.to_json()

    def test_schema_version_rejected(self):
        data = preset_trace("smoke", seed=7).to_dict()
        data["schema_version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ArrivalTrace.from_dict(data)

    def test_trace_key_is_content_address(self):
        a = preset_trace("smoke", seed=7)
        b = preset_trace("smoke", seed=7)
        c = preset_trace("smoke", seed=8)
        assert a.trace_key == b.trace_key
        assert a.trace_key != c.trace_key
        assert len(a.trace_key) == 64

    def test_canonical_json_is_byte_stable(self):
        trace = preset_trace("burst", seed=7)
        text = trace.to_json()
        assert text == preset_trace("burst", seed=7).to_json()
        # Canonical form: sorted keys, no whitespace.
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )


class TestGenerateTrace:
    def test_deterministic(self):
        a = generate_trace("x", seed=3, num_jobs=12, deadline_fraction=0.5)
        b = generate_trace("x", seed=3, num_jobs=12, deadline_fraction=0.5)
        assert a == b

    def test_app_mix_does_not_reshuffle_arrivals(self):
        # Apps draw from a decorrelated child stream, so changing the mix
        # must leave the arrival instants untouched.
        a = generate_trace("x", seed=3, num_jobs=10)
        b = generate_trace(
            "x", seed=3, num_jobs=10, apps=(("kmeans", 1.0),)
        )
        assert [j.arrival_s for j in a.jobs] == [j.arrival_s for j in b.jobs]
        assert all(j.app == "kmeans" for j in b.jobs)

    def test_burstiness_preserves_job_count(self):
        trace = generate_trace("x", seed=3, num_jobs=16, burstiness=0.9)
        assert len(trace) == 16

    def test_deadline_fraction(self):
        none = generate_trace("x", seed=3, num_jobs=16, deadline_fraction=0.0)
        all_ = generate_trace("x", seed=3, num_jobs=16, deadline_fraction=1.0)
        assert all(j.deadline_s is None for j in none.jobs)
        assert all(j.deadline_s is not None for j in all_.jobs)
        assert all(j.deadline_s > j.arrival_s for j in all_.jobs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_jobs": -1},
            {"num_jobs": 4, "burstiness": 1.0},
            {"num_jobs": 4, "dataset_seeds": ()},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            generate_trace("x", seed=3, **kwargs)


class TestPresets:
    def test_registry_names(self):
        assert set(WORKLOADS) == {
            "smoke", "steady", "burst", "priority_mix",
            "deadline_tight", "heavy",
        }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_preset_builds_and_is_stable(self, name):
        trace = preset_trace(name, seed=7)
        assert len(trace) > 0
        assert trace.name == name
        assert trace.trace_key == preset_trace(name, seed=7).trace_key

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown workload"):
            preset_trace("nope")
