"""Satellite: policy comparability on one seeded arrival trace.

Every registered policy must serve the *same* job set (same trace, same
fleet) so their SLO metrics are directly comparable, and each policy's
run must itself be byte-identical under replay -- the regression guard
for the cluster layer's determinism contract.
"""

import pytest

from repro.cluster import run_workload, scheduler_names
from repro.cluster.record import replay, verify_replay


@pytest.fixture(scope="module")
def all_policy_runs(burst_trace, small_fleet, study_cache):
    return {
        name: run_workload(
            burst_trace, small_fleet, name, cache=study_cache
        )
        for name in scheduler_names()
    }


class TestComparability:
    def test_every_policy_serves_the_same_job_set(
        self, all_policy_runs, burst_trace
    ):
        expected = [j.job_id for j in burst_trace.jobs]
        for name, result in all_policy_runs.items():
            assert [r.job.job_id for r in result.records] == expected, name
            assert result.trace.trace_key == burst_trace.trace_key, name
            report = result.report
            assert report.num_jobs == len(burst_trace), name
            assert report.completed + report.rejected == report.num_jobs, name

    def test_policies_share_the_workload_identity(self, all_policy_runs):
        keys = {r.trace.trace_key for r in all_policy_runs.values()}
        assert len(keys) == 1

    def test_policies_actually_differ_under_burst(self, all_policy_runs):
        # At least two registered policies must produce different
        # schedules on the bursty trace -- otherwise the comparison
        # table is vacuous.
        digests = {r.replay_digest for r in all_policy_runs.values()}
        assert len(digests) > 1

    def test_rejected_plus_completed_conserved_across_policies(
        self, all_policy_runs, burst_trace
    ):
        for name, result in all_policy_runs.items():
            statuses = {r.job.job_id for r in result.records}
            assert statuses == {j.job_id for j in burst_trace.jobs}, name


class TestReplayDeterminismRegression:
    @pytest.mark.parametrize("name", [
        "fifo", "priority", "edf", "least_edp", "locality",
    ])
    def test_byte_identical_replay_per_policy(
        self, name, all_policy_runs, study_cache
    ):
        recorded = all_policy_runs[name]
        fresh = replay(recorded, cache=study_cache)
        assert verify_replay(recorded, fresh) is None
        assert fresh.payload_json() == recorded.payload_json()
        # Warm replay resolves every study from cache: zero simulations.
        assert fresh.study_stats["computed"] == 0
