"""Cluster test fixtures: one tiny workload, one warm session cache.

Every service-level test serves the same small trace (4 unique study
specs at scale 0.05 on 16-core chips) against a session-scoped
StudyCache, so the underlying simulations run once per pytest session
and everything downstream resolves from cache/memo.
"""

import pytest

from repro.cluster import fleet_for, preset_trace
from repro.orchestrator.cache import StudyCache


@pytest.fixture(scope="session")
def smoke_trace():
    return preset_trace("smoke", seed=7)


@pytest.fixture(scope="session")
def burst_trace():
    return preset_trace("burst", seed=7)


@pytest.fixture(scope="session")
def small_fleet():
    return fleet_for(2, num_workers=16)


@pytest.fixture(scope="session")
def study_cache(tmp_path_factory):
    return StudyCache(tmp_path_factory.mktemp("cluster_cache"))
