"""Preemption, speed scaling and tech routing through the full engine.

Covers the engine-level guarantees the unit tests can't: checkpointed
work is charged exactly once, an interrupted transfer grants no
residency, and the committed deadline-heavy demo trace shows
``speed_scale`` beating plain ``edf`` on deadlines at lower energy.
"""

import json
import pathlib

import pytest

from repro.analysis.report import CLUSTER_COLUMNS, cluster_section
from repro.cluster import (
    ArrivalTrace,
    ClusterJob,
    fleet_for,
    preset_trace,
    run_workload,
)
from repro.cluster.jobs import COMPLETED, TERMINAL_STATUSES
from repro.cluster.record import replay, verify_replay

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "data" / "cluster_golden"


@pytest.fixture(scope="module")
def demo_trace():
    with open(GOLDEN_DIR / "deadline_demo.trace.json") as handle:
        return ArrivalTrace.from_dict(json.load(handle))


class TestEdfPreemptEngine:
    @pytest.fixture(scope="class")
    def runs(self, small_fleet, study_cache):
        trace = preset_trace("deadline_tight", seed=7)
        edf = run_workload(trace, small_fleet, "edf", cache=study_cache)
        pre = run_workload(
            trace, small_fleet, "edf_preempt", cache=study_cache
        )
        return edf, pre

    def test_preemption_happens_and_helps(self, runs):
        edf, pre = runs
        assert pre.report.preemptions > 0
        assert pre.report.deadlines_met > edf.report.deadlines_met
        assert pre.report.completed == edf.report.completed

    def test_every_record_terminal(self, runs):
        _, pre = runs
        for record in pre.records:
            assert record.status in TERMINAL_STATUSES

    def test_checkpoint_charges_work_exactly_once(self, runs):
        edf, pre = runs
        preempted = [r for r in pre.records if r.preemptions > 0]
        assert preempted
        for record in preempted:
            segments = record.extra["segments"]
            assert len(segments) == record.preemptions + 1
            # Segments partition the job's work fraction in [0, 1]...
            assert segments[0]["from"] == 0.0
            assert segments[-1]["to"] == 1.0
            for left, right in zip(segments, segments[1:]):
                assert right["from"] == left["to"]
                assert left["from"] <= left["to"]
            # ...and their charges sum to the record totals, so no
            # joule or second is counted twice across segments.
            assert sum(s["service_s"] for s in segments) == pytest.approx(
                record.service_s
            )
            assert sum(s["energy_j"] for s in segments) == pytest.approx(
                record.energy_j
            )
            assert sum(s["transfer_s"] for s in segments) == pytest.approx(
                record.transfer_s
            )
        # Fleet-level: the preempted schedule never charges more energy
        # than running every completed job once at nominal speed.
        assert pre.report.total_energy_j <= edf.report.total_energy_j * (
            1.0 + 1e-9
        )

    def test_preemptive_run_replays_byte_identical(self, runs, study_cache):
        _, pre = runs
        fresh = replay(pre, cache=study_cache)
        assert verify_replay(pre, fresh) is None


class TestTransferPreemptionResidency:
    """An interrupted staging transfer must not leave the dataset
    resident (the dispatch-time-residency bug this PR removes)."""

    @pytest.fixture(scope="class")
    def run(self, study_cache):
        fleet = fleet_for(1, num_workers=16)
        # Victim: best-effort, huge input (8.192 s transfer at 1 Gbps).
        victim = ClusterJob(
            job_id=0, app="wordcount", arrival_s=0.0, scale=0.05, seed=9,
            input_mb=1024.0,
        )
        # Challenger: different dataset, arrives mid-transfer with a
        # deadline only an immediate dispatch can meet.
        from repro.cluster import CostModel

        estimate = CostModel(study_cache).estimate(
            ClusterJob(job_id=1, app="histogram", arrival_s=0.2, seed=9),
            fleet.chips[0],
        )
        challenger = ClusterJob(
            job_id=1, app="histogram", arrival_s=0.2, scale=0.05, seed=9,
            input_mb=8.0,
            deadline_s=0.2 + fleet.transfer_s(8.0) + estimate.service_s + 0.5,
        )
        trace = ArrivalTrace(
            name="transfer_preempt", seed=1, jobs=(victim, challenger)
        )
        return run_workload(trace, fleet, "edf_preempt", cache=study_cache)

    def test_transfer_is_cut_and_wasted_time_accounted(self, run):
        victim = run.records[0]
        assert victim.preemptions == 1
        assert victim.status == COMPLETED
        # Preempted 0.2 s into an 8.192 s transfer: the spent wire time
        # is wasted...
        assert victim.wasted_transfer_s == pytest.approx(0.2)
        # ...and no service progress was checkpointed.
        wasted_segment = victim.extra["segments"][0]
        assert wasted_segment["from"] == wasted_segment["to"] == 0.0
        assert wasted_segment["service_s"] == 0.0
        assert wasted_segment["energy_j"] == 0.0

    def test_no_residency_from_the_interrupted_transfer(self, run):
        victim = run.records[0]
        fleet = run.fleet
        full_transfer = fleet.transfer_s(victim.job.input_mb)
        # The re-dispatch pays the FULL staging cost again: 0.2 s spent
        # on the cut transfer plus 8.192 s for the complete one.  Were
        # residency granted at dispatch (the old bug), the retry would
        # transfer nothing and this total would be just 0.2 s.
        assert victim.transfer_s == pytest.approx(0.2 + full_transfer)

    def test_challenger_meets_its_deadline(self, run):
        challenger = run.records[1]
        assert challenger.deadline_met is True
        assert challenger.preemptions == 0


class TestSpeedScaleCriterion:
    """The committed deadline-heavy trace: speed_scale strictly beats
    EDF on deadlines met, at equal-or-lower energy."""

    @pytest.fixture(scope="class")
    def runs(self, demo_trace, study_cache):
        fleet = fleet_for(2, num_workers=16)
        edf = run_workload(demo_trace, fleet, "edf", cache=study_cache)
        scaled = run_workload(
            demo_trace, fleet, "speed_scale", cache=study_cache
        )
        return edf, scaled

    def test_strictly_more_deadlines_at_lower_energy(self, runs):
        edf, scaled = runs
        assert scaled.report.deadlines_met > edf.report.deadlines_met
        assert scaled.report.total_energy_j <= edf.report.total_energy_j
        assert scaled.report.completed == edf.report.completed

    def test_slack_job_ran_sub_nominal(self, runs):
        _, scaled = runs
        dvfs = [r.extra.get("dvfs") for r in scaled.records]
        assert any(label is not None for label in dvfs)

    def test_report_table_shows_the_comparison(self, runs):
        edf, scaled = runs
        section = cluster_section([edf, scaled])
        assert "deadline_demo" in section
        assert "| edf " in section and "| speed_scale " in section
        assert "goodput (/ks)" in section
        assert "goodput (/ks)" in CLUSTER_COLUMNS

    def test_scaled_run_replays_byte_identical(self, runs, study_cache):
        _, scaled = runs
        fresh = replay(scaled, cache=study_cache)
        assert verify_replay(scaled, fresh) is None


class TestTechAwareEngine:
    def test_goodput_counts_only_met_deadlines(self):
        from repro.cluster.metrics import SloReport

        report = SloReport(
            policy="x", completed=10, deadlined=4, deadlines_met=1,
            makespan_s=100.0,
        )
        assert report.goodput_jobs_per_s == pytest.approx(0.07)
        report.preemptions = 2
        assert report.to_dict()["goodput_jobs_per_s"] == pytest.approx(0.07)
