"""The `repro cluster` CLI: run / replay / report round trips."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cache_dir(study_cache):
    return str(study_cache.root)


def test_cluster_run_single_policy(capsys, cache_dir, tmp_path):
    record = tmp_path / "run.json"
    trace = tmp_path / "trace.json"
    rc = main([
        "cluster", "run", "--workload", "smoke", "--policy", "fifo",
        "--cache-dir", cache_dir,
        "--record", str(record), "--export-trace", str(trace),
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "fifo" in captured.out
    assert "throughput (/ks)" in captured.out
    assert record.exists() and trace.exists()
    assert json.loads(record.read_text())["policy"] == "fifo"
    assert json.loads(trace.read_text())["name"] == "smoke"


def test_cluster_run_all_policies_writes_per_policy_records(
    capsys, cache_dir, tmp_path
):
    base = tmp_path / "runs.json"
    rc = main([
        "cluster", "run", "--workload", "smoke", "--policy", "all",
        "--cache-dir", cache_dir, "--record", str(base),
    ])
    captured = capsys.readouterr()
    assert rc == 0
    for policy in ("fifo", "priority", "edf", "least_edp", "locality"):
        assert policy in captured.out
        assert (tmp_path / f"runs_{policy}.json").exists()


def test_cluster_replay_verifies(capsys, cache_dir, tmp_path):
    record = tmp_path / "run.json"
    assert main([
        "cluster", "run", "--workload", "smoke", "--policy", "edf",
        "--cache-dir", cache_dir, "--record", str(record),
    ]) == 0
    capsys.readouterr()
    rc = main([
        "cluster", "replay", "--record", str(record),
        "--cache-dir", cache_dir,
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "replay byte-identical" in captured.out
    assert "0 studies simulated" in captured.out


def test_cluster_replay_detects_tampering(capsys, cache_dir, tmp_path):
    record = tmp_path / "run.json"
    assert main([
        "cluster", "run", "--workload", "smoke", "--policy", "fifo",
        "--cache-dir", cache_dir, "--record", str(record),
    ]) == 0
    data = json.loads(record.read_text())
    data["report"]["total_energy_j"] += 1.0
    record.write_text(json.dumps(data))
    capsys.readouterr()
    rc = main([
        "cluster", "replay", "--record", str(record),
        "--cache-dir", cache_dir,
    ])
    captured = capsys.readouterr()
    assert rc == 3
    assert "diverged" in captured.err


def test_cluster_report_from_records(capsys, cache_dir, tmp_path):
    base = tmp_path / "runs.json"
    assert main([
        "cluster", "run", "--workload", "smoke", "--policy", "all",
        "--cache-dir", cache_dir, "--record", str(base),
    ]) == 0
    capsys.readouterr()
    records = sorted(str(p) for p in tmp_path.glob("runs_*.json"))
    output = tmp_path / "section.md"
    rc = main(
        ["cluster", "report", "--record"] + records
        + ["--output", str(output)]
    )
    assert rc == 0
    text = output.read_text()
    assert "## Cluster service" in text
    assert text.count("| policy |") == 1  # one trace -> one table
    for policy in ("fifo", "priority", "edf", "least_edp", "locality"):
        assert policy in text


def test_cluster_run_custom_trace(capsys, cache_dir, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main([
        "cluster", "run", "--workload", "smoke",
        "--cache-dir", cache_dir, "--policy", "fifo",
        "--export-trace", str(trace_path),
    ]) == 0
    capsys.readouterr()
    rc = main([
        "cluster", "run", "--trace", str(trace_path),
        "--policy", "locality", "--cache-dir", cache_dir,
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "locality" in captured.out
