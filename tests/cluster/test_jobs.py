"""ClusterJob / JobRecord: canonicalization, casts, round trips."""

import json

import numpy as np
import pytest

from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import COMPLETED, REJECTED, ClusterJob, JobRecord


def _assert_builtin(value, path="$"):
    """Recursively assert *value* contains only JSON-native builtins."""
    if isinstance(value, dict):
        for key, item in value.items():
            assert type(key) is str, f"non-str key at {path}: {key!r}"
            _assert_builtin(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _assert_builtin(item, f"{path}[{index}]")
    else:
        assert value is None or type(value) in (str, int, float, bool), (
            f"non-builtin at {path}: {type(value)} {value!r}"
        )


class TestClusterJob:
    def test_canonicalizes_app_alias(self):
        job = ClusterJob(job_id=0, app="hist", arrival_s=1.0)
        assert job.app == "histogram"

    def test_numpy_scalars_are_cast(self):
        job = ClusterJob(
            job_id=np.int64(3),
            app="wordcount",
            arrival_s=np.float64(2.5),
            scale=np.float32(0.05),
            seed=np.int32(9),
            priority=np.int64(1),
            deadline_s=np.float64(99.0),
            input_mb=np.float64(48.0),
        )
        data = job.to_dict()
        _assert_builtin(data)
        json.dumps(data)  # must not raise

    def test_round_trip(self):
        job = ClusterJob(
            job_id=5, app="kmeans", arrival_s=10.0, priority=2,
            deadline_s=150.0, input_mb=32.0,
        )
        assert ClusterJob.from_dict(job.to_dict()) == job

    def test_round_trip_with_numpy_payload(self):
        # A dict assembled from numpy values (e.g. out of an analysis
        # array) must construct cleanly.
        data = {
            "job_id": np.int64(1),
            "app": "histogram",
            "arrival_s": np.float64(3.0),
            "scale": np.float64(0.05),
            "seed": np.int64(9),
            "priority": np.int64(0),
            "deadline_s": None,
            "input_mb": np.float64(64.0),
        }
        job = ClusterJob.from_dict(data)
        assert job.arrival_s == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"job_id": -1, "app": "histogram", "arrival_s": 0.0},
            {"job_id": 0, "app": "histogram", "arrival_s": -1.0},
            {"job_id": 0, "app": "histogram", "arrival_s": 0.0, "scale": 0.0},
            {"job_id": 0, "app": "histogram", "arrival_s": 5.0, "deadline_s": 5.0},
            {"job_id": 0, "app": "histogram", "arrival_s": 0.0, "input_mb": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterJob(**kwargs)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            ClusterJob(job_id=0, app="nosuchapp", arrival_s=0.0)

    def test_spec_for_same_chip_class_collapses(self):
        job = ClusterJob(job_id=0, app="histogram", arrival_s=0.0, seed=9)
        chip_a = ChipSpec(chip_id=0, num_workers=16)
        chip_b = ChipSpec(chip_id=7, num_workers=16)
        assert job.spec_for(chip_a) == job.spec_for(chip_b)
        assert job.spec_for(chip_a).num_workers == 16
        # vfi2_winoc chips skip the VFI 1 simulation.
        assert job.spec_for(chip_a).include_vfi1 is False

    def test_dataset_key_tracks_identity(self):
        a = ClusterJob(job_id=0, app="histogram", arrival_s=0.0, seed=9)
        b = ClusterJob(job_id=1, app="histogram", arrival_s=1.0, seed=9)
        c = ClusterJob(job_id=2, app="histogram", arrival_s=2.0, seed=11)
        assert a.dataset_key == b.dataset_key
        assert a.dataset_key != c.dataset_key


class TestJobRecord:
    def _record(self):
        job = ClusterJob(
            job_id=1, app="histogram", arrival_s=10.0, deadline_s=100.0
        )
        return JobRecord(
            job=job, status=COMPLETED, chip_id=0, admitted_s=10.0,
            dispatched_s=12.0, completed_s=60.0, transfer_s=0.5,
            service_s=47.5, energy_j=1234.5,
        )

    def test_lifecycle_properties(self):
        record = self._record()
        assert record.queue_wait_s == 2.0
        assert record.latency_s == 50.0
        assert record.deadline_met is True

    def test_deadline_none_for_best_effort_and_rejected(self):
        job = ClusterJob(job_id=0, app="histogram", arrival_s=0.0)
        assert JobRecord(job=job, completed_s=5.0).deadline_met is None
        timed = ClusterJob(
            job_id=1, app="histogram", arrival_s=0.0, deadline_s=10.0
        )
        assert JobRecord(job=timed, status=REJECTED).deadline_met is None
        assert JobRecord(job=timed, status=REJECTED).rejected

    def test_round_trip(self):
        record = self._record()
        rebuilt = JobRecord.from_dict(record.to_dict())
        assert rebuilt.to_dict() == record.to_dict()
        _assert_builtin(record.to_dict())

    def test_numpy_fields_cast_in_to_dict(self):
        record = self._record()
        record.service_s = np.float64(47.5)
        record.energy_j = np.float64(1234.5)
        record.extra = {"steals": np.int64(3)}
        data = record.to_dict()
        _assert_builtin(data)
        json.dumps(data)
