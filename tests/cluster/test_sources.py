"""Source disciplines: open-loop shedding vs closed-loop retry backoff."""

import pytest

from repro.cluster import fleet_for, run_workload
from repro.cluster.arrivals import (
    ClosedLoopSource,
    OpenLoopSource,
    make_source,
    preset_trace,
    source_from_dict,
)
from repro.cluster.jobs import COMPLETED, REJECTED, TERMINAL_STATUSES
from repro.cluster.record import replay, verify_replay


@pytest.fixture(scope="module")
def trace():
    # Sustained overload with giving-up room: closed-loop retries
    # genuinely recover shed jobs here (under burstier traces with a
    # shorter queue, retries can instead crowd out fresh arrivals).
    return preset_trace("heavy", seed=7)


class TestSourceConstruction:
    def test_open_is_the_default(self, trace):
        source = make_source(trace)
        assert isinstance(source, OpenLoopSource)
        assert source.to_dict() is None
        assert source.retry_at(trace.jobs[0], 1.0, 1) is None

    def test_open_rejects_options(self, trace):
        with pytest.raises(ValueError, match="no options"):
            make_source(trace, "open", retry_limit=2)

    def test_closed_round_trips_through_record_dict(self, trace):
        source = make_source(
            trace, "closed", retry_limit=2, backoff_base_s=1.5, seed=3
        )
        rebuilt = source_from_dict(trace, source.to_dict())
        assert rebuilt == source

    def test_source_from_dict_none_is_open(self, trace):
        assert isinstance(source_from_dict(trace, None), OpenLoopSource)

    def test_unknown_kind_rejected(self, trace):
        with pytest.raises(ValueError, match="unknown source"):
            source_from_dict(trace, {"kind": "lossy"})

    @pytest.mark.parametrize(
        "kwargs", [
            {"retry_limit": -1},
            {"backoff_base_s": 0.0},
            {"backoff_cap_s": 0.1, "backoff_base_s": 5.0},
            {"jitter": 1.5},
        ],
    )
    def test_closed_validates_parameters(self, trace, kwargs):
        with pytest.raises(ValueError):
            ClosedLoopSource(trace, **kwargs)


class TestBackoff:
    def test_backoff_doubles_then_caps(self, trace):
        source = ClosedLoopSource(
            trace, backoff_base_s=2.0, backoff_cap_s=9.0, jitter=0.0,
            retry_limit=10,
        )
        job = trace.jobs[0]
        backoffs = [source.backoff_s(job, k) for k in (1, 2, 3, 4)]
        assert backoffs == [2.0, 4.0, 8.0, 9.0]

    def test_jitter_is_seeded_and_bounded(self, trace):
        source = ClosedLoopSource(
            trace, backoff_base_s=4.0, jitter=0.5, seed=11
        )
        job = trace.jobs[0]
        first = source.backoff_s(job, 1)
        # Deterministic: same (seed, job, attempt) -> same jitter draw.
        assert source.backoff_s(job, 1) == first
        assert 2.0 <= first <= 6.0
        # A different attempt (and a different seed) redraws.
        assert source.backoff_s(job, 2) != first
        other = ClosedLoopSource(
            trace, backoff_base_s=4.0, jitter=0.5, seed=12
        )
        assert other.backoff_s(job, 1) != first

    def test_retry_at_gives_up_past_the_limit(self, trace):
        source = ClosedLoopSource(trace, retry_limit=2, jitter=0.0)
        job = trace.jobs[0]
        assert source.retry_at(job, 10.0, 1) == pytest.approx(15.0)
        assert source.retry_at(job, 10.0, 2) == pytest.approx(20.0)
        assert source.retry_at(job, 10.0, 3) is None


class TestClosedLoopRuns:
    @pytest.fixture(scope="class")
    def pair(self, trace, small_fleet, study_cache):
        open_run = run_workload(
            trace, small_fleet, policy="fifo", cache=study_cache,
            max_queue_depth=3,
        )
        closed_run = run_workload(
            trace, small_fleet, policy="fifo", cache=study_cache,
            max_queue_depth=3, source="closed",
            source_options={"retry_limit": 3, "backoff_base_s": 3.0},
        )
        return open_run, closed_run

    def test_every_job_ends_terminal_with_attempt_counts(self, pair):
        _, closed_run = pair
        for record in closed_run.records:
            assert record.status in TERMINAL_STATUSES
            assert record.attempts >= 1
            if record.status == REJECTED:
                # Gave up only after exhausting every retry.
                assert record.attempts == 4

    def test_retries_recover_shed_jobs(self, pair):
        open_run, closed_run = pair
        assert closed_run.report.retries > 0
        assert closed_run.report.completed > open_run.report.completed
        assert closed_run.report.rejected < open_run.report.rejected

    def test_closed_run_replays_byte_identical(self, pair, study_cache):
        _, closed_run = pair
        fresh = replay(closed_run, cache=study_cache)
        assert verify_replay(closed_run, fresh) is None

    def test_source_parameters_live_in_the_record(self, pair):
        _, closed_run = pair
        assert closed_run.source == {
            "kind": "closed", "retry_limit": 3, "backoff_base_s": 3.0,
            "backoff_cap_s": 120.0, "jitter": 0.5, "seed": 7,
        }
        assert "source" in closed_run.payload_dict()
        round_tripped = type(closed_run).from_dict(closed_run.to_dict())
        assert round_tripped.source == closed_run.source
        assert round_tripped.replay_digest == closed_run.replay_digest

    def test_retried_completion_counts_one_terminal_status(self, pair):
        _, closed_run = pair
        retried_completions = [
            r for r in closed_run.records
            if r.status == COMPLETED and r.attempts > 1
        ]
        assert retried_completions, "heavy must backpressure some retries"
        for record in retried_completions:
            # Admission stamped the *successful* attempt, after arrival.
            assert record.admitted_s > record.job.arrival_s
            assert record.completed_s >= record.dispatched_s
