"""ChipSpec / Fleet: validation, canonical round trips, fault plans."""

import numpy as np
import pytest

from repro.cluster.fleet import CHIP_CONFIGS, ChipSpec, Fleet, fleet_for
from repro.core.experiment import VFI1_MESH, VFI2_WINOC
from repro.faults import FaultKind, FaultPlan, FaultSpec


def _plan():
    return FaultPlan(
        name="straggler",
        events=(
            FaultSpec(
                kind=FaultKind.CORE_SLOWDOWN, time_s=0.0,
                target=(3,), magnitude=2.0,
            ),
        ),
    )


class TestChipSpec:
    def test_defaults(self):
        chip = ChipSpec(chip_id=0)
        assert chip.config == VFI2_WINOC
        assert chip.needs_vfi1 is False
        assert chip.fault_plan is None

    def test_vfi1_needs_vfi1(self):
        assert ChipSpec(chip_id=0, config=VFI1_MESH).needs_vfi1 is True

    def test_numpy_ids_cast(self):
        chip = ChipSpec(chip_id=np.int64(2), num_workers=np.int64(16))
        assert type(chip.chip_id) is int
        assert type(chip.num_workers) is int

    def test_fault_plan_canonicalized(self):
        from_plan = ChipSpec(chip_id=0, fault_plan=_plan())
        from_json = ChipSpec(chip_id=0, fault_plan=_plan().to_json())
        assert from_plan.fault_plan == from_json.fault_plan
        assert from_plan.plan() == _plan()
        assert "faults=straggler" in from_plan.label

    def test_class_key_ignores_chip_id(self):
        a = ChipSpec(chip_id=0)
        b = ChipSpec(chip_id=5)
        assert a.class_key == b.class_key
        assert a.class_key != ChipSpec(chip_id=0, fault_plan=_plan()).class_key

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chip_id": -1},
            {"chip_id": 0, "config": "nope"},
            {"chip_id": 0, "winoc_methodology": "nope"},
            {"chip_id": 0, "num_workers": 13},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChipSpec(**kwargs)

    def test_round_trip(self):
        chip = ChipSpec(chip_id=1, fault_plan=_plan())
        assert ChipSpec.from_dict(chip.to_dict()) == chip


class TestFleet:
    def test_fleet_for(self):
        fleet = fleet_for(3, num_workers=16)
        assert len(fleet) == 3
        assert [c.chip_id for c in fleet] == [0, 1, 2]
        assert all(c.config in CHIP_CONFIGS for c in fleet)

    def test_chips_sorted_and_unique(self):
        a = ChipSpec(chip_id=1)
        b = ChipSpec(chip_id=0)
        fleet = Fleet(chips=(a, b))
        assert [c.chip_id for c in fleet] == [0, 1]
        with pytest.raises(ValueError, match="unique"):
            Fleet(chips=(a, a))

    def test_transfer_time(self):
        fleet = fleet_for(1, interconnect_gbps=1.0)
        # 64 MB at 1 Gb/s = 64 * 8e6 / 1e9 s.
        assert fleet.transfer_s(64.0) == pytest.approx(0.512)
        fast = fleet_for(1, interconnect_gbps=4.0)
        assert fast.transfer_s(64.0) == pytest.approx(0.128)

    def test_chip_lookup(self):
        fleet = fleet_for(2)
        assert fleet.chip(1).chip_id == 1
        with pytest.raises(KeyError):
            fleet.chip(9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_chips": 0},
            {"num_chips": 2, "interconnect_gbps": 0.0},
            {"num_chips": 2, "fault_plans": [None]},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            fleet_for(**kwargs)

    def test_partial_fault_plans(self):
        fleet = fleet_for(2, fault_plans=[_plan(), None])
        assert fleet.chip(0).fault_plan is not None
        assert fleet.chip(1).fault_plan is None

    def test_round_trip(self):
        fleet = fleet_for(2, fault_plans=[_plan(), None], interconnect_gbps=2.0)
        rebuilt = Fleet.from_dict(fleet.to_dict())
        assert rebuilt == fleet
