import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0

    def test_rejects_negative_even_with_allow_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range_message_names_variable(self):
        with pytest.raises(ValueError, match="frobnicator"):
            check_in_range("frobnicator", 5.0, 0.0, 1.0)


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", 3, int) == 3

    def test_rejects(self):
        with pytest.raises(TypeError, match="x"):
            check_type("x", "3", int)

    def test_tuple_of_types(self):
        assert check_type("x", 3.0, (int, float)) == 3.0
