"""Deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, derive_rng, spawn_seed


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42).random(8)
        b = derive_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(derive_rng(1).random(8), derive_rng(2).random(8))

    def test_none_uses_library_default(self):
        assert np.array_equal(derive_rng(None).random(4), derive_rng(None).random(4))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert derive_rng(gen) is gen


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(3, "a", "b") == spawn_seed(3, "a", "b")

    def test_label_sensitivity(self):
        assert spawn_seed(3, "a") != spawn_seed(3, "b")

    def test_seed_sensitivity(self):
        assert spawn_seed(3, "a") != spawn_seed(4, "a")

    def test_label_order_matters(self):
        assert spawn_seed(3, "a", "b") != spawn_seed(3, "b", "a")

    def test_no_concatenation_collision(self):
        assert spawn_seed(3, "ab", "c") != spawn_seed(3, "a", "bc")


class TestRngMixin:
    def test_lazy_generator(self):
        class Thing(RngMixin):
            def __init__(self):
                self._seed = 5

        t1, t2 = Thing(), Thing()
        assert t1.rng.random() == t2.rng.random()

    def test_reseed(self):
        class Thing(RngMixin):
            _seed = 5

        t = Thing()
        first = t.rng.random()
        t.reseed(5)
        assert t.rng.random() == first
