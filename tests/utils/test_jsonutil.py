"""canonical_json / to_builtin: the byte-stability foundation."""

import json
import math

import numpy as np
import pytest

from repro.utils.jsonutil import canonical_json, to_builtin


class TestToBuiltin:
    def test_numpy_scalars(self):
        assert type(to_builtin(np.int64(3))) is int
        assert type(to_builtin(np.int32(3))) is int
        assert type(to_builtin(np.float64(2.5))) is float
        assert type(to_builtin(np.float32(0.5))) is float
        assert type(to_builtin(np.bool_(True))) is bool

    def test_arrays_become_nested_lists(self):
        out = to_builtin(np.arange(6).reshape(2, 3))
        assert out == [[0, 1, 2], [3, 4, 5]]
        assert all(type(v) is int for row in out for v in row)

    def test_tuples_become_lists(self):
        assert to_builtin((1, (2, 3))) == [1, [2, 3]]

    def test_nested_dict(self):
        data = {"a": np.float64(1.5), "b": {"c": (np.int64(2),)}}
        out = to_builtin(data)
        assert out == {"a": 1.5, "b": {"c": [2]}}
        json.dumps(out)

    def test_numeric_keys_stringified(self):
        out = to_builtin({np.int64(3): "x", 4: "y", 2.5: "z"})
        assert out == {"3": "x", "4": "y", "2.5": "z"}

    def test_plain_values_pass_through(self):
        for value in (None, True, "s", 1, 1.5, []):
            assert to_builtin(value) == value


class TestCanonicalJson:
    def test_sorted_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_numpy_equals_builtin_encoding(self):
        # The whole point: a payload assembled from numpy must hash the
        # same as the equivalent builtin payload.
        a = canonical_json({"x": np.float64(0.05), "n": np.int64(7)})
        b = canonical_json({"x": 0.05, "n": 7})
        assert a == b

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
        with pytest.raises(ValueError):
            canonical_json({"x": np.float64(math.inf)})

    def test_round_trip_is_stable(self):
        payload = {"jobs": [{"id": np.int64(1), "t": np.float64(2.5)}]}
        text = canonical_json(payload)
        assert canonical_json(json.loads(text)) == text
