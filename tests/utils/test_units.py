import pytest

from repro.utils.units import GHZ, NS, cycles_to_seconds, joules, seconds_to_cycles


def test_cycles_to_seconds():
    assert cycles_to_seconds(2.5e9, 2.5 * GHZ) == pytest.approx(1.0)


def test_seconds_to_cycles_roundtrip():
    assert seconds_to_cycles(cycles_to_seconds(1234.0, 2 * GHZ), 2 * GHZ) == pytest.approx(1234.0)


def test_cycles_to_seconds_rejects_bad_frequency():
    with pytest.raises(ValueError):
        cycles_to_seconds(100, 0)
    with pytest.raises(ValueError):
        seconds_to_cycles(1.0, -1)


def test_joules():
    assert joules(2.0, 3.0) == 6.0


def test_ns_constant():
    assert 5 * NS == pytest.approx(5e-9)
