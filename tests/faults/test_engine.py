"""FaultEngine unit behavior: validation, activation, degraded views,
the bottleneck shield, and substitute selection."""

import numpy as np
import pytest

from repro.core.platforms import build_nvfi_mesh, geometry_for
from repro.faults import (
    FaultEngine,
    FaultInjectionError,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
)
from repro.mapreduce.scheduler import (
    CappedStealingPolicy,
    DefaultStealingPolicy,
)
from repro.vfi.islands import DVFS_LADDER


@pytest.fixture(scope="module")
def platform():
    return build_nvfi_mesh(geometry_for(16))


def plan_of(*events):
    return FaultPlan(events=tuple(events))


def failure(time_s, worker):
    return FaultSpec(FaultKind.CORE_FAILURE, time_s, (worker,))


class TestValidation:
    def test_rejects_out_of_range_worker(self, platform):
        with pytest.raises(ValueError, match="worker 16"):
            FaultEngine(platform, plan_of(failure(1.0, 16)))

    def test_rejects_out_of_range_island(self, platform):
        bad = FaultSpec(FaultKind.ISLAND_THROTTLE, 1.0, (99,), 1.0)
        with pytest.raises(ValueError, match="island 99"):
            FaultEngine(platform, plan_of(bad))

    def test_link_targets_checked_leniently(self, platform):
        # A link absent from this platform family constructs fine and is
        # skipped at activation instead.
        missing = FaultSpec(FaultKind.LINK_FAILURE, 1.0, (0, 15))
        engine = FaultEngine(platform, plan_of(missing))
        engine.activate_due(2.0)
        impact = engine.impact()
        assert impact.events_skipped == 1
        assert impact.events_applied == []


class TestActivation:
    def test_fail_time_armed_at_construction(self, platform):
        engine = FaultEngine(
            platform, plan_of(failure(3.0, 2), failure(1.0, 2))
        )
        # Before any activation: earliest failure wins, others are inf.
        assert engine.fail_time[2] == 1.0
        assert np.isinf(engine.fail_time[3])

    def test_events_activate_in_time_order(self, platform):
        engine = FaultEngine(
            platform, plan_of(failure(2.0, 1), failure(1.0, 0))
        )
        engine.activate_due(1.5)
        assert engine.impact().failed_workers == [0]
        engine.activate_due(2.5)
        assert engine.impact().failed_workers == [0, 1]

    def test_slowdowns_compound(self, platform):
        slow = lambda t: FaultSpec(FaultKind.CORE_SLOWDOWN, t, (5,), 2.0)
        engine = FaultEngine(platform, plan_of(slow(1.0), slow(2.0)))
        engine.activate_due(3.0)
        freqs = engine.effective_worker_freqs(platform)
        nominal = np.array(platform.worker_frequencies())
        assert freqs[5] == pytest.approx(nominal[5] / 4.0)
        assert freqs[4] == pytest.approx(nominal[4])

    def test_dirty_flags(self, platform):
        engine = FaultEngine(platform, plan_of(failure(1.0, 0)))
        assert engine.activate_due(0.5) == (False, False)
        assert engine.activate_due(1.5) == (False, True)
        throttle = FaultSpec(FaultKind.ISLAND_THROTTLE, 1.0, (0,), 1.0)
        engine = FaultEngine(platform, plan_of(throttle))
        assert engine.activate_due(1.0) == (True, True)


class TestDegradedViews:
    def test_platform_unchanged_without_structural_faults(self, platform):
        engine = FaultEngine(platform, plan_of(failure(1.0, 0)))
        engine.activate_due(2.0)
        assert engine.effective_platform() is platform

    def test_link_failure_reroutes(self, platform):
        drop = FaultSpec(FaultKind.LINK_FAILURE, 1.0, (0, 1))
        engine = FaultEngine(platform, plan_of(drop))
        engine.activate_due(2.0)
        degraded = engine.effective_platform()
        assert degraded is not platform
        assert len(degraded.topology.links) == len(platform.topology.links) - 1
        assert degraded.topology.epoch != platform.topology.epoch
        # Rerouted: 0 -> 1 now takes the long way but still connects.
        assert degraded.routing.hop_count(0, 1) > platform.routing.hop_count(0, 1)
        # The degraded platform is cached per link-set.
        assert engine.effective_platform() is degraded

    def test_disconnection_raises(self, platform):
        # Sever every mesh edge incident to corner node 0 (side 4: east
        # neighbor 1, south neighbor 4).
        events = (
            FaultSpec(FaultKind.LINK_FAILURE, 1.0, (0, 1)),
            FaultSpec(FaultKind.LINK_FAILURE, 1.0, (0, 4)),
        )
        engine = FaultEngine(platform, plan_of(*events))
        with pytest.raises(FaultInjectionError, match="disconnects"):
            engine.activate_due(2.0)
            engine.effective_platform()

    def test_no_reroute_policy_raises_on_link_loss(self, platform):
        drop = FaultSpec(FaultKind.LINK_FAILURE, 1.0, (0, 1))
        engine = FaultEngine(
            platform,
            plan_of(drop),
            policy=ResiliencePolicy(reroute_failed_links=False),
        )
        with pytest.raises(FaultInjectionError, match="forbids rerouting"):
            engine.activate_due(2.0)

    def test_throttle_steps_down_the_ladder(self, platform):
        throttle = FaultSpec(FaultKind.ISLAND_THROTTLE, 1.0, (2,), 2.0)
        engine = FaultEngine(platform, plan_of(throttle))
        engine.activate_due(2.0)
        points = engine.effective_vf_points()
        base = platform.vf_points[2]
        base_index = DVFS_LADDER.index(base)
        assert points[2] == DVFS_LADDER[max(base_index - 2, 0)]
        assert points[0] == platform.vf_points[0]

    def test_throttle_clamps_at_ladder_bottom(self, platform):
        throttle = FaultSpec(FaultKind.ISLAND_THROTTLE, 1.0, (2,), 99.0)
        engine = FaultEngine(platform, plan_of(throttle))
        engine.activate_due(2.0)
        assert engine.effective_vf_points()[2] == DVFS_LADDER[0]

    def test_policy_rebalanced_against_degraded_freqs(self, platform):
        slow = FaultSpec(FaultKind.CORE_SLOWDOWN, 1.0, (3,), 2.0)
        engine = FaultEngine(platform, plan_of(slow))
        engine.activate_due(2.0)
        nominal = [float(f) for f in platform.worker_frequencies()]
        base_policy = CappedStealingPolicy(nominal)
        rebalanced = engine.effective_policy(base_policy, platform)
        assert isinstance(rebalanced, CappedStealingPolicy)
        assert rebalanced is not base_policy
        assert rebalanced.core_frequencies_hz[3] == pytest.approx(
            nominal[3] / 2.0
        )
        # Non-capped policies and opted-out runs pass through untouched.
        default = DefaultStealingPolicy()
        assert engine.effective_policy(default, platform) is default
        assert engine.effective_policy(None, platform) is None
        frozen = FaultEngine(
            platform,
            plan_of(slow),
            policy=ResiliencePolicy(rebalance_steal_caps=False),
        )
        frozen.activate_due(2.0)
        assert frozen.effective_policy(base_policy, platform) is base_policy


class TestBottleneckShield:
    def _engine(self, platform, master_worker, **policy_kwargs):
        throttled = platform.island_of_worker(master_worker)
        throttle = FaultSpec(
            FaultKind.ISLAND_THROTTLE, 1.0, (throttled,), 1.0
        )
        engine = FaultEngine(
            platform,
            plan_of(throttle),
            policy=ResiliencePolicy(**policy_kwargs),
        )
        engine.master_workers = {master_worker}
        engine.activate_due(2.0)
        return engine, throttled

    def test_shield_moves_throttle_off_master_island(self, platform):
        engine, throttled = self._engine(platform, master_worker=0)
        points = engine.effective_vf_points()
        # The master island keeps its base V/F ...
        assert points[throttled] == platform.vf_points[throttled]
        # ... and exactly one other island absorbed the step.
        stepped = [
            island
            for island, point in enumerate(points)
            if point != platform.vf_points[island]
        ]
        assert len(stepped) == 1 and stepped[0] != throttled
        assert engine.impact().bottleneck_reassignments == 1

    def test_shield_counted_once(self, platform):
        engine, _ = self._engine(platform, master_worker=0)
        engine.effective_vf_points()
        engine.effective_vf_points()
        assert engine.impact().bottleneck_reassignments == 1

    def test_shield_disabled_by_policy(self, platform):
        engine, throttled = self._engine(
            platform, master_worker=0, rerun_bottleneck_reassignment=False
        )
        points = engine.effective_vf_points()
        assert points[throttled] != platform.vf_points[throttled]
        assert engine.impact().bottleneck_reassignments == 0


class TestSubstitution:
    def test_ring_walks_past_dead_neighbors(self, platform):
        engine = FaultEngine(
            platform, plan_of(failure(1.0, 3), failure(1.0, 4))
        )
        engine.activate_due(2.0)
        freqs = engine.effective_worker_freqs(platform)
        assert engine.substitute_for(3, 2.0, freqs) == 5
        assert engine.substitute_for(15, 2.0, freqs) == 0

    def test_fastest_picks_highest_surviving_frequency(self, platform):
        engine = FaultEngine(
            platform,
            plan_of(failure(1.0, 0)),
            policy=ResiliencePolicy(substitute_order="fastest"),
        )
        engine.activate_due(2.0)
        freqs = engine.effective_worker_freqs(platform).copy()
        freqs[7] *= 3  # make one survivor unambiguously fastest
        assert engine.substitute_for(0, 2.0, freqs) == 7

    def test_no_survivors_returns_none(self, platform):
        events = tuple(failure(1.0, w) for w in range(16))
        engine = FaultEngine(platform, plan_of(*events))
        engine.activate_due(2.0)
        freqs = engine.effective_worker_freqs(platform)
        assert engine.substitute_for(0, 2.0, freqs) is None

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="substitute_order"):
            ResiliencePolicy(substitute_order="random")
