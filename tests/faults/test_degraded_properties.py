"""Property tests: degraded views stay complete under link removal.

For *any* survivable set of link failures (the degraded fabric stays
connected), the fault engine's rebuilt routing must stay complete: every
(src, dst) pair routes, every path walks only surviving links, and no
path cycles.  Non-survivable sets must be refused loudly, never served
with a broken table.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.platforms import build_nvfi_mesh, geometry_for
from repro.faults import (
    FaultEngine,
    FaultInjectionError,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.noc.routing import build_routing_table

_PLATFORM = build_nvfi_mesh(geometry_for(16))
_BASE_LINKS = list(_PLATFORM.topology.links)

#: Hypothesis draws subsets of link indices to fail.
link_subsets = st.sets(
    st.sampled_from(range(len(_BASE_LINKS))), max_size=8
)


def _removed_keys(indices):
    return {_BASE_LINKS[i].key for i in indices}


def _plan_for(indices):
    events = tuple(
        FaultSpec(FaultKind.LINK_FAILURE, 0.0, tuple(sorted(_BASE_LINKS[i].key)))
        for i in sorted(indices)
    )
    return FaultPlan(events=events)


@settings(max_examples=60, deadline=None)
@given(indices=link_subsets)
def test_survivable_removal_keeps_routing_complete(indices):
    removed = _removed_keys(indices)
    degraded = _PLATFORM.topology.without_links(removed)
    assume(degraded.is_connected())

    surviving = {link.key for link in degraded.links}
    assert surviving == {l.key for l in _BASE_LINKS} - removed

    table = build_routing_table(degraded)
    n = degraded.num_nodes
    for src in range(n):
        for dst in range(n):
            path = table.path(src, dst)
            assert path[0] == src
            assert path[-1] == dst
            # Simple path: no node revisited (routing never cycles).
            assert len(set(path)) == len(path)
            for a, b in zip(path, path[1:]):
                hop = frozenset((a, b))
                assert hop in surviving
                assert hop not in removed


@settings(max_examples=40, deadline=None)
@given(indices=link_subsets)
def test_engine_degraded_platform_routes_around_failures(indices):
    removed = _removed_keys(indices)
    assume(_PLATFORM.topology.without_links(removed).is_connected())

    engine = FaultEngine(_PLATFORM, _plan_for(indices))
    platform_dirty, _ = engine.activate_due(1.0)
    effective = engine.effective_platform()
    if not indices:
        # Nothing removed: the engine must hand back the base platform
        # itself so the no-fault prefix shares every cached table.
        assert effective is _PLATFORM
        return
    assert platform_dirty
    assert engine.removed_links == removed
    surviving = {link.key for link in effective.topology.links}
    assert surviving.isdisjoint(removed)
    assert len(surviving) == len(_BASE_LINKS) - len(removed)
    # The rebuilt table never routes over a failed link.
    for src in range(effective.topology.num_nodes):
        for dst in range(effective.topology.num_nodes):
            path = effective.routing.path(src, dst)
            for a, b in zip(path, path[1:]):
                assert frozenset((a, b)) not in removed


@settings(max_examples=40, deadline=None)
@given(indices=link_subsets)
def test_non_survivable_removal_is_refused(indices):
    removed = _removed_keys(indices)
    assume(not _PLATFORM.topology.without_links(removed).is_connected())

    engine = FaultEngine(_PLATFORM, _plan_for(indices))
    engine.activate_due(1.0)
    try:
        engine.effective_platform()
    except FaultInjectionError:
        return
    raise AssertionError(
        "disconnected degraded topology was served instead of refused"
    )


@settings(max_examples=40, deadline=None)
@given(indices=link_subsets)
def test_without_links_is_strict_and_epoch_bumped(indices):
    removed = _removed_keys(indices)
    assume(indices)
    once = _PLATFORM.topology.without_links(removed)
    assert once.epoch != _PLATFORM.topology.epoch
    assert len(once.links) == len(_BASE_LINKS) - len(removed)
    # Strict contract: removing an already-removed link is an error, not
    # a silent no-op (double-removal would hide a plan/topology mismatch).
    try:
        once.without_links(removed)
    except KeyError:
        pass
    else:
        raise AssertionError("double removal was silently accepted")
