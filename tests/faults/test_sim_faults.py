"""Fault injection through the full simulator: the PR's acceptance
criteria.

* golden bit-identity: no plan and an empty plan serialize bit-for-bit
  identically to the pre-fault simulator output;
* determinism: the same seeded plan run twice yields byte-identical
  serialized results and byte-identical telemetry exports;
* conservation: a core failure re-executes the killed work, so total
  committed instructions match the clean run exactly.
"""

import json

import numpy as np
import pytest

from repro.apps import create_app
from repro.core.platforms import build_nvfi_mesh, geometry_for
from repro.core.serialization import result_from_dict, result_to_dict
from repro.faults import FaultKind, FaultPlan, FaultSpec, preset_plan
from repro.sim.config import SimulationParams
from repro.sim.system import simulate
from repro.telemetry import RecordingTracer, use_tracer
from repro.telemetry.export import write_jsonl


@pytest.fixture(scope="module")
def case():
    app = create_app("histogram", scale=0.05, seed=9)
    trace = app.run(num_workers=16)
    return app.profile.l2_locality, trace


@pytest.fixture(scope="module")
def platform():
    return build_nvfi_mesh(geometry_for(16))


@pytest.fixture(scope="module")
def clean(case, platform):
    locality, trace = case
    return simulate(platform, trace, locality=locality)


def dumps(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def run_plan(case, platform, plan, resilience=None):
    locality, trace = case
    return simulate(
        platform,
        trace,
        locality=locality,
        params=SimulationParams(fault_plan=plan, resilience=resilience),
    )


class TestGoldenBitIdentity:
    def test_no_plan_and_empty_plan_are_bit_identical(self, case, platform, clean):
        locality, trace = case
        default_params = simulate(
            platform, trace, locality=locality, params=SimulationParams()
        )
        empty_plan = run_plan(case, platform, FaultPlan())
        golden = dumps(clean)
        assert dumps(default_params) == golden
        assert dumps(empty_plan) == golden

    def test_clean_document_has_no_faults_key(self, clean):
        assert clean.faults is None
        assert "faults" not in result_to_dict(clean)


class TestDeterminism:
    def test_same_plan_twice_is_bit_identical(self, case, platform, clean):
        plan = preset_plan("mixed", clean.total_time_s, 16)
        first = run_plan(case, platform, plan)
        second = run_plan(case, platform, plan)
        assert dumps(first) == dumps(second)

    def test_telemetry_exports_byte_identical(self, case, platform, clean, tmp_path):
        plan = preset_plan("mixed", clean.total_time_s, 16)
        paths = []
        for attempt in ("a", "b"):
            tracer = RecordingTracer()
            with use_tracer(tracer):
                run_plan(case, platform, plan)
            path = tmp_path / f"trace_{attempt}.jsonl"
            write_jsonl(tracer, path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        # The export actually contains fault records.
        text = paths[0].read_text()
        assert "fault.core_failure" in text
        assert "faults.events_applied" in text


class TestCoreFailure:
    @pytest.fixture(scope="class")
    def faulted(self, case, platform, clean):
        plan = preset_plan("core_failure", clean.total_time_s, 16)
        return run_plan(case, platform, plan)

    def test_all_work_accounted(self, clean, faulted):
        """Re-execution conserves committed instructions exactly: every
        task killed mid-flight runs again to completion elsewhere."""
        assert faulted.committed_instructions.sum() == pytest.approx(
            clean.committed_instructions.sum(), rel=0, abs=0
        )

    def test_makespan_inflates(self, clean, faulted):
        assert faulted.total_time_s > clean.total_time_s

    def test_impact_records_the_failure(self, faulted):
        impact = faulted.faults
        assert impact is not None
        assert impact.failed_workers == [4]
        assert impact.reexecuted_tasks + impact.substituted_tasks > 0
        assert impact.lost_busy_s >= 0.0
        assert len(impact.events_applied) == 1

    def test_dead_worker_stops_accruing_busy_time(self, clean, faulted):
        victim = faulted.faults.failed_workers[0]
        # The victim cannot be busier than the clean run for longer than
        # its failure instant allows.
        fail_at = faulted.faults.events_applied[0]["time_s"]
        assert faulted.busy_s[victim] <= fail_at + 1e-9

    def test_roundtrips_through_serialization(self, faulted):
        rebuilt = result_from_dict(result_to_dict(faulted))
        assert rebuilt.faults is not None
        assert rebuilt.faults.to_dict() == faulted.faults.to_dict()
        assert rebuilt.total_time_s == faulted.total_time_s
        assert np.array_equal(rebuilt.busy_s, faulted.busy_s)


class TestOtherScenarios:
    def test_straggler_slows_the_run(self, case, platform, clean):
        plan = preset_plan("straggler", clean.total_time_s, 16)
        result = run_plan(case, platform, plan)
        assert result.total_time_s > clean.total_time_s
        assert result.faults.failed_workers == []
        assert result.committed_instructions.sum() == pytest.approx(
            clean.committed_instructions.sum()
        )

    def test_throttle_records_island_and_completes(self, case, platform, clean):
        plan = preset_plan("throttle", clean.total_time_s, 16)
        result = run_plan(case, platform, plan)
        assert result.faults.throttled_islands == [1]
        assert result.total_time_s >= clean.total_time_s

    def test_link_failure_reroutes_and_completes(self, case, platform, clean):
        plan = preset_plan("link_failure", clean.total_time_s, 16)
        result = run_plan(case, platform, plan)
        assert len(result.faults.events_applied) == 1
        assert result.faults.events_skipped == 0
        # Longer detours move at least as many bit-hops over the fabric.
        assert result.network.average_hops >= clean.network.average_hops

    def test_channel_loss_skipped_on_pure_wire_mesh(self, case, platform, clean):
        plan = preset_plan("channel_loss", clean.total_time_s, 16)
        result = run_plan(case, platform, plan)
        assert result.faults.events_applied == []
        assert result.faults.events_skipped == 1
        # A skipped event leaves the run's numbers untouched.
        assert result.total_time_s == pytest.approx(clean.total_time_s)

    def test_late_plan_never_fires(self, case, platform, clean):
        plan = FaultPlan(
            events=(
                FaultSpec(
                    FaultKind.CORE_FAILURE, clean.total_time_s * 10, (3,)
                ),
            )
        )
        result = run_plan(case, platform, plan)
        # The failure lies beyond the horizon: nothing applied, but the
        # run still reports an (empty) impact record.
        assert result.faults is not None
        assert result.faults.events_applied == []
        assert result.total_time_s == pytest.approx(clean.total_time_s)
