"""FaultSpec/FaultPlan: validation, canonical ordering, serialization,
seeded sampling, and the preset scenarios."""

import json

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, preset_plan
from repro.faults.scenarios import SCENARIOS


def spec(kind=FaultKind.CORE_FAILURE, time_s=1.0, target=(0,), magnitude=1.0):
    return FaultSpec(kind, time_s, target, magnitude)


class TestFaultSpec:
    def test_roundtrip(self):
        original = spec(FaultKind.CORE_SLOWDOWN, 2.5, (3,), 1.75)
        assert FaultSpec.from_dict(original.to_dict()) == original

    def test_target_coercion(self):
        assert spec(target=[4]).target == (4,)
        assert spec(FaultKind.LINK_FAILURE, 1.0, [2, 5]).target == (2, 5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time_s=-0.1),
            dict(target=()),
            dict(target=(0, 1)),  # core failure is unary
            dict(target=(-1,)),
            dict(kind=FaultKind.LINK_FAILURE, target=(2,)),
            dict(kind=FaultKind.LINK_FAILURE, target=(3, 3)),  # self-link
            dict(kind=FaultKind.CORE_SLOWDOWN, magnitude=1.0),  # must be > 1
            dict(kind=FaultKind.ISLAND_THROTTLE, magnitude=0.0),
            dict(kind=FaultKind.ISLAND_THROTTLE, magnitude=1.5),  # int steps
        ],
    )
    def test_rejects_invalid(self, kwargs):
        base = dict(
            kind=FaultKind.CORE_FAILURE, time_s=1.0, target=(0,), magnitude=1.0
        )
        if kwargs.get("kind") is FaultKind.CORE_SLOWDOWN:
            base["magnitude"] = 2.0
        base.update(kwargs)
        with pytest.raises(ValueError):
            FaultSpec(**base)


class TestFaultPlan:
    def test_events_sorted_canonically(self):
        late = spec(time_s=5.0)
        early = spec(time_s=1.0, target=(2,))
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)

    def test_len_and_bool(self):
        assert len(FaultPlan()) == 0
        assert not FaultPlan()
        assert FaultPlan(events=(spec(),))

    def test_json_roundtrip_is_canonical(self):
        plan = FaultPlan(
            events=(spec(time_s=3.0), spec(time_s=1.0, target=(7,))),
            seed=42,
            name="case",
        )
        text = plan.to_json()
        again = FaultPlan.from_json(text)
        assert again == plan
        assert again.to_json() == text
        # Canonical form: sorted keys, no whitespace.
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_seed_omitted_when_none(self):
        assert "seed" not in FaultPlan(events=(spec(),)).to_dict()

    def test_sample_is_deterministic(self):
        kwargs = dict(
            num_workers=16,
            horizon_s=10.0,
            failures=2,
            stragglers=1,
            throttles=1,
            link_candidates=((0, 1), (4, 5)),
            link_failures=1,
        )
        a = FaultPlan.sample(seed=3, **kwargs)
        b = FaultPlan.sample(seed=3, **kwargs)
        c = FaultPlan.sample(seed=4, **kwargs)
        assert a == b
        assert a.to_json() == b.to_json()
        assert a != c
        assert len(a) == 5
        assert a.seed == 3

    def test_sample_targets_in_range(self):
        plan = FaultPlan.sample(
            seed=11, num_workers=8, horizon_s=4.0, failures=3, stragglers=3
        )
        for event in plan.events:
            assert all(0 <= t < 8 for t in event.target)
            assert 0.0 <= event.time_s <= 4.0


class TestPresetScenarios:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_every_scenario_builds(self, scenario):
        plan = preset_plan(scenario, horizon_s=10.0, num_workers=16)
        assert len(plan) >= 1
        assert plan.name == scenario
        assert all(0.0 < e.time_s < 10.0 for e in plan.events)
        # Deterministic: same inputs, same canonical JSON.
        assert plan.to_json() == preset_plan(
            scenario, horizon_s=10.0, num_workers=16
        ).to_json()

    def test_mixed_covers_every_kind(self):
        plan = preset_plan("mixed", horizon_s=10.0, num_workers=16)
        assert {e.kind for e in plan.events} == set(FaultKind)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            preset_plan("nope", 10.0, 16)
        with pytest.raises(ValueError):
            preset_plan("mixed", 0.0, 16)
        with pytest.raises(ValueError):
            preset_plan("mixed", 10.0, 2)
