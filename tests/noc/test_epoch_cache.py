"""Topology mutation epochs and static-cache invalidation.

The flow-usage / dense-latency / pairwise-energy tables are cached in a
``static_cache`` dict that degraded platforms share with their base
platform (``FaultEngine.effective_platform``).  The cache keys embed the
topology's mutation epoch: a topology derived via ``with_links`` /
``without_links`` gets a fresh epoch, so its tables can never alias the
intact fabric's even inside one shared dict."""

import numpy as np
import pytest

from repro.noc.network import FlowNetworkModel
from repro.noc.routing import build_mesh_routing, build_routing_table
from repro.noc.topology import GridGeometry, build_mesh

GEO = GridGeometry(4, 4)


def model_for(topology, routing, shared_cache=None):
    model = FlowNetworkModel(
        topology, routing, [0] * 16, [2.5e9]
    )
    if shared_cache is not None:
        model.static_cache = shared_cache
    return model


class TestMutationEpoch:
    def test_fresh_build_has_epoch_zero(self):
        assert build_mesh(GEO).epoch == 0

    def test_derived_topologies_get_fresh_epochs(self):
        mesh = build_mesh(GEO)
        removed = mesh.without_links([frozenset((0, 1))])
        removed_again = mesh.without_links([frozenset((0, 1))])
        assert removed.epoch != mesh.epoch
        assert removed_again.epoch != removed.epoch

    def test_without_links_drops_exactly_the_requested_links(self):
        mesh = build_mesh(GEO)
        removed = mesh.without_links([frozenset((0, 1)), frozenset((5, 6))])
        kept = {link.key for link in removed.links}
        assert frozenset((0, 1)) not in kept
        assert frozenset((5, 6)) not in kept
        assert len(removed.links) == len(mesh.links) - 2

    def test_without_links_rejects_unknown_keys(self):
        mesh = build_mesh(GEO)
        with pytest.raises(KeyError, match="0, 15"):
            mesh.without_links([frozenset((0, 15))])


class TestSharedCacheInvalidation:
    def test_removing_a_link_recomputes_flow_usage(self):
        """Regression: a degraded model sharing the base model's static
        cache must rebuild its batch tables, not reuse the intact ones."""
        mesh = build_mesh(GEO)
        base = model_for(mesh, build_mesh_routing(mesh))
        shared = base.static_cache

        degraded_topo = mesh.without_links([frozenset((0, 1))])
        degraded = model_for(
            degraded_topo, build_routing_table(degraded_topo), shared
        )

        # Same batch of flows through both models.
        src, dst, rate = [0, 3], [1, 12], [8e9, 4e9]
        base.add_flows(src, dst, rate)
        degraded.add_flows(src, dst, rate)

        # 0 -> 1 was a one-hop flow on the mesh; without the link it must
        # detour, loading strictly more link-hops in total.
        assert degraded.load.link_load.sum() > base.load.link_load.sum()
        # Both table variants coexist in the shared dict under distinct
        # epoch-bearing keys.
        usage_keys = [k for k in shared if k[0] == "flow_usage"]
        assert len(usage_keys) == 2
        epochs = {key[2] for key in usage_keys}
        assert epochs == {mesh.epoch, degraded_topo.epoch}

    def test_scalar_and_batch_agree_on_the_degraded_fabric(self):
        mesh = build_mesh(GEO)
        base = model_for(mesh, build_mesh_routing(mesh))
        degraded_topo = mesh.without_links([frozenset((0, 1))])
        routing = build_routing_table(degraded_topo)

        batch = model_for(degraded_topo, routing, base.static_cache)
        batch.add_flows([0], [1], [1e9])
        scalar = model_for(degraded_topo, routing, base.static_cache)
        scalar.add_flow(0, 1, 1e9)
        np.testing.assert_allclose(
            batch.load.link_load, scalar.load.link_load, rtol=1e-12
        )

    def test_dense_latency_tables_do_not_alias(self):
        from repro.noc.dense import DenseLatencyModel

        mesh = build_mesh(GEO)
        base = model_for(mesh, build_mesh_routing(mesh))
        degraded_topo = mesh.without_links([frozenset((0, 1))])
        degraded = model_for(
            degraded_topo, build_routing_table(degraded_topo),
            base.static_cache,
        )
        base_latency = DenseLatencyModel(base).latency_matrices([544.0])[544.0]
        degraded_latency = DenseLatencyModel(degraded).latency_matrices(
            [544.0]
        )[544.0]
        # The severed pair detours, so it must be strictly slower.
        assert degraded_latency[0, 1] > base_latency[0, 1]
