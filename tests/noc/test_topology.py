"""Grid geometry, links and the mesh builder."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.topology import GridGeometry, Link, LinkKind, Topology, build_mesh


class TestGridGeometry:
    def test_coordinates_roundtrip(self, geometry):
        for node in range(geometry.num_nodes):
            column, row = geometry.coordinates(node)
            assert geometry.node_at(column, row) == node

    def test_distance_symmetric(self, geometry):
        assert geometry.distance_mm(0, 63) == geometry.distance_mm(63, 0)

    def test_distance_diagonal(self, geometry):
        assert geometry.distance_mm(0, 9) == pytest.approx(
            math.sqrt(2) * geometry.pitch_mm
        )

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_manhattan_triangle_inequality_via_zero(self, a, b):
        geo = GridGeometry(8, 8)
        assert geo.manhattan_hops(a, b) <= geo.manhattan_hops(a, 0) + geo.manhattan_hops(0, b)

    def test_out_of_range_node(self, geometry):
        with pytest.raises(ValueError):
            geometry.coordinates(64)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            GridGeometry(0, 8)


class TestLink:
    def test_rejects_self_link(self):
        with pytest.raises(ValueError):
            Link(3, 3)

    def test_wireless_needs_channel(self):
        with pytest.raises(ValueError):
            Link(0, 1, LinkKind.WIRELESS)

    def test_wire_rejects_channel(self):
        with pytest.raises(ValueError):
            Link(0, 1, LinkKind.WIRE, channel=0)

    def test_other(self):
        link = Link(2, 5)
        assert link.other(2) == 5
        assert link.other(5) == 2
        with pytest.raises(ValueError):
            link.other(7)


class TestMesh:
    def test_link_count(self, mesh):
        # 8x8 mesh: 2 * 8 * 7 = 112 bidirectional links.
        assert len(mesh.links) == 112

    def test_average_degree(self, mesh):
        assert mesh.average_degree() == pytest.approx(3.5)

    def test_connected(self, mesh):
        assert mesh.is_connected()

    def test_degrees_bounded(self, mesh):
        degrees = [mesh.degree(n) for n in range(mesh.num_nodes)]
        assert min(degrees) == 2  # corners
        assert max(degrees) == 4  # interior

    def test_duplicate_link_rejected(self, geometry):
        links = [Link(0, 1), Link(1, 0)]
        with pytest.raises(ValueError):
            Topology("dup", geometry, links)

    def test_find_link(self, mesh):
        link = mesh.find_link(0, 1)
        assert link.key == frozenset((0, 1))
        with pytest.raises(KeyError):
            mesh.find_link(0, 63)

    def test_with_links_appends(self, mesh):
        bigger = mesh.with_links([Link(0, 63, LinkKind.WIRELESS, 10.0, channel=0)])
        assert len(bigger.links) == 113
        assert len(mesh.links) == 112  # original untouched
