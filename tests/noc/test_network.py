"""Flow model: latency composition, load sensitivity, energy accounting."""

import numpy as np
import pytest

from repro.noc.network import FlowNetworkModel, NocParams
from repro.noc.routing import build_mesh_routing, build_routing_table
from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry, build_mesh
from repro.noc.wireless import assign_wireless_links
from repro.noc.placement import center_wireless_placement
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)
NOMINAL = [2.5e9] * 4


def mesh_model(freqs=NOMINAL, voltages=None):
    mesh = build_mesh(GEO)
    return FlowNetworkModel(
        mesh, build_mesh_routing(mesh), CLUSTERS, freqs, voltages
    )


def winoc_model(freqs=NOMINAL):
    wireline = build_small_world(GEO, CLUSTERS, seed=3)
    winoc = assign_wireless_links(
        wireline, center_wireless_placement(GEO, CLUSTERS)
    )
    return FlowNetworkModel(winoc, build_routing_table(winoc), CLUSTERS, freqs)


class TestLatency:
    def test_local_port(self):
        model = mesh_model()
        assert model.latency(3, 3, 0) == pytest.approx(
            NocParams().router_pipeline_cycles / 2.5e9
        )

    def test_monotone_in_distance(self):
        model = mesh_model()
        near = model.latency(0, 1, 544)
        far = model.latency(0, 63, 544)
        assert far > near

    def test_monotone_in_payload(self):
        model = mesh_model()
        assert model.latency(0, 63, 544) > model.latency(0, 63, 64)

    def test_load_increases_latency(self):
        model = mesh_model()
        unloaded = model.latency(0, 7, 544)
        model.add_flow(0, 7, 60e9)
        assert model.latency(0, 7, 544) > unloaded

    def test_reset_flows_restores(self):
        model = mesh_model()
        unloaded = model.latency(0, 7, 544)
        model.add_flow(0, 7, 60e9)
        model.reset_flows()
        assert model.latency(0, 7, 544) == pytest.approx(unloaded)

    def test_slow_domain_raises_latency(self):
        slow = mesh_model([2.5e9, 2.5e9, 2.5e9, 1.5e9])
        fast = mesh_model()
        # Path entirely inside cluster 3 (bottom-right quadrant).
        assert slow.latency(63, 62, 544) > fast.latency(63, 62, 544)

    def test_domain_crossing_pays_sync(self):
        params = NocParams(domain_sync_cycles=40)
        mesh = build_mesh(GEO)
        model_sync = FlowNetworkModel(
            mesh, build_mesh_routing(mesh), CLUSTERS, NOMINAL, params=params
        )
        base = mesh_model()
        # 3 -> 4 crosses the cluster-0/cluster-1 boundary.
        extra = model_sync.latency(3, 4, 64) - base.latency(3, 4, 64)
        assert extra == pytest.approx((40 - NocParams().domain_sync_cycles) / 2.5e9)

    def test_wireless_cheaper_for_long_range_control(self):
        wmodel = winoc_model()
        mmodel = mesh_model()
        # corner-to-corner control packet: the WiNoC must not be slower
        # (a 17-flit data packet would serialize through the 16 Gbps
        # channel, which is why data uses the bulk class instead).
        assert wmodel.latency(0, 63, 64) <= mmodel.latency(0, 63, 64)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            mesh_model().latency(0, 1, -1)


class TestFlows:
    def test_flow_accumulates_on_path_links(self):
        model = mesh_model()
        model.add_flow(0, 2, 10e9)
        loaded = model.load.link_load.sum()
        assert loaded == pytest.approx(2 * 10e9)  # two hops

    def test_zero_flow_noop(self):
        model = mesh_model()
        model.add_flow(0, 2, 0.0)
        assert model.load.link_load.sum() == 0.0

    def test_wireless_flow_charges_channel(self):
        model = winoc_model()
        # find a pair routed over wireless
        for src in range(64):
            for dst in range(64):
                if src == dst:
                    continue
                links, _ = model._path(src, dst)
                if any(l.kind.value == "wireless" for l in links):
                    model.add_flow(src, dst, 1e9)
                    assert model.load.channel_load.sum() > 0
                    return
        pytest.skip("no wireless route in this topology seed")

    def test_path_capacity_degrades_under_load(self):
        model = mesh_model()
        before = model.path_capacity(0, 7)
        model.add_flow(0, 7, 60e9)
        assert model.path_capacity(0, 7) < before


class TestEnergy:
    def test_transfer_energy_positive_and_accumulates(self):
        model = mesh_model()
        e1 = model.record_transfer(0, 63, 1e6)
        assert e1 > 0
        assert model.energy.dynamic_joules == pytest.approx(e1)
        model.record_transfer(0, 63, 1e6)
        assert model.energy.dynamic_joules == pytest.approx(2 * e1)

    def test_longer_path_costs_more(self):
        model = mesh_model()
        assert model.record_transfer(0, 63, 1e6) > model.record_transfer(0, 1, 1e6)

    def test_static_energy_scales_with_voltage(self):
        low = mesh_model(NOMINAL, [1.0, 1.0, 1.0, 0.6])
        high = mesh_model(NOMINAL, [1.0, 1.0, 1.0, 1.0])
        assert low.static_energy(1.0) < high.static_energy(1.0)

    def test_self_transfer_free(self):
        model = mesh_model()
        assert model.record_transfer(5, 5, 1e6) == 0.0


class TestBulkRouting:
    def test_bulk_defaults_to_latency_routing_on_mesh(self):
        model = mesh_model()
        assert model._path(0, 63, bulk=True) == model._path(0, 63, bulk=False)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowNetworkModel(
                build_mesh(GEO),
                build_mesh_routing(build_mesh(GEO)),
                CLUSTERS[:10],
                NOMINAL,
            )
