"""Property-style invariants of the flow network model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.network import FlowNetworkModel
from repro.noc.routing import build_mesh_routing
from repro.noc.topology import GridGeometry, build_mesh
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)


def fresh_model(freqs=None):
    mesh = build_mesh(GEO)
    return FlowNetworkModel(
        mesh,
        build_mesh_routing(mesh),
        CLUSTERS,
        freqs or [2.5e9] * 4,
    )


nodes = st.integers(0, 63)


class TestLatencyProperties:
    @given(nodes, nodes)
    @settings(max_examples=40, deadline=None)
    def test_unloaded_latency_symmetric_on_uniform_mesh(self, a, b):
        model = fresh_model()
        assert model.latency(a, b, 544) == pytest.approx(
            model.latency(b, a, 544), rel=1e-9
        )

    @given(nodes, nodes, st.floats(0, 1e5))
    @settings(max_examples=40, deadline=None)
    def test_latency_positive_finite(self, a, b, payload):
        model = fresh_model()
        latency = model.latency(a, b, payload)
        assert 0 < latency < 1e-3

    @given(nodes, nodes)
    @settings(max_examples=20, deadline=None)
    def test_more_load_never_faster(self, a, b):
        model = fresh_model()
        before = model.latency(a, b, 544)
        for node in range(0, 64, 4):
            model.add_flow(node, (node + 17) % 64, 5e9)
        assert model.latency(a, b, 544) >= before - 1e-15

    @given(st.sampled_from([1.5e9, 1.75e9, 2.0e9, 2.25e9]))
    @settings(max_examples=10, deadline=None)
    def test_slower_clocks_never_faster(self, slow):
        nominal = fresh_model()
        slowed = fresh_model([slow] * 4)
        for a, b in [(0, 63), (10, 53)]:
            assert slowed.latency(a, b, 544) > nominal.latency(a, b, 544)


class TestFlowConservation:
    @given(nodes, nodes, st.floats(1e6, 1e10))
    @settings(max_examples=30, deadline=None)
    def test_flow_load_equals_rate_times_hops(self, a, b, rate):
        if a == b:
            return
        model = fresh_model()
        model.add_flow(a, b, rate)
        hops = model.routing.hop_count(a, b)
        assert model.load.link_load.sum() == pytest.approx(rate * hops, rel=1e-9)


class TestEnergyProperties:
    @given(nodes, nodes, st.floats(1.0, 1e8))
    @settings(max_examples=30, deadline=None)
    def test_energy_linear_in_bits(self, a, b, bits):
        if a == b:
            return
        model = fresh_model()
        single = model.record_transfer(a, b, bits)
        double = model.record_transfer(a, b, 2 * bits)
        assert double == pytest.approx(2 * single, rel=1e-9)


#: A small batch of flows: (src, dst, rate) triples.
flow_batches = st.lists(
    st.tuples(nodes, nodes, st.floats(0, 1e9)), min_size=0, max_size=12
)


class TestFlowRegistrationProperties:
    @given(flow_batches)
    @settings(max_examples=40, deadline=None)
    def test_resource_loads_never_negative(self, flows):
        model = fresh_model()
        for src, dst, rate in flows:
            model.add_flow(src, dst, rate)
        assert (model.load.link_load >= 0).all()
        assert (model.load.channel_load >= 0).all()

    @given(flow_batches, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar_registration(self, flows, bulk):
        """``add_flows`` (sparse mat-vec) and a loop of ``add_flow``
        calls must produce identical link and channel loads."""
        scalar = fresh_model()
        for src, dst, rate in flows:
            scalar.add_flow(src, dst, rate, bulk=bulk)
        batch = fresh_model()
        batch.add_flows(
            [f[0] for f in flows],
            [f[1] for f in flows],
            [f[2] for f in flows],
            bulk=bulk,
        )
        np.testing.assert_allclose(
            batch.load.link_load, scalar.load.link_load, rtol=1e-9, atol=1e-3
        )
        np.testing.assert_allclose(
            batch.load.channel_load, scalar.load.channel_load,
            rtol=1e-9, atol=1e-3,
        )

    @given(nodes, nodes, st.floats(1e6, 1e10))
    @settings(max_examples=30, deadline=None)
    def test_latency_monotone_in_offered_load(self, a, b, rate):
        """Adding one more flow never makes any pair faster."""
        if a == b:
            return
        model = fresh_model()
        probes = [(0, 63), (17, 42), (b, a)]
        before = [model.latency(x, y, 544) for x, y in probes]
        model.add_flow(a, b, rate)
        after = [model.latency(x, y, 544) for x, y in probes]
        for earlier, later in zip(before, after):
            assert later >= earlier - 1e-15

    @given(flow_batches)
    @settings(max_examples=20, deadline=None)
    def test_reset_restores_unloaded_latency(self, flows):
        model = fresh_model()
        baseline = model.latency(0, 63, 544)
        for src, dst, rate in flows:
            model.add_flow(src, dst, rate)
        model.reset_flows()
        assert model.latency(0, 63, 544) == pytest.approx(baseline, rel=1e-12)
