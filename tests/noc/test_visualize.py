"""ASCII topology renderers."""

import pytest

from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry, build_mesh
from repro.noc.visualize import (
    describe_topology,
    render_degree_map,
    render_die_map,
    render_link_histogram,
    render_vf_map,
)
from repro.noc.wireless import assign_wireless_links
from repro.noc.placement import center_wireless_placement
from repro.vfi.islands import DVFS_LADDER, NOMINAL, quadrant_clusters

GEO = GridGeometry(8, 8)
LAYOUT = quadrant_clusters(GEO)
CLUSTERS = list(LAYOUT.node_cluster)


@pytest.fixture(scope="module")
def winoc():
    wireline = build_small_world(GEO, CLUSTERS, seed=3)
    return assign_wireless_links(wireline, center_wireless_placement(GEO, CLUSTERS))


class TestDieMap:
    def test_marks_wis(self, winoc):
        grid = render_die_map(winoc, CLUSTERS).splitlines()[:8]
        assert "\n".join(grid).count("*") == 12

    def test_grid_dimensions(self, winoc):
        rows = render_die_map(winoc, CLUSTERS).splitlines()
        assert len(rows) == 9  # 8 rows + legend
        assert all(len(row.split()) == 8 for row in rows[:8])

    def test_no_clusters(self):
        mesh = build_mesh(GEO)
        grid = render_die_map(mesh).splitlines()[:8]
        text = "\n".join(grid)
        assert "." in text and "*" not in text


class TestVfMap:
    def test_voltages_rendered(self):
        points = [NOMINAL, NOMINAL, DVFS_LADDER[0], DVFS_LADDER[0]]
        text = render_vf_map(LAYOUT, points)
        assert "1.0" in text and "0.6" in text
        assert "island 2: 0.6V/1.5GHz" in text

    def test_wrong_point_count(self):
        with pytest.raises(ValueError):
            render_vf_map(LAYOUT, [NOMINAL])


class TestDegreesAndHistogram:
    def test_degree_map_mentions_average(self, winoc):
        text = render_degree_map(winoc)
        assert "average degree" in text

    def test_histogram_counts_all_wires(self, winoc):
        text = render_link_histogram(winoc)
        total = sum(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "mm |" in line
        )
        assert total == 128  # wireline links of the (3,1) build

    def test_histogram_lists_channels(self, winoc):
        text = render_link_histogram(winoc)
        assert "channel 0" in text and "channel 2" in text

    def test_mesh_has_no_wireless_section(self):
        text = render_link_histogram(build_mesh(GEO))
        assert "no wireless links" in text

    def test_bad_bucket(self, winoc):
        with pytest.raises(ValueError):
            render_link_histogram(winoc, bucket_mm=0)


def test_describe_combines_sections(winoc):
    text = describe_topology(winoc, CLUSTERS)
    assert "topology: winoc" in text
    assert "switch degrees" in text
    assert "wire length histogram" in text
