"""Batch flow registration (`add_flows`) and wireless-channel validation."""

import numpy as np
import pytest

from repro.noc.network import FlowNetworkModel
from repro.noc.placement import center_wireless_placement
from repro.noc.routing import build_mesh_routing, build_routing_table
from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry, Link, LinkKind, build_mesh
from repro.noc.wireless import WirelessSpec, assign_wireless_links
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)
NOMINAL = [2.5e9] * 4


def mesh_model():
    mesh = build_mesh(GEO)
    return FlowNetworkModel(mesh, build_mesh_routing(mesh), CLUSTERS, NOMINAL)


def winoc_model(spec=WirelessSpec()):
    wireline = build_small_world(GEO, CLUSTERS, seed=3)
    winoc = assign_wireless_links(
        wireline, center_wireless_placement(GEO, CLUSTERS), spec
    )
    return FlowNetworkModel(
        winoc, build_routing_table(winoc), CLUSTERS, NOMINAL, wireless=spec
    )


class TestAddFlowsEquivalence:
    """Batched registration must equal the per-call reference exactly.

    Rates are dyadic rationals over unique pairs, so per-link sums round
    identically regardless of accumulation order and the comparison can
    demand exact array equality.
    """

    def _flows(self, n, seed, count=200):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=count)
        dst = rng.integers(0, n, size=count)
        # Dyadic rates (k * 2^20 with integer k), one flow per pair.
        rate = rng.integers(1, 1 << 20, size=count).astype(float) * 1024.0
        pairs = {}
        for s, d, r in zip(src, dst, rate):
            pairs[(int(s), int(d))] = float(r)
        flat = [(s, d, r) for (s, d), r in sorted(pairs.items())]
        return (
            np.array([f[0] for f in flat]),
            np.array([f[1] for f in flat]),
            np.array([f[2] for f in flat]),
        )

    @pytest.mark.parametrize("bulk", [False, True])
    def test_mesh_exact(self, bulk):
        reference = mesh_model()
        batched = mesh_model()
        src, dst, rate = self._flows(64, seed=11)
        for s, d, r in zip(src, dst, rate):
            reference.add_flow(int(s), int(d), float(r), bulk=bulk)
        batched.add_flows(src, dst, rate, bulk=bulk)
        np.testing.assert_array_equal(
            batched.load.link_load, reference.load.link_load
        )
        np.testing.assert_array_equal(
            batched.load.channel_load, reference.load.channel_load
        )

    @pytest.mark.parametrize("bulk", [False, True])
    def test_winoc_exact(self, bulk):
        reference = winoc_model()
        batched = winoc_model()
        src, dst, rate = self._flows(64, seed=23)
        for s, d, r in zip(src, dst, rate):
            reference.add_flow(int(s), int(d), float(r), bulk=bulk)
        batched.add_flows(src, dst, rate, bulk=bulk)
        np.testing.assert_array_equal(
            batched.load.link_load, reference.load.link_load
        )
        np.testing.assert_array_equal(
            batched.load.channel_load, reference.load.channel_load
        )

    def test_self_and_zero_flows_ignored(self):
        model = mesh_model()
        model.add_flows([3, 5], [3, 9], [1e9, 0.0])
        assert not model.load.link_load.any()
        assert not model.load.channel_load.any()

    def test_duplicate_pairs_accumulate(self):
        reference = mesh_model()
        batched = mesh_model()
        reference.add_flow(0, 9, 1e9)
        reference.add_flow(0, 9, 2e9)
        batched.add_flows([0, 0], [9, 9], [1e9, 2e9])
        np.testing.assert_allclose(
            batched.load.link_load, reference.load.link_load, rtol=1e-15
        )

    def test_empty_batch_is_noop(self):
        model = mesh_model()
        model.add_flows([], [], [])
        assert not model.load.link_load.any()

    def test_validation(self):
        model = mesh_model()
        with pytest.raises(ValueError):
            model.add_flows([0, 1], [2], [1e9, 1e9])
        with pytest.raises(ValueError):
            model.add_flows([0], [2], [-1.0])
        with pytest.raises(ValueError):
            model.add_flows([0], [64], [1e9])
        with pytest.raises(ValueError):
            model.add_flows([-1], [2], [1e9])


class TestWirelessChannelValidation:
    def test_valid_channels_accepted(self):
        model = winoc_model()
        assert model.topology.wireless_links()

    def test_out_of_range_channel_rejected(self):
        """A spec with fewer channels than the topology's links use must
        fail at construction, not IndexError inside add_flow later."""
        wireline = build_small_world(GEO, CLUSTERS, seed=3)
        winoc = assign_wireless_links(
            wireline, center_wireless_placement(GEO, CLUSTERS)
        )
        narrow = WirelessSpec(num_channels=2)
        with pytest.raises(ValueError, match="channel"):
            FlowNetworkModel(
                winoc, build_routing_table(winoc), CLUSTERS, NOMINAL,
                wireless=narrow,
            )

    def test_negative_channel_rejected(self):
        mesh = build_mesh(GEO)
        bad = mesh.with_links(
            [
                Link(
                    0, 63, LinkKind.WIRELESS,
                    length_mm=GEO.distance_mm(0, 63), channel=-1,
                )
            ],
            name="bad-channel",
        )
        with pytest.raises(ValueError, match="channel"):
            FlowNetworkModel(
                bad, build_routing_table(bad), CLUSTERS, NOMINAL
            )
