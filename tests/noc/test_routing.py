"""XY routing, Dijkstra tables, weights."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.routing import (
    MeshRoutingTable,
    average_weighted_hops,
    build_mesh_routing,
    build_routing_table,
    xy_route,
)
from repro.noc.topology import GridGeometry, build_mesh

import numpy as np

GEO = GridGeometry(8, 8)
MESH = build_mesh(GEO)

nodes = st.integers(0, 63)


class TestXyRoute:
    @given(nodes, nodes)
    def test_endpoints_and_length(self, src, dst):
        path = xy_route(GEO, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == GEO.manhattan_hops(src, dst)

    @given(nodes, nodes)
    def test_steps_are_grid_neighbours(self, src, dst):
        path = xy_route(GEO, src, dst)
        for a, b in zip(path, path[1:]):
            assert GEO.manhattan_hops(a, b) == 1

    @given(nodes, nodes)
    def test_x_before_y(self, src, dst):
        path = xy_route(GEO, src, dst)
        ys = [GEO.coordinates(n)[1] for n in path]
        # once y starts changing, x must be final
        changed = [i for i in range(1, len(ys)) if ys[i] != ys[i - 1]]
        if changed:
            first = changed[0]
            xs = [GEO.coordinates(n)[0] for n in path]
            assert all(x == xs[-1] for x in xs[first:])


class TestMeshRoutingTable:
    def test_matches_xy(self):
        table = build_mesh_routing(MESH)
        assert table.path(0, 63) == tuple(xy_route(GEO, 0, 63))

    def test_self_path(self):
        table = build_mesh_routing(MESH)
        assert table.path(5, 5) == (5,)

    def test_hop_matrix_symmetric_in_count(self):
        table = build_mesh_routing(MESH)
        hops = table.hop_matrix()
        assert (hops == hops.T).all()
        assert hops.mean() == pytest.approx(5.25, abs=0.01)


class TestDijkstraTable:
    def test_mesh_dijkstra_matches_manhattan(self):
        table = build_routing_table(MESH)
        for src, dst in [(0, 63), (7, 56), (10, 53), (0, 1)]:
            assert table.hop_count(src, dst) == GEO.manhattan_hops(src, dst)

    def test_paths_walk_real_links(self):
        table = build_routing_table(MESH)
        path = table.path(0, 63)
        for a, b in zip(path, path[1:]):
            MESH.find_link(a, b)  # raises if absent

    def test_deterministic_across_builds(self):
        a = build_routing_table(MESH)
        b = build_routing_table(MESH)
        for src, dst in [(0, 63), (3, 42), (17, 20)]:
            assert a.path(src, dst) == b.path(src, dst)

    def test_disconnected_rejected(self):
        from repro.noc.topology import Link, Topology

        topo = Topology("broken", GridGeometry(2, 2), [Link(0, 1)])
        with pytest.raises(ValueError):
            build_routing_table(topo)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            build_routing_table(MESH, weight=lambda link: 0.0)


class TestHopMatrixConsistency:
    """The cached/vectorized hop matrix must equal per-pair path walks."""

    def test_mesh_matches_path_walks(self):
        table = build_mesh_routing(MESH)
        hops = table.hop_matrix()
        for src in range(0, 64, 7):
            for dst in range(64):
                assert hops[src, dst] == table.hop_count(src, dst)

    def test_dijkstra_matches_path_walks(self):
        from repro.noc.smallworld import build_small_world
        from repro.vfi.islands import quadrant_clusters

        topo = build_small_world(
            GEO, list(quadrant_clusters(GEO).node_cluster), seed=3
        )
        table = build_routing_table(topo)
        hops = table.hop_matrix()
        for src in range(0, 64, 7):
            for dst in range(64):
                assert hops[src, dst] == table.hop_count(src, dst)

    def test_cached_instance_reused(self):
        table = build_mesh_routing(MESH)
        assert table.hop_matrix() is table.hop_matrix()

    def test_weighted_hops_matches_reference_loop(self):
        from repro.noc.smallworld import build_small_world
        from repro.vfi.islands import quadrant_clusters

        topo = build_small_world(
            GEO, list(quadrant_clusters(GEO).node_cluster), seed=3
        )
        table = build_routing_table(topo)
        rng = np.random.default_rng(9)
        traffic = rng.random((64, 64))
        np.fill_diagonal(traffic, 0.0)
        total_hops = 0.0
        total_traffic = 0.0
        for src in range(64):
            for dst in range(64):
                if src == dst or traffic[src, dst] <= 0:
                    continue
                total_hops += traffic[src, dst] * table.hop_count(src, dst)
                total_traffic += traffic[src, dst]
        assert average_weighted_hops(table, traffic) == pytest.approx(
            total_hops / total_traffic, rel=1e-12
        )


class TestWeightedHops:
    def test_uniform_traffic(self):
        table = build_mesh_routing(MESH)
        traffic = np.ones((64, 64))
        np.fill_diagonal(traffic, 0.0)
        # mean over off-diagonal pairs
        expected = table.hop_matrix().sum() / (64 * 63)
        assert average_weighted_hops(table, traffic) == pytest.approx(expected)

    def test_empty_traffic(self):
        table = build_mesh_routing(MESH)
        assert average_weighted_hops(table, np.zeros((64, 64))) == 0.0

    def test_shape_mismatch(self):
        table = build_mesh_routing(MESH)
        with pytest.raises(ValueError):
            average_weighted_hops(table, np.ones((4, 4)))
