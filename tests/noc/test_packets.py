import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.packets import (
    PacketClass,
    control_bits,
    data_bits,
    kv_stream_bits,
    packet_bits,
    packet_flits,
)


def test_control_packet():
    assert packet_flits(PacketClass.CONTROL) == 2  # header + address


def test_data_packet_carries_cache_line():
    assert packet_flits(PacketClass.DATA) == 17  # header + 64B / 32b


def test_bits_are_flits_times_width():
    assert control_bits() == 2 * 32
    assert data_bits() == 17 * 32


@given(st.floats(min_value=0.0, max_value=1e7))
def test_kv_stream_bits_at_least_payload(total_bytes):
    assert kv_stream_bits(total_bytes) >= total_bytes * 8


def test_kv_stream_header_overhead():
    # 1024 bytes in 256-byte chunks: 4 packets, 4 header flits.
    assert kv_stream_bits(1024, 256) == 1024 * 8 + 4 * 32


def test_kv_zero():
    assert kv_stream_bits(0) == 0.0


def test_kv_rejects_negative():
    with pytest.raises(ValueError):
        kv_stream_bits(-1)


def test_kv_packet_payload_sizing():
    assert packet_flits(PacketClass.KV, 256) == 1 + math.ceil(256 * 8 / 32)
