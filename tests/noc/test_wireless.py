"""Wireless overlay invariants."""

import pytest

from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry
from repro.noc.wireless import (
    WirelessSpec,
    assign_wireless_links,
    channels_of,
    total_wireless_interfaces,
    validate_paper_overlay,
)
from repro.noc.placement import center_wireless_placement
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)


@pytest.fixture(scope="module")
def wireline():
    return build_small_world(GEO, CLUSTERS, seed=3)


@pytest.fixture(scope="module")
def winoc(wireline):
    placement = center_wireless_placement(GEO, CLUSTERS)
    return assign_wireless_links(wireline, placement)


class TestOverlay:
    def test_paper_invariants(self, winoc):
        validate_paper_overlay(winoc, CLUSTERS, WirelessSpec())

    def test_twelve_wis(self, winoc):
        assert total_wireless_interfaces(winoc) == 12

    def test_three_channels(self, winoc):
        channels = channels_of(winoc)
        assert sorted(channels) == [0, 1, 2]
        for channel in channels.values():
            assert len(channel.wi_nodes) == 4  # one per cluster
            wi_clusters = [CLUSTERS[n] for n in channel.wi_nodes]
            assert sorted(wi_clusters) == [0, 1, 2, 3]

    def test_wireless_links_carry_channel(self, winoc):
        for link in winoc.wireless_links():
            assert link.channel in (0, 1, 2)

    def test_no_duplicate_wire_wireless_pairs(self, winoc):
        keys = [link.key for link in winoc.links]
        assert len(keys) == len(set(keys))


class TestValidation:
    def test_rejects_two_wis_per_node(self, wireline):
        placement = {0: [9, 13, 41, 45], 1: [9, 14, 42, 46], 2: [17, 21, 49, 53]}
        with pytest.raises(ValueError, match="more than one"):
            assign_wireless_links(wireline, placement)

    def test_rejects_single_wi_channel(self, wireline):
        placement = {0: [9], 1: [10, 14, 42, 46], 2: [17, 21, 49, 53]}
        with pytest.raises(ValueError):
            assign_wireless_links(wireline, placement)

    def test_rejects_wrong_channel_count(self, wireline):
        placement = {0: [9, 13], 1: [10, 14]}
        with pytest.raises(ValueError, match="channels"):
            assign_wireless_links(wireline, placement)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WirelessSpec(num_channels=0)
        with pytest.raises(ValueError):
            WirelessSpec(bandwidth_bps=-1)
