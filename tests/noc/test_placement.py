"""WI placement: center methodology and SA hop-count optimization."""

import numpy as np
import pytest

from repro.noc.placement import (
    center_wireless_placement,
    optimize_wireless_placement,
    traffic_weighted_cost,
)
from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry
from repro.noc.wireless import assign_wireless_links
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)


@pytest.fixture(scope="module")
def wireline():
    return build_small_world(GEO, CLUSTERS, seed=3)


class TestCenterPlacement:
    def test_one_wi_per_cluster_per_channel(self):
        placement = center_wireless_placement(GEO, CLUSTERS)
        for channel, nodes in placement.items():
            assert len(nodes) == 4
            assert sorted(CLUSTERS[n] for n in nodes) == [0, 1, 2, 3]

    def test_no_node_reuse(self):
        placement = center_wireless_placement(GEO, CLUSTERS)
        all_nodes = [n for nodes in placement.values() for n in nodes]
        assert len(all_nodes) == len(set(all_nodes)) == 12

    def test_wis_near_cluster_centers(self):
        placement = center_wireless_placement(GEO, CLUSTERS)
        for nodes in placement.values():
            for node in nodes:
                cid = CLUSTERS[node]
                members = [n for n in range(64) if CLUSTERS[n] == cid]
                coords = np.array([GEO.coordinates(n) for n in members])
                centroid = coords.mean(axis=0)
                distance = np.linalg.norm(np.array(GEO.coordinates(node)) - centroid)
                assert distance <= 1.6  # inner 2x2 block of a 4x4 quadrant

    def test_deterministic(self):
        assert center_wireless_placement(GEO, CLUSTERS) == center_wireless_placement(
            GEO, CLUSTERS
        )


class TestSaPlacement:
    def test_never_worse_than_center_start(self, wireline):
        rng = np.random.default_rng(0)
        traffic = rng.random((64, 64)) ** 3
        np.fill_diagonal(traffic, 0.0)
        center = center_wireless_placement(GEO, CLUSTERS)
        center_cost = traffic_weighted_cost(
            assign_wireless_links(wireline, center), traffic
        )
        best = optimize_wireless_placement(
            wireline, CLUSTERS, traffic, iterations=120, seed=1
        )
        best_cost = traffic_weighted_cost(
            assign_wireless_links(wireline, best), traffic
        )
        assert best_cost <= center_cost + 1e-12

    def test_respects_cluster_structure(self, wireline):
        traffic = np.ones((64, 64))
        np.fill_diagonal(traffic, 0.0)
        placement = optimize_wireless_placement(
            wireline, CLUSTERS, traffic, iterations=60, seed=2
        )
        for channel, nodes in placement.items():
            assert sorted(CLUSTERS[n] for n in nodes) == [0, 1, 2, 3]
        all_nodes = [n for nodes in placement.values() for n in nodes]
        assert len(set(all_nodes)) == 12

    def test_deterministic_given_seed(self, wireline):
        traffic = np.ones((64, 64))
        np.fill_diagonal(traffic, 0.0)
        a = optimize_wireless_placement(wireline, CLUSTERS, traffic, iterations=40, seed=5)
        b = optimize_wireless_placement(wireline, CLUSTERS, traffic, iterations=40, seed=5)
        assert a == b


class TestCostFunction:
    def test_zero_traffic(self, wireline):
        assert traffic_weighted_cost(wireline, np.zeros((64, 64))) == 0.0

    def test_shape_check(self, wireline):
        with pytest.raises(ValueError):
            traffic_weighted_cost(wireline, np.ones((8, 8)))


class TestSaRegression:
    """Pinned SA outcome under the hop-count objective.

    Guards the vectorized ``average_weighted_hops`` (cached hop matrix):
    the placement and final cost below were captured with the per-pair
    reference implementation, so any drift in the objective would move
    the annealer to a different placement.
    """

    GOLDEN_PLACEMENT = {
        0: [26, 15, 58, 55],
        1: [24, 12, 51, 63],
        2: [9, 29, 42, 45],
    }
    GOLDEN_COST = 3.0521077939382724

    def test_placement_and_cost_unchanged(self, wireline):
        from repro.noc.routing import average_weighted_hops, build_routing_table

        rng = np.random.default_rng(5)
        traffic = rng.random((64, 64)) * 1e6
        np.fill_diagonal(traffic, 0.0)

        def hop_cost(topology):
            return average_weighted_hops(
                build_routing_table(topology), traffic
            )

        placement = optimize_wireless_placement(
            wireline, CLUSTERS, traffic, iterations=60, seed=17,
            cost_fn=hop_cost,
        )
        assert {k: sorted(v) for k, v in placement.items()} == {
            k: sorted(v) for k, v in self.GOLDEN_PLACEMENT.items()
        }
        cost = hop_cost(assign_wireless_links(wireline, placement))
        assert cost == pytest.approx(self.GOLDEN_COST, rel=1e-9)
