"""DenseLatencyModel must agree with the reference per-path loop."""

import numpy as np
import pytest

from repro.noc.dense import DenseLatencyModel, PairwiseEnergy
from repro.noc.network import FlowNetworkModel
from repro.noc.routing import build_mesh_routing, build_routing_table
from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry, build_mesh
from repro.noc.wireless import assign_wireless_links
from repro.noc.placement import center_wireless_placement
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)
MIXED_FREQS = [2.5e9, 2.25e9, 2.0e9, 1.75e9]


def build_models():
    wireline = build_small_world(GEO, CLUSTERS, seed=3)
    winoc = assign_wireless_links(
        wireline, center_wireless_placement(GEO, CLUSTERS)
    )
    model = FlowNetworkModel(
        winoc, build_routing_table(winoc), CLUSTERS, MIXED_FREQS
    )
    return model


@pytest.fixture(scope="module")
def loaded_model():
    model = build_models()
    rng = np.random.default_rng(0)
    for _ in range(200):
        src, dst = rng.integers(64), rng.integers(64)
        if src != dst:
            model.add_flow(int(src), int(dst), float(rng.uniform(1e8, 5e9)))
    return model


class TestDenseAgreesWithReference:
    @pytest.mark.parametrize("payload", [64.0, 544.0, 2080.0])
    def test_all_pairs_match(self, loaded_model, payload):
        dense = DenseLatencyModel(loaded_model)
        matrix = dense.latency_matrices([payload])[payload]
        rng = np.random.default_rng(1)
        for _ in range(150):
            src, dst = int(rng.integers(64)), int(rng.integers(64))
            assert matrix[src, dst] == pytest.approx(
                loaded_model.latency(src, dst, payload), rel=1e-9
            )

    def test_unloaded_match_too(self):
        model = build_models()
        dense = DenseLatencyModel(model)
        matrix = dense.latency_matrices([544.0])[544.0]
        for src, dst in [(0, 63), (5, 5), (17, 43)]:
            assert matrix[src, dst] == pytest.approx(
                model.latency(src, dst, 544.0), rel=1e-9
            )


class TestPairwiseEnergy:
    def test_record_matches_reference(self, loaded_model):
        pairwise = PairwiseEnergy(loaded_model)
        reference = FlowNetworkModel(
            loaded_model.topology,
            loaded_model.routing,
            loaded_model.clusters,
            loaded_model.cluster_frequencies_hz,
        )
        rng = np.random.default_rng(2)
        for _ in range(50):
            src, dst = int(rng.integers(64)), int(rng.integers(64))
            bits = float(rng.uniform(1e3, 1e6))
            assert pairwise.record(src, dst, bits) == pytest.approx(
                reference.record_transfer(src, dst, bits), rel=1e-12
            )
        # counters agree too
        assert pairwise.model.energy.bits_moved == pytest.approx(
            reference.energy.bits_moved
        )
        assert pairwise.model.energy.bit_hops == pytest.approx(
            reference.energy.bit_hops
        )
        assert pairwise.model.energy.wireless_bits == pytest.approx(
            reference.energy.wireless_bits
        )

    def test_rejects_negative_bits(self, loaded_model):
        pairwise = PairwiseEnergy(loaded_model)
        with pytest.raises(ValueError):
            pairwise.record(0, 1, -5)


class TestUtilization:
    def test_capped(self, loaded_model):
        dense = DenseLatencyModel(loaded_model)
        rho = dense.utilization()
        assert (rho <= loaded_model.params.max_utilization + 1e-12).all()
        assert (rho >= 0).all()


class TestBulkClass:
    def test_bulk_dense_matches_reference(self, loaded_model):
        dense_bulk = DenseLatencyModel(loaded_model, bulk=True)
        matrix = dense_bulk.latency_matrices([544.0])[544.0]
        rng = np.random.default_rng(3)
        for _ in range(60):
            src, dst = int(rng.integers(64)), int(rng.integers(64))
            assert matrix[src, dst] == pytest.approx(
                loaded_model.latency(src, dst, 544.0, bulk=True), rel=1e-9
            )

    def test_bulk_pairwise_energy_matches_reference(self, loaded_model):
        pairwise = PairwiseEnergy(loaded_model, bulk=True)
        reference = FlowNetworkModel(
            loaded_model.topology,
            loaded_model.routing,
            loaded_model.clusters,
            loaded_model.cluster_frequencies_hz,
            bulk_routing=loaded_model.bulk_routing,
        )
        rng = np.random.default_rng(4)
        for _ in range(30):
            src, dst = int(rng.integers(64)), int(rng.integers(64))
            bits = float(rng.uniform(1e3, 1e6))
            assert pairwise.record(src, dst, bits) == pytest.approx(
                reference.record_transfer(src, dst, bits, bulk=True), rel=1e-12
            )
