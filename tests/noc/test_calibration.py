"""Congestion-aware wireless routing calibration."""

import numpy as np
import pytest

from repro.noc.calibration import (
    calibrate_wireless_routing,
    channel_utilizations,
    make_weight_fn,
)
from repro.noc.smallworld import build_small_world
from repro.noc.topology import GridGeometry, LinkKind
from repro.noc.wireless import WirelessSpec, assign_wireless_links
from repro.noc.placement import center_wireless_placement
from repro.vfi.islands import quadrant_clusters

GEO = GridGeometry(8, 8)
CLUSTERS = list(quadrant_clusters(GEO).node_cluster)
FREQS = [2.5e9] * 4


@pytest.fixture(scope="module")
def winoc():
    wireline = build_small_world(GEO, CLUSTERS, seed=3)
    return assign_wireless_links(wireline, center_wireless_placement(GEO, CLUSTERS))


def uniform_rate(total_bps):
    rate = np.full((64, 64), total_bps / (64 * 63))
    np.fill_diagonal(rate, 0.0)
    return rate


class TestCalibration:
    def test_no_traffic_keeps_initial_weight(self, winoc):
        routing = calibrate_wireless_routing(winoc, CLUSTERS, FREQS, None)
        assert routing is not None

    def test_light_load_uses_wireless(self, winoc):
        routing = calibrate_wireless_routing(
            winoc, CLUSTERS, FREQS, uniform_rate(10e9)
        )
        rho = channel_utilizations(
            winoc, routing, CLUSTERS, FREQS, uniform_rate(10e9), WirelessSpec()
        )
        assert rho.sum() > 0  # wireless actually carries traffic

    def test_heavy_load_keeps_channels_under_target(self, winoc):
        heavy = uniform_rate(1.5e12)
        routing = calibrate_wireless_routing(
            winoc, CLUSTERS, FREQS, heavy, target_utilization=0.7
        )
        rho = channel_utilizations(
            winoc, routing, CLUSTERS, FREQS, heavy, WirelessSpec()
        )
        # Calibration backs traffic off the channels (it may not fully
        # converge in max_iterations, but must at least reduce vs the
        # uncalibrated routing by a wide margin).
        uncalibrated = calibrate_wireless_routing(winoc, CLUSTERS, FREQS, None)
        rho0 = channel_utilizations(
            winoc, uncalibrated, CLUSTERS, FREQS, heavy, WirelessSpec()
        )
        assert rho.max() < rho0.max()

    def test_weight_fn(self):
        weight = make_weight_fn({0: 3.0})
        from repro.noc.topology import Link

        assert weight(Link(0, 1, LinkKind.WIRELESS, 5.0, channel=0)) == 3.0
        assert weight(Link(0, 1, LinkKind.WIRE, 2.5)) == 1.0

    def test_bad_target_rejected(self, winoc):
        with pytest.raises(ValueError):
            calibrate_wireless_routing(
                winoc, CLUSTERS, FREQS, None, target_utilization=1.5
            )
