"""Parameter validation across the NoC configuration objects."""

import pytest

from repro.noc.network import NocParams
from repro.noc.smallworld import SmallWorldConfig
from repro.noc.energy import NocEnergyParams
from repro.sim.config import CoreParams, MemoryParams, SimulationParams


class TestNocParams:
    def test_defaults_match_paper(self):
        params = NocParams()
        assert params.flit_bits == 32  # paper Sec. 7
        assert params.wire_buffer_flits == 2
        assert params.wi_buffer_flits == 8

    @pytest.mark.parametrize(
        "field,value",
        [
            ("flit_bits", 0),
            ("router_pipeline_cycles", 0),
            ("link_traversal_cycles", -1),
            ("wire_buffer_flits", 0),
            ("wi_buffer_flits", 0),
            ("max_utilization", 1.0),
            ("max_utilization", 0.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            NocParams(**{field: value})


class TestSmallWorldConfig:
    def test_k_total(self):
        assert SmallWorldConfig(3.0, 1.0).k_total == 4.0

    def test_alpha_average(self):
        config = SmallWorldConfig(alpha_intra=3.0, alpha_inter=1.0)
        assert config.alpha == 2.0

    @pytest.mark.parametrize("field", ["k_intra", "k_inter", "kmax", "alpha_intra"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            SmallWorldConfig(**{field: 0})


class TestEnergyParams:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NocEnergyParams(router_pj_per_bit=0)
        with pytest.raises(ValueError):
            NocEnergyParams(switch_leakage_w=-1)


class TestCoreParams:
    def test_ipc_cannot_exceed_width(self):
        with pytest.raises(ValueError):
            CoreParams(ipc=3.0, issue_width=2.0)

    def test_rejects_nonpositive_mlp(self):
        with pytest.raises(ValueError):
            CoreParams(mlp_overlap=0)


class TestMemoryParams:
    def test_needs_controllers(self):
        with pytest.raises(ValueError):
            MemoryParams(controller_nodes=())

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            MemoryParams(dram_latency_s=0)


class TestSimulationParams:
    def test_rejects_zero_relaxations(self):
        with pytest.raises(ValueError):
            SimulationParams(relaxation_iterations=0)
