"""Lockstep predecessor walks: validation, ordering, block equivalence.

The dense blocked builders trust :mod:`repro.noc.pathwalk` for two
contracts: hop *order* per route matches the scalar walk (float
accumulation bit-equality), and broken predecessor data fails loudly --
eagerly for the single-source walk, with the offending cycle spelled
out in both flavors.
"""

import numpy as np
import pytest

from repro.noc.pathwalk import walk_steps, walk_steps_block


def _line_pred_row(src: int, n: int) -> np.ndarray:
    """Predecessor row for a 0-1-2-...-(n-1) line graph rooted at *src*.

    On a line the hop into ``d`` always comes from the neighbor on the
    source side: ``d - 1`` when ``d > src``, ``d + 1`` when ``d < src``.
    """
    pred = np.empty(n, dtype=np.int64)
    for d in range(n):
        if d == src:
            pred[d] = src
        elif d > src:
            pred[d] = d - 1
        else:
            pred[d] = d + 1
    return pred


def _hops_per_route(step_iter, src=None):
    """Collect each route's forward hop list from a walk's steps."""
    hops = {}
    for step in step_iter:
        if src is None:
            rows, dst, prev, cur = step
            for r, d, p, c in zip(rows, dst, prev, cur):
                hops.setdefault((int(r), int(d)), []).append((int(p), int(c)))
        else:
            dst, prev, cur = step
            for d, p, c in zip(dst, prev, cur):
                hops.setdefault((src, int(d)), []).append((int(p), int(c)))
    return hops


class TestWalkSteps:
    def test_visits_every_hop_in_backward_order(self):
        n = 5
        hops = _hops_per_route(walk_steps(_line_pred_row(0, n), 0, n), src=0)
        # Route 0 -> d on a line is d hops; step k carries the k-th hop
        # counted backward from the destination.
        for d in range(1, n):
            assert hops[(0, d)] == [(k - 1, k) for k in range(d, 0, -1)]

    def test_cycle_raises_at_call_not_first_step(self):
        # pred 1 <-> 2: every chain toward src 0 falls into the 2-cycle.
        pred = np.array([0, 2, 1, 2])
        with pytest.raises(RuntimeError, match="do not terminate"):
            walk_steps(pred, 0, 4)  # eager: raises before any step leaks

    def test_cycle_report_names_the_cycle(self):
        pred = np.array([0, 2, 1, 2])
        with pytest.raises(RuntimeError, match=r"cycle \[1 -> 2 -> 1\]"):
            walk_steps(pred, 0, 4)

    def test_cycle_report_counts_hops_into_cycle(self):
        # dst 3 is one hop outside the 1 <-> 2 cycle; once routes 1 and
        # 2 are the report target the hop context is still spelled out.
        pred = np.array([0, 2, 1, 2])
        with pytest.raises(RuntimeError, match=r"hop\(s\) before"):
            walk_steps(pred, 0, 4)

    def test_unroutable_destination_raises_with_route(self):
        pred = _line_pred_row(0, 4)
        pred[2] = -1  # breaks routes to 2 and (transitively) 3
        with pytest.raises(RuntimeError, match=r"no route from 0"):
            walk_steps(pred, 0, 4)

    def test_consumer_never_sees_partial_walk(self):
        # A long valid prefix before the break: eager validation means
        # the consumer's accumulator is never touched.
        n = 6
        pred = _line_pred_row(0, n)
        pred[5] = -1
        acc = np.zeros(n)
        with pytest.raises(RuntimeError):
            for dst, prev, cur in walk_steps(pred, 0, n):
                acc[dst] += 1.0
        assert not acc.any()


class TestWalkStepsBlock:
    def test_matches_per_source_walks(self):
        n = 7
        srcs = np.array([1, 3, 6])
        pred_rows = np.stack([_line_pred_row(int(s), n) for s in srcs])
        block_hops = _hops_per_route(walk_steps_block(pred_rows, srcs, n))
        for row, src in enumerate(srcs):
            scalar = _hops_per_route(
                walk_steps(pred_rows[row], int(src), n), src=int(src)
            )
            for d in range(n):
                if d == src:
                    continue
                assert block_hops[(row, d)] == scalar[(int(src), d)]

    def test_pairs_unique_within_step(self):
        n = 6
        srcs = np.arange(3)
        pred_rows = np.stack([_line_pred_row(int(s), n) for s in srcs])
        for rows, dst, prev, cur in walk_steps_block(pred_rows, srcs, n):
            pairs = list(zip(rows.tolist(), dst.tolist()))
            assert len(pairs) == len(set(pairs))  # fancy += is safe

    def test_cycle_raises_with_route_context(self):
        pred = np.array([0, 2, 1, 2])
        pred_rows = np.stack([pred, _line_pred_row(1, 4)])
        with pytest.raises(RuntimeError, match="do not terminate"):
            for _ in walk_steps_block(pred_rows, np.array([0, 1]), 4):
                pass

    def test_no_route_raises_with_pairs(self):
        pred = _line_pred_row(0, 4)
        pred[3] = -1
        pred_rows = pred[None, :]
        with pytest.raises(RuntimeError, match=r"no route for \(src, dst\)"):
            for _ in walk_steps_block(pred_rows, np.array([0]), 4):
                pass

    def test_empty_block(self):
        pred_rows = np.empty((0, 4), dtype=np.int64)
        assert list(walk_steps_block(pred_rows, np.empty(0, dtype=int), 4)) == []
