import pytest

from repro.noc.energy import NocEnergyModel, NocEnergyParams
from repro.noc.topology import Link, LinkKind


def wire(a, b, mm):
    return Link(a, b, LinkKind.WIRE, mm)


def wireless(a, b, channel=0):
    return Link(a, b, LinkKind.WIRELESS, 10.0, channel=channel)


class TestTransferEnergy:
    def test_wire_path(self):
        params = NocEnergyParams(
            router_pj_per_bit=1.0, wire_pj_per_bit_per_mm=2.0, wireless_pj_per_bit=5.0
        )
        model = NocEnergyModel(params)
        energy = model.transfer_energy([wire(0, 1, 2.5)], 1000.0)
        # 2 routers (hop + ejection) + 2.5 mm of wire.
        assert energy == pytest.approx((2 * 1.0 + 2.0 * 2.5) * 1000 * 1e-12)

    def test_wireless_flat_cost(self):
        params = NocEnergyParams(
            router_pj_per_bit=1.0, wire_pj_per_bit_per_mm=2.0, wireless_pj_per_bit=5.0
        )
        model = NocEnergyModel(params)
        energy = model.transfer_energy([wireless(0, 1)], 1000.0)
        assert energy == pytest.approx((2 * 1.0 + 5.0) * 1000 * 1e-12)

    def test_counters(self):
        model = NocEnergyModel()
        model.transfer_energy([wire(0, 1, 2.5), wireless(1, 2)], 100.0)
        assert model.bits_moved == 100.0
        assert model.average_hops == 2.0
        # wireless_bits counts bits per wireless link traversed: all 100
        # bits crossed one wireless link.
        assert model.wireless_fraction == pytest.approx(1.0)

    def test_default_crossover_favors_wireless_beyond_one_hop(self):
        # With the 65-nm defaults a single wireless transmission beats two
        # mesh hops of wire+router.
        params = NocEnergyParams()
        model = NocEnergyModel(params)
        wire_2hops = model.transfer_energy([wire(0, 1, 2.5), wire(1, 2, 2.5)], 1.0)
        model.reset()
        one_wireless = model.transfer_energy([wireless(0, 2)], 1.0)
        assert one_wireless < wire_2hops

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            NocEnergyModel().transfer_energy([wire(0, 1, 1.0)], -1)

    def test_static_energy(self):
        model = NocEnergyModel(NocEnergyParams(switch_leakage_w=2e-3))
        assert model.static_energy(10, 2.0) == pytest.approx(2e-3 * 10 * 2.0)
        assert model.static_energy(10, 2.0, voltage_scale=0.5) == pytest.approx(
            2e-3 * 10 * 2.0 * 0.25
        )

    def test_reset(self):
        model = NocEnergyModel()
        model.transfer_energy([wire(0, 1, 1.0)], 10.0)
        model.reset()
        assert model.dynamic_joules == 0.0
        assert model.bits_moved == 0.0
