"""Protocol-level token-MAC simulation and validation of the analytic
channel model."""

import pytest

from repro.noc.token_mac import measured_token_overhead, simulate_token_channel
from repro.noc.wireless import WirelessSpec


class TestProtocolInvariants:
    def test_zero_load(self):
        stats = simulate_token_channel([0.0, 0.0, 0.0, 0.0], 544.0, seed=1)
        assert stats.throughput_bps == 0.0
        assert stats.mean_wait_s == 0.0

    def test_light_load_delivers_everything(self):
        stats = simulate_token_channel(
            [1e5] * 4, 544.0, duration_s=1e-3, seed=2
        )
        assert stats.utilization == pytest.approx(1.0, abs=0.05)

    def test_saturation_caps_throughput(self):
        spec = WirelessSpec()
        # offer 3x the channel bandwidth
        rate = 3 * spec.bandwidth_bps / 544.0 / 4
        stats = simulate_token_channel([rate] * 4, 544.0, spec=spec, seed=3)
        assert stats.throughput_bps < spec.bandwidth_bps
        assert stats.throughput_bps > 0.5 * spec.bandwidth_bps
        assert stats.utilization < 0.5

    def test_round_robin_fairness_under_saturation(self):
        spec = WirelessSpec()
        rate = 2 * spec.bandwidth_bps / 544.0 / 4
        stats = simulate_token_channel([rate] * 4, 544.0, spec=spec, seed=4)
        delivered = stats.delivered_per_wi
        assert max(delivered) <= 1.2 * min(delivered) + 2

    def test_wait_grows_with_load(self):
        light = measured_token_overhead(0.1, seed=5)
        heavy = measured_token_overhead(0.8, seed=5)
        assert heavy > light

    def test_needs_two_wis(self):
        with pytest.raises(ValueError):
            simulate_token_channel([1e6], 544.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            simulate_token_channel([1e6, -1.0], 544.0)


class TestAnalyticCalibration:
    def test_token_overhead_constant_is_right_order_at_moderate_load(self):
        """The flow model charges token_overhead_s (2 ns) plus an M/D/1
        queue term; the protocol-measured wait at moderate load must sit
        within the same order of magnitude."""
        spec = WirelessSpec()
        measured = measured_token_overhead(0.4, spec=spec, seed=7)
        analytic_service = 544.0 / spec.bandwidth_bps
        analytic = spec.token_overhead_s + analytic_service * 0.4 / (2 * 0.6)
        assert measured < 30 * analytic
        assert measured > analytic / 30

    def test_validation(self):
        with pytest.raises(ValueError):
            measured_token_overhead(0.0)
        with pytest.raises(ValueError):
            measured_token_overhead(1.5)
