"""Constrained small-world construction (paper Sec. 5)."""

import numpy as np
import pytest

from repro.noc.smallworld import (
    SmallWorldConfig,
    _inter_cluster_quotas,
    build_small_world,
)


@pytest.fixture(scope="module")
def small_world(geometry_module, quadrants_module):
    return build_small_world(geometry_module, quadrants_module, seed=3)


@pytest.fixture(scope="module")
def geometry_module():
    from repro.noc.topology import GridGeometry

    return GridGeometry(8, 8)


@pytest.fixture(scope="module")
def quadrants_module(geometry_module):
    from repro.vfi.islands import quadrant_clusters

    return list(quadrant_clusters(geometry_module).node_cluster)


class TestConstruction:
    def test_average_degree_matches_mesh(self, small_world):
        # <k> = 4 so the WiNoC adds no switch overhead vs the mesh.
        assert small_world.average_degree() == pytest.approx(4.0)

    def test_kmax_respected(self, small_world):
        config = SmallWorldConfig()
        assert max(small_world.degree(n) for n in range(64)) <= config.kmax

    def test_connected(self, small_world):
        assert small_world.is_connected()

    def test_every_cluster_internally_connected(
        self, small_world, quadrants_module
    ):
        for cid in range(4):
            members = {n for n, c in enumerate(quadrants_module) if c == cid}
            # BFS within cluster-only links
            seen = {min(members)}
            frontier = [min(members)]
            while frontier:
                node = frontier.pop()
                for link in small_world.adjacency()[node]:
                    peer = link.other(node)
                    if peer in members and peer not in seen:
                        seen.add(peer)
                        frontier.append(peer)
            assert seen == members

    def test_intra_inter_split(self, small_world, quadrants_module):
        intra = inter = 0
        for link in small_world.links:
            if quadrants_module[link.a] == quadrants_module[link.b]:
                intra += 1
            else:
                inter += 1
        assert intra == 96  # 4 clusters * 16 nodes * 3.0 / 2
        assert inter == 32  # 64 * 1.0 / 2

    def test_deterministic_given_seed(self, geometry_module, quadrants_module):
        a = build_small_world(geometry_module, quadrants_module, seed=9)
        b = build_small_world(geometry_module, quadrants_module, seed=9)
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_different_seed_differs(self, geometry_module, quadrants_module):
        a = build_small_world(geometry_module, quadrants_module, seed=9)
        b = build_small_world(geometry_module, quadrants_module, seed=10)
        assert [(l.a, l.b) for l in a.links] != [(l.a, l.b) for l in b.links]

    def test_traffic_skews_link_quotas(self, geometry_module, quadrants_module):
        traffic = np.ones((4, 4))
        traffic[0, 1] = traffic[1, 0] = 100.0
        topo = build_small_world(
            geometry_module,
            quadrants_module,
            inter_cluster_traffic=traffic,
            seed=4,
        )
        counts = {}
        for link in topo.links:
            ca, cb = quadrants_module[link.a], quadrants_module[link.b]
            if ca != cb:
                counts[frozenset((ca, cb))] = counts.get(frozenset((ca, cb)), 0) + 1
        assert counts[frozenset((0, 1))] > counts[frozenset((2, 3))]

    def test_local_bias_of_intra_links(self, small_world, quadrants_module):
        intra_lengths = [
            link.length_mm
            for link in small_world.links
            if quadrants_module[link.a] == quadrants_module[link.b]
        ]
        # alpha_intra = 3 keeps most intra links at nearest-neighbour reach.
        assert np.median(intra_lengths) <= 1.5 * small_world.geometry.pitch_mm

    def test_22_configuration(self, geometry_module, quadrants_module):
        config = SmallWorldConfig(k_intra=2.0, k_inter=2.0)
        topo = build_small_world(
            geometry_module, quadrants_module, config=config, seed=5
        )
        assert topo.average_degree() == pytest.approx(4.0)
        inter = sum(
            1
            for link in topo.links
            if quadrants_module[link.a] != quadrants_module[link.b]
        )
        assert inter == 64

    def test_infeasible_k_intra_rejected(self, geometry_module, quadrants_module):
        with pytest.raises(ValueError):
            build_small_world(
                geometry_module,
                quadrants_module,
                config=SmallWorldConfig(k_intra=1.0, k_inter=3.0),
                seed=1,
            )


class TestQuotas:
    def test_largest_remainder_sums(self):
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        traffic = np.arange(16, dtype=float).reshape(4, 4)
        quotas = _inter_cluster_quotas(pairs, [0, 1, 2, 3], traffic, 32)
        assert sum(quotas.values()) == 32
        assert all(quota >= 1 for quota in quotas.values())

    def test_uniform_when_no_traffic(self):
        pairs = [(0, 1), (0, 2), (1, 2)]
        quotas = _inter_cluster_quotas(pairs, [0, 1, 2], None, 9)
        assert set(quotas.values()) == {3}

    def test_too_few_links_rejected(self):
        pairs = [(0, 1), (0, 2), (1, 2)]
        with pytest.raises(ValueError):
            _inter_cluster_quotas(pairs, [0, 1, 2], None, 2)
