"""Run manifest bookkeeping."""

import json

import numpy as np

from repro.orchestrator import RunManifest, UnitRecord
from repro.orchestrator.manifest import CACHED, COMPUTED, FAILED


def _record(status, attempts=1, error=None):
    return UnitRecord(
        key="ab" * 32,
        label="histogram scale=0.3 seed=9 workers=16",
        spec={"app": "histogram"},
        status=status,
        wall_time_s=0.5,
        attempts=attempts,
        error=error,
    )


def _manifest():
    manifest = RunManifest(jobs=4, cache_dir="/tmp/cache", schema_version=1)
    manifest.add(_record(CACHED))
    manifest.add(_record(COMPUTED))
    manifest.add(_record(COMPUTED, attempts=3))
    manifest.add(_record(FAILED, attempts=2, error="RuntimeError('boom')"))
    manifest.wall_time_s = 2.5
    return manifest


class TestCounts:
    def test_tallies(self):
        manifest = _manifest()
        assert manifest.num_units == 4
        assert manifest.num_cached == 1
        assert manifest.num_computed == 2
        assert manifest.num_failed == 1
        assert manifest.num_retries == 3  # 2 from the flaky unit, 1 failed
        assert manifest.hit_rate == 0.25

    def test_empty_hit_rate(self):
        assert RunManifest().hit_rate == 0.0

    def test_failures_listed(self):
        failures = _manifest().failures()
        assert len(failures) == 1
        assert "boom" in failures[0].error

    def test_record_retries(self):
        assert _record(CACHED).retries == 0
        assert _record(COMPUTED, attempts=3).retries == 2


class TestSerialization:
    def test_to_dict_is_json_serializable(self):
        text = json.dumps(_manifest().to_dict())
        assert "boom" in text

    def test_summary_block(self):
        summary = _manifest().to_dict()["summary"]
        assert summary == {
            "units": 4,
            "cached": 1,
            "computed": 2,
            "failed": 1,
            "retries": 3,
            "hit_rate": 0.25,
        }

    def test_save(self, tmp_path):
        path = tmp_path / "manifest.json"
        _manifest().save(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["records"]) == 4
        assert loaded["jobs"] == 4

    def test_format_summary(self):
        text = _manifest().format_summary()
        assert "4 units" in text
        assert "1 cached" in text
        assert "1 FAILED" in text
        assert "retries" in text

    def test_numpy_scalars_in_specs_are_cast(self, tmp_path):
        # Sweep drivers build specs from numpy values (np.linspace
        # scales, np.int64 seeds); the manifest must still serialize as
        # plain JSON with builtin-typed payloads.
        manifest = RunManifest(jobs=np.int64(2))
        manifest.wall_time_s = np.float64(1.5)
        manifest.add(
            UnitRecord(
                key="cd" * 32,
                label="sweep unit",
                spec={
                    "app": "histogram",
                    "scale": np.float64(0.05),
                    "seed": np.int64(9),
                    "grid": np.linspace(0.0, 1.0, 3),
                },
                status=COMPUTED,
                wall_time_s=np.float64(0.25),
                attempts=np.int64(1),
            )
        )
        data = manifest.to_dict()
        text = json.dumps(data, allow_nan=False)  # must not raise
        spec = data["records"][0]["spec"]
        assert type(spec["scale"]) is float
        assert type(spec["seed"]) is int
        assert spec["grid"] == [0.0, 0.5, 1.0]
        assert type(data["jobs"]) is int
        path = tmp_path / "manifest.json"
        manifest.save(path)
        assert json.loads(path.read_text())["records"][0]["spec"] == spec
        assert "0.05" in text
