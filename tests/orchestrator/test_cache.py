"""On-disk study cache: round trips, misses, corruption tolerance."""

import json

import numpy as np
import pytest

from repro.core.experiment import run_app_study
from repro.orchestrator import StudyCache, StudySpec

SPEC = StudySpec(app="histogram", scale=0.05, seed=9, num_workers=16)


@pytest.fixture(scope="module")
def study():
    return run_app_study(**SPEC.run_kwargs())


@pytest.fixture()
def cache(tmp_path):
    return StudyCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_on_empty(self, cache):
        assert cache.get(SPEC) is None
        assert SPEC not in cache
        assert len(cache) == 0

    def test_put_get(self, cache, study):
        cache.put(SPEC, study)
        assert SPEC in cache
        assert len(cache) == 1
        loaded = cache.get(SPEC)
        assert loaded is not None
        for config in study.results:
            assert loaded.normalized_time(config) == study.normalized_time(config)
            assert loaded.normalized_edp(config) == study.normalized_edp(config)
            assert np.array_equal(
                loaded.result(config).utilization,
                study.result(config).utilization,
            )
        assert loaded.design.worker_clusters == study.design.worker_clusters
        assert loaded.label == study.label

    def test_path_is_sharded_by_key(self, cache):
        key = SPEC.cache_key()
        path = cache.path_for(SPEC)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_other_spec_still_misses(self, cache, study):
        cache.put(SPEC, study)
        other = StudySpec(app="histogram", scale=0.05, seed=10, num_workers=16)
        assert cache.get(other) is None

    def test_clear(self, cache, study):
        cache.put(SPEC, study)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(SPEC) is None


class TestRobustness:
    def test_corrupt_entry_reads_as_miss(self, cache, study):
        cache.put(SPEC, study)
        cache.path_for(SPEC).write_text("{not json")
        assert cache.get(SPEC) is None

    def test_truncated_entry_reads_as_miss(self, cache, study):
        path = cache.put(SPEC, study)
        path.write_text(path.read_text()[: 100])
        assert cache.get(SPEC) is None

    def test_schema_mismatch_reads_as_miss(self, cache, study):
        path = cache.put(SPEC, study)
        envelope = json.loads(path.read_text())
        envelope["schema_version"] += 1
        path.write_text(json.dumps(envelope))
        assert cache.get(SPEC) is None

    def test_rewrite_after_corruption(self, cache, study):
        cache.put(SPEC, study)
        cache.path_for(SPEC).write_text("")
        assert cache.get(SPEC) is None
        cache.put(SPEC, study)
        assert cache.get(SPEC) is not None
