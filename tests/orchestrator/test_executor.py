"""Campaign execution: serial fallback, parallel fan-out, retries, resume.

The injected-fault workers below are module-level so the process pool
can ship them to forked workers by reference; cross-process attempt
counting goes through marker files under a directory published in the
environment (forked workers inherit it).
"""

import os
import pathlib
import time

import pytest

from repro.core.experiment import run_app_study
from repro.core.serialization import study_summary_dict
from repro.orchestrator import (
    CampaignError,
    StudyCache,
    StudySpec,
    run_campaign,
)
from repro.orchestrator.executor import compute_study_document

SPEC_A = StudySpec(app="histogram", scale=0.05, seed=9, num_workers=16)
SPEC_B = StudySpec(app="histogram", scale=0.05, seed=10, num_workers=16)
#: Seed the fault-injecting workers key on.
BAD_SEED = 13
SPEC_BAD = StudySpec(app="histogram", scale=0.05, seed=BAD_SEED, num_workers=16)

FLAKY_DIR_ENV = "REPRO_TEST_FLAKY_DIR"


def failing_worker(fields):
    """Permanently fails the BAD_SEED unit; others run normally."""
    if fields["seed"] == BAD_SEED:
        raise ValueError("injected permanent failure")
    return compute_study_document(fields)


def flaky_worker(fields):
    """Fails each unit's first attempt, succeeds on the retry."""
    marker = pathlib.Path(os.environ[FLAKY_DIR_ENV]) / f"seed{fields['seed']}"
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("injected transient failure")
    return compute_study_document(fields)


def sleepy_worker(fields):
    # The unit is already timed out and orphaned by the time this wakes
    # up; return a dummy document so pool shutdown only waits the sleep.
    time.sleep(2.0)
    return {}


@pytest.fixture()
def flaky_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(FLAKY_DIR_ENV, str(tmp_path))
    return tmp_path


class TestSerialFallback:
    def test_jobs1_returns_the_memoized_study(self):
        campaign = run_campaign([SPEC_A], jobs=1)
        assert campaign.ok
        assert campaign.study(SPEC_A) is run_app_study(**SPEC_A.run_kwargs())

    def test_manifest_records_computed(self):
        campaign = run_campaign([SPEC_A], jobs=1)
        (record,) = campaign.manifest.records
        assert record.status in ("computed",)
        assert record.attempts == 1
        assert record.key == SPEC_A.cache_key()

    def test_duplicates_collapse(self):
        campaign = run_campaign([SPEC_A, StudySpec(app="hist", scale=0.05,
                                                   seed=9, num_workers=16)])
        assert campaign.manifest.num_units == 1

    def test_serial_retry_then_success(self, flaky_dir):
        campaign = run_campaign(
            [SPEC_A], jobs=1, retries=1, worker=flaky_worker
        )
        assert campaign.ok
        (record,) = campaign.manifest.records
        assert record.attempts == 2
        assert campaign.manifest.num_retries == 1

    def test_serial_retry_exhaustion_surfaces_original_error(self):
        campaign = run_campaign(
            [SPEC_BAD], jobs=1, retries=1, worker=failing_worker
        )
        assert not campaign.ok
        error = campaign.errors[SPEC_BAD]
        assert isinstance(error, ValueError)
        assert "injected permanent failure" in str(error)
        (record,) = campaign.manifest.records
        assert record.failed and record.attempts == 2
        with pytest.raises(CampaignError) as excinfo:
            campaign.raise_failures()
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_bad_jobs_and_retries_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([SPEC_A], jobs=0)
        with pytest.raises(ValueError):
            run_campaign([SPEC_A], retries=-1)


class TestParallel:
    def test_parallel_matches_serial_byte_for_byte(self):
        campaign = run_campaign([SPEC_A, SPEC_B], jobs=2)
        campaign.raise_failures()
        assert campaign.manifest.num_computed == 2
        for spec in (SPEC_A, SPEC_B):
            import json

            direct = run_app_study(**spec.run_kwargs())
            assert json.dumps(
                study_summary_dict(campaign.study(spec)), sort_keys=True
            ) == json.dumps(study_summary_dict(direct), sort_keys=True)

    def test_failure_does_not_abort_siblings(self):
        campaign = run_campaign(
            [SPEC_A, SPEC_BAD], jobs=2, retries=0, worker=failing_worker
        )
        assert SPEC_A in campaign.studies
        assert SPEC_BAD in campaign.errors
        assert campaign.manifest.num_computed == 1
        assert campaign.manifest.num_failed == 1

    def test_parallel_retry_then_success(self, flaky_dir):
        campaign = run_campaign(
            [SPEC_A, SPEC_B], jobs=2, retries=1, worker=flaky_worker
        )
        campaign.raise_failures()
        assert campaign.manifest.num_retries == 2
        for record in campaign.manifest.records:
            assert record.attempts == 2

    def test_timeout_is_recorded_as_failure(self):
        campaign = run_campaign(
            [SPEC_A], jobs=2, retries=0, timeout_s=0.2, worker=sleepy_worker
        )
        assert not campaign.ok
        assert isinstance(campaign.errors[SPEC_A], TimeoutError)
        (record,) = campaign.manifest.records
        assert record.failed
        assert "exceeded" in record.error


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        cold = run_campaign([SPEC_A, SPEC_B], jobs=2, cache=cache)
        cold.raise_failures()
        assert cold.manifest.num_computed == 2
        assert cold.manifest.hit_rate == 0.0

        warm = run_campaign([SPEC_A, SPEC_B], jobs=2, cache=cache)
        warm.raise_failures()
        assert warm.manifest.num_cached == 2
        assert warm.manifest.hit_rate == 1.0
        import json

        assert json.dumps(
            study_summary_dict(warm.study(SPEC_A)), sort_keys=True
        ) == json.dumps(study_summary_dict(cold.study(SPEC_A)), sort_keys=True)

    def test_cache_accepts_directory_path(self, tmp_path):
        campaign = run_campaign([SPEC_A], cache=str(tmp_path / "by-path"))
        campaign.raise_failures()
        assert campaign.manifest.cache_dir == str(tmp_path / "by-path")
        warm = run_campaign([SPEC_A], cache=str(tmp_path / "by-path"))
        assert warm.manifest.num_cached == 1

    def test_resume_after_partial_failure(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        first = run_campaign(
            [SPEC_A, SPEC_BAD], jobs=2, retries=0,
            cache=cache, worker=failing_worker,
        )
        assert first.manifest.num_computed == 1
        assert first.manifest.num_failed == 1

        # Second invocation with a healthy worker: the completed unit is
        # served from disk, only the failed one is recomputed.
        second = run_campaign([SPEC_A, SPEC_BAD], jobs=2, cache=cache)
        second.raise_failures()
        by_key = {r.key: r for r in second.manifest.records}
        assert by_key[SPEC_A.cache_key()].status == "cached"
        assert by_key[SPEC_BAD.cache_key()].status == "computed"

    def test_progress_callback_sees_every_unit(self, tmp_path):
        seen = []
        campaign = run_campaign(
            [SPEC_A, SPEC_B], jobs=1, cache=StudyCache(tmp_path / "cache"),
            progress=seen.append,
        )
        campaign.raise_failures()
        assert [r.status for r in seen] == ["computed", "computed"]
        seen.clear()
        run_campaign(
            [SPEC_A, SPEC_B], jobs=1, cache=StudyCache(tmp_path / "cache"),
            progress=seen.append,
        )
        assert [r.status for r in seen] == ["cached", "cached"]
