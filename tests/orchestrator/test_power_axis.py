"""The orchestrator's power-cap axis: spec carrying, cache keys, grids."""

from repro.core.experiment import VFI2_WINOC
from repro.orchestrator.cache import StudyCache
from repro.orchestrator.executor import run_campaign
from repro.orchestrator.spec import CACHE_SCHEMA_VERSION, StudySpec, expand_grid
from repro.power import PowerCapSpec

APP = "histogram"
KWARGS = dict(scale=0.05, seed=9, num_workers=16)


class TestSpecCarrying:
    def test_schema_bumped_for_the_power_axis(self):
        assert CACHE_SCHEMA_VERSION >= 4

    def test_default_cap_collapses_to_none(self):
        assert StudySpec(APP, **KWARGS).power_cap is None
        assert StudySpec(APP, power_cap=PowerCapSpec(), **KWARGS).power_cap is None
        assert StudySpec(APP, power_cap=PowerCapSpec(), **KWARGS) == StudySpec(
            APP, **KWARGS
        )

    def test_bare_watts_and_spec_round_trip(self):
        spec = StudySpec(APP, power_cap=96.0, **KWARGS)
        cap = PowerCapSpec(chip_cap_w=96.0)
        assert spec.power_cap == cap.to_json()
        assert spec.cap() == cap
        assert spec == StudySpec(APP, power_cap=cap, **KWARGS)
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_cap_splits_the_cache_key(self):
        plain = StudySpec(APP, **KWARGS)
        capped = StudySpec(APP, power_cap=96.0, **KWARGS)
        assert plain.cache_key() != capped.cache_key()

    def test_label_names_the_cap(self):
        spec = StudySpec(APP, power_cap=96.0, **KWARGS)
        assert "cap=96W" in spec.label
        assert "cap=" not in StudySpec(APP, **KWARGS).label

    def test_run_kwargs_decodes_the_spec(self):
        kwargs = StudySpec(APP, power_cap=64.0, **KWARGS).run_kwargs()
        assert kwargs["power_cap"] == PowerCapSpec(chip_cap_w=64.0)
        assert StudySpec(APP, **KWARGS).run_kwargs()["power_cap"] is None


class TestGrid:
    def test_power_axis_expands_and_dedups(self):
        specs = expand_grid(
            [APP],
            scales=[0.05],
            seeds=[9],
            num_workers=[16],
            power_caps=[None, PowerCapSpec(), 96.0],
        )
        # None and the unbounded spec collapse to one uncapped unit.
        assert len(specs) == 2
        assert specs[0].power_cap is None
        assert specs[1].cap() == PowerCapSpec(chip_cap_w=96.0)

    def test_cap_axis_composes_with_the_tech_axis(self):
        from repro.tech import TechSpec

        specs = expand_grid(
            [APP], scales=[0.05], seeds=[9], num_workers=[16],
            tech=[None, TechSpec(node="45nm")],
            power_caps=[None, 40.0],
        )
        assert len(specs) == 4
        pairs = {(spec.tech is None, spec.power_cap is None) for spec in specs}
        assert len(pairs) == 4


class TestCampaign:
    def test_capped_units_cache_and_replay(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        specs = expand_grid(
            [APP], scales=[0.05], seeds=[9], num_workers=[16],
            power_caps=[None, 16.0],
        )
        first = run_campaign(specs, cache=cache)
        first.raise_failures()
        assert first.manifest.num_computed == 2

        again = run_campaign(specs, cache=cache)
        again.raise_failures()
        assert again.manifest.num_cached == 2

        plain = again.study(specs[0])
        capped = again.study(specs[1])
        # The cached capped study still carries its enforcement record.
        impact = capped.result(VFI2_WINOC).power
        assert impact is not None and impact.cap_w == 16.0
        assert plain.result(VFI2_WINOC).power is None
        assert (
            capped.result(VFI2_WINOC).total_time_s
            >= plain.result(VFI2_WINOC).total_time_s
        )
