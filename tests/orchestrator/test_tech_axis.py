"""The orchestrator's tech axis: spec carrying, cache keys, grids."""

import pytest

from repro.core.experiment import VFI2_WINOC
from repro.orchestrator.cache import StudyCache
from repro.orchestrator.executor import run_campaign
from repro.orchestrator.spec import CACHE_SCHEMA_VERSION, StudySpec, expand_grid
from repro.tech import TechSpec

APP = "histogram"
KWARGS = dict(scale=0.05, seed=9, num_workers=16)


class TestSpecCarrying:
    def test_schema_bumped_for_the_tech_axis(self):
        assert CACHE_SCHEMA_VERSION >= 3

    def test_default_tech_collapses_to_none(self):
        assert StudySpec(APP, **KWARGS).tech is None
        assert StudySpec(APP, tech=TechSpec(), **KWARGS).tech is None
        assert StudySpec(APP, tech=TechSpec(), **KWARGS) == StudySpec(
            APP, **KWARGS
        )

    def test_non_default_tech_round_trips(self):
        tech = TechSpec(node="45nm", cores="big_little")
        spec = StudySpec(APP, tech=tech, **KWARGS)
        assert spec.tech == tech.to_json()
        assert spec.tech_spec() == tech
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_tech_splits_the_cache_key(self):
        plain = StudySpec(APP, **KWARGS)
        shrunk = StudySpec(APP, tech=TechSpec(node="45nm"), **KWARGS)
        assert plain.cache_key() != shrunk.cache_key()

    def test_label_names_the_tech(self):
        spec = StudySpec(APP, tech=TechSpec(node="32nm"), **KWARGS)
        assert "tech=32nm-itrs/ooo" in spec.label
        assert "tech=" not in StudySpec(APP, **KWARGS).label

    def test_run_kwargs_decodes_the_spec(self):
        tech = TechSpec(node="22nm", cores="io")
        kwargs = StudySpec(APP, tech=tech, **KWARGS).run_kwargs()
        assert kwargs["tech"] == tech
        assert StudySpec(APP, **KWARGS).run_kwargs()["tech"] is None


class TestGrid:
    def test_tech_axis_expands_and_dedups(self):
        specs = expand_grid(
            [APP],
            scales=[0.05],
            seeds=[9],
            num_workers=[16],
            tech=[None, TechSpec(), TechSpec(node="45nm")],
        )
        # None and the default TechSpec collapse to one unit.
        assert len(specs) == 2
        assert specs[0].tech is None
        assert specs[1].tech_spec() == TechSpec(node="45nm")


class TestCampaign:
    def test_tech_units_cache_and_replay(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        specs = expand_grid(
            [APP], scales=[0.05], seeds=[9], num_workers=[16],
            tech=[None, TechSpec(node="45nm")],
        )
        first = run_campaign(specs, cache=cache)
        first.raise_failures()
        assert first.manifest.num_computed == 2

        again = run_campaign(specs, cache=cache)
        again.raise_failures()
        assert again.manifest.num_cached == 2

        plain = again.study(specs[0])
        shrunk = again.study(specs[1])
        assert (
            shrunk.result(VFI2_WINOC).total_time_s
            < plain.result(VFI2_WINOC).total_time_s
        )
