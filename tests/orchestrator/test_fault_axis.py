"""The orchestrator's resilience sweep axis: fault plans on StudySpec,
grid expansion, cache keying, and campaign round trips."""

import pytest

from repro.core.experiment import clear_study_cache
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.orchestrator.executor import run_campaign
from repro.orchestrator.spec import (
    CACHE_SCHEMA_VERSION,
    StudySpec,
    expand_grid,
)


@pytest.fixture()
def plan():
    return FaultPlan(
        events=(
            FaultSpec(FaultKind.CORE_FAILURE, 5.0, (3,)),
            FaultSpec(FaultKind.ISLAND_THROTTLE, 2.0, (1,), 1.0),
        ),
        name="axis",
    )


class TestSpecPlanField:
    def test_schema_version_bumped_for_fault_axis(self):
        assert CACHE_SCHEMA_VERSION >= 2

    def test_plan_object_and_json_canonicalize_identically(self, plan):
        by_object = StudySpec("histogram", fault_plan=plan)
        by_json = StudySpec("histogram", fault_plan=plan.to_json())
        assert by_object == by_json
        assert hash(by_object) == hash(by_json)
        assert by_object.cache_key() == by_json.cache_key()

    def test_non_canonical_json_is_recanonicalized(self, plan):
        import json

        loose = json.dumps(json.loads(plan.to_json()), indent=2)
        assert StudySpec("histogram", fault_plan=loose) == StudySpec(
            "histogram", fault_plan=plan
        )

    def test_empty_plan_collapses_to_fault_free(self):
        assert StudySpec("histogram", fault_plan=FaultPlan()) == StudySpec(
            "histogram"
        )

    def test_plan_changes_the_cache_key(self, plan):
        assert (
            StudySpec("histogram", fault_plan=plan).cache_key()
            != StudySpec("histogram").cache_key()
        )

    def test_run_kwargs_decodes_the_plan(self, plan):
        spec = StudySpec("histogram", fault_plan=plan)
        kwargs = spec.run_kwargs()
        assert kwargs["fault_plan"] == plan
        assert StudySpec("histogram").run_kwargs()["fault_plan"] is None

    def test_label_names_the_plan(self, plan):
        assert "faults=axis(2)" in StudySpec("histogram", fault_plan=plan).label
        assert "faults" not in StudySpec("histogram").label

    def test_round_trips_through_dict(self, plan):
        spec = StudySpec("histogram", fault_plan=plan)
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            StudySpec("histogram", fault_plan=42)


class TestGridExpansion:
    def test_fault_axis_cross_product(self, plan):
        specs = expand_grid(
            ["histogram"], seeds=(7, 8), fault_plans=(None, plan)
        )
        assert len(specs) == 4
        assert sum(1 for s in specs if s.fault_plan is not None) == 2

    def test_default_grid_is_fault_free(self):
        for spec in expand_grid(["histogram", "wordcount"]):
            assert spec.fault_plan is None


class TestCampaignRoundTrip:
    def test_faulted_unit_caches_and_restores(self, tmp_path, plan):
        specs = expand_grid(
            ["histogram"], scales=(0.05,), seeds=(9,), num_workers=(16,),
            fault_plans=(None, plan),
        )
        cold = run_campaign(specs, cache=str(tmp_path))
        cold.raise_failures()
        faulted = cold.study(specs[1])

        clear_study_cache()
        warm = run_campaign(specs, cache=str(tmp_path))
        warm.raise_failures()
        assert [r.status for r in warm.manifest.records] == ["cached", "cached"]

        clean_again = warm.study(specs[0])
        faulted_again = warm.study(specs[1])
        assert clean_again.result("nvfi_mesh").faults is None
        restored = faulted_again.result("nvfi_mesh")
        original = faulted.result("nvfi_mesh")
        assert restored.faults is not None
        assert restored.faults.to_dict() == original.faults.to_dict()
        assert restored.total_time_s == original.total_time_s
