"""StudySpec canonicalization, hashing and grid expansion."""

import subprocess
import sys

import pytest

from repro.orchestrator import CACHE_SCHEMA_VERSION, StudySpec, expand_grid


class TestCanonicalization:
    def test_alias_resolves(self):
        assert StudySpec(app="hist") == StudySpec(app="histogram")
        assert StudySpec(app="HIST").app == "histogram"

    def test_numeric_fields_normalized(self):
        spec = StudySpec(app="wordcount", scale=1, seed=9.0, num_workers=16.0)
        assert spec.scale == 1.0 and isinstance(spec.scale, float)
        assert spec.seed == 9 and isinstance(spec.seed, int)
        assert spec.num_workers == 16 and isinstance(spec.num_workers, int)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            StudySpec(app="sorting")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(app="histogram", scale=0.0)
        with pytest.raises(ValueError):
            StudySpec(app="histogram", scale=1.5)

    def test_untileable_workers_rejected(self):
        # Rectangular worker counts (20 = 5x4, 128 = 16x8) are accepted
        # since the DieGeometry refactor; 18 = 6x3 has no rectangular
        # 4-island tiling and must still be rejected up front.
        with pytest.raises(ValueError):
            StudySpec(app="histogram", num_workers=18)
        assert StudySpec(app="histogram", num_workers=20).num_workers == 20
        assert StudySpec(app="histogram", num_workers=128).num_workers == 128

    def test_bad_methodology_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(app="histogram", winoc_methodology="telepathy")

    def test_round_trip_dict(self):
        spec = StudySpec(app="kmeans", scale=0.5, seed=3, num_workers=36)
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_run_kwargs_match_run_app_study(self):
        kwargs = StudySpec(app="kmeans").run_kwargs()
        assert kwargs["app_name"] == "kmeans"
        assert "app" not in kwargs
        assert set(kwargs) == {
            "app_name", "scale", "seed", "num_workers",
            "winoc_methodology", "include_vfi1", "fault_plan", "tech",
            "power_cap",
        }

    def test_label_mentions_identity(self):
        label = StudySpec(app="pca", scale=0.3, seed=11, num_workers=16).label
        assert "pca" in label and "seed=11" in label and "workers=16" in label


class TestCacheKey:
    def test_deterministic_within_process(self):
        a = StudySpec(app="histogram", scale=0.3, seed=9)
        b = StudySpec(app="hist", scale=0.3, seed=9)
        assert a.cache_key() == b.cache_key()

    def test_any_field_change_changes_key(self):
        base = StudySpec(app="histogram", scale=0.3, seed=9, num_workers=16)
        variants = [
            StudySpec(app="kmeans", scale=0.3, seed=9, num_workers=16),
            StudySpec(app="histogram", scale=0.31, seed=9, num_workers=16),
            StudySpec(app="histogram", scale=0.3, seed=10, num_workers=16),
            StudySpec(app="histogram", scale=0.3, seed=9, num_workers=64),
            StudySpec(
                app="histogram", scale=0.3, seed=9, num_workers=16,
                winoc_methodology="min_hop",
            ),
            StudySpec(
                app="histogram", scale=0.3, seed=9, num_workers=16,
                include_vfi1=False,
            ),
        ]
        keys = {spec.cache_key() for spec in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)

    def test_schema_version_changes_key(self):
        spec = StudySpec(app="histogram")
        assert spec.cache_key(CACHE_SCHEMA_VERSION) != spec.cache_key(
            CACHE_SCHEMA_VERSION + 1
        )

    def test_deterministic_across_processes(self):
        spec = StudySpec(app="histogram", scale=0.3, seed=9, num_workers=16)
        script = (
            "from repro.orchestrator import StudySpec;"
            "print(StudySpec(app='hist', scale=0.3, seed=9,"
            " num_workers=16).cache_key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == spec.cache_key()


class TestExpandGrid:
    def test_app_major_order(self):
        specs = expand_grid(apps=["histogram", "kmeans"], seeds=[1, 2])
        assert [(s.app, s.seed) for s in specs] == [
            ("histogram", 1), ("histogram", 2),
            ("kmeans", 1), ("kmeans", 2),
        ]

    def test_aliases_deduplicate(self):
        specs = expand_grid(apps=["hist", "histogram"], seeds=[1])
        assert len(specs) == 1

    def test_full_product(self):
        specs = expand_grid(
            apps=["histogram"],
            scales=[0.3, 0.5],
            seeds=[1, 2],
            num_workers=[16, 64],
        )
        assert len(specs) == 8
        assert len(set(specs)) == 8

    def test_empty_apps_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(apps=[])
