"""Cross-module integration invariants (16-core systems for speed)."""

import numpy as np
import pytest

from repro.core.experiment import run_app_study
from repro.core.serialization import design_to_dict
from repro.mapreduce.tasks import Phase

SCALE = 0.3
SEED = 9
WORKERS = 16


@pytest.fixture(scope="module")
def study():
    return run_app_study(
        "wordcount", scale=SCALE, seed=SEED, num_workers=WORKERS
    )


class TestEndToEndDeterminism:
    def test_identical_studies_identical_numbers(self, study):
        again = run_app_study(
            "wordcount", scale=SCALE, seed=SEED, num_workers=WORKERS,
            use_cache=False,
        )
        for config in study.results:
            assert study.result(config).total_time_s == pytest.approx(
                again.result(config).total_time_s, rel=1e-12
            )
            assert study.result(config).total_energy_j == pytest.approx(
                again.result(config).total_energy_j, rel=1e-12
            )
        assert design_to_dict(study.design) == design_to_dict(again.design)


class TestEnergyAccounting:
    @pytest.mark.parametrize(
        "config", ["nvfi_mesh", "vfi2_mesh", "vfi2_winoc"]
    )
    def test_breakdown_sums(self, study, config):
        result = study.result(config)
        energy = result.energy
        assert energy.total_j == pytest.approx(
            energy.core_dynamic_j
            + energy.core_static_j
            + energy.noc_dynamic_j
            + energy.noc_static_j
        )
        assert energy.core_j > energy.noc_j > 0

    def test_network_stats_consistent(self, study):
        result = study.result("vfi2_winoc")
        stats = result.network
        assert stats.energy_j == pytest.approx(
            result.energy.noc_dynamic_j + result.energy.noc_static_j
        )
        assert 0 <= stats.wireless_fraction <= 1
        assert stats.average_hops > 1


class TestCrossConfigPhysics:
    def test_vfi_energy_below_nvfi(self, study):
        assert (
            study.result("vfi2_mesh").total_energy_j
            < study.result("nvfi_mesh").total_energy_j
        )

    def test_winoc_hops_below_mesh(self, study):
        assert (
            study.result("vfi2_winoc").network.average_hops
            < study.result("vfi2_mesh").network.average_hops
        )

    def test_all_configs_same_committed_instructions(self, study):
        totals = [
            result.committed_instructions.sum()
            for result in study.results.values()
        ]
        assert np.allclose(totals, totals[0], rtol=1e-9)

    def test_phase_kinds_consistent_across_configs(self, study):
        kinds = {
            config: {p.phase for p in result.phases}
            for config, result in study.results.items()
        }
        reference = kinds.pop("nvfi_mesh")
        assert Phase.MAP in reference
        for config, value in kinds.items():
            assert value == reference, config


class TestDesignPlatformCoherence:
    def test_policy_matches_platform_frequencies(self, study):
        from repro.core.platforms import build_vfi_mesh, geometry_for
        from repro.utils.rng import spawn_seed

        platform = build_vfi_mesh(
            study.design,
            "vfi2",
            geometry=geometry_for(WORKERS),
            seed=spawn_seed(SEED, "wordcount", "mapping"),
        )
        policy = study.design.stealing_policy("vfi2")
        assert policy.core_frequencies_hz == [
            study.design.vfi2.points[cluster].frequency_hz
            for cluster in study.design.worker_clusters
        ]
        # and the platform realizes those frequencies through the mapping
        for worker in range(WORKERS):
            assert platform.frequency_of_worker(worker) == pytest.approx(
                policy.core_frequencies_hz[worker]
            )
