"""McPAT-style core power model."""

import pytest

from repro.energy.core_power import CorePowerModel, CorePowerParams
from repro.vfi.islands import DVFS_LADDER, NOMINAL


@pytest.fixture
def model():
    return CorePowerModel()


class TestDynamicPower:
    def test_nominal(self, model):
        assert model.dynamic_power_w(NOMINAL, 1.0) == pytest.approx(
            model.params.dynamic_w_nominal
        )

    def test_v2f_scaling(self, model):
        low = DVFS_LADDER[0]  # 0.6 V / 1.5 GHz
        expected = model.params.dynamic_w_nominal * 0.6**2 * (1.5 / 2.5)
        assert model.dynamic_power_w(low, 1.0) == pytest.approx(expected)

    def test_activity_scales_linearly(self, model):
        full = model.dynamic_power_w(NOMINAL, 1.0)
        assert model.dynamic_power_w(NOMINAL, 0.5) == pytest.approx(full / 2)

    def test_monotone_along_ladder(self, model):
        powers = [model.dynamic_power_w(p, 1.0) for p in DVFS_LADDER]
        assert powers == sorted(powers)

    def test_activity_validated(self, model):
        with pytest.raises(ValueError):
            model.dynamic_power_w(NOMINAL, 1.5)


class TestLeakage:
    def test_superlinear_in_voltage(self, model):
        low = model.leakage_power_w(DVFS_LADDER[0])
        nominal = model.leakage_power_w(NOMINAL)
        # gamma=2.5: 0.6^2.5 ~ 0.279
        assert low / nominal == pytest.approx(0.6**2.5)


class TestEnergy:
    def test_busy_costs_more_than_idle(self, model):
        busy = model.energy_j(NOMINAL, 1.0, 0.0)
        idle = model.energy_j(NOMINAL, 0.0, 1.0)
        assert busy > 3 * idle

    def test_additive(self, model):
        combined = model.energy_j(NOMINAL, 2.0, 3.0)
        assert combined == pytest.approx(
            model.energy_j(NOMINAL, 2.0, 0.0) + model.energy_j(NOMINAL, 0.0, 3.0)
        )

    def test_low_vf_saves_energy_for_same_interval(self, model):
        assert model.energy_j(DVFS_LADDER[0], 1.0, 1.0) < model.energy_j(
            NOMINAL, 1.0, 1.0
        )

    def test_negative_time_rejected(self, model):
        with pytest.raises(ValueError):
            model.energy_j(NOMINAL, -1.0, 0.0)


def test_params_validation():
    with pytest.raises(ValueError):
        CorePowerParams(dynamic_w_nominal=-1)
    with pytest.raises(ValueError):
        CorePowerParams(idle_activity=2.0)


class TestFromTech:
    """The default constants now derive from the 65 nm tech tables; these
    regressions pin the derivation to the values that used to be
    hardcoded literals here."""

    def test_defaults_equal_the_historical_literals(self):
        params = CorePowerParams()
        assert params.dynamic_w_nominal == 1.9
        assert params.leakage_w_nominal == 0.25
        assert params.idle_activity == 0.05
        assert params.leakage_gamma == 2.5
        assert params.nominal == NOMINAL

    def test_paper_node_derivation_matches_the_defaults(self):
        from repro.tech.nodes import paper_node

        assert CorePowerParams.from_tech(paper_node()) == CorePowerParams()

    def test_node_and_core_multipliers_compose(self):
        from repro.tech.cores import get_core_type
        from repro.tech.nodes import get_node, nominal_point

        node = get_node("32nm")
        io = get_core_type("io")
        params = CorePowerParams.from_tech(node, io)
        assert params.dynamic_w_nominal == pytest.approx(
            1.9 * node.dynamic_scale * io.dynamic_scale
        )
        assert params.leakage_w_nominal == pytest.approx(
            0.25 * node.leakage_scale * io.leakage_scale
        )
        assert params.nominal == nominal_point(node)

    def test_core_type_accepts_a_name(self):
        from repro.tech.nodes import paper_node

        by_name = CorePowerParams.from_tech(paper_node(), "io")
        from repro.tech.cores import get_core_type

        assert by_name == CorePowerParams.from_tech(
            paper_node(), get_core_type("io")
        )
