import pytest

from repro.energy.metrics import EnergyBreakdown, edp, normalized


class TestEdp:
    def test_product(self):
        assert edp(2.0, 3.0) == 6.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            edp(-1.0, 1.0)


class TestNormalized:
    def test_ratio(self):
        assert normalized(3.0, 2.0) == 1.5

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)


class TestEnergyBreakdown:
    def test_totals(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert b.core_j == 3.0
        assert b.noc_j == 7.0
        assert b.total_j == 10.0

    def test_add(self):
        a = EnergyBreakdown(1.0, 1.0, 1.0, 1.0)
        b = EnergyBreakdown(2.0, 2.0, 2.0, 2.0)
        total = a + b
        assert total.total_j == 12.0

    def test_as_dict(self):
        d = EnergyBreakdown(1.0, 2.0, 3.0, 4.0).as_dict()
        assert d["total_j"] == 10.0
        assert d["core_dynamic_j"] == 1.0
