"""Tracer primitives: spans, counters, histograms, global install."""

import pytest

from repro.telemetry import (
    NULL_TRACER,
    Histogram,
    NullTracer,
    RecordingTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestNullTracer:
    def test_disabled(self):
        assert NullTracer().enabled is False

    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        tracer.span("x", 0.0, 1.0, cat="c", pid="p", tid=3, foo=1)
        tracer.sample("x", 0.0, 1.0)
        tracer.counter_add("x", 2.0, key="k")
        tracer.histogram_record("x", 0.5)
        with tracer.wall_span("x"):
            pass

    def test_is_process_default(self):
        assert get_tracer() is NULL_TRACER


class TestRecordingTracer:
    def test_span_recorded(self):
        tracer = RecordingTracer()
        tracer.span("map", 1.0, 2.0, cat="sim.phase", pid="p", tid=0, iteration=3)
        (span,) = tracer.spans
        assert span.name == "map"
        assert span.end_s == pytest.approx(3.0)
        assert span.args == {"iteration": 3}
        assert not span.wall

    def test_counters_accumulate_per_key(self):
        tracer = RecordingTracer()
        tracer.counter_add("flits", 3.0, key="a")
        tracer.counter_add("flits", 4.0, key="a")
        tracer.counter_add("flits", 5.0, key="b")
        assert tracer.counter_total("flits", key="a") == pytest.approx(7.0)
        assert tracer.counter_total("flits") == pytest.approx(12.0)
        assert tracer.counter_total("missing") == 0.0

    def test_wall_span_measures_and_marks(self):
        tracer = RecordingTracer()
        with tracer.wall_span("stage", cat="vfi", pid="design-flow"):
            pass
        (span,) = tracer.spans
        assert span.wall
        assert span.duration_s >= 0.0

    def test_wall_span_records_on_exception(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with tracer.wall_span("stage"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1

    def test_spans_by_filters(self):
        tracer = RecordingTracer()
        tracer.span("a", 0.0, 1.0, cat="sim.phase", pid="p1")
        tracer.span("b", 0.0, 1.0, cat="sim.task", pid="p1")
        tracer.span("c", 0.0, 1.0, cat="sim.phase", pid="p2")
        assert [s.name for s in tracer.spans_by(cat="sim.phase")] == ["a", "c"]
        assert [s.name for s in tracer.spans_by(pid="p1")] == ["a", "b"]
        assert [s.name for s in tracer.spans_by(cat="sim.phase", pid="p2")] == ["c"]

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.span("a", 0.0, 1.0)
        tracer.counter_add("c")
        tracer.histogram_record("h", 1.0)
        tracer.sample("s", 0.0, 1.0)
        tracer.clear()
        assert not tracer.spans and not tracer.counters
        assert not tracer.histograms and not tracer.samples


class TestHistogram:
    def test_statistics(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 4.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(7.0 / 3.0)
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        # log2 buckets: 1.0 -> 0, 2.0 -> 1, 4.0 -> 2.
        assert histogram.buckets == {0: 1, 1: 1, 2: 1}

    def test_zero_goes_to_underflow_bucket(self):
        histogram = Histogram()
        histogram.record(0.0)
        assert histogram.count == 1
        assert list(histogram.buckets.values()) == [1]

    def test_empty_to_dict(self):
        data = Histogram().to_dict()
        assert data["count"] == 0
        assert data["min"] == 0.0 and data["max"] == 0.0


class TestGlobalInstall:
    def test_set_and_restore(self):
        tracer = RecordingTracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_restores_on_exception(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                assert get_tracer() is tracer
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_set_none_restores_null(self):
        previous = set_tracer(RecordingTracer())
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
        set_tracer(previous)
