"""End-to-end instrumentation: spans/counters recorded by a real study.

Runs the full pipeline twice under fresh :class:`RecordingTracer`\\ s (with
the study memo bypassed) so one module-scoped fixture feeds both the
span-content checks and the byte-identical-export determinism regression.
"""

import pytest

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    run_app_study,
)
from repro.mapreduce.tasks import Phase
from repro.telemetry import RecordingTracer, use_tracer
from repro.telemetry.export import write_chrome_trace, write_jsonl
from repro.telemetry.summary import (
    island_summary,
    phase_summary,
    trace_platforms,
)

APP = "histogram"
SCALE = 0.05
SEED = 11
WORKERS = 16
CONFIGS = (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC)


def _traced_run():
    tracer = RecordingTracer()
    with use_tracer(tracer):
        study = run_app_study(
            APP, scale=SCALE, seed=SEED, num_workers=WORKERS, use_cache=False
        )
    return tracer, study


@pytest.fixture(scope="module")
def traced_runs():
    return _traced_run(), _traced_run()


class TestInstrumentation:
    def test_all_platforms_record_phases(self, traced_runs):
        (tracer, study), _ = traced_runs
        platforms = {study.result(c).platform_name for c in CONFIGS}
        assert set(trace_platforms(tracer)) == platforms

    def test_phase_summary_matches_phase_stats(self, traced_runs):
        """Acceptance check: summed spans == PhaseStats to float tolerance."""
        (tracer, study), _ = traced_runs
        for config in CONFIGS:
            result = study.result(config)
            measured = phase_summary(tracer, pid=result.platform_name)
            phases = measured[result.platform_name]
            for phase in Phase:
                assert phases.get(phase.value, 0.0) == pytest.approx(
                    result.phase_duration_s(phase)
                ), (config, phase)

    def test_task_spans_cover_busy_time(self, traced_runs):
        (tracer, study), _ = traced_runs
        result = study.result(VFI2_WINOC)
        islands = island_summary(
            tracer, result.platform_name, study.design.worker_clusters
        )
        assert sum(entry["tasks"] for entry in islands) > 0
        assert sum(entry["busy_s"] for entry in islands) == pytest.approx(
            float(result.busy_s.sum())
        )

    def test_steal_counters_recorded_per_platform(self, traced_runs):
        (tracer, study), _ = traced_runs
        for config in CONFIGS:
            pid = study.result(config).platform_name
            attempts = tracer.counter_total("sched.steal_attempts", key=pid)
            steals = tracer.counter_total("sched.steals", key=pid)
            rejections = tracer.counter_total("sched.cap_rejections", key=pid)
            assert attempts >= steals + rejections
        # The Eq. (3) cap only constrains the VFI designs.
        assert tracer.counter_total("sched.cap_rejections", key="nvfi-mesh") == 0

    def test_flit_counters_split_by_medium(self, traced_runs):
        (tracer, study), _ = traced_runs
        mesh = study.result(VFI2_MESH).platform_name
        winoc = study.result(VFI2_WINOC).platform_name
        assert tracer.counter_total("noc.flits.wired", key=mesh) > 0
        assert tracer.counter_total("noc.flits.wireless", key=mesh) == 0
        assert tracer.counter_total("noc.flits.wireless", key=winoc) > 0

    def test_wireless_telemetry_only_on_winoc(self, traced_runs):
        (tracer, study), _ = traced_runs
        winoc = study.result(VFI2_WINOC).platform_name
        occupancy = [s for s in tracer.samples if "occupancy" in s.name]
        assert occupancy
        assert {sample.pid for sample in occupancy} == {winoc}
        assert f"noc.token_wait_s/{winoc}" in tracer.histograms
        assert not any(
            name.startswith("noc.token_wait_s/") and winoc not in name
            for name in tracer.histograms
        )

    def test_wall_spans_cover_pipeline_and_design_flow(self, traced_runs):
        (tracer, _), _ = traced_runs
        stages = {s.name for s in tracer.spans_by(cat="study", wall=True)}
        assert {"study.app_run", "study.design", "study.sim_nvfi"} <= stages
        vfi = {s.name for s in tracer.spans_by(cat="vfi", wall=True)}
        assert {"vfi.clustering", "vfi.vf_assign"} <= vfi


class TestDeterminism:
    def test_exports_byte_identical_across_runs(self, traced_runs, tmp_path):
        """Same StudySpec seed -> byte-identical exported traces."""
        (tracer_a, _), (tracer_b, _) = traced_runs
        paths = []
        for label, tracer in (("a", tracer_a), ("b", tracer_b)):
            chrome = tmp_path / f"{label}.trace.json"
            jsonl = tmp_path / f"{label}.jsonl"
            write_chrome_trace(tracer, chrome)
            write_jsonl(tracer, jsonl)
            paths.append((chrome, jsonl))
        (chrome_a, jsonl_a), (chrome_b, jsonl_b) = paths
        assert chrome_a.read_bytes() == chrome_b.read_bytes()
        assert jsonl_a.read_bytes() == jsonl_b.read_bytes()

    def test_wall_spans_recorded_but_excluded(self, traced_runs):
        (tracer, _), _ = traced_runs
        assert any(span.wall for span in tracer.spans)
