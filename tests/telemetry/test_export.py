"""Exporters: Chrome trace-event structure, JSONL records, wall filtering."""

import json

import pytest

from repro.telemetry import RecordingTracer
from repro.telemetry.export import (
    chrome_trace_dict,
    jsonl_records,
    write_chrome_trace,
    write_jsonl,
)


def _populated_tracer() -> RecordingTracer:
    tracer = RecordingTracer()
    tracer.span("map", 0.0, 2e-3, cat="sim.phase", pid="vfi2-mesh", tid="phases")
    tracer.span("map:0", 0.0, 1e-3, cat="sim.task", pid="vfi2-mesh", tid=3,
                stall_s=1e-4)
    tracer.sample("channel 0 occupancy", 1e-3, 0.25, pid="vfi2-mesh", tid=0,
                  series="fraction")
    tracer.counter_add("noc.link_flits", 64.0, key="vfi2-mesh:0-1")
    tracer.histogram_record("noc.token_wait_s/vfi2-mesh", 2e-6)
    with tracer.wall_span("vfi.clustering", cat="vfi", pid="design-flow"):
        pass
    return tracer


class TestChromeTrace:
    def test_event_structure(self):
        document = chrome_trace_dict(_populated_tracer())
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "C"}
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] != "M":
                assert "ts" in event
            if event["ph"] == "X":
                assert "dur" in event and "cat" in event

    def test_metadata_names_tracks(self):
        events = chrome_trace_dict(_populated_tracer())["traceEvents"]
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names == {"vfi2-mesh"}
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names == {"phases", "3", "0"}

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_dict(_populated_tracer())["traceEvents"]
        (phase_event,) = [
            e for e in events if e["ph"] == "X" and e["name"] == "map"
        ]
        assert phase_event["ts"] == 0.0
        assert phase_event["dur"] == pytest.approx(2000.0)

    def test_wall_spans_excluded_by_default(self):
        tracer = _populated_tracer()
        names = {
            event["name"]
            for event in chrome_trace_dict(tracer)["traceEvents"]
            if event["ph"] == "X"
        }
        assert "vfi.clustering" not in names
        names_with_wall = {
            event["name"]
            for event in chrome_trace_dict(tracer, include_wall=True)["traceEvents"]
            if event["ph"] == "X"
        }
        assert "vfi.clustering" in names_with_wall

    def test_written_file_is_strict_json(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(_populated_tracer(), path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]

    def test_empty_tracer_exports_empty_event_list(self):
        assert chrome_trace_dict(RecordingTracer())["traceEvents"] == []


class TestJsonl:
    def test_record_types(self):
        records = jsonl_records(_populated_tracer())
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert set(by_type) == {"span", "sample", "counter", "histogram"}
        (counter,) = by_type["counter"]
        assert counter["name"] == "noc.link_flits"
        assert counter["total"] == pytest.approx(64.0)
        (histogram,) = by_type["histogram"]
        assert histogram["count"] == 1

    def test_written_file_one_object_per_line(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(_populated_tracer(), path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(jsonl_records(_populated_tracer()))
        for line in lines:
            json.loads(line)

    def test_wall_filtering(self):
        tracer = _populated_tracer()
        spans = [r for r in jsonl_records(tracer) if r["type"] == "span"]
        assert all(not record["wall"] for record in spans)
        spans_with_wall = [
            r
            for r in jsonl_records(tracer, include_wall=True)
            if r["type"] == "span"
        ]
        assert any(record["wall"] for record in spans_with_wall)
