"""The Fig. 3 design flow."""

import numpy as np
import pytest

from repro.core.design_flow import (
    VfiDesign,
    design_vfi,
    structural_bottleneck_workers,
)
from repro.apps import create_app
from repro.mapreduce.scheduler import CappedStealingPolicy


def characterization(seed=0, heterogeneous=False, master_hot=True):
    rng = np.random.default_rng(seed)
    traffic = rng.random((64, 64))
    np.fill_diagonal(traffic, 0.0)
    if heterogeneous:
        utilization = np.clip(rng.uniform(0.05, 0.9, 64), 0, 1)
    else:
        utilization = np.clip(rng.normal(0.55, 0.01, 64), 0, 1)
        if master_hot:
            utilization[0] = 0.8
    return utilization, traffic


class TestDesignVfi:
    def test_produces_four_equal_islands(self):
        u, f = characterization()
        design = design_vfi(u, f, seed=1)
        counts = np.bincount(design.worker_clusters, minlength=4)
        assert (counts == 16).all()

    def test_homogeneous_with_master_reassigns(self):
        u, f = characterization(master_hot=True)
        design = design_vfi(u, f, seed=1, structural_workers={0})
        assert design.was_reassigned
        assert design.vfi2.points != design.vfi1.points

    def test_structural_filter_blocks_data_hot_cores(self):
        u, f = characterization(master_hot=False)
        u[17] = 0.85  # hot, but not the master
        design = design_vfi(u, f, seed=1, structural_workers={0})
        assert not design.was_reassigned

    def test_heterogeneous_no_reassignment(self):
        u, f = characterization(heterogeneous=True)
        design = design_vfi(u, f, seed=1, structural_workers={0})
        assert not design.was_reassigned

    def test_worker_frequencies_follow_islands(self):
        u, f = characterization()
        design = design_vfi(u, f, seed=1)
        freqs = design.worker_frequencies("vfi1")
        for worker, cluster in enumerate(design.worker_clusters):
            assert freqs[worker] == design.vfi1.points[cluster].frequency_hz

    def test_stealing_policy_built_for_vfi2(self):
        u, f = characterization(master_hot=True)
        design = design_vfi(u, f, seed=1, structural_workers={0})
        policy = design.stealing_policy("vfi2")
        assert isinstance(policy, CappedStealingPolicy)
        assert policy.fmax_hz == design.vfi2.fmax_hz

    def test_unknown_system_rejected(self):
        u, f = characterization()
        design = design_vfi(u, f, seed=1)
        with pytest.raises(ValueError):
            design.worker_frequencies("vfi3")


class TestStructuralWorkers:
    def test_master_always_included(self):
        trace = create_app("linear_regression", scale=0.3, seed=2).run(num_workers=64)
        assert structural_bottleneck_workers(trace) == {0}

    def test_merge_roots_optional(self):
        trace = create_app("histogram", scale=0.25, seed=2).run(num_workers=64)
        base = structural_bottleneck_workers(trace)
        widened = structural_bottleneck_workers(trace, final_merge_stages=2)
        assert base == {0}
        assert base < widened

    def test_negative_stage_count_rejected(self):
        trace = create_app("histogram", scale=0.25, seed=2).run(num_workers=64)
        with pytest.raises(ValueError):
            structural_bottleneck_workers(trace, final_merge_stages=-1)
