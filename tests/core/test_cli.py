"""Command-line interface."""

import pytest

from repro.cli import main


def test_list_apps(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "WC" in out and "999 x 999" in out


def test_run_study(capsys):
    assert main(["run-study", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "vfi2_winoc" in out
    assert "time vs NVFI" in out


def test_design(capsys):
    assert main(["design", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "Island membership" in out
    assert "VFI 1" in out and "VFI 2" in out


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert (
        main(["report", "--scale", "0.3", "--seed", "9", "--output", str(target)])
        == 0
    )
    assert target.exists()
    assert "# Reproduction report" in target.read_text()


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run-study", "sorting"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_sweep_seed_parameter(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = [
        "sweep", "histogram", "--parameter", "seed",
        "--values", "9", "10", "--scale", "0.3", "--num-workers", "16",
        "--jobs", "2", "--cache-dir", str(cache_dir),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "sweep over seed" in out
    assert "Aggregate over the sweep" in out
    assert "vfi2_winoc" in out
    # Warm re-run resolves from the on-disk cache.
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "cached" in err


def test_sweep_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["sweep", "sorting"])


def test_report_parallel_with_cache(tmp_path, capsys):
    # Runs after test_report_to_file, so the forked workers inherit the
    # warm in-process memo and only exercise the orchestration plumbing.
    target = tmp_path / "report.md"
    assert (
        main([
            "report", "--scale", "0.3", "--seed", "9",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(target),
        ])
        == 0
    )
    assert "# Reproduction report" in target.read_text()


def test_topology(capsys):
    assert main(["topology", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "wire length histogram" in out
    assert "V/F floorplan" in out
