"""Command-line interface."""

import pytest

from repro.cli import main


def test_list_apps(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "WC" in out and "999 x 999" in out


def test_run_study(capsys):
    assert main(["run-study", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "vfi2_winoc" in out
    assert "time vs NVFI" in out


def test_design(capsys):
    assert main(["design", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "Island membership" in out
    assert "VFI 1" in out and "VFI 2" in out


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert (
        main(["report", "--scale", "0.3", "--seed", "9", "--output", str(target)])
        == 0
    )
    assert target.exists()
    assert "# Reproduction report" in target.read_text()


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run-study", "sorting"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_sweep_seed_parameter(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    manifest = tmp_path / "manifest.json"
    argv = [
        "sweep", "histogram", "--parameter", "seed",
        "--values", "9", "10", "--scale", "0.3", "--num-workers", "16",
        "--jobs", "2", "--cache-dir", str(cache_dir),
        "--manifest", str(manifest),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "sweep over seed" in out
    assert "Aggregate over the sweep" in out
    assert "vfi2_winoc" in out

    import json

    assert json.load(manifest.open())["summary"]["units"] == 2
    trace = json.load((tmp_path / "manifest.trace.json").open())
    assert len(trace["traceEvents"]) >= 2
    # Warm re-run resolves from the on-disk cache.
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "cached" in err


def test_sweep_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["sweep", "sorting"])


def test_report_parallel_with_cache(tmp_path, capsys):
    # Runs after test_report_to_file, so the forked workers inherit the
    # warm in-process memo and only exercise the orchestration plumbing.
    target = tmp_path / "report.md"
    assert (
        main([
            "report", "--scale", "0.3", "--seed", "9",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(target),
        ])
        == 0
    )
    assert "# Reproduction report" in target.read_text()


def test_topology(capsys):
    assert main(["topology", "histogram", "--scale", "0.3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "wire length histogram" in out
    assert "V/F floorplan" in out


def test_version(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


class TestErrorExits:
    """Bad arguments exit nonzero with one stderr line, not a traceback."""

    def test_bad_scale(self, capsys):
        assert main(["run-study", "histogram", "--scale", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_non_square_die(self, capsys):
        assert main([
            "trace", "--app", "histogram", "--scale", "0.1",
            "--num-workers", "17",
        ]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unwritable_output(self, tmp_path, capsys):
        assert main([
            "trace", "--app", "histogram", "--scale", "0.1",
            "--num-workers", "16",
            "--output", str(tmp_path / "missing" / "out.trace.json"),
        ]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unknown_system_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--app", "histogram", "--system", "toroidal"])
        assert excinfo.value.code != 0


def test_trace_command(tmp_path, capsys):
    output = tmp_path / "histogram.trace.json"
    jsonl = tmp_path / "histogram.jsonl"
    assert main([
        "trace", "--app", "histogram", "--scale", "0.1", "--seed", "9",
        "--num-workers", "16",
        "--output", str(output), "--jsonl", str(jsonl),
    ]) == 0
    out = capsys.readouterr().out
    assert "Per-phase timeline" in out
    assert "Per-island activity" in out
    assert "Eq. (3) cap rejections" in out

    import json

    document = json.loads(output.read_text())
    assert document["traceEvents"]
    for event in document["traceEvents"]:
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
    assert all(json.loads(line) for line in jsonl.read_text().splitlines())


def test_faults_command(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    plan_path = tmp_path / "plan.json"
    manifest = tmp_path / "manifest.json"
    argv = [
        "faults", "histogram", "--scenario", "core_failure",
        "--scale", "0.05", "--seed", "9", "--num-workers", "16",
        "--cache-dir", str(cache_dir),
        "--manifest", str(manifest),
        "--export-plan", str(plan_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "plan 'core_failure'" in out
    assert "failed cores: [4]" in out
    assert "makespan x" in out and "re-executed" in out
    assert manifest.exists()

    import json

    from repro.faults import FaultPlan

    plan = FaultPlan.from_json(plan_path.read_text())
    assert len(plan) == 1
    document = json.loads(manifest.read_text())
    assert document["summary"]["units"] == 1

    # Re-running against the exported plan file resolves from the cache.
    capsys.readouterr()
    argv = [
        "faults", "histogram", "--plan", str(plan_path),
        "--scale", "0.05", "--seed", "9", "--num-workers", "16",
        "--cache-dir", str(cache_dir),
    ]
    assert main(argv) == 0
    assert "makespan x" in capsys.readouterr().out


def test_faults_rejects_empty_plan(tmp_path, capsys):
    plan_path = tmp_path / "empty.json"
    plan_path.write_text('{"events":[],"name":"empty"}')
    result = main([
        "faults", "histogram", "--plan", str(plan_path),
        "--scale", "0.05", "--seed", "9", "--num-workers", "16",
    ])
    assert result == 2
    assert "empty" in capsys.readouterr().err
