"""Bit-for-bit regression of the 64-core paper platform.

``tests/data/golden_64core.json`` was captured before the parametric
die-geometry refactor (``tests/data/capture_golden.py``); these tests
pin the full study pipeline -- nVFI characterization, design flow,
VFI-1/VFI-2 mesh and WiNoC simulation, faults, and telemetry -- so the
geometry/blocked-dense/dispatch changes cannot drift the paper numbers.
Comparisons use ``rel=1e-12``: the 64-core default path must stay on
the exact legacy computation, not merely close to it.
"""

import json
import os

import numpy as np
import pytest

from repro.core.experiment import run_app_study
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.telemetry import RecordingTracer, use_tracer
from repro.telemetry.summary import island_summary, phase_summary

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_64core.json"
)

APP = "histogram"
SCALE = 0.05
SEED = 9
WORKERS = 64


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _fault_plan():
    return FaultPlan(
        events=(
            FaultSpec(FaultKind.CORE_FAILURE, 0.002, (13,)),
            FaultSpec(FaultKind.ISLAND_THROTTLE, 0.001, (2,), magnitude=1),
        ),
        name="golden",
    )


def _fingerprint(result):
    return {
        "total_time_s": result.total_time_s,
        "total_energy_j": result.total_energy_j,
        "core_dynamic_j": result.energy.core_dynamic_j,
        "core_static_j": result.energy.core_static_j,
        "noc_dynamic_j": result.energy.noc_dynamic_j,
        "noc_static_j": result.energy.noc_static_j,
        "busy_sum_s": float(np.sum(result.busy_s)),
        "committed_sum": float(np.sum(result.committed_instructions)),
        "bits_moved": result.network.bits_moved,
        "average_hops": result.network.average_hops,
        "wireless_fraction": result.network.wireless_fraction,
        "num_phases": len(result.phases),
    }


def _assert_matches(actual, expected, context):
    assert set(actual) == set(expected), context
    for key, want in expected.items():
        got = actual[key]
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-300), (
                f"{context}: {key} drifted: {got!r} != {want!r}"
            )
        else:
            assert got == want, f"{context}: {key} drifted"


@pytest.fixture(scope="module")
def study_with_telemetry():
    tracer = RecordingTracer()
    with use_tracer(tracer):
        study = run_app_study(
            APP, scale=SCALE, seed=SEED, num_workers=WORKERS, use_cache=False
        )
    return study, tracer


def test_fault_free_configs_bit_for_bit(golden, study_with_telemetry):
    study, _ = study_with_telemetry
    assert set(study.results) == set(golden["configs"])
    for name, expected in golden["configs"].items():
        _assert_matches(_fingerprint(study.results[name]), expected, name)


def test_telemetry_summaries_stable(golden, study_with_telemetry):
    study, tracer = study_with_telemetry
    vfi2 = "vfi2-mesh"
    phases = phase_summary(tracer, pid=vfi2)[vfi2]
    _assert_matches(phases, golden["telemetry"]["phase_summary"], "phases")
    islands = island_summary(tracer, vfi2, study.design.worker_clusters)
    expected = golden["telemetry"]["island_summary"]
    assert len(islands) == len(expected)
    for summary, want in zip(islands, expected):
        _assert_matches(summary, want, f"island {want['island']}")


def test_explicit_default_tech_bit_for_bit(golden):
    # The tech axis must be invisible at its default: running with an
    # explicit 65 nm homogeneous TechSpec reproduces the golden numbers
    # exactly (the spec collapses to the legacy code path, not merely an
    # equivalent one).
    from repro.tech import TechSpec

    study = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        use_cache=False, tech=TechSpec(),
    )
    assert set(study.results) == set(golden["configs"])
    for name, expected in golden["configs"].items():
        _assert_matches(_fingerprint(study.results[name]), expected, name)


def test_explicit_default_cap_bit_for_bit(golden):
    # The power axis must be invisible at its default: an explicit
    # unbounded PowerCapSpec collapses to the uncapped legacy code path
    # and reproduces the golden numbers exactly.
    from repro.power import PowerCapSpec

    study = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        use_cache=False, power_cap=PowerCapSpec(),
    )
    assert set(study.results) == set(golden["configs"])
    for name, expected in golden["configs"].items():
        result = study.results[name]
        assert result.power is None
        _assert_matches(_fingerprint(result), expected, name)


def test_faulted_configs_bit_for_bit(golden):
    faulted = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=WORKERS,
        use_cache=False, fault_plan=_fault_plan(),
    )
    for name, expected in golden["faulted"].items():
        _assert_matches(_fingerprint(faulted.results[name]), expected, name)
    impact = faulted.result("vfi2_mesh").faults
    assert impact is not None
    _assert_matches(impact.to_dict(), golden["fault_impact"], "fault_impact")
