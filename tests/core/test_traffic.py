"""Traffic-matrix construction."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.core.traffic import (
    inter_cluster_traffic,
    memory_traffic_matrix,
    total_node_traffic,
)


@pytest.fixture(scope="module")
def trace():
    return create_app("wordcount", scale=0.25, seed=3).run(num_workers=64)


class TestMemoryTraffic:
    def test_shape_and_nonnegative(self, trace):
        matrix = memory_traffic_matrix(trace, locality=0.2)
        assert matrix.shape == (64, 64)
        assert (matrix >= 0).all()
        assert np.allclose(np.diag(matrix), 0.0)

    def test_locality_reduces_volume(self, trace):
        low = memory_traffic_matrix(trace, locality=0.0).sum()
        high = memory_traffic_matrix(trace, locality=0.9).sum()
        assert high < low

    def test_validated(self, trace):
        with pytest.raises(ValueError):
            memory_traffic_matrix(trace, locality=-0.1)


class TestTotalTraffic:
    def test_includes_kv(self, trace):
        total = total_node_traffic(trace, locality=0.2)
        memory_only = memory_traffic_matrix(trace, locality=0.2)
        assert total.sum() > memory_only.sum()

    def test_kv_weight(self, trace):
        base = total_node_traffic(trace, 0.2, kv_weight=0.0)
        weighted = total_node_traffic(trace, 0.2, kv_weight=1.0)
        assert weighted.sum() > base.sum()


class TestInterClusterTraffic:
    def test_aggregates(self):
        clusters = [0, 0, 1, 1]
        traffic = np.arange(16, dtype=float).reshape(4, 4)
        agg = inter_cluster_traffic(traffic, clusters, 2)
        assert agg.shape == (2, 2)
        assert agg.sum() == pytest.approx(traffic.sum())
        assert agg[0, 1] == traffic[0:2, 2:4].sum()

    def test_shape_check(self):
        with pytest.raises(ValueError):
            inter_cluster_traffic(np.ones((3, 3)), [0, 1], 2)
