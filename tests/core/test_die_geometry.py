"""DieGeometry: the parametric die abstraction behind every builder.

Unit tests pin the resolution rules (``for_cores`` factorization, island
tiling, the paper die staying bit-for-bit the historical quadrant
layout) and the error paths the builders route through.  The
hypothesis sections check the structural invariants for *arbitrary*
valid dies: every core sits in exactly one island, the wireless overlay
derived from the die keeps channel ids inside the spec, and the flow
model over a non-square die stays monotone in offered load.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import DieGeometry, as_die
from repro.core.platforms import geometry_for
from repro.noc.routing import build_mesh_routing
from repro.noc.network import FlowNetworkModel
from repro.noc.placement import center_wireless_placement
from repro.noc.topology import GridGeometry, LinkKind, build_mesh
from repro.noc.wireless import (
    WirelessSpec,
    assign_wireless_links,
    channels_of,
    total_wireless_interfaces,
)
from repro.vfi.islands import quadrant_clusters


class TestPaperDie:
    def test_shape(self):
        die = DieGeometry.paper()
        assert (die.columns, die.rows) == (8, 8)
        assert (die.island_columns, die.island_rows) == (2, 2)
        assert die.num_cores == 64
        assert die.num_islands == 4
        assert die.cores_per_island == 16

    def test_matches_historical_quadrants(self):
        die = DieGeometry.paper()
        legacy = quadrant_clusters(GridGeometry(8, 8))
        assert tuple(die.layout().node_cluster) == tuple(legacy.node_cluster)
        assert [die.island_of(n) for n in range(64)] == list(
            legacy.node_cluster
        )

    def test_overlay_sizing(self):
        die = DieGeometry.paper()
        assert die.num_wireless_interfaces(num_channels=3) == 12
        assert die.wis_per_channel() == 4


class TestForCores:
    def test_64(self):
        die = DieGeometry.for_cores(64)
        assert die == DieGeometry.paper()

    def test_128_resolves_to_16x8(self):
        die = DieGeometry.for_cores(128)
        assert (die.columns, die.rows) == (16, 8)
        assert die.num_islands == 4

    def test_128_with_8_islands(self):
        die = DieGeometry.for_cores(128, num_islands=8)
        assert (die.columns, die.rows) == (16, 8)
        assert (die.island_columns, die.island_rows) == (4, 2)
        assert die.cores_per_island == 16
        assert die.num_wireless_interfaces(num_channels=3) == 24

    def test_256_stays_square(self):
        die = DieGeometry.for_cores(256)
        assert (die.columns, die.rows) == (16, 16)
        assert (die.island_columns, die.island_rows) == (2, 2)
        assert die.cores_per_island == 64

    def test_rectangular_non_power_of_two(self):
        # 20 = 5x4: odd column count forces a 1x4 island stack.
        die = DieGeometry.for_cores(20)
        assert (die.columns, die.rows) == (5, 4)
        assert die.num_islands == 4

    @pytest.mark.parametrize("cores", [6, 7, 18])
    def test_untileable_counts_raise(self, cores):
        # 18 = 6x3: no factor pair of 4 divides both sides.
        with pytest.raises(ValueError, match="island"):
            DieGeometry.for_cores(cores)

    def test_six_island_split_of_128_raises(self):
        with pytest.raises(ValueError, match="6-island"):
            DieGeometry.for_cores(128, num_islands=6)

    @pytest.mark.parametrize("cores", [0, -4, 2.5, "64"])
    def test_invalid_core_count_raises(self, cores):
        with pytest.raises(ValueError, match="for_cores"):
            DieGeometry.for_cores(cores)


class TestConstructionErrors:
    def test_island_grid_must_divide_mesh(self):
        with pytest.raises(ValueError, match="DieGeometry.for_cores"):
            DieGeometry(8, 8, island_columns=3)

    def test_error_names_entry_points(self):
        # The builder error paths must tell the caller where to go.
        with pytest.raises(ValueError, match="DieGeometry.for_cores"):
            geometry_for(48)
        with pytest.raises(ValueError, match="DieGeometry"):
            geometry_for(25)

    def test_as_die_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="DieGeometry"):
            as_die("8x8")

    def test_as_die_defaults_to_paper(self):
        assert as_die(None) == DieGeometry.paper()

    def test_as_die_tiles_bare_grid(self):
        die = as_die(GridGeometry(6, 4))
        assert (die.columns, die.rows) == (6, 4)
        assert die.num_islands == 4


# --------------------------------------------------------------------- #
# Property sections: invariants over arbitrary valid dies
# --------------------------------------------------------------------- #

def _die_strategy(min_island_cores=1):
    """Valid dies by construction: sides are island-grid multiples."""
    blocks = st.integers(1, 4)
    return st.builds(
        lambda ic, ir, iw, ih: DieGeometry(
            ic * iw, ir * ih, island_columns=ic, island_rows=ir
        ),
        blocks, blocks, blocks, blocks,
    ).filter(lambda die: die.cores_per_island >= min_island_cores)


class TestIslandPartitionProperties:
    @given(_die_strategy())
    @settings(max_examples=60, deadline=None)
    def test_every_core_in_exactly_one_island(self, die):
        layout = die.layout()
        members = layout.members()
        covered = sorted(n for nodes in members.values() for n in nodes)
        assert covered == list(range(die.num_cores))
        assert len(members) == die.num_islands
        for nodes in members.values():
            assert len(nodes) == die.cores_per_island

    @given(_die_strategy())
    @settings(max_examples=60, deadline=None)
    def test_island_of_matches_layout(self, die):
        layout = die.layout()
        assert [die.island_of(n) for n in range(die.num_cores)] == list(
            layout.node_cluster
        )

    @given(_die_strategy())
    @settings(max_examples=60, deadline=None)
    def test_islands_are_contiguous_rectangles(self, die):
        for nodes in die.layout().members().values():
            columns = sorted({n % die.columns for n in nodes})
            rows = sorted({n // die.columns for n in nodes})
            assert columns == list(range(columns[0], columns[0] + len(columns)))
            assert rows == list(range(rows[0], rows[0] + len(rows)))
            assert len(columns) == die.island_width
            assert len(rows) == die.island_height


class TestWirelessOverlayProperties:
    @given(
        _die_strategy(min_island_cores=4).filter(
            lambda die: die.num_islands >= 2
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_channel_ids_within_spec_for_any_k(self, die, num_channels):
        spec = WirelessSpec(num_channels=num_channels).sized_for_islands(
            die.num_islands
        )
        placement = center_wireless_placement(
            die.grid(), die.layout().node_cluster, spec.num_channels
        )
        # The placement covers exactly channels 0..num_channels-1, and
        # every channel puts one WI in every island: token rings all
        # have length K, whatever the die.
        assert sorted(placement) == list(range(spec.num_channels))
        placed = [n for nodes in placement.values() for n in nodes]
        assert len(placed) == len(set(placed))
        assert len(placed) == die.num_wireless_interfaces(spec.num_channels)
        for nodes in placement.values():
            islands = [die.island_of(node) for node in nodes]
            assert sorted(islands) == list(range(die.num_islands))
        # The derived topology never emits a channel id outside the spec
        # (wire-adjacent WI pairs are legitimately skipped, so tiny dies
        # may drop links -- the id bound must hold regardless).
        topology = assign_wireless_links(
            build_mesh(die.grid()), placement, spec
        )
        assert all(
            0 <= link.channel < spec.num_channels
            for link in topology.links
            if link.kind is LinkKind.WIRELESS
        )

    def test_128_core_8_island_overlay_complete(self):
        die = DieGeometry.for_cores(128, num_islands=8)
        spec = WirelessSpec().sized_for_islands(die.num_islands)
        placement = center_wireless_placement(
            die.grid(), die.layout().node_cluster, spec.num_channels
        )
        topology = assign_wireless_links(
            build_mesh(die.grid()), placement, spec
        )
        channels = channels_of(topology)
        assert sorted(channels) == list(range(spec.num_channels))
        assert total_wireless_interfaces(topology) == (
            die.num_wireless_interfaces(spec.num_channels)
        )
        for channel in channels.values():
            islands = [die.island_of(node) for node in channel.wi_nodes]
            assert sorted(islands) == list(range(die.num_islands))


class TestFlowModelProperties:
    """Latency monotonicity on a non-square, non-paper die."""

    DIE = DieGeometry(6, 4, island_columns=2, island_rows=2)

    def fresh_model(self):
        mesh = build_mesh(self.DIE.grid())
        return FlowNetworkModel(
            mesh,
            build_mesh_routing(mesh),
            list(self.DIE.layout().node_cluster),
            [2.5e9] * self.DIE.num_islands,
        )

    @given(
        st.integers(0, 23), st.integers(0, 23), st.floats(1e6, 5e9)
    )
    @settings(max_examples=40, deadline=None)
    def test_latency_monotone_in_load(self, a, b, rate):
        if a == b:
            return
        model = self.fresh_model()
        probes = [(0, 23), (5, 18), (b, a)]
        before = [model.latency(x, y, 544) for x, y in probes]
        model.add_flow(a, b, rate)
        after = [model.latency(x, y, 544) for x, y in probes]
        for earlier, later in zip(before, after):
            assert later >= earlier - 1e-15
