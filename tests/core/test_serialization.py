"""Design / study JSON round trips."""

import json

import numpy as np
import pytest

from repro.core.experiment import run_app_study
from repro.core.serialization import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
    save_study_summary,
    study_summary_dict,
)


@pytest.fixture(scope="module")
def study():
    return run_app_study("histogram", scale=0.3, seed=9)


class TestDesignRoundTrip:
    def test_round_trip_preserves_everything(self, study):
        data = design_to_dict(study.design)
        rebuilt = design_from_dict(data)
        assert rebuilt.worker_clusters == study.design.worker_clusters
        assert rebuilt.vfi1.labels() == study.design.vfi1.labels()
        assert rebuilt.vfi2.labels() == study.design.vfi2.labels()
        assert rebuilt.vfi2.reassigned_islands == study.design.vfi2.reassigned_islands
        assert np.allclose(rebuilt.utilization, study.design.utilization)
        assert np.allclose(rebuilt.traffic, study.design.traffic)
        assert rebuilt.bottleneck.ratio == pytest.approx(
            study.design.bottleneck.ratio
        )

    def test_json_serializable(self, study):
        text = json.dumps(design_to_dict(study.design))
        assert "vfi1" in text

    def test_file_round_trip(self, study, tmp_path):
        path = tmp_path / "design.json"
        save_design(study.design, str(path))
        rebuilt = load_design(str(path))
        assert rebuilt.worker_clusters == study.design.worker_clusters

    def test_rebuilt_design_drives_platforms(self, study):
        from repro.core.platforms import build_vfi_mesh

        rebuilt = design_from_dict(design_to_dict(study.design))
        platform = build_vfi_mesh(rebuilt, "vfi2", seed=1)
        assert platform.num_cores == 64


class TestStudySummary:
    def test_summary_structure(self, study):
        summary = study_summary_dict(study)
        assert summary["app"] == "histogram"
        assert set(summary["configs"]) == set(study.results)
        nvfi = summary["configs"]["nvfi_mesh"]
        assert nvfi["normalized_time"] == pytest.approx(1.0)

    def test_summary_file(self, study, tmp_path):
        path = tmp_path / "summary.json"
        save_study_summary(study, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["label"] == "HIST"
