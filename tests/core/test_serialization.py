"""Design / trace / result / study JSON round trips."""

import json

import numpy as np
import pytest

from repro.core.experiment import run_app_study
from repro.core.serialization import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_study,
    result_from_dict,
    result_to_dict,
    save_design,
    save_study,
    save_study_summary,
    study_from_dict,
    study_summary_dict,
    study_to_dict,
    trace_from_dict,
    trace_to_dict,
)


def _assert_builtin_types(node, path="$"):
    """Recursively reject numpy scalars/arrays leaking into a document."""
    if isinstance(node, dict):
        for key, value in node.items():
            assert isinstance(key, str), f"non-str key {key!r} at {path}"
            _assert_builtin_types(value, f"{path}.{key}")
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            _assert_builtin_types(value, f"{path}[{index}]")
    else:
        assert node is None or isinstance(
            node, (str, bool, int, float)
        ), f"non-builtin leaf {type(node).__name__} at {path}"
        assert not isinstance(node, np.generic), f"numpy scalar at {path}"


@pytest.fixture(scope="module")
def study():
    return run_app_study("histogram", scale=0.3, seed=9)


class TestDesignRoundTrip:
    def test_round_trip_preserves_everything(self, study):
        data = design_to_dict(study.design)
        rebuilt = design_from_dict(data)
        assert rebuilt.worker_clusters == study.design.worker_clusters
        assert rebuilt.vfi1.labels() == study.design.vfi1.labels()
        assert rebuilt.vfi2.labels() == study.design.vfi2.labels()
        assert rebuilt.vfi2.reassigned_islands == study.design.vfi2.reassigned_islands
        assert np.allclose(rebuilt.utilization, study.design.utilization)
        assert np.allclose(rebuilt.traffic, study.design.traffic)
        assert rebuilt.bottleneck.ratio == pytest.approx(
            study.design.bottleneck.ratio
        )

    def test_json_serializable(self, study):
        text = json.dumps(design_to_dict(study.design))
        assert "vfi1" in text

    def test_file_round_trip(self, study, tmp_path):
        path = tmp_path / "design.json"
        save_design(study.design, str(path))
        rebuilt = load_design(str(path))
        assert rebuilt.worker_clusters == study.design.worker_clusters

    def test_rebuilt_design_drives_platforms(self, study):
        from repro.core.platforms import build_vfi_mesh

        rebuilt = design_from_dict(design_to_dict(study.design))
        platform = build_vfi_mesh(rebuilt, "vfi2", seed=1)
        assert platform.num_cores == 64


class TestStudySummary:
    def test_summary_structure(self, study):
        summary = study_summary_dict(study)
        assert summary["app"] == "histogram"
        assert set(summary["configs"]) == set(study.results)
        nvfi = summary["configs"]["nvfi_mesh"]
        assert nvfi["normalized_time"] == pytest.approx(1.0)

    def test_summary_file(self, study, tmp_path):
        path = tmp_path / "summary.json"
        save_study_summary(study, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["label"] == "HIST"

    def test_summary_has_no_numpy_leakage(self, study):
        _assert_builtin_types(study_summary_dict(study))


class TestNumpyLeakage:
    """np.float64/np.int64 must never reach the JSON documents."""

    def test_design_document_is_pure_builtin(self, study):
        _assert_builtin_types(design_to_dict(study.design))

    def test_study_document_is_pure_builtin(self, study):
        _assert_builtin_types(study_to_dict(study))

    def test_documents_dump_without_custom_encoder(self, study):
        json.dumps(design_to_dict(study.design))
        json.dumps(study_to_dict(study))
        json.dumps(study_summary_dict(study))


class TestTraceRoundTrip:
    def test_preserves_structure_and_costs(self, study):
        rebuilt = trace_from_dict(trace_to_dict(study.trace))
        assert rebuilt.app_name == study.trace.app_name
        assert rebuilt.num_workers == study.trace.num_workers
        assert rebuilt.num_iterations == study.trace.num_iterations
        assert rebuilt.total_instructions() == study.trace.total_instructions()
        assert rebuilt.map_task_count() == study.trace.map_task_count()
        assert np.array_equal(
            rebuilt.worker_flow_matrix(), study.trace.worker_flow_matrix()
        )

    def test_flow_matrix_worker_keys_are_ints(self, study):
        rebuilt = trace_from_dict(
            json.loads(json.dumps(trace_to_dict(study.trace)))
        )
        for record in rebuilt.all_tasks():
            for worker in record.input_bytes_by_worker:
                assert isinstance(worker, int)


class TestResultRoundTrip:
    def test_preserves_metrics_exactly(self, study):
        for config, result in study.results.items():
            rebuilt = result_from_dict(
                json.loads(json.dumps(result_to_dict(result)))
            )
            assert rebuilt.total_time_s == result.total_time_s
            assert rebuilt.edp == result.edp
            assert rebuilt.network_edp == result.network_edp
            assert np.array_equal(rebuilt.utilization, result.utilization)
            assert rebuilt.phase_breakdown() == result.phase_breakdown()


class TestStudyRoundTrip:
    def test_full_study_round_trip(self, study):
        rebuilt = study_from_dict(
            json.loads(json.dumps(study_to_dict(study)))
        )
        assert rebuilt.label == study.label
        assert set(rebuilt.results) == set(study.results)
        for config in study.results:
            assert rebuilt.normalized_time(config) == study.normalized_time(config)
            assert rebuilt.normalized_edp(config) == study.normalized_edp(config)
        assert rebuilt.design.vfi2.labels() == study.design.vfi2.labels()
        assert rebuilt.app.scale == study.app.scale
        assert rebuilt.app.seed == study.app.seed

    def test_summary_identical_after_round_trip(self, study):
        rebuilt = study_from_dict(
            json.loads(json.dumps(study_to_dict(study)))
        )
        assert json.dumps(study_summary_dict(rebuilt), sort_keys=True) == (
            json.dumps(study_summary_dict(study), sort_keys=True)
        )

    def test_file_round_trip(self, study, tmp_path):
        path = tmp_path / "study.json"
        save_study(study, str(path))
        rebuilt = load_study(str(path))
        assert rebuilt.label == study.label

    def test_rebuilt_trace_drives_simulation(self, study):
        from repro.core.platforms import build_nvfi_mesh, geometry_for
        from repro.sim.system import simulate

        rebuilt = study_from_dict(study_to_dict(study))
        platform = build_nvfi_mesh(geometry_for(rebuilt.trace.num_workers))
        result = simulate(
            platform, rebuilt.trace, locality=rebuilt.app.profile.l2_locality
        )
        assert result.total_time_s == study.result("nvfi_mesh").total_time_s
