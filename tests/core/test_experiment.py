"""End-to-end study orchestration (scaled down for test speed)."""

import numpy as np
import pytest

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    clear_study_cache,
    run_app_study,
)

SCALE = 0.3


@pytest.fixture(scope="module")
def study():
    return run_app_study("histogram", scale=SCALE, seed=9)


class TestStudy:
    def test_all_configs_present(self, study):
        assert set(study.results) == {NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC}

    def test_baseline_normalizes_to_one(self, study):
        assert study.normalized_time(NVFI_MESH) == pytest.approx(1.0)
        assert study.normalized_edp(NVFI_MESH) == pytest.approx(1.0)

    def test_vfi_saves_energy(self, study):
        nvfi = study.result(NVFI_MESH)
        vfi = study.result(VFI2_MESH)
        assert vfi.total_energy_j < nvfi.total_energy_j

    def test_winoc_reduces_hops(self, study):
        assert (
            study.result(VFI2_WINOC).network.average_hops
            < study.result(VFI2_MESH).network.average_hops
        )

    def test_phase_share_sums_to_one(self, study):
        shares = study.phase_share(NVFI_MESH)
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-9)

    def test_unknown_config_rejected(self, study):
        with pytest.raises(KeyError):
            study.result("vfi9_mesh")

    def test_memoization(self):
        a = run_app_study("histogram", scale=SCALE, seed=9)
        b = run_app_study("histogram", scale=SCALE, seed=9)
        assert a is b

    def test_cache_clear(self):
        a = run_app_study("histogram", scale=SCALE, seed=9)
        clear_study_cache()
        b = run_app_study("histogram", scale=SCALE, seed=9)
        assert a is not b


class TestMethodologySelection:
    def test_returns_valid_methodology(self):
        from repro.core.experiment import select_winoc_methodology

        choice = select_winoc_methodology(
            "histogram", scale=SCALE, seed=9, num_workers=16
        )
        assert choice in ("max_wireless", "min_hop")
