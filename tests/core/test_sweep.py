"""Seed and size sweeps."""

import pytest

from repro.core.sweep import SweepResult, seed_sweep, size_sweep

SCALE = 0.3


@pytest.fixture(scope="module")
def seeds_result():
    return seed_sweep("histogram", seeds=(9, 10), scale=SCALE, num_workers=16)


class TestSeedSweep:
    def test_rows_per_seed(self, seeds_result):
        assert sorted(seeds_result.rows) == [9, 10]

    def test_configs_present(self, seeds_result):
        for row in seeds_result.rows.values():
            assert set(row) == {"vfi1_mesh", "vfi2_mesh", "vfi2_winoc"}

    def test_aggregate_mean_std(self, seeds_result):
        agg = seeds_result.aggregate()
        mean, std = agg["vfi2_winoc"]["edp"]
        assert 0 < mean < 1.5
        assert std >= 0

    def test_spread(self, seeds_result):
        assert seeds_result.spread("vfi2_winoc", "edp") >= 0

    def test_spread_unknown_config(self, seeds_result):
        with pytest.raises(KeyError):
            seeds_result.spread("nope", "edp")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep("histogram", seeds=())


class TestSizeSweep:
    def test_sizes(self):
        sweep = size_sweep("histogram", sizes=(16,), scale=SCALE, seed=9)
        assert list(sweep.rows) == [16]
        assert sweep.parameter == "num_workers"

    def test_untileable_size_rejected(self):
        # 18 factors as a 6x3 mesh, which admits no rectangular 4-island
        # tiling (rectangular dies like 20 = 5x4 are accepted since the
        # DieGeometry refactor).
        with pytest.raises(ValueError):
            size_sweep("histogram", sizes=(18,), scale=SCALE, seed=9)
