"""Platform builders for the paper's four configurations."""

import numpy as np
import pytest

from repro.core.design_flow import design_vfi
from repro.core.platforms import (
    build_nvfi_mesh,
    build_vfi_mesh,
    build_vfi_winoc,
)
from repro.noc.wireless import WirelessSpec, validate_paper_overlay
from repro.vfi.islands import NOMINAL


@pytest.fixture(scope="module")
def design():
    rng = np.random.default_rng(5)
    traffic = rng.random((64, 64)) ** 2
    np.fill_diagonal(traffic, 0.0)
    utilization = np.clip(rng.normal(0.55, 0.02, 64), 0, 1)
    utilization[0] = 0.8
    return design_vfi(utilization, traffic, seed=2, structural_workers={0})


class TestNvfi:
    def test_nominal_everywhere(self):
        platform = build_nvfi_mesh()
        assert all(point == NOMINAL for point in platform.vf_points)
        assert platform.topology.name == "mesh"


class TestVfiMesh:
    def test_vfi1_and_vfi2_differ_when_reassigned(self, design):
        p1 = build_vfi_mesh(design, "vfi1", seed=1)
        p2 = build_vfi_mesh(design, "vfi2", seed=1)
        assert list(p1.vf_points) == list(design.vfi1.points)
        assert list(p2.vf_points) == list(design.vfi2.points)

    def test_mapping_honors_clustering(self, design):
        platform = build_vfi_mesh(design, "vfi2", seed=1)
        for worker, cluster in enumerate(design.worker_clusters):
            node = platform.node_of_worker(worker)
            assert platform.layout.cluster_of(node) == cluster

    def test_unknown_system(self, design):
        with pytest.raises(ValueError):
            build_vfi_mesh(design, "vfi3")


class TestVfiWinoc:
    @pytest.mark.parametrize("methodology", ["max_wireless", "min_hop"])
    def test_paper_overlay_invariants(self, design, methodology):
        platform = build_vfi_winoc(
            design, methodology=methodology, seed=4, sa_iterations=40
        )
        validate_paper_overlay(
            platform.topology, list(platform.layout.node_cluster), WirelessSpec()
        )
        # <k> = 4 wireline + wireless overlay on top
        wire_links = [
            l for l in platform.topology.links if l.kind.value == "wire"
        ]
        assert len(wire_links) == 128

    def test_mapping_honors_clustering(self, design):
        platform = build_vfi_winoc(design, seed=4)
        for worker, cluster in enumerate(design.worker_clusters):
            assert platform.layout.cluster_of(platform.node_of_worker(worker)) == cluster

    def test_unknown_methodology(self, design):
        with pytest.raises(ValueError):
            build_vfi_winoc(design, methodology="magic")

    def test_traffic_calibration_accepted(self, design):
        rate = np.full((64, 64), 1e8)
        np.fill_diagonal(rate, 0.0)
        platform = build_vfi_winoc(design, seed=4, traffic_rate_bps=rate)
        assert platform.routing is not None
