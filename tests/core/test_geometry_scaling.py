"""Size-generic platform construction."""

import pytest

from repro.core.platforms import geometry_for, memory_params_for
from repro.noc.topology import GridGeometry


class TestGeometryFor:
    @pytest.mark.parametrize("cores,side", [(16, 4), (36, 6), (64, 8), (100, 10)])
    def test_square_sides(self, cores, side):
        geometry = geometry_for(cores)
        assert geometry.columns == geometry.rows == side

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            geometry_for(48)

    def test_odd_side_rejected(self):
        with pytest.raises(ValueError):
            geometry_for(25)


class TestMemoryParamsFor:
    def test_corners_8x8(self):
        params = memory_params_for(GridGeometry(8, 8))
        assert params.controller_nodes == (0, 7, 56, 63)

    def test_corners_4x4(self):
        params = memory_params_for(GridGeometry(4, 4))
        assert params.controller_nodes == (0, 3, 12, 15)

    def test_corners_rectangular(self):
        params = memory_params_for(GridGeometry(6, 4))
        assert params.controller_nodes == (0, 5, 18, 23)
