"""Table 2: V/F assignments for the six MapReduce applications.

Shape requirements from the paper:
* exactly PCA, HIST and MM are reassigned (VFI2 differs from VFI1);
* the reassigned island moves up one DVFS step (0.9 -> 1.0 V class);
* Kmeans spreads over the widest V/F range; homogeneous apps (MM, HIST,
  PCA) get near-uniform assignments.
"""

from conftest import write_result

from repro.analysis.tables import table2_vf_assignments


def test_table2(benchmark, studies, results_dir):
    text = benchmark.pedantic(
        lambda: table2_vf_assignments(studies.values()), rounds=1, iterations=1
    )
    write_result(results_dir, "table2_vf_assignments.txt", text)

    reassigned = {
        studies[name].label
        for name in studies
        if studies[name].design.was_reassigned
    }
    assert reassigned == {"PCA", "HIST", "MM"}

    for name in ("pca", "histogram", "matrix_multiply"):
        design = studies[name].design
        for island in design.vfi2.reassigned_islands:
            assert (
                design.vfi2.points[island].frequency_hz
                > design.vfi1.points[island].frequency_hz
            )

    # Kmeans is the most aggressively down-clocked app (lowest average
    # island voltage), as in the paper's 0.6/0.6/0.8/0.8 assignment.
    def mean_voltage(design):
        volts = design.vfi1.voltages_v()
        return sum(volts) / len(volts)

    kmeans_v = mean_voltage(studies["kmeans"].design)
    assert kmeans_v == min(
        mean_voltage(studies[name].design) for name in studies
    )
    # WC and LR split their islands over at least two V/F levels.
    for name in ("wordcount", "linear_regression"):
        assert len(set(studies[name].design.vfi1.labels())) >= 2
