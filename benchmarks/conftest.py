"""Shared fixtures for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper at
full scale (scale=1.0, seed=7).  The session ``studies`` fixture
resolves the six app studies through the experiment orchestrator
(:mod:`repro.orchestrator`): they fan out across worker processes and
persist to an on-disk cache, so the first benchmark session pays the
simulation cost and later sessions (and sibling tools like
``repro report``) reuse it.  Rendered outputs land in
``benchmarks/results/``.

Environment knobs:

``REPRO_BENCH_JOBS``
    Worker processes for the study campaign (default: one per app,
    capped by the CPU count; ``1`` forces the serial in-process path).
``REPRO_BENCH_CACHE``
    Study cache directory (default ``benchmarks/.study_cache``; set
    empty to disable persistence).
"""

import os
import pathlib

import pytest

from repro.analysis.figures import ALL_APPS, collect_studies

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCALE = 1.0
SEED = 7


def _default_jobs() -> int:
    return min(len(ALL_APPS), os.cpu_count() or 1)


JOBS = int(os.environ.get("REPRO_BENCH_JOBS") or _default_jobs())
CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE", str(pathlib.Path(__file__).parent / ".study_cache")
) or None


@pytest.fixture(scope="session")
def studies():
    return collect_studies(
        scale=SCALE,
        seed=SEED,
        jobs=JOBS,
        cache_dir=CACHE_DIR,
        progress=lambda record: print(
            f"[studies] {record.label}: {record.status} "
            f"({record.wall_time_s:.1f}s)"
        ),
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name: str, text: str) -> None:
    path = results_dir / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
