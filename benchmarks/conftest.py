"""Shared fixtures for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper at
full scale (scale=1.0, seed=7).  Studies are memoized process-wide, so
the first benchmark pays the simulation cost and the rest reuse it.
Rendered outputs land in ``benchmarks/results/``.
"""

import pathlib

import pytest

from repro.analysis.figures import collect_studies

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCALE = 1.0
SEED = 7


@pytest.fixture(scope="session")
def studies():
    return collect_studies(scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
