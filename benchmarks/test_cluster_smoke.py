"""Cluster-service smoke: every policy over one seeded workload.

Serves the preset ``smoke`` arrival trace on a two-chip fleet through
every registered scheduling policy against one shared study cache --
the per-job simulations compute once, every later policy resolves from
cache/memo -- then verifies the replay contract (byte-identical digest,
zero re-simulated studies) and records the SLO comparison in
``results/cluster_smoke.json``.
"""

import json

from conftest import write_result

from repro.cluster import (
    fleet_for,
    hetero_fleet,
    preset_trace,
    run_workload,
    scheduler_names,
)
from repro.cluster.record import replay, verify_replay
from repro.orchestrator.cache import StudyCache

RESULT_NAME = "cluster_smoke.json"
WORKLOAD = "smoke"
SEED = 7


def test_all_policies_and_replay(results_dir, tmp_path):
    trace = preset_trace(WORKLOAD, seed=SEED)
    fleet = fleet_for(2, num_workers=16)
    cache = StudyCache(tmp_path / "cache")

    results = {}
    for index, name in enumerate(scheduler_names()):
        result = run_workload(trace, fleet, name, cache=cache)
        stats = result.study_stats
        if index > 0:
            # The first policy paid for the unique studies; everyone
            # after it must resolve entirely from the shared cache.
            assert stats["computed"] == 0, (name, stats)
        report = result.report
        assert report.completed + report.rejected == len(trace)
        results[name] = result

    # Replay contract: byte-identical, zero studies re-simulated.
    for name, recorded in results.items():
        fresh = replay(recorded, cache=cache)
        assert verify_replay(recorded, fresh) is None, name
        assert fresh.study_stats["computed"] == 0, name

    write_result(results_dir, RESULT_NAME, json.dumps({
        "workload": WORKLOAD,
        "seed": SEED,
        "trace_key": trace.trace_key,
        "fleet": {"chips": len(fleet), "num_workers": 16},
        "policies": {
            name: {
                "replay_digest": result.replay_digest,
                "report": result.report.to_dict(),
            }
            for name, result in results.items()
        },
    }, indent=2))


def test_hetero_fleet_smoke(results_dir, tmp_path):
    """The mixed die-size x tech-node fleet serves a workload end to end.

    Four chip classes (16c/65nm, 64c/45nm, 16c/32nm big.LITTLE,
    64c/22nm in-order) behind one scheduler: every job completes or is
    rejected, per-chip studies resolve under the chip's own technology,
    and the run survives the byte-identical replay contract.
    """
    trace = preset_trace(WORKLOAD, seed=SEED)
    fleet = hetero_fleet(4)
    cache = StudyCache(tmp_path / "cache")

    result = run_workload(trace, fleet, "locality", cache=cache)
    report = result.report
    assert report.completed + report.rejected == len(trace)
    assert report.completed > 0

    # Jobs really landed across the heterogeneous classes.
    used_chips = {
        record.chip_id
        for record in result.records
        if record.chip_id is not None
    }
    assert len(used_chips) > 1

    fresh = replay(result, cache=cache)
    assert verify_replay(result, fresh) is None
    assert fresh.study_stats["computed"] == 0

    write_result(results_dir, "cluster_smoke_hetero.json", json.dumps({
        "workload": WORKLOAD,
        "seed": SEED,
        "fleet": [chip.label for chip in fleet],
        "replay_digest": result.replay_digest,
        "report": report.to_dict(),
    }, indent=2))
