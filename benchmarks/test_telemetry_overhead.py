"""Overhead guard: the default NullTracer must be free.

Telemetry instruments the hot paths of the simulator (task scheduling,
latency refreshes, energy accounting), so the disabled-by-default
``NullTracer`` has to cost nothing measurable.  This benchmark runs the
same smoke study in two fresh interpreters:

* **null** -- the package as shipped: ``repro.telemetry`` imported, the
  process-wide ``NULL_TRACER`` installed, every ``if tracer.enabled:``
  guard evaluated.
* **stub** -- a counterfactual build without the subsystem:
  ``sys.modules['repro.telemetry']`` is pre-seeded with a minimal shim
  before ``repro`` is imported, so none of the real telemetry code ever
  loads.

Each child warms up once and reports the minimum of five timed runs (the
study memo is bypassed so every run simulates); the arms alternate
across several child processes so CPU-frequency and load drift hit both
equally, and each arm scores the minimum over its children.  The guard
asserts the shipped arm is within 2% of the counterfactual.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from conftest import write_result

#: Relative wall-time regression allowed for the shipped NullTracer arm.
BUDGET = 0.02

_CHILD = textwrap.dedent(
    """
    import contextlib
    import json
    import sys
    import time

    ARM = sys.argv[1]

    if ARM == "stub":
        # Replace repro.telemetry with a minimal shim BEFORE repro loads,
        # approximating a build where the subsystem does not exist.
        import types

        class _Null:
            enabled = False
            def span(self, *a, **k): pass
            def sample(self, *a, **k): pass
            def counter_add(self, *a, **k): pass
            def histogram_record(self, *a, **k): pass
            @contextlib.contextmanager
            def wall_span(self, *a, **k):
                yield

        _NULL = _Null()
        shim = types.ModuleType("repro.telemetry")
        shim.Tracer = shim.NullTracer = shim.RecordingTracer = _Null
        shim.NULL_TRACER = _NULL
        shim.get_tracer = lambda: _NULL
        shim.set_tracer = lambda tracer: _NULL

        @contextlib.contextmanager
        def use_tracer(tracer):
            yield _NULL

        shim.use_tracer = use_tracer
        sys.modules["repro.telemetry"] = shim

    from repro.core.experiment import run_app_study

    def once():
        start = time.perf_counter()
        run_app_study(
            "histogram", scale=0.2, seed=9, num_workers=16, use_cache=False
        )
        return time.perf_counter() - start

    once()  # warm caches (imports, path tables, numpy dispatch)
    print(json.dumps({"arm": ARM, "time_s": min(once() for _ in range(5))}))
    """
)


def _time_arm(arm: str) -> float:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, arm],
        env=env, capture_output=True, text=True, check=True,
    )
    return float(json.loads(out.stdout.splitlines()[-1])["time_s"])


def test_null_tracer_overhead(results_dir):
    null = stub = None
    delta = float("inf")
    for _ in range(5):  # alternate arms until the floors stabilize
        stub_t = _time_arm("stub")
        null_t = _time_arm("null")
        stub = stub_t if stub is None else min(stub, stub_t)
        null = null_t if null is None else min(null, null_t)
        delta = (null - stub) / stub
        if delta <= BUDGET:
            break
    write_result(
        results_dir,
        "telemetry_overhead.json",
        json.dumps(
            {
                "null_tracer_s": null,
                "no_telemetry_s": stub,
                "relative_delta": delta,
                "budget": BUDGET,
            },
            indent=2,
        ),
    )
    assert delta <= BUDGET, (
        f"NullTracer arm {null:.3f}s vs no-telemetry arm {stub:.3f}s "
        f"({delta * 100:+.1f}%, budget {BUDGET * 100:.0f}%)"
    )
