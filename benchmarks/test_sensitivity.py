"""Sensitivity: conclusions survive 2x perturbations of power constants.

Each calibrated constant (core dynamic/leakage watts, wire/wireless/
router pJ-per-bit) is halved and doubled; in every variant the VFI system
must still save EDP and the WiNoC must still beat the VFI mesh."""

from conftest import SEED, write_result

from repro.analysis.sensitivity import sensitivity_sweep
from repro.analysis.tables import format_table


def test_conclusions_robust_to_power_constants(benchmark, studies, results_dir):
    def sweep():
        return sensitivity_sweep(studies["wordcount"], seed=SEED)

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "parameter": row.parameter,
            "x": row.multiplier,
            "VFI mesh EDP": f"{row.vfi_mesh_edp:.3f}",
            "VFI WiNoC EDP": f"{row.vfi_winoc_edp:.3f}",
        }
        for row in rows_data
    ]
    write_result(results_dir, "sensitivity_power.txt", format_table(rows))

    for row in rows_data:
        assert row.vfi_saves_edp, (row.parameter, row.multiplier)
        assert row.winoc_beats_mesh, (row.parameter, row.multiplier)
