"""Ablation: the Eq. (3) task-stealing cap on the VFI 2 mesh.

The modified stealing exists to keep fast cores from idling while slow
cores grind through stolen tasks; disabling it must not make the system
faster for the heterogeneous-V/F applications."""

from conftest import SEED, write_result

from repro.analysis.tables import format_table
from repro.core.experiment import run_app_study
from repro.core.platforms import build_vfi_mesh
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed


def test_ablation_stealing_cap(benchmark, studies, results_dir):
    def sweep():
        out = {}
        for name in ("wordcount", "kmeans", "linear_regression"):
            study = studies[name]
            platform = build_vfi_mesh(
                study.design, "vfi2", seed=spawn_seed(SEED, name, "mapping")
            )
            uncapped = simulate(
                platform,
                study.trace,
                locality=study.app.profile.l2_locality,
                stealing_policy=None,  # default greedy stealing
            )
            capped_time = study.result("vfi2_mesh").total_time_s
            out[study.label] = capped_time / uncapped.total_time_s
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"app": label, "time capped/uncapped": f"{ratio:.3f}"}
        for label, ratio in ratios.items()
    ]
    write_result(results_dir, "ablation_stealing.txt", format_table(rows))
    # The cap never costs more than a small tolerance, and helps on average.
    for label, ratio in ratios.items():
        assert ratio <= 1.05, f"{label}: capped stealing slower"
