"""Fig. 2: per-core utilization distributions (Kmeans, PCA, MM, HIST).

Shapes: Kmeans is strongly non-homogeneous (the paper's rationale for
skipping its reassignment); MM and HIST are nearly homogeneous; every app
shows a high-utilization head (the bottleneck cores).
"""

import numpy as np
from conftest import write_result

from repro.analysis.figures import figure2_utilization
from repro.analysis.tables import ascii_bars


def test_fig2(benchmark, studies, results_dir):
    series = benchmark.pedantic(
        lambda: figure2_utilization(studies), rounds=1, iterations=1
    )
    text = []
    for label, values in series.items():
        cv = values.std() / values.mean()
        text.append(
            f"{label}: mean={values.mean():.3f} max={values.max():.3f} cv={cv:.3f}"
        )
        bars = {
            f"core {i:2d}": float(values[i]) for i in range(0, 64, 8)
        }
        text.append(ascii_bars(bars, reference=1.0))
    write_result(results_dir, "fig2_utilization.txt", "\n".join(text))

    cvs = {
        label: values.std() / values.mean() for label, values in series.items()
    }
    # Kmeans is the most heterogeneous of the four profiled apps.
    assert cvs["Kmeans"] == max(cvs.values())
    # MM and HIST are nearly homogeneous.
    assert cvs["MM"] < 0.1
    assert cvs["HIST"] < 0.1
    # Every app's hottest core clearly exceeds its mean (bottleneck head).
    for label, values in series.items():
        assert values.max() > 1.05 * values.mean()
