"""Robustness: the headline shapes hold across random seeds.

The paper reports one configuration; this harness re-runs three
representative apps with a second seed (new synthetic datasets, new SA
randomness) and checks the qualitative conclusions survive."""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.core.sweep import seed_sweep


def test_shapes_stable_across_seeds(benchmark, results_dir):
    def sweep():
        return {
            name: seed_sweep(name, seeds=(7, 23))
            for name in ("wordcount", "histogram", "kmeans")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, sweep_result in results.items():
        for seed, configs in sweep_result.rows.items():
            rows.append(
                {
                    "app": name,
                    "seed": seed,
                    "VFI mesh EDP": f"{configs['vfi2_mesh']['edp']:.3f}",
                    "WiNoC EDP": f"{configs['vfi2_winoc']['edp']:.3f}",
                    "WiNoC time": f"{configs['vfi2_winoc']['time']:.3f}",
                }
            )
    write_result(results_dir, "robustness_seeds.txt", format_table(rows))

    for name, sweep_result in results.items():
        for seed, configs in sweep_result.rows.items():
            # VFI saves EDP, WiNoC saves more, at every seed.
            assert configs["vfi2_mesh"]["edp"] < 1.0, (name, seed)
            assert (
                configs["vfi2_winoc"]["edp"] < configs["vfi2_mesh"]["edp"]
            ), (name, seed)
        # normalized EDP varies by less than 0.12 between seeds
        assert sweep_result.spread("vfi2_winoc", "edp") < 0.12, name
