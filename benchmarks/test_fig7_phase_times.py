"""Fig. 7: normalized per-phase execution time for VFI Mesh and VFI WiNoC.

Shapes: map dominates everywhere; the VFI mesh pays a bounded execution
penalty; the WiNoC recovers part of it for every application (most for
the high-key-count, distant-traffic apps WC and Kmeans; least for the
near-core-heavy LR)."""

from conftest import write_result

from repro.analysis.figures import figure7_phase_times
from repro.analysis.tables import format_table


def test_fig7(benchmark, studies, results_dir):
    data = benchmark.pedantic(
        lambda: figure7_phase_times(studies), rounds=1, iterations=1
    )
    rows = []
    for app_label, configs in data.items():
        for config_label, phases in configs.items():
            row = {"app": app_label, "config": config_label}
            row.update({k: f"{v:.3f}" for k, v in phases.items()})
            row["total"] = f"{sum(phases.values()):.3f}"
            rows.append(row)
    write_result(results_dir, "fig7_phase_times.txt", format_table(rows))

    for app_label, configs in data.items():
        mesh = configs["VFI Mesh"]
        winoc = configs["VFI WiNoC"]
        # Map dominates the execution profile.
        assert mesh["map"] == max(mesh.values())
        mesh_total = sum(mesh.values())
        winoc_total = sum(winoc.values())
        # VFI mesh penalty bounded (paper: <= 10.5%; simulator: <= ~40%).
        assert mesh_total < 1.45
        # WiNoC strictly recovers part of the VFI penalty.
        assert winoc_total < mesh_total, app_label

    # WC and Kmeans gain the most from the WiNoC (high key counts,
    # distant-core traffic); LR and PCA gain the least (near-core /
    # merge-bound profiles).
    gains = {
        app: sum(cfg["VFI Mesh"].values()) - sum(cfg["VFI WiNoC"].values())
        for app, cfg in data.items()
    }
    order = sorted(gains, key=gains.get)
    assert "PCA" in order[:2]
    assert "LR" in order[:4]
    top_two = sorted(gains, key=gains.get, reverse=True)[:2]
    assert set(top_two) == {"WC", "Kmeans"}
