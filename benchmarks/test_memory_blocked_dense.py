"""Memory guard: blocked dense tables on the 256-core die.

The all-pairs static layers (dense latency tables, pairwise energy,
flow-usage matrices, memory-system expectations) are the simulator's
peak-RSS driver at large core counts.  ``NocParams.dense_block_nodes``
switches them to blocked float32 builds; this benchmark measures the
additional allocation peak (tracemalloc) of constructing every static
table -- network plus :class:`repro.sim.memory.MemorySystem`, which
triggers the dense latency/bulk tables, both pairwise-energy tables,
both flow-usage matrices, the miss-usage table and the latency refresh
-- on a 256-core die, blocked against unblocked.

Acceptance: the blocked peak must sit at least ``MIN_RATIO`` (4x) below
the unblocked float64 peak.  The committed
``results/memory_blocked_dense.json`` records both sides.
"""

import json
import tracemalloc
from dataclasses import replace

from conftest import write_result

from repro.core.geometry import DieGeometry
from repro.core.platforms import LARGE_DIE_BLOCK_NODES, build_nvfi_mesh
from repro.noc.network import NocParams
from repro.sim.memory import MemorySystem

NUM_CORES = 256
MIN_RATIO = 4.0
RESULT_NAME = "memory_blocked_dense.json"


def _static_table_peak(block_nodes) -> float:
    """Peak additional bytes while building every static table."""
    platform = build_nvfi_mesh(DieGeometry.for_cores(NUM_CORES))
    params = (
        NocParams() if block_nodes is None
        else replace(NocParams(), dense_block_nodes=block_nodes)
    )
    object.__setattr__(platform, "noc_params", params)
    platform.network = platform.build_network()
    tracemalloc.start()
    try:
        MemorySystem(platform, locality=0.6)
        return float(tracemalloc.get_traced_memory()[1])
    finally:
        tracemalloc.stop()


def test_blocked_dense_memory_footprint(results_dir):
    blocked = _static_table_peak(LARGE_DIE_BLOCK_NODES)
    unblocked = _static_table_peak(None)
    ratio = unblocked / blocked
    write_result(results_dir, RESULT_NAME, json.dumps({
        "num_cores": NUM_CORES,
        "block_nodes": LARGE_DIE_BLOCK_NODES,
        "blocked_peak_mb": blocked / 1e6,
        "unblocked_peak_mb": unblocked / 1e6,
        "ratio": ratio,
        "min_ratio": MIN_RATIO,
    }, indent=2))
    assert ratio >= MIN_RATIO, (
        f"blocked static tables peak at {blocked / 1e6:.1f} MB, only "
        f"{ratio:.2f}x below the unblocked {unblocked / 1e6:.1f} MB "
        f"(need >= {MIN_RATIO}x)"
    )
