"""Fig. 8: full-system EDP of VFI Mesh and VFI WiNoC vs the NVFI mesh.

Shapes: both VFI systems save EDP for every application; the WiNoC
variant is at least as good as the mesh variant everywhere; Kmeans
achieves the largest savings (paper: 66.2% max, 33.7% average)."""

import numpy as np
from conftest import write_result

from repro.analysis.figures import average_edp_savings, figure8_full_system_edp
from repro.analysis.tables import format_table


def test_fig8(benchmark, studies, results_dir):
    data = benchmark.pedantic(
        lambda: figure8_full_system_edp(studies), rounds=1, iterations=1
    )
    rows = [
        {
            "app": label,
            "VFI Mesh": f"{mesh:.3f}",
            "VFI WiNoC": f"{winoc:.3f}",
        }
        for label, (mesh, winoc) in data.items()
    ]
    average, maximum = average_edp_savings(studies)
    summary = (
        f"WiNoC EDP savings vs NVFI mesh: average {average * 100:.1f}% "
        f"(paper: 33.7%), max {maximum * 100:.1f}% (paper: 66.2%)"
    )
    write_result(
        results_dir, "fig8_full_system_edp.txt", format_table(rows) + "\n" + summary
    )

    for label, (mesh, winoc) in data.items():
        assert mesh < 1.0, f"{label}: VFI mesh saves no EDP"
        assert winoc < 1.0, f"{label}: VFI WiNoC saves no EDP"
        assert winoc < mesh, f"{label}: WiNoC worse than mesh"

    # Kmeans achieves the deepest savings.
    winoc_edps = {label: winoc for label, (mesh, winoc) in data.items()}
    assert winoc_edps["Kmeans"] == min(winoc_edps.values())
    assert average > 0.05  # meaningful average savings
