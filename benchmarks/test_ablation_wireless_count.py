"""Ablation: wireless-interface count.

The paper adopts 12 WIs (3 channels x one WI per island) citing the
companion work's optimum for 64 cores.  Sweep 1-3 channels (4/8/12 WIs)
and confirm more channels monotonically help (or at least never hurt)
the network EDP -- the marginal gain shrinking as channels saturate."""

import numpy as np
from conftest import SEED, write_result

from repro.analysis.tables import format_table
from repro.core.experiment import NVFI_MESH
from repro.core.platforms import build_vfi_winoc
from repro.noc.wireless import WirelessSpec
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed


def test_wireless_interface_count(benchmark, studies, results_dir):
    def sweep():
        study = studies["wordcount"]
        rate = study.design.traffic * 8.0 / study.result(NVFI_MESH).total_time_s
        out = {}
        for channels in (1, 2, 3):
            spec = WirelessSpec(num_channels=channels)
            platform = build_vfi_winoc(
                study.design,
                "vfi2",
                wireless_spec=spec,
                seed=spawn_seed(SEED, "wordcount", "winoc"),
                traffic_rate_bps=rate,
            )
            result = simulate(
                platform,
                study.trace,
                locality=study.app.profile.l2_locality,
                stealing_policy=study.design.stealing_policy("vfi2"),
            )
            out[channels] = result.network_edp / study.result(NVFI_MESH).network_edp
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"channels": channels, "WIs": channels * 4,
         "network EDP vs NVFI": f"{ratio:.3f}"}
        for channels, ratio in ratios.items()
    ]
    write_result(results_dir, "ablation_wireless_count.txt", format_table(rows))
    # More channels never hurt by more than noise.
    assert ratios[3] <= ratios[1] * 1.05
