"""Table 1: applications analyzed and datasets used."""

from conftest import write_result

from repro.analysis.tables import table1_datasets


def test_table1(benchmark, results_dir):
    text = benchmark.pedantic(table1_datasets, rounds=1, iterations=1)
    write_result(results_dir, "table1_datasets.txt", text)
    for label in ("MM", "Kmeans", "PCA", "HIST", "WC", "LR"):
        assert label in text
    assert "999 x 999" in text and "960 x 960" in text
    assert "100 MB" in text and "399 MB" in text
