"""Ablation: Eq. (1) weight balance and clustering quality."""

import numpy as np
from conftest import SEED, write_result

from repro.analysis.tables import format_table
from repro.core.experiment import run_app_study
from repro.vfi.clustering import (
    ClusteringProblem,
    cluster_cost,
    solve_simulated_annealing,
    utilization_sorted_assignment,
)


def test_ablation_clustering_weights(benchmark, studies, results_dir):
    """Sweep w_c / w_u: the comm-only and util-only extremes trade the two
    cost terms exactly as Sec. 4.1 describes."""

    def sweep():
        study = studies["wordcount"]
        utilization = study.design.utilization
        traffic = study.design.traffic
        rows = []
        for wc, wu in ((1.0, 0.0), (1.0, 1.0), (0.0, 1.0)):
            problem = ClusteringProblem(
                traffic, utilization, 4, comm_weight=wc, util_weight=wu
            )
            result = solve_simulated_annealing(problem, seed=SEED)
            # measure both terms under unit weights for comparison
            metric = ClusteringProblem(traffic, utilization, 4)
            comm_only = ClusteringProblem(
                traffic, utilization, 4, comm_weight=1.0, util_weight=0.0
            )
            util_only = ClusteringProblem(
                traffic, utilization, 4, comm_weight=0.0, util_weight=1.0
            )
            rows.append(
                {
                    "weights (wc, wu)": f"({wc}, {wu})",
                    "comm cost": f"{cluster_cost(comm_only, result.assignment):.3f}",
                    "util cost": f"{cluster_cost(util_only, result.assignment):.4f}",
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(results_dir, "ablation_clustering_weights.txt", format_table(rows))
    comm_costs = [float(row["comm cost"]) for row in rows]
    util_costs = [float(row["util cost"]) for row in rows]
    # Emphasizing communication cannot produce a worse comm cost than
    # emphasizing utilization, and vice versa.
    assert comm_costs[0] <= comm_costs[2] + 1e-9
    assert util_costs[2] <= util_costs[0] + 1e-9
