"""Performance guard: end-to-end ``simulate()`` on the 64-core WiNoC.

Times one full-system simulation of WordCount on the VFI-2 WiNoC
platform (the paper's headline configuration) in a fresh interpreter,
next to a fixed pure-Python/NumPy *calibration workload* that tracks the
host's speed.  The guard compares the **ratio** of simulate time to
calibration time against the committed baseline ratio, so it measures
the simulator's own efficiency rather than the machine it happens to
run on.

The committed ``results/perf_simulator.json`` carries:

* ``baseline`` -- the post-vectorization ratio this guard defends
  (refreshed only deliberately, by deleting the file and re-running);
* ``reference_prechange`` -- the same protocol measured on the
  pre-vectorization simulator, documenting the speedup;
* ``latest`` -- the most recent measurement (updated every run).

The guard fails when the measured ratio regresses more than
``BUDGET`` (25%) beyond the baseline ratio.
"""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

from conftest import write_result

#: Allowed relative regression of the simulate/calibration ratio.
BUDGET = 0.25

RESULT_NAME = "perf_simulator.json"

_CHILD = textwrap.dedent(
    """
    import json
    import time

    import numpy as np

    # ------------------------------------------------------------------
    # Calibration workload: fixed mixed Python/NumPy work whose runtime
    # scales with host speed the same way the simulator's does.
    # ------------------------------------------------------------------
    def calibration():
        start = time.perf_counter()
        total = 0
        for i in range(400_000):
            total += i * i
        a = np.arange(262_144, dtype=float).reshape(512, 512)
        for _ in range(12):
            a = a @ np.eye(512) * 0.5 + 1.0
        return time.perf_counter() - start

    from repro.apps.registry import create_app
    from repro.core.design_flow import (
        design_vfi, structural_bottleneck_workers,
    )
    from repro.core.platforms import (
        build_nvfi_mesh, build_vfi_winoc, geometry_for,
    )
    from repro.core.traffic import total_node_traffic
    from repro.sim.system import simulate
    from repro.utils.rng import spawn_seed

    app = create_app("wordcount", scale=0.3, seed=7)
    locality = app.profile.l2_locality
    trace = app.run(num_workers=64)
    geometry = geometry_for(64)
    nvfi_result = simulate(build_nvfi_mesh(geometry), trace, locality=locality)
    traffic = total_node_traffic(trace, locality)
    design = design_vfi(
        utilization=nvfi_result.utilization,
        traffic=traffic,
        seed=spawn_seed(7, "wordcount", "clustering"),
        structural_workers=structural_bottleneck_workers(trace),
    )
    platform = build_vfi_winoc(
        design, "vfi2", geometry=geometry,
        seed=spawn_seed(7, "wordcount", "winoc"),
        traffic_rate_bps=traffic * 8.0 / nvfi_result.total_time_s,
    )

    def simulate_once():
        start = time.perf_counter()
        simulate(
            platform, trace, locality=locality,
            stealing_policy=design.stealing_policy("vfi2"),
        )
        return time.perf_counter() - start

    simulate_once()  # warm caches (imports, path tables, numpy dispatch)
    calibration()
    print(json.dumps({
        "simulate_s": min(simulate_once() for _ in range(5)),
        "calibration_s": min(calibration() for _ in range(5)),
    }))
    """
)


def _time_child() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


def test_simulator_performance(results_dir):
    committed = pathlib.Path(results_dir) / RESULT_NAME
    previous = json.loads(committed.read_text()) if committed.exists() else {}
    baseline = previous.get("baseline")
    reference = previous.get("reference_prechange")

    simulate_s = calibration_s = None
    ratio = float("inf")
    for _ in range(3):  # repeat until the floors stabilize
        sample = _time_child()
        simulate_s = (
            sample["simulate_s"] if simulate_s is None
            else min(simulate_s, sample["simulate_s"])
        )
        calibration_s = (
            sample["calibration_s"] if calibration_s is None
            else min(calibration_s, sample["calibration_s"])
        )
        ratio = simulate_s / calibration_s
        if baseline and ratio <= baseline["ratio"] * (1.0 + BUDGET):
            break

    if baseline is None:
        # First run on a fresh checkout: establish the baseline.
        baseline = {
            "simulate_s": simulate_s,
            "calibration_s": calibration_s,
            "ratio": ratio,
        }

    payload = {
        "baseline": baseline,
        "latest": {
            "simulate_s": simulate_s,
            "calibration_s": calibration_s,
            "ratio": ratio,
        },
        "budget": BUDGET,
    }
    if reference is not None:
        payload["reference_prechange"] = reference
        if reference.get("ratio"):
            payload["speedup_vs_prechange"] = reference["ratio"] / ratio
    write_result(results_dir, RESULT_NAME, json.dumps(payload, indent=2))

    assert ratio <= baseline["ratio"] * (1.0 + BUDGET), (
        f"simulate()/calibration ratio {ratio:.3f} regressed beyond "
        f"baseline {baseline['ratio']:.3f} (+{BUDGET * 100:.0f}% budget); "
        f"simulate {simulate_s:.3f}s, calibration {calibration_s:.3f}s"
    )
