"""Cluster engine at scale: 100k arrivals under a wall-clock budget.

Two guards against the failure modes a smoke trace cannot see:

* ``test_dispatch_overhead_scales_linearly`` drives the event loop with
  scripted costs at two trace sizes and bounds the per-arrival wall
  time ratio -- a regression back to the O(jobs x chips) per-dispatch
  scan shows up here long before the big run times out;
* ``test_100k_arrival_replay_within_budget`` serves and byte-identically
  replays a 100k-arrival trace against the real cost model (cold batch
  fan-out first, then a warm cache-only pass) inside generous wall-clock
  budgets, and commits the reference numbers to
  ``results/cluster_scale.json``.

The budgets hold roughly 10x headroom over a warm local run (the
engine clears 100k arrivals in ~4 s): they catch superlinear blowups,
not scheduler jitter on a busy CI runner.
"""

import hashlib
import json
import time

from conftest import write_result

from repro.cluster import (
    ClusterService,
    CostModel,
    JobEstimate,
    fleet_for,
    generate_trace,
)
from repro.cluster.record import replay, verify_replay
from repro.orchestrator.cache import StudyCache

RESULT_NAME = "cluster_scale.json"
SEED = 7
NUM_JOBS = 100_000
CHIPS = 8
QUEUE_DEPTH = 64
PREFETCH_JOBS = 4
RUN_BUDGET_S = 60.0
REPLAY_BUDGET_S = 90.0

#: Measurements from the micro guard, folded into the committed
#: baseline by the 100k test (pytest runs this module top to bottom).
_MICRO = {}


class ScriptedCostModel(CostModel):
    """Deterministic estimates without simulation, for pure engine
    timing: the micro guard must measure dispatch overhead, not the
    (cached) cost of resolving studies."""

    def __init__(self):
        super().__init__(None)

    def estimate(self, job, chip):
        key = f"{job.app}|{job.scale:g}|{job.seed}|{chip.num_workers}"
        digest = hashlib.sha256(key.encode()).digest()
        return JobEstimate(
            service_s=1.0 + digest[0] / 16.0,
            energy_j=50.0 + digest[1] * 2.0,
        )


def _scale_trace(num_jobs):
    # Sustained overload: the queue sits at depth, every arrival walks
    # the admission path, and the heap never drains between instants.
    return generate_trace(
        "scale",
        seed=SEED,
        num_jobs=num_jobs,
        mean_gap_s=0.2,
        deadline_fraction=0.25,
        priority_levels=3,
    )


def _per_arrival_seconds(num_jobs):
    trace = _scale_trace(num_jobs)
    service = ClusterService(
        fleet_for(CHIPS, num_workers=16),
        "fifo",
        max_queue_depth=QUEUE_DEPTH,
        cost_model=ScriptedCostModel(),
    )
    start = time.perf_counter()
    service.run(trace)
    return (time.perf_counter() - start) / num_jobs


def test_dispatch_overhead_scales_linearly():
    _per_arrival_seconds(2_000)  # warm-up: imports and allocator churn
    small = _per_arrival_seconds(10_000)
    large = _per_arrival_seconds(40_000)
    ratio = large / small
    _MICRO.update(
        per_arrival_us_10k=round(small * 1e6, 2),
        per_arrival_us_40k=round(large * 1e6, 2),
        ratio_40k_over_10k=round(ratio, 3),
    )
    # Near-constant per-arrival cost; a quadratic dispatch scan would
    # push the ratio toward 4.
    assert ratio < 2.5, _MICRO


def test_100k_arrival_replay_within_budget(results_dir, tmp_path):
    trace = _scale_trace(NUM_JOBS)
    fleet = fleet_for(CHIPS, num_workers=16)
    cache = StudyCache(tmp_path / "cache")

    # Cold pass: the batched cost-model front fans every unique study
    # out across worker processes before the event loop starts.
    cold = ClusterService(
        fleet,
        "fifo",
        max_queue_depth=QUEUE_DEPTH,
        cache=cache,
        prefetch_jobs=PREFETCH_JOBS,
    ).run(trace)
    cold_stats = cold.study_stats
    assert cold_stats["batches"] >= 1
    assert cold_stats["prefetched"] == cold_stats["unique_specs"]
    assert cold_stats["computed"] == cold_stats["unique_specs"]

    # Warm pass under the run budget: every study resolves from the
    # shared cache, so the clock measures the event engine alone.
    service = ClusterService(
        fleet,
        "fifo",
        max_queue_depth=QUEUE_DEPTH,
        cache=cache,
        prefetch_jobs=PREFETCH_JOBS,
    )
    start = time.perf_counter()
    result = service.run(trace)
    run_wall_s = time.perf_counter() - start
    assert run_wall_s < RUN_BUDGET_S
    stats = result.study_stats
    assert stats["computed"] == 0
    assert stats["batches"] >= 1
    assert result.replay_digest == cold.replay_digest
    report = result.report
    assert report.completed + report.rejected == len(trace)
    assert report.completed > 0

    start = time.perf_counter()
    fresh = replay(result, cache=cache, prefetch_jobs=PREFETCH_JOBS)
    assert verify_replay(result, fresh) is None
    replay_wall_s = time.perf_counter() - start
    assert replay_wall_s < REPLAY_BUDGET_S
    assert fresh.study_stats["computed"] == 0

    write_result(results_dir, RESULT_NAME, json.dumps({
        "num_jobs": NUM_JOBS,
        "seed": SEED,
        "trace_key": trace.trace_key,
        "fleet": {"chips": CHIPS, "num_workers": 16},
        "policy": "fifo",
        "max_queue_depth": QUEUE_DEPTH,
        "replay_digest": result.replay_digest,
        "study_stats": stats,
        "report": {
            "completed": report.completed,
            "rejected": report.rejected,
            "deadlines_met": report.deadlines_met,
            "makespan_s": round(report.makespan_s, 3),
            "total_energy_j": round(report.total_energy_j, 3),
        },
        "wall_clock": {
            "run_s": round(run_wall_s, 2),
            "replay_s": round(replay_wall_s, 2),
            "arrivals_per_s": round(NUM_JOBS / run_wall_s),
            "run_budget_s": RUN_BUDGET_S,
            "replay_budget_s": REPLAY_BUDGET_S,
        },
        "dispatch_micro": _MICRO or None,
    }, indent=2))
