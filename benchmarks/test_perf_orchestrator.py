"""Performance guard: orchestrator fan-out of a small campaign.

Times :func:`repro.orchestrator.run_campaign` resolving a two-unit
sweep across two worker processes -- spec canonicalization, process
spawn, study serialization and result collection included -- in a fresh
interpreter, next to the same fixed calibration workload the simulator
guard uses.  Comparing the **ratio** of campaign time to calibration
time against the committed baseline makes the guard portable across
runner speeds.

The committed ``results/perf_orchestrator.json`` carries:

* ``baseline`` -- the ratio this guard defends (refreshed only
  deliberately, by deleting the file and re-running);
* ``latest`` -- the most recent measurement (updated every run).

The guard fails when the measured ratio regresses more than
``BUDGET`` (35%) beyond the baseline ratio.  The budget is wider than
the simulator guard's: process spawn and IPC add scheduler noise that
single-process timing does not see.
"""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

from conftest import write_result

#: Allowed relative regression of the campaign/calibration ratio.
BUDGET = 0.35

RESULT_NAME = "perf_orchestrator.json"

_CHILD = textwrap.dedent(
    """
    import json
    import time

    import numpy as np

    def calibration():
        start = time.perf_counter()
        total = 0
        for i in range(400_000):
            total += i * i
        a = np.arange(262_144, dtype=float).reshape(512, 512)
        for _ in range(12):
            a = a @ np.eye(512) * 0.5 + 1.0
        return time.perf_counter() - start

    from repro.orchestrator import StudySpec, run_campaign

    def specs_for(round_index):
        # Fresh seeds every round: the in-process study memo is
        # inherited by forked pool workers, so reusing seeds would
        # reduce the measurement to bare process-spawn time.
        return [
            StudySpec(
                app="histogram", scale=0.05,
                seed=100 + 2 * round_index + offset, num_workers=16,
            )
            for offset in (0, 1)
        ]

    def campaign_once(round_index):
        start = time.perf_counter()
        result = run_campaign(specs_for(round_index), jobs=2, cache=None)
        result.raise_failures()
        return time.perf_counter() - start

    campaign_once(99)  # warm imports and numpy dispatch in the parent
    calibration()
    print(json.dumps({
        "campaign_s": min(campaign_once(i) for i in range(3)),
        "calibration_s": min(calibration() for _ in range(5)),
    }))
    """
)


def _time_child() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


def test_orchestrator_performance(results_dir):
    committed = pathlib.Path(results_dir) / RESULT_NAME
    previous = json.loads(committed.read_text()) if committed.exists() else {}
    baseline = previous.get("baseline")

    campaign_s = calibration_s = None
    ratio = float("inf")
    for _ in range(3):  # repeat until the floors stabilize
        sample = _time_child()
        campaign_s = (
            sample["campaign_s"] if campaign_s is None
            else min(campaign_s, sample["campaign_s"])
        )
        calibration_s = (
            sample["calibration_s"] if calibration_s is None
            else min(calibration_s, sample["calibration_s"])
        )
        ratio = campaign_s / calibration_s
        if baseline and ratio <= baseline["ratio"] * (1.0 + BUDGET):
            break

    if baseline is None:
        # First run on a fresh checkout: establish the baseline.
        baseline = {
            "campaign_s": campaign_s,
            "calibration_s": calibration_s,
            "ratio": ratio,
        }

    payload = {
        "baseline": baseline,
        "latest": {
            "campaign_s": campaign_s,
            "calibration_s": calibration_s,
            "ratio": ratio,
        },
        "budget": BUDGET,
    }
    write_result(results_dir, RESULT_NAME, json.dumps(payload, indent=2))

    assert ratio <= baseline["ratio"] * (1.0 + BUDGET), (
        f"campaign/calibration ratio {ratio:.3f} regressed beyond "
        f"baseline {baseline['ratio']:.3f} (+{BUDGET * 100:.0f}% budget); "
        f"campaign {campaign_s:.3f}s, calibration {calibration_s:.3f}s"
    )
