"""Fig. 6 + Sec. 7.2: wireless placement methodology and (k_intra, k_inter).

The paper finds (a) the maximized-wireless-utilization placement gives a
network EDP at or below the minimized-hop-count placement for every app
(Fig. 6 shows ratios between ~0.92 and 1.0), and (b) the (3,1)
intra/inter connectivity split beats (2,2)."""

import numpy as np
from conftest import SEED, write_result

from repro.analysis.figures import figure6_placement_comparison
from repro.analysis.tables import format_table
from repro.core.experiment import NVFI_MESH, run_app_study
from repro.core.platforms import build_vfi_winoc
from repro.noc.smallworld import SmallWorldConfig
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed


def test_fig6_placement_methodologies(benchmark, studies, results_dir):
    ratios = benchmark.pedantic(
        lambda: figure6_placement_comparison(seed=SEED), rounds=1, iterations=1
    )
    rows = [
        {"app": label, "EDP(max-wireless) / EDP(min-hop)": f"{ratio:.3f}"}
        for label, ratio in ratios.items()
    ]
    write_result(results_dir, "fig6_placement.txt", format_table(rows))

    # Paper shape: the maximized-wireless-utilization methodology performs
    # consistently at least as well; our flow model reproduces that for
    # the majority of apps and ties (within ~5%) on the rest (see
    # EXPERIMENTS.md deviations).
    for label, ratio in ratios.items():
        assert ratio <= 1.05, f"{label}: max-wireless clearly worse than min-hop"
    assert np.mean(list(ratios.values())) <= 1.01
    assert sum(1 for ratio in ratios.values() if ratio <= 1.0) >= len(ratios) / 2


def _winoc_network_edp(study, config, seed_label):
    rate = study.design.traffic * 8.0 / study.result(NVFI_MESH).total_time_s
    platform = build_vfi_winoc(
        study.design,
        "vfi2",
        smallworld_config=config,
        seed=spawn_seed(SEED, seed_label, "winoc"),
        traffic_rate_bps=rate,
    )
    result = simulate(
        platform,
        study.trace,
        locality=study.app.profile.l2_locality,
        stealing_policy=study.design.stealing_policy("vfi2"),
    )
    return result.network_edp


def test_k_intra_inter_31_beats_22(benchmark, results_dir):
    """Sec. 7.2: (k_intra, k_inter) = (3,1) outperforms (2,2)."""

    def sweep():
        out = {}
        for name in ("wordcount", "histogram", "kmeans"):
            study = run_app_study(name, seed=SEED)
            edp_31 = _winoc_network_edp(study, SmallWorldConfig(3.0, 1.0), name)
            edp_22 = _winoc_network_edp(study, SmallWorldConfig(2.0, 2.0), name)
            out[study.label] = edp_31 / edp_22
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"app": label, "network EDP (3,1)/(2,2)": f"{ratio:.3f}"}
        for label, ratio in ratios.items()
    ]
    write_result(results_dir, "fig6_k_sweep.txt", format_table(rows))
    # (3,1) at least as good on average.
    assert np.mean(list(ratios.values())) <= 1.02
