"""Extension beyond the paper: phase-adaptive VFI.

The paper's Sec. 1 motivates VFIs with the per-stage variability of
MapReduce but evaluates static per-application assignments.  This
benchmark evaluates per-phase schedules that park non-master islands at
the DVFS floor during the serial phases (library init, merge funnel).

Expected shape: the merge/lib-init-heavy application (PCA) gains EDP;
map-dominated apps are roughly neutral (little serial time to harvest)."""

from conftest import SEED, write_result

from repro.analysis.tables import format_table
from repro.core.platforms import build_vfi_mesh
from repro.sim.adaptive import PhaseAdaptiveSimulator, phase_adaptive_schedule
from repro.utils.rng import spawn_seed


def test_phase_adaptive_vfi(benchmark, studies, results_dir):
    def sweep():
        out = {}
        for name in ("pca", "histogram", "matrix_multiply", "wordcount"):
            study = studies[name]
            platform = build_vfi_mesh(
                study.design, "vfi2", seed=spawn_seed(SEED, name, "mapping")
            )
            simulator = PhaseAdaptiveSimulator(
                platform,
                phase_adaptive_schedule(study.design),
                locality=study.app.profile.l2_locality,
                stealing_policy=study.design.stealing_policy("vfi2"),
            )
            adaptive = simulator.run(study.trace)
            nvfi = study.result("nvfi_mesh")
            static = study.result("vfi2_mesh")
            out[study.label] = {
                "static": (static.total_time_s / nvfi.total_time_s,
                           static.edp / nvfi.edp),
                "adaptive": (adaptive.total_time_s / nvfi.total_time_s,
                             adaptive.edp / nvfi.edp),
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "app": label,
            "static T": f"{entry['static'][0]:.3f}",
            "static EDP": f"{entry['static'][1]:.3f}",
            "adaptive T": f"{entry['adaptive'][0]:.3f}",
            "adaptive EDP": f"{entry['adaptive'][1]:.3f}",
        }
        for label, entry in data.items()
    ]
    write_result(results_dir, "extension_phase_adaptive.txt", format_table(rows))

    # PCA (long merge + lib init) gains EDP from phase adaptation.
    assert data["PCA"]["adaptive"][1] < data["PCA"]["static"][1]
    # Nothing regresses by more than ~2% EDP or ~2% time.
    for label, entry in data.items():
        assert entry["adaptive"][1] <= entry["static"][1] * 1.02, label
        assert entry["adaptive"][0] <= entry["static"][0] * 1.02, label
