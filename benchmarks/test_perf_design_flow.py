"""Performance guard: the VFI design flow's two annealers.

Times the QP-clustering solve (:func:`solve_simulated_annealing`, the
Eq. 1/2 objective annealed over island assignments) and the wireless
interface placement (:func:`optimize_wireless_placement`, min-hop SA
over WI slots) in a fresh interpreter, next to the same fixed
pure-Python/NumPy *calibration workload* used by ``test_perf_simulator``.
The guard compares the **ratio** of design time to calibration time
against the committed baseline ratio, so it measures the design flow's
own efficiency rather than the machine it happens to run on.

The committed ``results/perf_design_flow.json`` carries:

* ``baseline`` -- the ratio this guard defends (refreshed only
  deliberately, by deleting the file and re-running);
* ``latest`` -- the most recent measurement (updated every run), with
  the per-stage clustering and placement floors alongside the total.

The guard fails when the measured ratio regresses more than
``BUDGET`` (25%) beyond the baseline ratio.
"""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

from conftest import write_result

#: Allowed relative regression of the design/calibration ratio.
BUDGET = 0.25

RESULT_NAME = "perf_design_flow.json"

_CHILD = textwrap.dedent(
    """
    import json
    import time

    import numpy as np

    # ------------------------------------------------------------------
    # Calibration workload: identical to test_perf_simulator's, so the
    # two guards share one notion of host speed.
    # ------------------------------------------------------------------
    def calibration():
        start = time.perf_counter()
        total = 0
        for i in range(400_000):
            total += i * i
        a = np.arange(262_144, dtype=float).reshape(512, 512)
        for _ in range(12):
            a = a @ np.eye(512) * 0.5 + 1.0
        return time.perf_counter() - start

    from repro.apps.registry import create_app
    from repro.core.platforms import build_nvfi_mesh, geometry_for
    from repro.core.traffic import total_node_traffic
    from repro.noc.placement import optimize_wireless_placement
    from repro.noc.topology import build_mesh
    from repro.sim.system import simulate
    from repro.utils.rng import spawn_seed
    from repro.vfi.clustering import (
        ClusteringProblem, solve_simulated_annealing,
    )

    # Characterize once (untimed): the annealers' inputs come from a
    # real NVFI run, like the Fig. 3 flow they belong to.
    app = create_app("wordcount", scale=0.3, seed=7)
    trace = app.run(num_workers=64)
    geometry = geometry_for(64)
    nvfi_result = simulate(
        build_nvfi_mesh(geometry), trace, locality=app.profile.l2_locality
    )
    traffic = total_node_traffic(trace, app.profile.l2_locality)
    problem = ClusteringProblem(
        traffic=traffic,
        utilization=np.asarray(nvfi_result.utilization, dtype=float),
        num_clusters=4,
    )
    wireline = build_mesh(geometry)

    def clustering_once():
        start = time.perf_counter()
        result = solve_simulated_annealing(
            problem, iterations=4000,
            seed=spawn_seed(7, "wordcount", "clustering"),
        )
        return time.perf_counter() - start, result

    def placement_once(clusters):
        start = time.perf_counter()
        optimize_wireless_placement(
            wireline, clusters, traffic,
            seed=spawn_seed(7, "wordcount", "winoc"),
        )
        return time.perf_counter() - start

    elapsed, clustering = clustering_once()  # warm caches
    placement_once(clustering.assignment)
    calibration()
    clustering_s = min(clustering_once()[0] for _ in range(3))
    placement_s = min(
        placement_once(clustering.assignment) for _ in range(3)
    )
    print(json.dumps({
        "clustering_s": clustering_s,
        "placement_s": placement_s,
        "design_s": clustering_s + placement_s,
        "calibration_s": min(calibration() for _ in range(5)),
    }))
    """
)


def _time_child() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


def test_design_flow_performance(results_dir):
    committed = pathlib.Path(results_dir) / RESULT_NAME
    previous = json.loads(committed.read_text()) if committed.exists() else {}
    baseline = previous.get("baseline")

    floors = None
    ratio = float("inf")
    for _ in range(3):  # repeat until the floors stabilize
        sample = _time_child()
        floors = (
            sample if floors is None
            else {key: min(floors[key], sample[key]) for key in floors}
        )
        ratio = floors["design_s"] / floors["calibration_s"]
        if baseline and ratio <= baseline["ratio"] * (1.0 + BUDGET):
            break

    if baseline is None:
        # First run on a fresh checkout: establish the baseline.
        baseline = dict(floors, ratio=ratio)

    payload = {
        "baseline": baseline,
        "latest": dict(floors, ratio=ratio),
        "budget": BUDGET,
    }
    write_result(results_dir, RESULT_NAME, json.dumps(payload, indent=2))

    assert ratio <= baseline["ratio"] * (1.0 + BUDGET), (
        f"design/calibration ratio {ratio:.3f} regressed beyond "
        f"baseline {baseline['ratio']:.3f} (+{BUDGET * 100:.0f}% budget); "
        f"clustering {floors['clustering_s']:.3f}s, "
        f"placement {floors['placement_s']:.3f}s, "
        f"calibration {floors['calibration_s']:.3f}s"
    )
