"""Fig. 5: average vs bottleneck core utilization for PCA, HIST, MM.

Shape: PCA has the highest bottleneck-to-average ratio, consistent with
its long merge funnel; all bottleneck utilizations exceed the averages."""

from conftest import write_result

from repro.analysis.figures import figure5_bottleneck_utilization
from repro.analysis.tables import format_table


def test_fig5(benchmark, studies, results_dir):
    data = benchmark.pedantic(
        lambda: figure5_bottleneck_utilization(studies), rounds=1, iterations=1
    )
    rows = [
        {
            "app": label,
            "average": f"{avg:.3f}",
            "bottleneck": f"{hot:.3f}",
            "ratio": f"{hot / avg:.2f}",
        }
        for label, (avg, hot) in data.items()
    ]
    write_result(results_dir, "fig5_bottleneck_util.txt", format_table(rows))

    ratios = {label: hot / avg for label, (avg, hot) in data.items()}
    for label, ratio in ratios.items():
        assert ratio > 1.05, f"{label}: no visible bottleneck"
    assert ratios["PCA"] == max(ratios.values())
