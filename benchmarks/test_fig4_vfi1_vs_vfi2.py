"""Fig. 4: execution time (a) and EDP (b) of VFI1 vs VFI2 systems for the
three reassigned applications, normalized to the NVFI mesh.

Shapes: VFI2 is never slower than VFI1; PCA benefits the most from the
reassignment (it has the strongest bottleneck, Fig. 5)."""

from conftest import write_result

from repro.analysis.figures import figure4_vfi1_vs_vfi2
from repro.analysis.tables import format_table


def test_fig4(benchmark, studies, results_dir):
    data = benchmark.pedantic(
        lambda: figure4_vfi1_vs_vfi2(studies), rounds=1, iterations=1
    )
    rows = []
    for label in data["execution_time"]:
        t1, t2 = data["execution_time"][label]
        e1, e2 = data["edp"][label]
        rows.append(
            {
                "app": label,
                "time VFI1": f"{t1:.3f}",
                "time VFI2": f"{t2:.3f}",
                "EDP VFI1": f"{e1:.3f}",
                "EDP VFI2": f"{e2:.3f}",
            }
        )
    write_result(results_dir, "fig4_vfi1_vs_vfi2.txt", format_table(rows))

    times = data["execution_time"]
    for label, (vfi1, vfi2) in times.items():
        assert vfi2 <= vfi1 + 1e-9, f"{label}: VFI2 slower than VFI1"

    gains = {label: vfi1 - vfi2 for label, (vfi1, vfi2) in times.items()}
    assert gains["PCA"] == max(gains.values()), (
        "PCA should benefit most from V/F reassignment"
    )
