"""Large-die smoke: the paper pipeline beyond the 64-core die.

Two end-to-end checks back the parametric-geometry refactor:

* a 256-core (16x16, four 8x8 islands) wireless VFI study runs the
  complete pipeline -- app execution, NVFI characterization, VFI design
  flow, all four platform configurations including the WiNoC -- and
  produces physically sensible results;
* a 128-core (16x8) study resolves through the experiment orchestrator
  with a persistent cache: the cold run computes, the warm run must be
  a pure cache hit, and the manifests record both.

Both use a reduced dataset scale so the smoke stays minutes-scale; the
committed ``results/large_die_smoke.json`` records the headline
normalized metrics per die size.
"""

import json
import time

from conftest import write_result

from repro.apps.registry import create_app
from repro.core.design_flow import design_vfi, structural_bottleneck_workers
from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    run_app_study,
)
from repro.core.platforms import build_nvfi_mesh, build_vfi_winoc, die_for
from repro.core.traffic import total_node_traffic
from repro.orchestrator import StudySpec, run_campaign
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed

APP = "histogram"
SCALE = 0.05
SEED = 9
RESULT_NAME = "large_die_smoke.json"

ALL_CONFIGS = (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC)


def test_256_core_winoc_end_to_end(results_dir):
    study = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=256, use_cache=False,
    )
    assert sorted(study.results) == sorted(ALL_CONFIGS)
    for config in ALL_CONFIGS:
        result = study.result(config)
        assert result.total_time_s > 0
        assert result.total_energy_j > 0
    # The overlay must actually carry traffic on a 16x16 die.
    assert study.result(VFI2_WINOC).network.wireless_fraction > 0
    write_result(results_dir, RESULT_NAME, json.dumps({
        "app": APP, "scale": SCALE, "seed": SEED, "num_workers": 256,
        "normalized_time": {
            config: study.normalized_time(config) for config in ALL_CONFIGS
        },
        "normalized_edp": {
            config: study.normalized_edp(config) for config in ALL_CONFIGS
        },
        "winoc_wireless_fraction": (
            study.result(VFI2_WINOC).network.wireless_fraction
        ),
    }, indent=2))


def test_256_core_simulate_wall_clock(results_dir):
    # The cluster service amortizes app traces, platform builds and the
    # design flow through its caches, so the per-``simulate()`` wall
    # time is what bounds fleet-scale sweeps.  After the batched
    # steal-epoch dispatch and the vectorized kv/path-walk hot loops, a
    # full 256-core WiNoC simulation must stay under one wall-clock
    # second (the batch budget CI enforces).
    app = create_app(APP, scale=SCALE, seed=SEED)
    locality = app.profile.l2_locality
    trace = app.run(num_workers=256)
    geometry = die_for(256)
    nvfi_result = simulate(build_nvfi_mesh(geometry), trace, locality=locality)
    traffic = total_node_traffic(trace, locality)
    design = design_vfi(
        utilization=nvfi_result.utilization,
        traffic=traffic,
        num_islands=geometry.num_islands,
        seed=spawn_seed(SEED, APP, "clustering"),
        structural_workers=structural_bottleneck_workers(trace),
    )
    platform = build_vfi_winoc(
        design, "vfi2", geometry=geometry,
        seed=spawn_seed(SEED, APP, "winoc"),
        traffic_rate_bps=traffic * 8.0 / nvfi_result.total_time_s,
    )
    policy = design.stealing_policy("vfi2")

    def simulate_once() -> float:
        begin = time.perf_counter()
        simulate(platform, trace, locality=locality, stealing_policy=policy)
        return time.perf_counter() - begin

    simulate_once()  # warm path tables / numpy dispatch
    best = min(simulate_once() for _ in range(3))
    write_result(results_dir, "large_die_wall_clock.json", json.dumps({
        "app": APP, "scale": SCALE, "seed": SEED, "num_workers": 256,
        "config": VFI2_WINOC, "simulate_s": best, "budget_s": 1.0,
    }, indent=2))
    assert best < 1.0, (
        f"256-core WiNoC simulate() took {best:.3f}s (budget 1.0s)"
    )


def test_128_core_study_through_orchestrator(tmp_path):
    spec = StudySpec(app=APP, scale=SCALE, seed=SEED, num_workers=128)
    cache_dir = tmp_path / "cache"

    cold = run_campaign([spec], jobs=1, cache=str(cache_dir))
    cold.raise_failures()
    assert cold.manifest.num_computed == 1
    study = cold.study(spec)
    assert sorted(study.results) == sorted(ALL_CONFIGS)

    warm = run_campaign([spec], jobs=1, cache=str(cache_dir))
    warm.raise_failures()
    assert warm.manifest.num_cached == 1
    assert warm.study(spec).result(VFI2_WINOC).total_time_s == (
        study.result(VFI2_WINOC).total_time_s
    )
