"""Large-die smoke: the paper pipeline beyond the 64-core die.

Two end-to-end checks back the parametric-geometry refactor:

* a 256-core (16x16, four 8x8 islands) wireless VFI study runs the
  complete pipeline -- app execution, NVFI characterization, VFI design
  flow, all four platform configurations including the WiNoC -- and
  produces physically sensible results;
* a 128-core (16x8) study resolves through the experiment orchestrator
  with a persistent cache: the cold run computes, the warm run must be
  a pure cache hit, and the manifests record both.

Both use a reduced dataset scale so the smoke stays minutes-scale; the
committed ``results/large_die_smoke.json`` records the headline
normalized metrics per die size.
"""

import json

from conftest import write_result

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    run_app_study,
)
from repro.orchestrator import StudySpec, run_campaign

APP = "histogram"
SCALE = 0.05
SEED = 9
RESULT_NAME = "large_die_smoke.json"

ALL_CONFIGS = (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC)


def test_256_core_winoc_end_to_end(results_dir):
    study = run_app_study(
        APP, scale=SCALE, seed=SEED, num_workers=256, use_cache=False,
    )
    assert sorted(study.results) == sorted(ALL_CONFIGS)
    for config in ALL_CONFIGS:
        result = study.result(config)
        assert result.total_time_s > 0
        assert result.total_energy_j > 0
    # The overlay must actually carry traffic on a 16x16 die.
    assert study.result(VFI2_WINOC).network.wireless_fraction > 0
    write_result(results_dir, RESULT_NAME, json.dumps({
        "app": APP, "scale": SCALE, "seed": SEED, "num_workers": 256,
        "normalized_time": {
            config: study.normalized_time(config) for config in ALL_CONFIGS
        },
        "normalized_edp": {
            config: study.normalized_edp(config) for config in ALL_CONFIGS
        },
        "winoc_wireless_fraction": (
            study.result(VFI2_WINOC).network.wireless_fraction
        ),
    }, indent=2))


def test_128_core_study_through_orchestrator(tmp_path):
    spec = StudySpec(app=APP, scale=SCALE, seed=SEED, num_workers=128)
    cache_dir = tmp_path / "cache"

    cold = run_campaign([spec], jobs=1, cache=str(cache_dir))
    cold.raise_failures()
    assert cold.manifest.num_computed == 1
    study = cold.study(spec)
    assert sorted(study.results) == sorted(ALL_CONFIGS)

    warm = run_campaign([spec], jobs=1, cache=str(cache_dir))
    warm.raise_failures()
    assert warm.manifest.num_cached == 1
    assert warm.study(spec).result(VFI2_WINOC).total_time_s == (
        study.result(VFI2_WINOC).total_time_s
    )
