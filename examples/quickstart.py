#!/usr/bin/env python
"""Quickstart: run one benchmark through the full paper pipeline.

This walks the complete flow of the DAC'15 study for Word Count:

1. execute the app functionally on the Phoenix++-style engine (the
   answer is verified against a reference implementation);
2. characterize it on the baseline NVFI mesh platform;
3. run the VFI design flow (clustering -> V/F assignment -> bottleneck
   reassignment -> Eq. 3 stealing);
4. simulate the VFI mesh and VFI WiNoC systems;
5. print the normalized execution time and EDP of each configuration.

Run:  python examples/quickstart.py
"""

from repro import run_app_study
from repro.analysis.tables import ascii_bars


def main() -> None:
    print("Running the Word Count study (NVFI mesh -> design flow -> "
          "VFI mesh -> VFI WiNoC)...\n")
    study = run_app_study("wordcount", seed=7)

    design = study.design
    print("VFI design for", study.label)
    print("  islands (VFI 1):", ", ".join(design.vfi1.labels()))
    print("  islands (VFI 2):", ", ".join(design.vfi2.labels()))
    print("  bottleneck cores:", design.bottleneck.bottleneck_workers or "none")
    print("  reassigned islands:", list(design.vfi2.reassigned_islands) or "none")
    print()

    print("Normalized execution time (NVFI mesh = 1.0):")
    print(
        ascii_bars(
            {
                "NVFI Mesh": study.normalized_time("nvfi_mesh"),
                "VFI 1 Mesh": study.normalized_time("vfi1_mesh"),
                "VFI 2 Mesh": study.normalized_time("vfi2_mesh"),
                "VFI WiNoC": study.normalized_time("vfi2_winoc"),
            },
            reference=1.5,
        )
    )
    print()
    print("Normalized full-system EDP (NVFI mesh = 1.0):")
    print(
        ascii_bars(
            {
                "NVFI Mesh": study.normalized_edp("nvfi_mesh"),
                "VFI 1 Mesh": study.normalized_edp("vfi1_mesh"),
                "VFI 2 Mesh": study.normalized_edp("vfi2_mesh"),
                "VFI WiNoC": study.normalized_edp("vfi2_winoc"),
            },
            reference=1.2,
        )
    )
    print()
    winoc = study.result("vfi2_winoc")
    print(
        f"WiNoC: average hops {winoc.network.average_hops:.2f} "
        f"(mesh: {study.result('vfi2_mesh').network.average_hops:.2f}), "
        f"wireless bit fraction {winoc.network.wireless_fraction * 100:.1f}%"
    )
    saved = 1.0 - study.normalized_edp("vfi2_winoc")
    print(f"Full-system EDP saved by VFI + WiNoC: {saved * 100:.1f}%")


if __name__ == "__main__":
    main()
