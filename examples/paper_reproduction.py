#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

This is the script form of the ``benchmarks/`` suite: it runs all six
applications through the full pipeline and prints Tables 1-2 and the data
series behind Figs. 2, 4, 5, 6, 7 and 8.  Budget a few minutes.

Run:  python examples/paper_reproduction.py
"""

import numpy as np

from repro.analysis.figures import (
    average_edp_savings,
    collect_studies,
    figure2_utilization,
    figure4_vfi1_vs_vfi2,
    figure5_bottleneck_utilization,
    figure6_placement_comparison,
    figure7_phase_times,
    figure8_full_system_edp,
)
from repro.analysis.tables import ascii_bars, format_table, table1_datasets, table2_vf_assignments

SEED = 7


def heading(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    heading("Table 1: Applications analyzed and datasets used")
    print(table1_datasets())

    print("\nRunning all six application studies (NVFI mesh, VFI1/2 mesh, "
          "VFI WiNoC)...")
    studies = collect_studies(seed=SEED)

    heading("Table 2: V/F assignments for MapReduce applications")
    print(table2_vf_assignments(studies.values()))

    heading("Figure 2: Core utilization distributions (sorted, 64 cores)")
    for label, values in figure2_utilization(studies).items():
        print(f"\n{label}: mean {values.mean():.2f}, "
              f"cv {values.std() / values.mean():.2f}")
        deciles = {f"p{100 - 10 * i}": float(np.percentile(values, 100 - 10 * i))
                   for i in range(0, 10, 2)}
        print(ascii_bars(deciles, reference=1.0, width=30))

    heading("Figure 4: VFI 1 vs VFI 2 (normalized to NVFI mesh)")
    fig4 = figure4_vfi1_vs_vfi2(studies)
    rows = [
        {
            "app": label,
            "time VFI1": f"{fig4['execution_time'][label][0]:.3f}",
            "time VFI2": f"{fig4['execution_time'][label][1]:.3f}",
            "EDP VFI1": f"{fig4['edp'][label][0]:.3f}",
            "EDP VFI2": f"{fig4['edp'][label][1]:.3f}",
        }
        for label in fig4["execution_time"]
    ]
    print(format_table(rows))

    heading("Figure 5: Average vs bottleneck core utilization")
    rows = [
        {"app": label, "average": f"{avg:.3f}", "bottleneck": f"{hot:.3f}"}
        for label, (avg, hot) in figure5_bottleneck_utilization(studies).items()
    ]
    print(format_table(rows))

    heading("Figure 6: Network EDP, max-wireless vs min-hop placement")
    rows = [
        {"app": label, "EDP ratio": f"{ratio:.3f}"}
        for label, ratio in figure6_placement_comparison(seed=SEED).items()
    ]
    print(format_table(rows))

    heading("Figure 7: Per-phase execution time (normalized to NVFI total)")
    rows = []
    for app_label, configs in figure7_phase_times(studies).items():
        for config_label, phases in configs.items():
            row = {"app": app_label, "config": config_label}
            row.update({k: f"{v:.3f}" for k, v in phases.items()})
            rows.append(row)
    print(format_table(rows))

    heading("Figure 8: Full-system EDP vs NVFI mesh")
    rows = [
        {"app": label, "VFI Mesh": f"{mesh:.3f}", "VFI WiNoC": f"{winoc:.3f}"}
        for label, (mesh, winoc) in figure8_full_system_edp(studies).items()
    ]
    print(format_table(rows))
    average, maximum = average_edp_savings(studies)
    print(
        f"\nWiNoC EDP savings: average {average * 100:.1f}% "
        f"(paper: 33.7%), max {maximum * 100:.1f}% (paper: 66.2%)"
    )


if __name__ == "__main__":
    main()
