#!/usr/bin/env python
"""WiNoC design-space exploration for one application.

Sweeps the interconnect knobs the paper discusses in Secs. 5-7.2 --
(k_intra, k_inter) splits and the two wireless placement/mapping
methodologies -- for the Word Count workload, and reports execution time
and network EDP per design point.

Run:  python examples/noc_exploration.py
"""

from repro import run_app_study
from repro.analysis.tables import format_table
from repro.core.experiment import NVFI_MESH
from repro.core.platforms import build_vfi_winoc
from repro.noc.smallworld import SmallWorldConfig
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed

APP = "wordcount"
SEED = 7


def evaluate(study, config, methodology):
    rate = study.design.traffic * 8.0 / study.result(NVFI_MESH).total_time_s
    platform = build_vfi_winoc(
        study.design,
        "vfi2",
        methodology=methodology,
        smallworld_config=config,
        seed=spawn_seed(SEED, APP, "winoc"),
        traffic_rate_bps=rate,
        sa_iterations=150,
    )
    result = simulate(
        platform,
        study.trace,
        locality=study.app.profile.l2_locality,
        stealing_policy=study.design.stealing_policy("vfi2"),
    )
    baseline = study.result(NVFI_MESH)
    return {
        "(k_intra, k_inter)": f"({config.k_intra:g}, {config.k_inter:g})",
        "placement": methodology,
        "time vs NVFI": f"{result.total_time_s / baseline.total_time_s:.3f}",
        "network EDP vs NVFI": f"{result.network_edp / baseline.network_edp:.3f}",
        "full EDP vs NVFI": f"{result.edp / baseline.edp:.3f}",
        "avg hops": f"{result.network.average_hops:.2f}",
        "wireless %": f"{result.network.wireless_fraction * 100:.1f}",
    }


def main() -> None:
    print(f"Design-space exploration for {APP} (this runs several full-"
          "system simulations; give it a minute)...\n")
    study = run_app_study(APP, seed=SEED)
    rows = []
    for split in (SmallWorldConfig(3.0, 1.0), SmallWorldConfig(2.0, 2.0)):
        for methodology in ("max_wireless", "min_hop"):
            rows.append(evaluate(study, split, methodology))
    mesh = study.result("vfi2_mesh")
    baseline = study.result(NVFI_MESH)
    rows.append(
        {
            "(k_intra, k_inter)": "mesh",
            "placement": "-",
            "time vs NVFI": f"{mesh.total_time_s / baseline.total_time_s:.3f}",
            "network EDP vs NVFI": f"{mesh.network_edp / baseline.network_edp:.3f}",
            "full EDP vs NVFI": f"{mesh.edp / baseline.edp:.3f}",
            "avg hops": f"{mesh.network.average_hops:.2f}",
            "wireless %": "0.0",
        }
    )
    print(format_table(rows))
    print("\nPaper expectations: (3,1) beats (2,2); the maximized-wireless-")
    print("utilization placement is the consistently strong configuration;")
    print("every WiNoC point beats the VFI mesh on network EDP.")


if __name__ == "__main__":
    main()
