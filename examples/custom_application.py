#!/usr/bin/env python
"""Bring your own MapReduce application to the VFI design flow.

The library is not limited to the six paper benchmarks: any
:class:`repro.mapreduce.MapReduceJob` can be executed functionally and
carried through the architectural study.  This example implements an
**inverted index** (document id lists per word, the canonical MapReduce
example beyond word count), runs it on the engine, and designs a VFI
system for it from scratch.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import build_nvfi_mesh, build_vfi_mesh, design_vfi, run_job, simulate
from repro.apps.datasets import zipf_text
from repro.core.design_flow import structural_bottleneck_workers
from repro.core.traffic import total_node_traffic
from repro.mapreduce import JobConfig, MapReduceJob
from repro.mapreduce.combiners import BufferCombiner
from repro.mapreduce.splitter import split_evenly


class InvertedIndexJob(MapReduceJob):
    """Map: (word -> document id); Reduce: sorted posting lists."""

    name = "inverted-index"

    def __init__(self, documents, config=JobConfig()):
        super().__init__(config)
        self.documents = documents  # list of (doc_id, [words])

    def split(self, num_tasks):
        return split_evenly(self.documents, num_tasks)

    def map(self, chunk, emit):
        work = 0.0
        for doc_id, words in chunk:
            for word in set(words):  # one posting per (word, doc)
                emit(word, doc_id)
            work += len(words)
        return work

    def combiner(self):
        return BufferCombiner()

    def reduce_finalize(self, key, accumulator):
        return sorted(accumulator)


def build_corpus(num_docs=400, words_per_doc=120, seed=3):
    text = zipf_text(num_docs * words_per_doc, vocabulary_size=2000, seed=seed)
    return [
        (doc_id, text[doc_id * words_per_doc : (doc_id + 1) * words_per_doc])
        for doc_id in range(num_docs)
    ]


def main() -> None:
    corpus = build_corpus()
    job = InvertedIndexJob(
        corpus,
        JobConfig(
            instructions_per_map_unit=70.0,
            l1_mpki=9.0,
            trace_scale=4000.0,  # pretend the corpus is 4000x larger
        ),
    )

    print("1. Functional run on the Phoenix++-style engine (64 workers)...")
    index, trace = run_job(job, num_workers=64)
    sample_word = max(index, key=lambda w: len(index[w]))
    print(
        f"   {len(index)} index terms; most common term {sample_word!r} "
        f"appears in {len(index[sample_word])} documents"
    )
    # spot-check correctness against a brute-force index
    expected = sorted(
        doc_id for doc_id, words in corpus if sample_word in set(words)
    )
    assert index[sample_word] == expected, "index mismatch!"
    print("   verified against a brute-force reference")

    print("2. Characterizing on the NVFI mesh...")
    locality = 0.2
    nvfi = simulate(build_nvfi_mesh(), trace, locality=locality)
    print(f"   execution {nvfi.total_time_s * 1e3:.1f} ms, "
          f"mean core utilization {nvfi.utilization.mean():.2f}")

    print("3. Running the VFI design flow...")
    design = design_vfi(
        nvfi.utilization,
        total_node_traffic(trace, locality),
        seed=1,
        structural_workers=structural_bottleneck_workers(trace),
    )
    print("   islands:", ", ".join(design.vfi2.labels()))

    print("4. Simulating the VFI mesh system...")
    vfi = simulate(
        build_vfi_mesh(design, "vfi2", seed=1),
        trace,
        locality=locality,
        stealing_policy=design.stealing_policy("vfi2"),
    )
    print(
        f"   time x{vfi.total_time_s / nvfi.total_time_s:.3f}, "
        f"energy x{vfi.total_energy_j / nvfi.total_energy_j:.3f}, "
        f"EDP x{vfi.edp / nvfi.edp:.3f} vs NVFI mesh"
    )


if __name__ == "__main__":
    main()
