#!/usr/bin/env python
"""Scalability beyond the paper: 16-, 36- and 64-core platforms.

The paper evaluates a single 64-core system.  The design flow in this
library is size-generic (quadrant islands, corner memory controllers,
geometry-derived WiNoC), so we can ask how the VFI + WiNoC benefit
scales with core count: larger meshes mean longer average paths, which
is precisely where the small-world + wireless fabric earns its keep.

Run:  python examples/scalability.py
"""

from repro.analysis.tables import format_table
from repro.core.sweep import size_sweep

APP = "wordcount"


def main() -> None:
    print(f"Scaling the {APP} study over die sizes (each size runs the "
          "full pipeline)...\n")
    sweep = size_sweep(APP, sizes=(16, 36, 64), seed=7)
    rows = []
    for size, configs in sorted(sweep.rows.items()):
        for config, metrics in configs.items():
            rows.append(
                {
                    "cores": size,
                    "config": config,
                    "time vs NVFI": f"{metrics['time']:.3f}",
                    "EDP vs NVFI": f"{metrics['edp']:.3f}",
                }
            )
    print(format_table(rows))

    print("\nReading: the WiNoC's EDP advantage over the VFI mesh should")
    print("grow with the die size -- average mesh hop count scales with")
    print("the side length while the small-world diameter stays nearly")
    print("flat, so bigger dies leave more latency/energy for the WiNoC")
    print("to recover.")
    for size in sorted(sweep.rows):
        mesh = sweep.rows[size]["vfi2_mesh"]["edp"]
        winoc = sweep.rows[size]["vfi2_winoc"]["edp"]
        print(f"  {size:3d} cores: WiNoC saves {100 * (mesh - winoc):.1f} "
              "EDP points over the VFI mesh")


if __name__ == "__main__":
    main()
