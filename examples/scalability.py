#!/usr/bin/env python
"""Scalability beyond the paper: 16- to 128-core platforms.

The paper evaluates a single 64-core system.  The whole stack is now
parametric in :class:`repro.core.geometry.DieGeometry` -- mesh shape,
island tiling, wireless-overlay sizing and memory-controller placement
all derive from the die -- so we can ask how the VFI + WiNoC benefit
scales with core count: larger meshes mean longer average paths, which
is precisely where the small-world + wireless fabric earns its keep.

Core counts need not be square: 128 resolves to a 16x8 die
(``DieGeometry.for_cores(128)``), and an 8-island 128-core die is
``DieGeometry.for_cores(128, num_islands=8)``.  Dies above 64 cores
automatically switch the dense NoC tables to blocked float32 builds
(``NocParams.dense_block_nodes``, see ``noc_params_for``), which keeps
the 256-core platform's static tables ~4.5x smaller in peak RSS than
the unblocked float64 path (measured by
``benchmarks/test_memory_blocked_dense.py``).

Run:  python examples/scalability.py
"""

from repro.analysis.tables import format_table
from repro.core.geometry import DieGeometry
from repro.core.sweep import size_sweep

APP = "wordcount"
#: 128 is rectangular (16x8) -- the sweep resolves it via
#: DieGeometry.for_cores, same as every builder.
SIZES = (16, 36, 64, 128)
#: Large dies at full dataset scale take minutes; trim the datasets so
#: the example stays interactive.
SCALE = 0.3


def main() -> None:
    print(f"Scaling the {APP} study over die sizes (each size runs the "
          "full pipeline)...\n")
    for size in SIZES:
        die = DieGeometry.for_cores(size)
        print(f"  {size:3d} cores -> {die.columns}x{die.rows} die, "
              f"{die.num_islands} islands of "
              f"{die.island_width}x{die.island_height}")
    print()

    sweep = size_sweep(APP, sizes=SIZES, scale=SCALE, seed=7)
    rows = []
    for size, configs in sorted(sweep.rows.items()):
        for config, metrics in configs.items():
            rows.append(
                {
                    "cores": size,
                    "config": config,
                    "time vs NVFI": f"{metrics['time']:.3f}",
                    "EDP vs NVFI": f"{metrics['edp']:.3f}",
                }
            )
    print(format_table(rows))

    print("\nReading: the WiNoC's EDP advantage over the VFI mesh should")
    print("grow with the die size -- average mesh hop count scales with")
    print("the side length while the small-world diameter stays nearly")
    print("flat, so bigger dies leave more latency/energy for the WiNoC")
    print("to recover.")
    for size in sorted(sweep.rows):
        mesh = sweep.rows[size]["vfi2_mesh"]["edp"]
        winoc = sweep.rows[size]["vfi2_winoc"]["edp"]
        print(f"  {size:3d} cores: WiNoC saves {100 * (mesh - winoc):.1f} "
              "EDP points over the VFI mesh")


if __name__ == "__main__":
    main()
