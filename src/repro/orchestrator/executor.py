"""Campaign execution: parallel fan-out with caching, retries, timeouts.

:func:`run_campaign` resolves a list of :class:`StudySpec` units against
an optional persistent :class:`StudyCache`, then executes the misses --
in a ``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1``, or
serially in-process when ``jobs == 1`` (the fallback path is exactly
:func:`repro.core.experiment.run_app_study`, so single-job campaigns are
bit-identical to the historical serial code).  Worker failures are
retried a bounded number of times; a unit that exhausts its retries is
recorded in the manifest with the original exception and does **not**
abort its sibling units.  Every completed unit is persisted to the cache
as soon as it resolves, so an interrupted campaign resumes where it
stopped.

Workers exchange JSON study documents (not pickled ``AppStudy`` objects):
the subprocess runs the pipeline and returns
:func:`repro.core.serialization.study_to_dict` output, which the parent
both caches and rebuilds.  This keeps the transport identical to the
cache format -- a parallel cold run and a warm cache read produce the
same objects by construction.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.core.experiment import AppStudy, store_study
from repro.core.serialization import study_from_dict, study_to_dict
from repro.orchestrator.cache import StudyCache
from repro.orchestrator.manifest import (
    CACHED,
    COMPUTED,
    FAILED,
    RunManifest,
    UnitRecord,
)
from repro.orchestrator.spec import CACHE_SCHEMA_VERSION, StudySpec
from repro.telemetry import get_tracer

#: Callback invoked with a UnitRecord as each unit resolves.
ProgressFn = Callable[[UnitRecord], None]
#: Unit worker: canonical spec fields -> JSON study document.
WorkerFn = Callable[[Dict], Dict]

#: Poll granularity (seconds) when per-unit timeouts are armed.
_TIMEOUT_TICK_S = 0.1


def compute_study_document(spec_fields: Dict) -> Dict:
    """Default unit worker: run the full pipeline, return the document.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can ship it
    to workers by reference.
    """
    spec = StudySpec.from_dict(spec_fields)
    return study_to_dict(spec.run())


class CampaignError(RuntimeError):
    """A campaign unit failed after exhausting its retries."""


def resolve_studies(
    specs: Iterable[StudySpec],
    jobs: int = 1,
    cache: Optional[Union[StudyCache, str]] = None,
    retries: int = 1,
    timeout_s: Optional[float] = None,
) -> "tuple[Dict[StudySpec, AppStudy], Dict[StudySpec, str]]":
    """Batch-resolve *specs* to studies; the cost-model entry point.

    A thin strict front over :func:`run_campaign` for callers that want
    *answers*, not a manifest: returns ``(studies, statuses)`` where
    ``statuses[spec]`` is ``"cached"`` or ``"computed"``, and raises
    :class:`CampaignError` if any unit failed -- an estimator cannot
    price a job whose study is missing.  ``jobs > 1`` fans the cold
    units out across worker processes, which is how a cluster run's
    distinct (study, chip-class) estimates resolve at wall-clock speed
    instead of serially at first use.
    """
    result = run_campaign(
        specs, jobs=jobs, cache=cache, retries=retries, timeout_s=timeout_s
    )
    result.raise_failures()
    statuses: Dict[StudySpec, str] = {}
    for record in result.manifest.records:
        spec = StudySpec.from_dict(record.spec)
        statuses[spec] = record.status
    return result.studies, statuses


@dataclass
class CampaignResult:
    """Studies plus the manifest of how each unit resolved."""

    manifest: RunManifest
    studies: "Dict[StudySpec, AppStudy]" = field(default_factory=dict)
    errors: "Dict[StudySpec, BaseException]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def study(self, spec: StudySpec) -> AppStudy:
        """The study for *spec*; raises if the unit failed or is unknown."""
        if spec in self.studies:
            return self.studies[spec]
        if spec in self.errors:
            raise CampaignError(f"unit failed: {spec.label}") from self.errors[spec]
        raise KeyError(f"spec not part of this campaign: {spec.label}")

    def raise_failures(self) -> None:
        """Raise :class:`CampaignError` if any unit failed."""
        if self.errors:
            spec, error = next(iter(self.errors.items()))
            labels = ", ".join(s.label for s in self.errors)
            raise CampaignError(
                f"{len(self.errors)} campaign unit(s) failed: {labels}"
            ) from error


@dataclass
class _Unit:
    """Mutable in-flight bookkeeping for one miss."""

    spec: StudySpec
    attempts: int = 0
    started_s: float = 0.0
    submitted_s: float = 0.0
    last_error: Optional[BaseException] = None


def run_campaign(
    specs: Iterable[StudySpec],
    jobs: int = 1,
    cache: Optional[Union[StudyCache, str]] = None,
    retries: int = 1,
    timeout_s: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    worker: Optional[WorkerFn] = None,
) -> CampaignResult:
    """Resolve every spec, in parallel when ``jobs > 1``.

    Parameters
    ----------
    specs:
        Units to resolve; duplicates are collapsed (order preserved).
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process via
        the memoized :func:`run_app_study` -- no subprocesses, identical
        results and object identity to the historical code path.
    cache:
        A :class:`StudyCache` (or a directory path for one).  Hits skip
        execution entirely; every computed unit is persisted immediately.
        ``None`` disables persistence.
    retries:
        Re-attempts after a unit's first failure (so a unit runs at most
        ``retries + 1`` times).  The last exception is recorded when
        exhausted; sibling units always continue.
    timeout_s:
        Optional per-attempt wall clock limit (parallel mode only;
        measured from dispatch to a worker).  A timed-out attempt counts
        as a failure and is retried like any other.
    progress:
        Callback receiving each unit's :class:`UnitRecord` as it
        resolves (cache hits first, then computed/failed units).
    worker:
        Override the unit worker (tests inject faults here).  Must be a
        module-level callable mapping canonical spec fields to a study
        document.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        cache = StudyCache(cache)

    ordered: List[StudySpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)

    # NB: StudyCache defines __len__, so an empty cache is falsy -- every
    # presence check here must be `is not None`.
    schema_version = (
        cache.schema_version if cache is not None else CACHE_SCHEMA_VERSION
    )
    manifest = RunManifest(
        jobs=jobs,
        cache_dir=str(cache.root) if cache is not None else None,
        schema_version=schema_version,
    )
    result = CampaignResult(manifest=manifest)
    campaign_start = time.perf_counter()
    tracer = get_tracer()

    def resolve(record: UnitRecord) -> None:
        manifest.add(record)
        if tracer.enabled:
            # One wall-clock span per unit, on a per-status track; the
            # span ends when the unit resolves and covers its wall time.
            resolved_at = time.perf_counter() - campaign_start
            tracer.span(
                record.label,
                resolved_at - record.wall_time_s,
                record.wall_time_s,
                cat="orchestrator",
                pid="campaign",
                tid=record.status,
                wall=True,
                status=record.status,
                attempts=record.attempts,
                error=record.error,
            )
        if progress is not None:
            progress(record)

    # ------------------------------------------------------------------ #
    # cache pass
    # ------------------------------------------------------------------ #
    misses: List[StudySpec] = []
    for spec in ordered:
        if cache is not None:
            t0 = time.perf_counter()
            study = cache.get(spec)
            if study is not None:
                result.studies[spec] = study
                store_study(study, **spec.run_kwargs())
                resolve(
                    UnitRecord(
                        key=spec.cache_key(schema_version),
                        label=spec.label,
                        spec=spec.to_dict(),
                        status=CACHED,
                        wall_time_s=time.perf_counter() - t0,
                    )
                )
                continue
        misses.append(spec)

    # ------------------------------------------------------------------ #
    # execution pass
    # ------------------------------------------------------------------ #
    if misses and jobs == 1:
        _run_serial(misses, result, cache, retries, worker, resolve, schema_version)
    elif misses:
        _run_parallel(
            misses, result, cache, jobs, retries, timeout_s,
            worker or compute_study_document, resolve, schema_version,
        )

    manifest.wall_time_s = time.perf_counter() - campaign_start
    return result


# ---------------------------------------------------------------------- #
# serial fallback
# ---------------------------------------------------------------------- #


def _run_serial(
    misses: List[StudySpec],
    result: CampaignResult,
    cache: Optional[StudyCache],
    retries: int,
    worker: Optional[WorkerFn],
    resolve: ProgressFn,
    schema_version: int,
) -> None:
    for spec in misses:
        start = time.perf_counter()
        attempts = 0
        last_error: Optional[BaseException] = None
        study: Optional[AppStudy] = None
        document: Optional[Dict] = None
        while attempts <= retries:
            attempts += 1
            try:
                if worker is None:
                    study = spec.run()
                else:
                    document = worker(spec.to_dict())
                    study = study_from_dict(document)
                break
            except Exception as exc:
                last_error = exc
                study = None
        elapsed = time.perf_counter() - start
        key = spec.cache_key(schema_version)
        if study is None:
            assert last_error is not None
            result.errors[spec] = last_error
            resolve(UnitRecord(
                key=key, label=spec.label, spec=spec.to_dict(), status=FAILED,
                wall_time_s=elapsed, attempts=attempts, error=repr(last_error),
            ))
            continue
        if cache is not None:
            cache.put_document(spec, document or study_to_dict(study))
        result.studies[spec] = study
        store_study(study, **spec.run_kwargs())
        resolve(UnitRecord(
            key=key, label=spec.label, spec=spec.to_dict(), status=COMPUTED,
            wall_time_s=elapsed, attempts=attempts,
        ))


# ---------------------------------------------------------------------- #
# process-pool execution
# ---------------------------------------------------------------------- #


def _run_parallel(
    misses: List[StudySpec],
    result: CampaignResult,
    cache: Optional[StudyCache],
    jobs: int,
    retries: int,
    timeout_s: Optional[float],
    worker: WorkerFn,
    resolve: ProgressFn,
    schema_version: int,
) -> None:
    queue: List[_Unit] = [_Unit(spec=spec) for spec in misses]
    queue.reverse()  # pop() from the end keeps submission order

    def finish(unit: _Unit, status: str, error: Optional[BaseException]) -> None:
        elapsed = time.perf_counter() - unit.started_s
        if error is not None:
            result.errors[unit.spec] = error
        resolve(UnitRecord(
            key=unit.spec.cache_key(schema_version),
            label=unit.spec.label,
            spec=unit.spec.to_dict(),
            status=status,
            wall_time_s=elapsed,
            attempts=unit.attempts,
            error=repr(error) if error is not None else None,
        ))

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        active: Dict[object, _Unit] = {}

        def submit(unit: _Unit) -> None:
            unit.attempts += 1
            unit.submitted_s = time.perf_counter()
            if unit.attempts == 1:
                unit.started_s = unit.submitted_s
            active[pool.submit(worker, unit.spec.to_dict())] = unit

        def retry_or_fail(unit: _Unit, exc: BaseException) -> None:
            unit.last_error = exc
            if unit.attempts <= retries:
                submit(unit)
            else:
                finish(unit, FAILED, exc)

        # Keep at most `jobs` units in flight so the per-attempt timeout
        # clock starts when a worker actually picks the unit up.
        while queue and len(active) < jobs:
            submit(queue.pop())

        while active:
            if timeout_s is None:
                done, _ = wait(active, return_when=FIRST_COMPLETED)
            else:
                done, _ = wait(
                    active, timeout=_TIMEOUT_TICK_S, return_when=FIRST_COMPLETED
                )
            for future in done:
                unit = active.pop(future)
                try:
                    document = future.result()
                except Exception as exc:
                    retry_or_fail(unit, exc)
                    continue
                try:
                    study = study_from_dict(document)
                except Exception as exc:
                    retry_or_fail(unit, exc)
                    continue
                if cache is not None:
                    cache.put_document(unit.spec, document)
                result.studies[unit.spec] = study
                store_study(study, **unit.spec.run_kwargs())
                finish(unit, COMPUTED, None)
            if timeout_s is not None:
                now = time.perf_counter()
                for future in [
                    f for f, u in active.items()
                    if now - u.submitted_s >= timeout_s
                ]:
                    unit = active.pop(future)
                    future.cancel()  # best effort; a running attempt is orphaned
                    retry_or_fail(
                        unit,
                        TimeoutError(
                            f"unit {unit.spec.label} exceeded "
                            f"{timeout_s:g}s (attempt {unit.attempts})"
                        ),
                    )
            while queue and len(active) < jobs:
                submit(queue.pop())
