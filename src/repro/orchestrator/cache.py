"""Content-addressed on-disk cache of study results.

Each cached unit is one JSON file named by the spec's
:meth:`~repro.orchestrator.spec.StudySpec.cache_key` (sharded by the
first two hex digits, git-object style), wrapping the full study
document produced by :func:`repro.core.serialization.study_to_dict`
together with the spec and schema version that produced it.  Writes are
atomic (temp file + ``os.replace``), so an interrupted campaign never
leaves a half-written entry; corrupt or stale-schema files read as
misses and are rewritten on the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.experiment import AppStudy
from repro.core.serialization import study_from_dict, study_to_dict
from repro.orchestrator.spec import CACHE_SCHEMA_VERSION, StudySpec


class StudyCache:
    """Persistent spec -> study store rooted at *root*."""

    def __init__(
        self,
        root: Union[str, Path],
        schema_version: int = CACHE_SCHEMA_VERSION,
    ):
        self.root = Path(root)
        self.schema_version = int(schema_version)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #

    def path_for(self, spec: StudySpec) -> Path:
        key = spec.cache_key(self.schema_version)
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, spec: StudySpec) -> bool:
        return self.load_document(spec) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    # ------------------------------------------------------------------ #

    def load_document(self, spec: StudySpec) -> Optional[Dict]:
        """The raw study document for *spec*, or ``None`` on a miss.

        Unreadable/corrupt entries and entries written under a different
        schema version are treated as misses.
        """
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema_version") != self.schema_version:
            return None
        return envelope.get("study")

    def get(self, spec: StudySpec) -> Optional[AppStudy]:
        """The cached study for *spec*, or ``None`` on a miss."""
        document = self.load_document(spec)
        if document is None:
            return None
        try:
            return study_from_dict(document)
        except (KeyError, TypeError, ValueError):
            return None

    def put_document(self, spec: StudySpec, document: Dict) -> Path:
        """Atomically persist a study document for *spec*."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema_version": self.schema_version,
            "key": spec.cache_key(self.schema_version),
            "spec": spec.to_dict(),
            "study": document,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def put(self, spec: StudySpec, study: AppStudy) -> Path:
        """Serialize and persist a study for *spec*."""
        return self.put_document(spec, study_to_dict(study))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink()
            removed += 1
        return removed
