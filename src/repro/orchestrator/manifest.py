"""Run manifests: the auditable record of one campaign execution.

A :class:`RunManifest` collects one :class:`UnitRecord` per study unit --
how it resolved (cache hit, computed, or failed after retries), how long
it took, and how many attempts it consumed -- plus campaign-level
settings (jobs, cache directory, schema version).  Manifests are plain
data, JSON-saveable, and render a terminal summary for long campaigns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from pathlib import Path

from repro.utils.jsonutil import to_builtin

#: Unit statuses, in the order a unit can move through them.
CACHED = "cached"
COMPUTED = "computed"
FAILED = "failed"


@dataclass
class UnitRecord:
    """Outcome of one study unit within a campaign."""

    key: str
    label: str
    spec: Dict
    status: str
    wall_time_s: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.status == CACHED

    @property
    def failed(self) -> bool:
        return self.status == FAILED

    @property
    def retries(self) -> int:
        """Re-attempts beyond the first (0 for clean units and hits)."""
        return max(0, self.attempts - 1)

    def to_dict(self) -> Dict:
        # Sweep drivers routinely build specs from numpy values
        # (np.linspace scales, np.int64 seeds); cast the whole payload to
        # builtins so manifests always serialize as plain JSON.
        return to_builtin(
            {
                "key": self.key,
                "label": self.label,
                "spec": dict(self.spec),
                "status": self.status,
                "wall_time_s": float(self.wall_time_s),
                "attempts": int(self.attempts),
                "error": self.error,
            }
        )


@dataclass
class RunManifest:
    """Everything a campaign run did, unit by unit."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    schema_version: int = 0
    wall_time_s: float = 0.0
    records: List[UnitRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #

    def add(self, record: UnitRecord) -> UnitRecord:
        self.records.append(record)
        return record

    @property
    def num_units(self) -> int:
        return len(self.records)

    @property
    def num_cached(self) -> int:
        return sum(1 for r in self.records if r.status == CACHED)

    @property
    def num_computed(self) -> int:
        return sum(1 for r in self.records if r.status == COMPUTED)

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.records if r.status == FAILED)

    @property
    def num_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def hit_rate(self) -> float:
        """Cache hits as a fraction of all units (0.0 for an empty run)."""
        if not self.records:
            return 0.0
        return self.num_cached / len(self.records)

    def failures(self) -> List[UnitRecord]:
        return [r for r in self.records if r.status == FAILED]

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        return to_builtin(
            {
                "jobs": int(self.jobs),
                "cache_dir": self.cache_dir,
                "schema_version": int(self.schema_version),
                "wall_time_s": float(self.wall_time_s),
                "summary": {
                    "units": self.num_units,
                    "cached": self.num_cached,
                    "computed": self.num_computed,
                    "failed": self.num_failed,
                    "retries": self.num_retries,
                    "hit_rate": self.hit_rate,
                },
                "records": [r.to_dict() for r in self.records],
            }
        )

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    def to_trace_events(self) -> List[Dict]:
        """Chrome trace-event (``ph="X"``) view of the campaign.

        Units are laid end to end per status track (the manifest records
        durations, not absolute starts), which is enough to eyeball where
        a campaign's wall time went in Perfetto.  A live campaign traced
        through :mod:`repro.telemetry` records the real concurrent
        timeline instead; this view exists so a saved manifest alone can
        be visualized.
        """
        tracks = {CACHED: 1, COMPUTED: 2, FAILED: 3}
        cursors = {tid: 0.0 for tid in tracks.values()}
        events: List[Dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "campaign"},
            }
        ]
        for status, tid in tracks.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": status},
                }
            )
        for record in self.records:
            tid = tracks.get(record.status, 3)
            start = cursors[tid]
            duration = max(float(record.wall_time_s), 0.0)
            cursors[tid] = start + duration
            events.append(
                {
                    "ph": "X",
                    "name": record.label,
                    "cat": "orchestrator",
                    "pid": 1,
                    "tid": tid,
                    "ts": round(start * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "args": {
                        "status": record.status,
                        "attempts": int(record.attempts),
                        "error": record.error,
                    },
                }
            )
        return events

    def save_trace(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_trace_events` as a Perfetto-loadable JSON file."""
        document = {"traceEvents": self.to_trace_events()}
        with open(path, "w") as handle:
            json.dump(
                document, handle, sort_keys=True, separators=(",", ":"),
                allow_nan=False,
            )

    def format_summary(self) -> str:
        """One-line terminal summary of the campaign."""
        parts = [
            f"{self.num_units} units",
            f"{self.num_cached} cached",
            f"{self.num_computed} computed",
        ]
        if self.num_failed:
            parts.append(f"{self.num_failed} FAILED")
        if self.num_retries:
            parts.append(f"{self.num_retries} retries")
        parts.append(f"{self.wall_time_s:.1f}s")
        return ", ".join(parts)
