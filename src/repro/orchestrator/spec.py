"""Declarative experiment units and campaign grids.

A :class:`StudySpec` names one run of the full paper pipeline --
:func:`repro.core.experiment.run_app_study` with concrete arguments --
in canonical form: app aliases are resolved, numeric fields are
normalized to builtin types, and invalid combinations are rejected at
construction time rather than minutes into a campaign.  Specs are
frozen, hashable and order-insensitively comparable, so they can key
dictionaries, de-duplicate grids and address the on-disk result cache.

:func:`expand_grid` turns a campaign description (lists of apps, scales,
seeds, ...) into the cross-product list of specs, in a deterministic
app-major order with duplicates removed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.apps.registry import canonical_app_name
from repro.core.geometry import DieGeometry
from repro.faults import FaultPlan
from repro.power.spec import PowerCapSpec, canonical_cap_json
from repro.tech.spec import TechSpec, canonical_tech_json

#: Bump whenever the serialized study document or the pipeline semantics
#: change: a new version invalidates every previously cached result.
#: v2: specs grew a ``fault_plan`` axis and study documents may carry a
#: ``faults`` impact section.
#: v3: specs grew a ``tech`` axis (technology node x core mix).
#: v4: specs grew a ``power_cap`` axis and study documents may carry a
#: ``power`` cap-impact section.
CACHE_SCHEMA_VERSION = 4

WINOC_METHODOLOGIES = ("max_wireless", "min_hop")


def _canonical_plan_json(
    plan: Union[None, str, FaultPlan]
) -> Optional[str]:
    """Normalize a fault-plan field to canonical JSON (or ``None``).

    Accepts a :class:`FaultPlan`, a JSON string (re-canonicalized through
    a round trip, so key order and whitespace never split the cache), or
    ``None``.  An empty plan collapses to ``None`` -- the same rule the
    simulator applies, so the fault-free unit has exactly one identity.
    """
    if plan is None:
        return None
    if isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    if not isinstance(plan, FaultPlan):
        raise TypeError(
            f"fault_plan must be None, JSON text or FaultPlan, got {plan!r}"
        )
    if len(plan) == 0:
        return None
    return plan.to_json()


@dataclass(frozen=True)
class StudySpec:
    """One hashable, canonicalized unit of experiment work."""

    app: str
    scale: float = 1.0
    seed: int = 7
    num_workers: int = 64
    winoc_methodology: str = "max_wireless"
    include_vfi1: bool = True
    #: Canonical JSON encoding of a :class:`repro.faults.FaultPlan`, or
    #: ``None`` for a fault-free unit.  Stored as a string so the spec
    #: stays hashable and its cache key is a pure function of builtins;
    #: construction also accepts a ``FaultPlan`` and canonicalizes it.
    fault_plan: Optional[str] = None
    #: Canonical JSON encoding of a :class:`repro.tech.TechSpec`, or
    #: ``None`` for the paper's default technology (65 nm, homogeneous
    #: out-of-order).  Same carrying convention as ``fault_plan``; the
    #: default spec collapses to ``None`` so the paper unit keeps exactly
    #: one identity.
    tech: Optional[str] = None
    #: Canonical JSON encoding of a
    #: :class:`repro.power.PowerCapSpec`, or ``None`` for an uncapped
    #: unit.  Same carrying convention as the other axes (the unbounded
    #: spec collapses to ``None``); construction also accepts a bare
    #: number as a chip-level cap in watts.
    power_cap: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "app", canonical_app_name(self.app))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "num_workers", int(self.num_workers))
        object.__setattr__(self, "include_vfi1", bool(self.include_vfi1))
        object.__setattr__(
            self, "fault_plan", _canonical_plan_json(self.fault_plan)
        )
        object.__setattr__(self, "tech", canonical_tech_json(self.tech))
        object.__setattr__(
            self, "power_cap", canonical_cap_json(self.power_cap)
        )
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale!r}")
        try:
            DieGeometry.for_cores(self.num_workers)
        except ValueError as exc:
            raise ValueError(
                f"num_workers {self.num_workers!r} does not resolve to a "
                f"die geometry: {exc}"
            ) from None
        if self.winoc_methodology not in WINOC_METHODOLOGIES:
            raise ValueError(
                f"winoc_methodology must be one of {WINOC_METHODOLOGIES}, "
                f"got {self.winoc_methodology!r}"
            )

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        """Canonical field mapping, in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict) -> "StudySpec":
        return cls(**data)

    def run_kwargs(self) -> Dict:
        """Keyword arguments for :func:`repro.core.experiment.run_app_study`."""
        kwargs = self.to_dict()
        kwargs["app_name"] = kwargs.pop("app")
        if kwargs["fault_plan"] is not None:
            kwargs["fault_plan"] = FaultPlan.from_json(kwargs["fault_plan"])
        if kwargs["tech"] is not None:
            kwargs["tech"] = TechSpec.from_json(kwargs["tech"])
        if kwargs["power_cap"] is not None:
            kwargs["power_cap"] = PowerCapSpec.from_json(kwargs["power_cap"])
        return kwargs

    def plan(self) -> Optional[FaultPlan]:
        """The decoded fault plan, or ``None`` for a fault-free unit."""
        if self.fault_plan is None:
            return None
        return FaultPlan.from_json(self.fault_plan)

    def tech_spec(self) -> Optional[TechSpec]:
        """The decoded tech spec, or ``None`` for the paper default."""
        if self.tech is None:
            return None
        return TechSpec.from_json(self.tech)

    def cap(self) -> Optional[PowerCapSpec]:
        """The decoded power cap, or ``None`` for an uncapped unit."""
        if self.power_cap is None:
            return None
        return PowerCapSpec.from_json(self.power_cap)

    def cache_key(self, schema_version: int = CACHE_SCHEMA_VERSION) -> str:
        """Stable content address of this spec.

        The key is a SHA-256 over the canonical JSON encoding of the
        fields plus the cache schema version.  ``json.dumps`` renders
        floats via ``repr``, which round-trips exactly, so the same spec
        hashes identically in every process and on every platform; any
        field change or schema bump yields a different key.
        """
        payload = {"schema_version": int(schema_version), "spec": self.to_dict()}
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines/manifests."""
        parts = [
            self.app,
            f"scale={self.scale:g}",
            f"seed={self.seed}",
            f"workers={self.num_workers}",
        ]
        if self.winoc_methodology != "max_wireless":
            parts.append(self.winoc_methodology)
        if not self.include_vfi1:
            parts.append("no-vfi1")
        if self.fault_plan is not None:
            plan = self.plan()
            name = plan.name or "plan"
            parts.append(f"faults={name}({len(plan)})")
        if self.tech is not None:
            parts.append(f"tech={self.tech_spec().label}")
        if self.power_cap is not None:
            parts.append(f"cap={self.cap().label}")
        return " ".join(parts)

    def run(self):
        """Execute this unit in-process (memoized per process)."""
        from repro.core.experiment import run_app_study

        return run_app_study(**self.run_kwargs())


def expand_grid(
    apps: Sequence[str],
    scales: Iterable[float] = (1.0,),
    seeds: Iterable[int] = (7,),
    num_workers: Iterable[int] = (64,),
    winoc_methodologies: Iterable[str] = ("max_wireless",),
    include_vfi1: Iterable[bool] = (True,),
    fault_plans: Iterable[Union[None, str, FaultPlan]] = (None,),
    tech: Iterable[Union[None, str, TechSpec]] = (None,),
    power_caps: Iterable[Union[None, str, float, PowerCapSpec]] = (None,),
) -> List[StudySpec]:
    """Cross-product a campaign grid into de-duplicated specs.

    The expansion order is deterministic and app-major (all variations of
    the first app, then the second, ...), matching how the paper's
    figures group their series.  Canonicalization happens inside
    :class:`StudySpec`, so ``("hist", "histogram")`` collapses to one unit.
    The ``fault_plans`` axis is the resilience sweep: pairing ``(None,
    plan)`` runs every configuration clean and degraded, which is how the
    degradation report gets its baseline.  The ``tech`` axis sweeps
    technology configurations (node x core mix); ``None`` entries are
    the paper's 65 nm homogeneous default.  The ``power_caps`` axis
    sweeps runtime power budgets (``None`` = uncapped; bare numbers are
    chip-level caps in watts), which is how cap-sweep frontiers pair
    every capped unit with its uncapped baseline.
    """
    if not apps:
        raise ValueError("apps must be non-empty")
    specs: List[StudySpec] = []
    seen = set()
    for combo in itertools.product(
        apps, scales, seeds, num_workers, winoc_methodologies,
        include_vfi1, fault_plans, tech, power_caps,
    ):
        spec = StudySpec(*combo)
        if spec not in seen:
            seen.add(spec)
            specs.append(spec)
    return specs
