"""Parallel experiment orchestration with a persistent result cache.

Every figure, table, sweep and benchmark funnels through
:func:`repro.core.experiment.run_app_study`; the units are independent
(one app at one scale/seed/size is one trace-driven pipeline run), so a
campaign is embarrassingly parallel.  This package supplies the
scaffolding:

* :mod:`~repro.orchestrator.spec` -- declarative, hashable, canonical
  :class:`StudySpec` units and :func:`expand_grid` campaign grids;
* :mod:`~repro.orchestrator.cache` -- a content-addressed on-disk
  :class:`StudyCache` of full study documents, keyed by a stable hash of
  the spec plus a schema version;
* :mod:`~repro.orchestrator.executor` -- :func:`run_campaign`: process
  fan-out with per-unit timeout, bounded retries, cache-first resolution
  and a graceful in-process serial fallback for ``jobs=1``;
* :mod:`~repro.orchestrator.manifest` -- :class:`RunManifest` /
  :class:`UnitRecord` audit records (wall time, hit/miss, retries,
  failures) for every campaign run.

Quick start::

    from repro.orchestrator import StudySpec, expand_grid, run_campaign

    specs = expand_grid(apps=["histogram", "kmeans"], seeds=range(7, 12))
    campaign = run_campaign(specs, jobs=4, cache=".study_cache")
    campaign.raise_failures()
    print(campaign.manifest.format_summary())
"""

from repro.orchestrator.cache import StudyCache
from repro.orchestrator.executor import (
    CampaignError,
    CampaignResult,
    compute_study_document,
    run_campaign,
)
from repro.orchestrator.manifest import RunManifest, UnitRecord
from repro.orchestrator.spec import (
    CACHE_SCHEMA_VERSION,
    StudySpec,
    expand_grid,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignError",
    "CampaignResult",
    "RunManifest",
    "StudyCache",
    "StudySpec",
    "UnitRecord",
    "compute_study_document",
    "expand_grid",
    "run_campaign",
]
