"""The six Phoenix++ benchmark applications evaluated in the paper.

Each application is a real, functionally correct MapReduce job (it computes
word counts, histograms, k-means centroids, a regression fit, a matrix
product, a covariance matrix) over a *synthetic* dataset generated with the
paper's shape parameters (Table 1), plus an :class:`AppProfile` describing
the architectural characteristics the paper calls out per app (traffic
locality, iteration count, merge behaviour).
"""

from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.histogram import HistogramApp
from repro.apps.kmeans import KmeansApp
from repro.apps.linear_regression import LinearRegressionApp
from repro.apps.matrix_multiply import MatrixMultiplyApp
from repro.apps.pca import PcaApp
from repro.apps.registry import APP_NAMES, create_app, paper_dataset_table
from repro.apps.wordcount import WordCountApp

__all__ = [
    "AppProfile",
    "BenchmarkApp",
    "WordCountApp",
    "HistogramApp",
    "KmeansApp",
    "LinearRegressionApp",
    "MatrixMultiplyApp",
    "PcaApp",
    "APP_NAMES",
    "create_app",
    "paper_dataset_table",
]
