"""Matrix Multiplication: C = A x B over dense square matrices.

Paper Table 1: "Matrix with dimension 999 x 999".  Phoenix++'s MM maps
over row blocks of A (each task computes full output rows), with the
output matrix as the value space.  Map work per task is perfectly uniform,
so core utilization is nearly homogeneous apart from the master core's
library-initialization work (output allocation) -- which is why MM is one
of the three applications needing the VFI 2 V/F reassignment (Sec. 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import ArrayContainer, Container
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import chunk_indices

PROFILE = AppProfile(
    name="matrix_multiply",
    label="MM",
    paper_dataset="Matrix with dimension 999 x 999",
    iterations=1,
    l2_locality=0.2,
    has_merge=True,
    lib_init_weight=1.2,
    wall_shares=PhaseShares(lib_init=0.07, map=0.80, reduce=0.05, merge=0.08),
)


class RowCombiner(Combiner):
    """Keeps the single computed row vector (each row is emitted once)."""

    def identity(self):
        return None

    def add(self, acc, value):
        if acc is not None:
            raise ValueError("matrix row emitted twice")
        return value

    def merge(self, acc, other):
        if acc is not None and other is not None:
            raise ValueError("matrix row computed by two workers")
        return other if acc is None else acc

    def finalize(self, acc):
        if acc is None:
            raise ValueError("row never computed")
        return acc


class MatrixMultiplyJob(MapReduceJob):
    """MapReduce job computing C = A x B by row blocks."""

    name = "matrix_multiply"

    def __init__(self, a: np.ndarray, b: np.ndarray, config: JobConfig):
        super().__init__(config)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        self.a = a
        self.b = b

    def split(self, num_tasks: int) -> List[Tuple[int, int]]:
        return [tuple(r) for r in chunk_indices(self.a.shape[0], num_tasks)]

    def map(self, chunk: Tuple[int, int], emit: Emit) -> float:
        row_lo, row_hi = chunk
        block = self.a[row_lo:row_hi] @ self.b
        for offset, row in enumerate(block):
            emit(row_lo + offset, tuple(row))
        # One multiply-add per (row, col, k) triple; expressed in units of
        # 8 MACs to keep work numbers in the same range as the other apps.
        return (row_hi - row_lo) * self.a.shape[1] * self.b.shape[1] / 8.0

    def combiner(self) -> RowCombiner:
        return RowCombiner()

    def make_container(self) -> Container:
        return ArrayContainer(self.combiner(), self.a.shape[0])

    def final_result(self, last_result: Dict[int, tuple]) -> np.ndarray:
        rows = self.a.shape[0]
        output = np.zeros((rows, self.b.shape[1]))
        for row, values in last_result.items():
            output[row] = values
        return output


class MatrixMultiplyApp(BenchmarkApp):
    """Dense matrix product over synthetic random matrices."""

    profile = PROFILE

    BASE_DIMENSION = 128
    PAPER_DIMENSION = 999

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        # Keep the row count a multiple of the task count so every map
        # task computes the same number of rows (homogeneous utilization).
        self.dimension = max(64, (int(self.BASE_DIMENSION * scale) // 64) * 64)
        self._a = datasets.dense_matrix(
            self.dimension, self.dimension, seed=self.component_seed("a")
        )
        self._b = datasets.dense_matrix(
            self.dimension, self.dimension, seed=self.component_seed("b")
        )

    def make_job(self) -> MatrixMultiplyJob:
        # MAC-count ratio between the paper's 999^3 and our functional run.
        volume_ratio = (self.PAPER_DIMENSION / self.dimension) ** 3
        config = JobConfig(
            instructions_per_map_unit=40.0,
            instructions_per_reduce_pair=300.0,
            instructions_per_merge_byte=2.5,
            bytes_per_pair=float(self.dimension * 8 + 8),
            l1_mpki=4.5,
            l2_mpki=0.45,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=volume_ratio,
            # One row block per core: Phoenix++ MM divides rows evenly.
            tasks_per_worker=2.0,
        )
        return MatrixMultiplyJob(self._a, self._b, config)

    def verify_result(self, result: np.ndarray) -> None:
        expected = self._a @ self._b
        assert result.shape == expected.shape
        assert np.allclose(result, expected, atol=1e-9), (
            "matrix product diverges from numpy reference"
        )
