"""Phase-share calibration of job traces.

Running the benchmarks on *scaled-down* functional datasets distorts the
relative weight of the execution phases: map work typically shrinks
super-linearly (O(N^3) for MM/PCA) while merge and library-init work shrink
more slowly (O(N^2) or O(1)).  The architectural study, however, depends on
the paper's measured per-phase profile (Fig. 7): map-dominated execution
with app-specific library-init and merge weights.

:func:`rebalance_trace` restores the paper-shape profile: it computes the
*idealized wall time* each phase would take on a balanced machine at
nominal frequency (serial library init, parallel map/reduce, funnel
critical-path merge) and uniformly rescales every task cost within a phase
so the phase shares match the application's target
(:class:`PhaseShares`).  Crucially the scaling is uniform *within* each
phase, so all within-phase heterogeneity -- k-means convergence imbalance,
Zipf reduce skew, the merge funnel's geometry -- is preserved exactly.

This mirrors how trace-driven simulators are calibrated against measured
CPI stacks, and is recorded as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mapreduce.tasks import Phase
from repro.mapreduce.trace import (
    IterationTrace,
    JobTrace,
    MergeStageTrace,
    PhaseTrace,
    TaskRecord,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PhaseShares:
    """Target wall-time fractions per phase (nominal frequency, NVFI).

    Shares must be non-negative; they are normalized internally so they
    only encode proportions.
    """

    lib_init: float
    map: float
    reduce: float
    merge: float

    def __post_init__(self) -> None:
        for name in ("lib_init", "map", "reduce", "merge"):
            check_positive(name, getattr(self, name), allow_zero=True)
        if self.total <= 0:
            raise ValueError("phase shares must not all be zero")

    @property
    def total(self) -> float:
        return self.lib_init + self.map + self.reduce + self.merge

    def normalized(self) -> Dict[Phase, float]:
        total = self.total
        return {
            Phase.LIB_INIT: self.lib_init / total,
            Phase.MAP: self.map / total,
            Phase.REDUCE: self.reduce / total,
            Phase.MERGE: self.merge / total,
        }


def idealized_phase_walls(trace: JobTrace) -> Dict[Phase, float]:
    """Idealized wall 'time' (instruction units) per phase.

    * library init is serial on the master core;
    * map is treated as perfectly parallel over all workers (task
      stealing keeps it balanced);
    * reduce runs one task per worker after a barrier, so its wall is the
      *largest* reduce task (for a one-key job like Linear Regression
      that is the single task itself);
    * merge wall is the funnel critical path (the largest task per stage,
      summed over stages).
    """
    workers = trace.num_workers
    walls = {Phase.LIB_INIT: 0.0, Phase.MAP: 0.0, Phase.REDUCE: 0.0, Phase.MERGE: 0.0}
    for iteration in trace.iterations:
        walls[Phase.LIB_INIT] += iteration.lib_init.cost.instructions
        walls[Phase.MAP] += iteration.map_phase.total_cost.instructions / workers
        if iteration.reduce_phase.tasks:
            walls[Phase.REDUCE] += max(
                task.cost.instructions for task in iteration.reduce_phase.tasks
            )
        for stage in iteration.merge_stages:
            if stage.tasks:
                walls[Phase.MERGE] += max(
                    task.cost.instructions for task in stage.tasks
                )
    return walls


def rebalance_trace(trace: JobTrace, shares: PhaseShares) -> JobTrace:
    """Rescale per-phase task costs so idealized walls match *shares*.

    The total idealized wall time of the trace is preserved; only the split
    between phases changes.  Phases that are absent from the trace (e.g.
    Merge for Linear Regression) must carry a zero target share.
    """
    walls = idealized_phase_walls(trace)
    targets = shares.normalized()
    total_wall = sum(walls.values())
    if total_wall <= 0:
        raise ValueError("trace has no work to rebalance")

    factors: Dict[Phase, float] = {}
    for phase, wall in walls.items():
        target_wall = targets[phase] * total_wall
        if wall <= 0:
            if target_wall > 0:
                raise ValueError(
                    f"target share for {phase} is {targets[phase]:.3f} but the "
                    "trace has no work in that phase"
                )
            factors[phase] = 1.0
        else:
            factors[phase] = target_wall / wall

    rebalanced_iterations = []
    for iteration in trace.iterations:
        rebalanced_iterations.append(
            IterationTrace(
                iteration=iteration.iteration,
                lib_init=_scale(iteration.lib_init, factors[Phase.LIB_INIT]),
                map_phase=PhaseTrace(
                    Phase.MAP,
                    [_scale(r, factors[Phase.MAP]) for r in iteration.map_phase.tasks],
                ),
                reduce_phase=PhaseTrace(
                    Phase.REDUCE,
                    [
                        _scale(r, factors[Phase.REDUCE])
                        for r in iteration.reduce_phase.tasks
                    ],
                ),
                merge_stages=[
                    MergeStageTrace(
                        stage_index=stage.stage_index,
                        tasks=[_scale(r, factors[Phase.MERGE]) for r in stage.tasks],
                    )
                    for stage in iteration.merge_stages
                ],
            )
        )
    return JobTrace(
        app_name=trace.app_name,
        num_workers=trace.num_workers,
        iterations=rebalanced_iterations,
        output_bytes=trace.output_bytes,
    )


def _scale(record: TaskRecord, factor: float) -> TaskRecord:
    return TaskRecord(
        task_id=record.task_id,
        phase=record.phase,
        cost=record.cost.scaled(factor),
        home_worker=record.home_worker,
        input_bytes_by_worker={
            worker: nbytes * factor
            for worker, nbytes in record.input_bytes_by_worker.items()
        },
        partner_worker=record.partner_worker,
    )
