"""Application registry: build benchmark apps by name.

The canonical iteration order matches the paper's Table 1.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.apps.base import BenchmarkApp
from repro.apps.histogram import HistogramApp
from repro.apps.kmeans import KmeansApp
from repro.apps.linear_regression import LinearRegressionApp
from repro.apps.matrix_multiply import MatrixMultiplyApp
from repro.apps.pca import PcaApp
from repro.apps.string_match import StringMatchApp
from repro.apps.wordcount import WordCountApp

_REGISTRY: Dict[str, Type[BenchmarkApp]] = {
    "matrix_multiply": MatrixMultiplyApp,
    "kmeans": KmeansApp,
    "pca": PcaApp,
    "histogram": HistogramApp,
    "wordcount": WordCountApp,
    "linear_regression": LinearRegressionApp,
}

#: Applications beyond the paper's six (reachable via create_app but not
#: part of the Table 1 canon).
_EXTRA: Dict[str, Type[BenchmarkApp]] = {
    "string_match": StringMatchApp,
}

_ALIASES: Dict[str, str] = {
    "sm": "string_match",
    "mm": "matrix_multiply",
    "wc": "wordcount",
    "hist": "histogram",
    "lr": "linear_regression",
    "km": "kmeans",
}

#: Canonical names in the paper's Table 1 order.
APP_NAMES: List[str] = list(_REGISTRY)


def canonical_app_name(name: str) -> str:
    """Resolve an app name or short alias to its canonical name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY and key not in _EXTRA:
        raise KeyError(
            f"unknown app {name!r}; known: "
            f"{sorted(_REGISTRY) + sorted(_EXTRA) + sorted(_ALIASES)}"
        )
    return key


def create_app(name: str, scale: float = 1.0, seed: int = 7) -> BenchmarkApp:
    """Instantiate a benchmark app by canonical name or short alias."""
    key = canonical_app_name(name)
    if key in _EXTRA:
        return _EXTRA[key](scale=scale, seed=seed)
    return _REGISTRY[key](scale=scale, seed=seed)


def paper_dataset_table() -> List[dict]:
    """Rows of the paper's Table 1 (application, input dataset size)."""
    rows = []
    for name in APP_NAMES:
        profile = _REGISTRY[name].profile
        rows.append(
            {
                "application": profile.label,
                "name": name,
                "input_dataset": profile.paper_dataset,
                "iterations": profile.iterations,
            }
        )
    return rows
