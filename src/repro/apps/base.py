"""Base classes for benchmark applications.

A :class:`BenchmarkApp` bundles a synthetic dataset, the MapReduce job that
processes it, and an :class:`AppProfile` carrying the per-application
architectural characteristics that the paper relies on (Secs. 4.2 and 7.3):
traffic locality, iteration count, merge behaviour, library-init weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.apps.calibration import PhaseShares, rebalance_trace
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import run_job
from repro.mapreduce.scheduler import StealingPolicy
from repro.mapreduce.trace import JobTrace
from repro.utils.rng import spawn_seed
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class AppProfile:
    """Architectural character of an application.

    Attributes
    ----------
    name:
        Canonical short name (``wordcount``, ``histogram``, ``kmeans``,
        ``linear_regression``, ``matrix_multiply``, ``pca``).
    label:
        Paper label (WC, HIST, Kmeans, LR, MM, PCA).
    paper_dataset:
        The paper's Table 1 dataset description.
    iterations:
        MapReduce iterations (2 for Kmeans and PCA, else 1).
    l2_locality:
        Fraction of L2 accesses served by the local / nearby bank rather
        than the address-interleaved uniform S-NUCA distribution.  LR is
        the most local ("exchanges large data units with nearer cores");
        WC and Kmeans are the least (distant-core key traffic).
    has_merge:
        Whether the app has a Merge phase (LR does not).
    lib_init_weight:
        Relative weight of the serial library-init period (PCA/HIST/MM
        "have notable library initialization periods"; LR has "very
        little").
    wall_shares:
        Target idealized wall-time split between phases on the baseline
        NVFI system, used by :func:`repro.apps.calibration.rebalance_trace`
        to undo the phase distortion of functional scale-down (Fig. 7
        profile shapes).
    """

    name: str
    label: str
    paper_dataset: str
    iterations: int
    l2_locality: float
    has_merge: bool
    lib_init_weight: float
    wall_shares: PhaseShares

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations)
        check_in_range("l2_locality", self.l2_locality, 0.0, 1.0)
        check_positive("lib_init_weight", self.lib_init_weight, allow_zero=True)


class BenchmarkApp:
    """One benchmark application: dataset + job factory + profile.

    Parameters
    ----------
    scale:
        Functional dataset scale in (0, 1]; 1.0 is the library default
        size (already reduced from the paper's multi-hundred-MB inputs --
        the job's ``trace_scale`` re-inflates the recorded costs so that
        normalized results are unchanged; see DESIGN.md).
    seed:
        Top-level seed; per-component streams are derived from it.
    """

    profile: AppProfile

    def __init__(self, scale: float = 1.0, seed: int = 7):
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale!r}")
        self.scale = scale
        self.seed = int(seed)

    # ------------------------------------------------------------------ #

    def make_job(self) -> MapReduceJob:
        """Build a fresh job instance over a freshly generated dataset."""
        raise NotImplementedError

    def verify_result(self, result: Any) -> None:
        """Check functional correctness; raise ``AssertionError`` if wrong."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #

    def run(
        self,
        num_workers: int = 64,
        policy: Optional[StealingPolicy] = None,
        calibrate: bool = True,
    ) -> JobTrace:
        """Run the app functionally, verify the answer, return the trace.

        With ``calibrate`` (default) the trace is phase-share rebalanced to
        the application's paper profile; see
        :mod:`repro.apps.calibration`.
        """
        job = self.make_job()
        result, trace = run_job(job, num_workers, policy=policy)
        self.verify_result(result)
        if calibrate:
            trace = rebalance_trace(trace, self.profile.wall_shares)
        return trace

    def component_seed(self, *labels: str) -> int:
        """Deterministic child seed for a named component of this app."""
        return spawn_seed(self.seed, self.profile.name, *labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(scale={self.scale}, seed={self.seed})"
