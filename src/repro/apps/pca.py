"""PCA: row means and covariance matrix of a dense matrix.

Paper Table 1: "Matrix with dimension 960 x 960".  The Phoenix++ PCA
computes the principal-component inputs in *two* MapReduce iterations
(paper Sec. 7: "Kmeans and PCA have two MapReduce iterations"):

1. iteration 0 maps over row blocks and produces each row's mean;
2. iteration 1 maps over (i, j) row-pair blocks and produces the
   covariance entries cov(i, j) for i <= j.

Iteration 1 emits one key per matrix-pair -- thousands of keys -- which is
why the paper singles out PCA's "long Merge period" (Sec. 4.2) and why it
has the strongest bottleneck-core effect (Fig. 5): the merge funnel keeps
ever-fewer cores busy on a large sorted key space.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import Container, HashContainer
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import chunk_indices

PROFILE = AppProfile(
    name="pca",
    label="PCA",
    paper_dataset="Matrix with dimension 960 x 960",
    iterations=2,
    l2_locality=0.2,
    has_merge=True,
    lib_init_weight=1.0,
    wall_shares=PhaseShares(lib_init=0.14, map=0.50, reduce=0.10, merge=0.26),
)


class ValueCombiner(Combiner):
    """Keeps the single computed statistic (each key emitted exactly once)."""

    def identity(self):
        return None

    def add(self, acc, value):
        if acc is not None:
            raise ValueError("PCA statistic emitted twice for one key")
        return value

    def merge(self, acc, other):
        if acc is not None and other is not None:
            raise ValueError("PCA statistic computed by two workers")
        return other if acc is None else acc

    def finalize(self, acc):
        if acc is None:
            raise ValueError("statistic never computed")
        return acc


class PcaJob(MapReduceJob):
    """Two-iteration PCA job: row means then covariance entries."""

    name = "pca"

    def __init__(self, matrix: np.ndarray, config: JobConfig):
        super().__init__(config)
        self.matrix = matrix
        self.row_means: Dict[int, float] = {}
        self._iteration = 0
        rows = matrix.shape[0]
        self._pairs: List[Tuple[int, int]] = [
            (i, j) for i in range(rows) for j in range(i, rows)
        ]

    def max_iterations(self) -> int:
        return 2

    def begin_iteration(self, iteration: int) -> bool:
        self._iteration = iteration
        return True

    def split(self, num_tasks: int) -> List[Tuple[str, int, int]]:
        if self._iteration == 0:
            ranges = chunk_indices(self.matrix.shape[0], num_tasks)
            return [("rows", lo, hi) for lo, hi in ranges]
        ranges = chunk_indices(len(self._pairs), num_tasks)
        return [("pairs", lo, hi) for lo, hi in ranges]

    def map(self, chunk: Tuple[str, int, int], emit: Emit) -> float:
        kind, lo, hi = chunk
        cols = self.matrix.shape[1]
        if kind == "rows":
            block = self.matrix[lo:hi]
            means = block.mean(axis=1)
            for offset, mean in enumerate(means):
                emit(("mean", lo + offset), float(mean))
            return (hi - lo) * cols / 8.0
        centered = self.matrix - np.array(
            [self.row_means[i] for i in range(self.matrix.shape[0])]
        ).reshape(-1, 1)
        for i, j in self._pairs[lo:hi]:
            cov = float(np.dot(centered[i], centered[j]) / (cols - 1))
            emit(("cov", i, j), cov)
        return (hi - lo) * cols / 8.0

    def combiner(self) -> ValueCombiner:
        return ValueCombiner()

    def make_container(self) -> Container:
        return HashContainer(self.combiner())

    def end_iteration(self, iteration: int, result: Dict[Hashable, float]) -> None:
        if iteration == 0:
            self.row_means = {key[1]: value for key, value in result.items()}
            if len(self.row_means) != self.matrix.shape[0]:
                raise RuntimeError(
                    f"iteration 0 produced {len(self.row_means)} means "
                    f"for {self.matrix.shape[0]} rows"
                )

    def final_result(self, last_result: Dict[Hashable, float]) -> np.ndarray:
        rows = self.matrix.shape[0]
        covariance = np.zeros((rows, rows))
        for key, value in last_result.items():
            _, i, j = key
            covariance[i, j] = value
            covariance[j, i] = value
        return covariance


class PcaApp(BenchmarkApp):
    """PCA (covariance computation) over a synthetic low-rank matrix."""

    profile = PROFILE

    BASE_DIMENSION = 64
    PAPER_DIMENSION = 960

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.dimension = max(24, int(self.BASE_DIMENSION * scale))
        self._matrix = datasets.correlated_matrix(
            self.dimension, self.dimension, seed=self.component_seed("matrix")
        )

    def make_job(self) -> PcaJob:
        # Covariance work scales ~ N^3/2; use the MAC-volume ratio to reach
        # paper scale.
        volume_ratio = (self.PAPER_DIMENSION / self.dimension) ** 3
        config = JobConfig(
            instructions_per_map_unit=60.0,
            instructions_per_reduce_pair=250.0,
            instructions_per_merge_byte=6.0,
            bytes_per_pair=20.0,
            l1_mpki=1.6,
            l2_mpki=0.35,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=volume_ratio,
            tasks_per_worker=3.0,
        )
        return PcaJob(self._matrix, config)

    def verify_result(self, result: np.ndarray) -> None:
        centered = self._matrix - self._matrix.mean(axis=1, keepdims=True)
        expected = centered @ centered.T / (self._matrix.shape[1] - 1)
        assert result.shape == expected.shape
        assert np.allclose(result, expected, atol=1e-9), (
            "covariance matrix diverges from numpy reference"
        )
