"""Synthetic dataset generators.

The paper evaluates on real inputs (Table 1: a 100 MB text for Word Count,
a 399 MB image for Histogram, ...).  Those inputs are not available here,
so each generator synthesizes data with the same *statistical shape*:

* text with a Zipf word-frequency distribution (natural-language-like key
  skew for Word Count);
* 8-bit pixel arrays with a mixture-of-Gaussians intensity profile
  (Histogram);
* clustered points laid out contiguously by cluster (Kmeans -- contiguity
  makes map chunks cluster-correlated, which is what produces the paper's
  heterogeneous second-iteration utilization);
* noisy linear samples (Linear Regression);
* dense random matrices (Matrix Multiplication, PCA).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


def zipf_text(
    num_words: int,
    vocabulary_size: int = 5000,
    zipf_exponent: float = 1.2,
    num_segments: int = 1,
    exponent_range: tuple = (1.05, 2.2),
    seed: SeedLike = None,
) -> List[str]:
    """Generate *num_words* word tokens with a Zipf frequency distribution.

    With ``num_segments > 1`` the text is a sequence of segments whose
    Zipf exponents are drawn from *exponent_range* -- modeling document
    structure (boilerplate and repeated headers are low-entropy, prose is
    high-entropy).  Map chunks over such a text differ genuinely in
    working-set size, which is what makes Word Count's core utilization
    non-homogeneous in the paper.

    Word lengths grow slowly with rank (rare words tend to be longer in
    natural text), so per-chunk processing work also varies with content.
    """
    check_positive("num_words", num_words)
    check_positive("vocabulary_size", vocabulary_size)
    check_positive("num_segments", num_segments)
    if zipf_exponent <= 1.0:
        raise ValueError(f"zipf_exponent must be > 1, got {zipf_exponent}")
    rng = derive_rng(seed)
    vocabulary = [_word_for_rank(rank) for rank in range(vocabulary_size)]
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    if num_segments <= 1:
        exponents = [zipf_exponent]
        lengths = [num_words]
    else:
        exponents = rng.uniform(*exponent_range, size=num_segments)
        weights = rng.dirichlet(np.full(num_segments, 3.0))
        lengths = np.maximum(1, (weights * num_words).astype(int))
    words: List[str] = []
    for exponent, length in zip(exponents, lengths):
        probabilities = ranks ** -float(exponent)
        probabilities /= probabilities.sum()
        indices = rng.choice(vocabulary_size, size=int(length), p=probabilities)
        words.extend(vocabulary[index] for index in indices)
    return words[:num_words] if len(words) >= num_words else words


def _word_for_rank(rank: int) -> str:
    """Deterministic pseudo-word for a vocabulary rank (base-26 digits)."""
    letters = []
    value = rank
    while True:
        letters.append(chr(ord("a") + value % 26))
        value //= 26
        if value == 0:
            break
    # Longer suffix for rarer words mimics natural length/rank correlation.
    suffix = "x" * min(6, rank // 700)
    return "".join(reversed(letters)) + suffix


def pixel_image(
    num_pixels: int,
    num_modes: int = 3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate *num_pixels* 8-bit intensities from a Gaussian mixture."""
    check_positive("num_pixels", num_pixels)
    check_positive("num_modes", num_modes)
    rng = derive_rng(seed)
    means = rng.uniform(30, 225, size=num_modes)
    sigmas = rng.uniform(10, 40, size=num_modes)
    modes = rng.integers(0, num_modes, size=num_pixels)
    values = rng.normal(means[modes], sigmas[modes])
    return np.clip(values, 0, 255).astype(np.uint8)


def clustered_points(
    num_points: int,
    dimension: int,
    num_clusters: int,
    spread: float = 0.08,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate clustered points, contiguous by cluster.

    Returns ``(points, true_assignment)``.  Cluster sizes are drawn from a
    Dirichlet distribution so they are intentionally unequal -- the paper's
    Kmeans shows highly non-homogeneous core utilization precisely because
    work concentrates as clusters converge.
    """
    check_positive("num_points", num_points)
    check_positive("dimension", dimension)
    check_positive("num_clusters", num_clusters)
    rng = derive_rng(seed)
    weights = rng.dirichlet(np.full(num_clusters, 2.0))
    sizes = np.maximum(1, (weights * num_points).astype(int))
    # Adjust so sizes sum exactly to num_points.
    while sizes.sum() > num_points:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < num_points:
        sizes[int(np.argmin(sizes))] += 1
    centers = rng.uniform(-1.0, 1.0, size=(num_clusters, dimension))
    chunks = []
    labels = []
    for cluster, size in enumerate(sizes):
        chunks.append(
            centers[cluster] + rng.normal(0.0, spread, size=(size, dimension))
        )
        labels.append(np.full(size, cluster))
    return np.vstack(chunks), np.concatenate(labels)


def linear_samples(
    num_samples: int,
    slope: float = 2.5,
    intercept: float = -1.0,
    noise: float = 0.3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate (x, y) samples of ``y = slope*x + intercept + noise``."""
    check_positive("num_samples", num_samples)
    rng = derive_rng(seed)
    x = rng.uniform(-10.0, 10.0, size=num_samples)
    y = slope * x + intercept + rng.normal(0.0, noise, size=num_samples)
    return np.column_stack([x, y])


def dense_matrix(
    rows: int,
    cols: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate a dense float matrix with entries in [-1, 1]."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    rng = derive_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(rows, cols))


def correlated_matrix(
    rows: int,
    cols: int,
    rank: int = 8,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate a low-rank-plus-noise matrix (gives PCA non-trivial spectra)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_positive("rank", rank)
    rng = derive_rng(seed)
    left = rng.normal(0.0, 1.0, size=(rows, rank))
    right = rng.normal(0.0, 1.0, size=(rank, cols))
    return left @ right + rng.normal(0.0, noise, size=(rows, cols))
