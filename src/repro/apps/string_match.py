"""String Match: count occurrences of fixed search keys in a text.

Part of the original Phoenix benchmark suite (Yoo et al., IISWC'09); the
DAC'15 paper evaluates six of the Phoenix++ applications, and we include
String Match as a seventh to demonstrate the library is not limited to
the paper's set.  Map scans its text chunk for each of a handful of
search keys and emits per-key hit counts; the key space is tiny, so an
array container with a sum combiner suffices and the Reduce/Merge phases
are featherweight -- architecturally, String Match behaves like a more
compute-bound Histogram.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import ArrayContainer, Container
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import split_evenly

PROFILE = AppProfile(
    name="string_match",
    label="SM",
    paper_dataset="(beyond paper) Large text, 4 search keys",
    iterations=1,
    l2_locality=0.35,
    has_merge=True,
    lib_init_weight=0.3,
    wall_shares=PhaseShares(lib_init=0.04, map=0.9, reduce=0.05, merge=0.01),
)

#: Fixed search keys, as in the original Phoenix string_match.
SEARCH_KEYS = ("helloworld", "howareyou", "ferrari", "whotheman")


class StringMatchJob(MapReduceJob):
    """MapReduce job counting occurrences of each search key."""

    name = "string_match"

    def __init__(self, words: List[str], config: JobConfig):
        super().__init__(config)
        self.words = words
        self._keys = {key: index for index, key in enumerate(SEARCH_KEYS)}

    def split(self, num_tasks: int) -> List[List[str]]:
        return split_evenly(self.words, num_tasks)

    def map(self, chunk: List[str], emit: Emit) -> float:
        hits = [0] * len(SEARCH_KEYS)
        work = 0.0
        for word in chunk:
            # the scan compares against every key (Phoenix's brute match)
            work += len(SEARCH_KEYS) * (1.0 + 0.1 * len(word))
            index = self._keys.get(word)
            if index is not None:
                hits[index] += 1
        for index, count in enumerate(hits):
            if count:
                emit(index, float(count))
        return work

    def combiner(self) -> SumCombiner:
        return SumCombiner()

    def make_container(self) -> Container:
        return ArrayContainer(self.combiner(), len(SEARCH_KEYS))


class StringMatchApp(BenchmarkApp):
    """String Match over a synthetic text salted with the search keys."""

    profile = PROFILE

    BASE_NUM_WORDS = 60_000
    PAPER_EQUIVALENT_WORDS = 1.7e7
    #: One word in KEY_PERIOD is replaced by a (cycling) search key.
    KEY_PERIOD = 97

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.num_words = max(1000, int(self.BASE_NUM_WORDS * scale))
        words = datasets.zipf_text(
            self.num_words, vocabulary_size=4000, seed=self.component_seed("text")
        )
        for position in range(0, len(words), self.KEY_PERIOD):
            words[position] = SEARCH_KEYS[
                (position // self.KEY_PERIOD) % len(SEARCH_KEYS)
            ]
        self._words = words

    def make_job(self) -> StringMatchJob:
        config = JobConfig(
            instructions_per_map_unit=30.0,
            instructions_per_reduce_pair=150.0,
            instructions_per_merge_byte=3.0,
            bytes_per_pair=12.0,
            l1_mpki=4.0,
            l2_mpki=0.4,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=self.PAPER_EQUIVALENT_WORDS / self.num_words,
            tasks_per_worker=3.0,
        )
        return StringMatchJob(self._words, config)

    def verify_result(self, result: Dict[int, float]) -> None:
        for index, key in enumerate(SEARCH_KEYS):
            expected = self._words.count(key)
            got = result.get(index, 0.0)
            assert got == expected, (
                f"key {key!r}: got {got}, want {expected}"
            )
