"""Linear Regression: least-squares fit of y = a*x + b over point samples.

Paper Table 1: "Medium (100 MB)".  Phoenix++ implements LR with a single
global accumulator of sufficient statistics (n, Sx, Sy, Sxx, Syy, Sxy) --
a one-bucket container -- so there is exactly one key, a trivial Reduce,
and *no Merge phase*; the paper also notes LR "has very little library
initialization period" (Sec. 4.2) and the highest traffic injection rate
with near-core-heavy communication (Sec. 7.3), which is why its profile
carries the highest ``l2_locality``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import Container, OneBucketContainer
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import split_evenly

PROFILE = AppProfile(
    name="linear_regression",
    label="LR",
    paper_dataset="Medium (100 MB)",
    iterations=1,
    l2_locality=0.5,
    has_merge=False,
    lib_init_weight=0.05,
    wall_shares=PhaseShares(lib_init=0.02, map=0.95, reduce=0.03, merge=0.0),
)

Stats = Tuple[float, float, float, float, float, float]


class StatsCombiner(Combiner):
    """Sums (n, Sx, Sy, Sxx, Syy, Sxy) sufficient-statistic tuples."""

    def identity(self) -> Stats:
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def add(self, acc: Stats, value: Stats) -> Stats:
        return tuple(a + v for a, v in zip(acc, value))

    def merge(self, acc: Stats, other: Stats) -> Stats:
        return tuple(a + o for a, o in zip(acc, other))


def fit_from_stats(stats: Stats) -> Tuple[float, float]:
    """Closed-form least-squares (slope, intercept) from sufficient stats."""
    n, sx, sy, sxx, _syy, sxy = stats
    if n <= 1:
        raise ValueError(f"need at least 2 samples, have {n}")
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate sample: all x identical")
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    return slope, intercept


class LinearRegressionJob(MapReduceJob):
    """MapReduce job accumulating regression sufficient statistics."""

    name = "linear_regression"

    def __init__(self, samples: np.ndarray, config: JobConfig):
        super().__init__(config)
        self.samples = samples

    def split(self, num_tasks: int) -> List[np.ndarray]:
        return split_evenly(self.samples, num_tasks)

    def map(self, chunk: np.ndarray, emit: Emit) -> float:
        x, y = chunk[:, 0], chunk[:, 1]
        emit(
            0,
            (
                float(len(chunk)),
                float(x.sum()),
                float(y.sum()),
                float((x * x).sum()),
                float((y * y).sum()),
                float((x * y).sum()),
            ),
        )
        return float(len(chunk))

    def combiner(self) -> StatsCombiner:
        return StatsCombiner()

    def make_container(self) -> Container:
        return OneBucketContainer(self.combiner())

    def merge_enabled(self) -> bool:
        return False

    def final_result(self, last_result: Dict[Hashable, Stats]) -> Tuple[float, float]:
        return fit_from_stats(last_result[0])


class LinearRegressionApp(BenchmarkApp):
    """Least-squares fit over synthetic noisy linear samples."""

    profile = PROFILE

    BASE_NUM_SAMPLES = 120_000
    #: 100 MB of (x, y) sample records ~ 6.5e6 samples (16 B each).
    PAPER_EQUIVALENT_SAMPLES = 6.5e6
    TRUE_SLOPE = 2.5
    TRUE_INTERCEPT = -1.0

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.num_samples = max(5_000, int(self.BASE_NUM_SAMPLES * scale))
        self._samples = datasets.linear_samples(
            self.num_samples,
            slope=self.TRUE_SLOPE,
            intercept=self.TRUE_INTERCEPT,
            seed=self.component_seed("samples"),
        )

    def make_job(self) -> LinearRegressionJob:
        config = JobConfig(
            instructions_per_map_unit=25.0,
            instructions_per_reduce_pair=200.0,
            instructions_per_merge_byte=3.0,
            bytes_per_pair=48.0,
            # Highest memory-traffic intensity of the six apps (paper:
            # "LR has the greatest core interaction rate").
            l1_mpki=9.5,
            l2_mpki=0.8,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=self.PAPER_EQUIVALENT_SAMPLES / self.num_samples,
            # 100 MB at LR's finer record granularity -> ~288 map tasks (the
            # odd half-task per worker is what splits LR's cores into the
            # two utilization levels behind Table 2's 1.0/0.9 islands).
            tasks_per_worker=4.5,
        )
        return LinearRegressionJob(self._samples, config)

    def verify_result(self, result: Tuple[float, float]) -> None:
        slope, intercept = result
        x, y = self._samples[:, 0], self._samples[:, 1]
        design = np.column_stack([x, np.ones_like(x)])
        expected, *_ = np.linalg.lstsq(design, y, rcond=None)
        assert abs(slope - expected[0]) < 1e-6, (
            f"slope {slope} != reference {expected[0]}"
        )
        assert abs(intercept - expected[1]) < 1e-6, (
            f"intercept {intercept} != reference {expected[1]}"
        )
