"""Histogram: per-intensity pixel counts over an image (paper Table 1:
"Medium (399 MB)").

Phoenix++ implements histogram with a fixed 256-entry array container --
the key space is the 8-bit intensity.  Map work is perfectly uniform per
pixel, which is why the paper finds HIST's core utilization "nearly
homogeneous" apart from the master bottleneck (Sec. 4.2) and why it needs
the V/F reassignment of VFI 2.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import ArrayContainer, Container
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import split_evenly

PROFILE = AppProfile(
    name="histogram",
    label="HIST",
    paper_dataset="Medium (399 MB)",
    iterations=1,
    l2_locality=0.2,
    has_merge=True,
    lib_init_weight=1.6,
    wall_shares=PhaseShares(lib_init=0.08, map=0.83, reduce=0.07, merge=0.02),
)

NUM_BINS = 256


class HistogramJob(MapReduceJob):
    """MapReduce job building a 256-bin intensity histogram."""

    name = "histogram"

    def __init__(self, pixels: np.ndarray, config: JobConfig):
        super().__init__(config)
        self.pixels = pixels

    def split(self, num_tasks: int) -> List[np.ndarray]:
        return split_evenly(self.pixels, num_tasks)

    def map(self, chunk: np.ndarray, emit: Emit) -> float:
        # Vectorized per-chunk binning; emission per occupied bin with the
        # bin's count keeps the functional engine fast while the *work*
        # charged reflects the true per-pixel cost.
        counts = np.bincount(chunk, minlength=NUM_BINS)
        for bin_index in np.nonzero(counts)[0]:
            emit(int(bin_index), float(counts[bin_index]))
        return float(chunk.size)

    def combiner(self) -> SumCombiner:
        return SumCombiner()

    def make_container(self) -> Container:
        return ArrayContainer(self.combiner(), NUM_BINS)


class HistogramApp(BenchmarkApp):
    """Histogram over a synthetic mixture-of-Gaussians image."""

    profile = PROFILE

    BASE_NUM_PIXELS = 400_000
    #: 399 MB of RGB pixels ~ 4.2e8 byte-channels (paper dataset).
    PAPER_EQUIVALENT_PIXELS = 4.2e8

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.num_pixels = max(10_000, int(self.BASE_NUM_PIXELS * scale))
        self._pixels = datasets.pixel_image(
            self.num_pixels, seed=self.component_seed("image")
        )

    def make_job(self) -> HistogramJob:
        config = JobConfig(
            instructions_per_map_unit=18.0,
            instructions_per_reduce_pair=150.0,
            instructions_per_merge_byte=3.0,
            bytes_per_pair=12.0,
            l1_mpki=4.8,
            l2_mpki=0.5,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=self.PAPER_EQUIVALENT_PIXELS / self.num_pixels,
            # 399 MB at Phoenix++ chunk granularity -> ~400 map tasks.
            tasks_per_worker=6.0,
        )
        return HistogramJob(self._pixels, config)

    def verify_result(self, result: Dict[int, float]) -> None:
        reference = np.bincount(self._pixels, minlength=NUM_BINS)
        for bin_index, count in result.items():
            assert count == reference[bin_index], (
                f"bin {bin_index}: got {count}, want {reference[bin_index]}"
            )
        assert sum(result.values()) == self.num_pixels
