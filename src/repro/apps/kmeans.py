"""Kmeans: iterative clustering of high-dimensional vectors.

Paper Table 1: "Vectors with dimension of 512"; paper Sec. 4.2: Kmeans runs
*two* MapReduce iterations on the studied dataset and shows highly
non-homogeneous core utilization because "fewer cores are expected to be
more active in the second MapReduce stage as the data partitioned in
various groups start to achieve convergence".

The mechanism is reproduced faithfully:

* points are generated contiguously by cluster with unequal cluster sizes
  and per-cluster spreads, so map chunks are cluster-correlated;
* the second iteration applies distance-bound pruning (Elkan-style): a
  point whose assigned centroid barely moved costs a fraction of the full
  K x dim distance computation;
* clusters converge at different rates, so second-iteration map work
  varies strongly across chunks -- and therefore across cores.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import Container, HashContainer
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob

PROFILE = AppProfile(
    name="kmeans",
    label="Kmeans",
    paper_dataset="Vectors with dimension of 512",
    iterations=2,
    l2_locality=0.1,
    has_merge=True,
    lib_init_weight=0.5,
    wall_shares=PhaseShares(lib_init=0.07, map=0.82, reduce=0.08, merge=0.03),
)

#: Relative cost of a pruned (converged-cluster) point in iteration 2.
PRUNED_WORK_FRACTION = 0.02
#: Iteration-2 cost multiplier for points of unconverged clusters:
#: boundary points thrash between moving centroids, forcing full distance
#: sweeps plus reassignment work.
UNCONVERGED_WORK_FACTOR = 2.5
#: Miss-intensity weights: unconverged clusters sweep all centroids with
#: poor cache reuse; converged clusters run out of the pruning cache.
UNCONVERGED_MISS_WEIGHT = 1.6
CONVERGED_MISS_WEIGHT = 0.35
#: Centroid movement below this threshold marks a cluster as converged
#: (relative to the unit-scale synthetic point cloud).
CONVERGENCE_TOL = 0.25


class CentroidCombiner(Combiner):
    """Accumulates (vector_sum, count) pairs for centroid computation."""

    def identity(self) -> Tuple[float, int]:
        return (0.0, 0)

    def add(self, acc, value):
        return (acc[0] + value[0], acc[1] + value[1])

    def merge(self, acc, other):
        return (acc[0] + other[0], acc[1] + other[1])

    def finalize(self, acc):
        vector_sum, count = acc
        if count == 0:
            raise ValueError("empty centroid accumulator")
        return tuple(np.asarray(vector_sum, dtype=float) / count)


class KmeansJob(MapReduceJob):
    """Two-iteration k-means as a MapReduce job.

    Each map task assigns its points to the nearest current centroid and
    emits per-cluster partial sums; Reduce averages them into the new
    centroids; ``end_iteration`` installs the new centroids and records
    which clusters converged (driving the iteration-2 pruning).
    """

    name = "kmeans"

    def __init__(
        self,
        points: np.ndarray,
        num_clusters: int,
        initial_centroids: np.ndarray,
        config: JobConfig,
    ):
        super().__init__(config)
        self.points = points
        self.num_clusters = num_clusters
        self.centroids = np.array(initial_centroids, dtype=float)
        if self.centroids.shape != (num_clusters, points.shape[1]):
            raise ValueError(
                f"initial centroids shape {self.centroids.shape} does not "
                f"match ({num_clusters}, {points.shape[1]})"
            )
        self.cluster_converged = np.zeros(num_clusters, dtype=bool)
        self.centroid_history: List[np.ndarray] = [self.centroids.copy()]
        self._iteration = 0

    def max_iterations(self) -> int:
        return 2

    def begin_iteration(self, iteration: int) -> bool:
        self._iteration = iteration
        return True

    def split(self, num_tasks: int) -> List[np.ndarray]:
        from repro.mapreduce.splitter import split_evenly

        return split_evenly(self.points, num_tasks)

    def map(self, chunk: np.ndarray, emit: Emit) -> float:
        distances = np.linalg.norm(
            chunk[:, None, :] - self.centroids[None, :, :], axis=2
        )
        assignment = np.argmin(distances, axis=1)
        dimension = chunk.shape[1]
        full_cost = float(self.num_clusters * dimension) / 8.0
        work = 0.0
        converged_points = 0
        for cluster in np.unique(assignment):
            members = chunk[assignment == cluster]
            emit(int(cluster), (members.sum(axis=0), len(members)))
            if self._iteration > 0 and self.cluster_converged[cluster]:
                work += len(members) * full_cost * PRUNED_WORK_FRACTION
                converged_points += len(members)
            elif self._iteration > 0:
                work += len(members) * full_cost * UNCONVERGED_WORK_FACTOR
            else:
                work += len(members) * full_cost
        # Unconverged clusters walk the full centroid set with poor reuse
        # (high miss intensity); converged ones hit the pruning cache.
        converged_share = converged_points / len(chunk)
        miss_weight = CONVERGED_MISS_WEIGHT * converged_share + (
            UNCONVERGED_MISS_WEIGHT * (1.0 - converged_share)
        )
        if self._iteration == 0:
            miss_weight = 1.0
        return work, miss_weight

    def combiner(self) -> CentroidCombiner:
        return CentroidCombiner()

    def make_container(self) -> Container:
        return HashContainer(self.combiner())

    def end_iteration(self, iteration: int, result: Dict[Hashable, tuple]) -> None:
        new_centroids = self.centroids.copy()
        for cluster, centroid in result.items():
            new_centroids[cluster] = np.asarray(centroid, dtype=float)
        movement = np.linalg.norm(new_centroids - self.centroids, axis=1)
        self.cluster_converged = movement < CONVERGENCE_TOL
        self.centroids = new_centroids
        self.centroid_history.append(new_centroids.copy())

    def final_result(self, last_result: Dict[Hashable, tuple]) -> np.ndarray:
        return self.centroids


class KmeansApp(BenchmarkApp):
    """K-means over contiguously clustered synthetic vectors."""

    profile = PROFILE

    BASE_NUM_POINTS = 4096
    BASE_DIMENSION = 32
    NUM_CLUSTERS = 16
    #: Paper-equivalent volume: dimension-512 vectors, ~64k of them.
    PAPER_EQUIVALENT_UNITS = 65536 * 512

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.num_points = max(512, int(self.BASE_NUM_POINTS * scale))
        self.dimension = self.BASE_DIMENSION
        rng_seed = self.component_seed("points")
        self._points, self._true_labels = datasets.clustered_points(
            self.num_points,
            self.dimension,
            self.NUM_CLUSTERS,
            seed=rng_seed,
        )
        # Vary per-cluster tightness so convergence rates differ (this is
        # what makes iteration-2 work non-homogeneous; see module docstring).
        rng = np.random.default_rng(self.component_seed("spread"))
        for cluster in range(self.NUM_CLUSTERS):
            mask = self._true_labels == cluster
            center = self._points[mask].mean(axis=0)
            factor = rng.uniform(0.3, 4.0)
            self._points[mask] = center + (self._points[mask] - center) * factor
        self._initial_centroids = self._choose_initial_centroids()

    def _choose_initial_centroids(self) -> np.ndarray:
        """k-means++-style seeding: one sample point per true cluster.

        Good seeding makes most clusters converge after one Lloyd step --
        the paper's premise that "the data partitioned in various groups
        start to achieve convergence" in the second iteration, leaving
        only the loose/overlapping clusters active.
        """
        rng = np.random.default_rng(self.component_seed("init"))
        centroids = np.empty((self.NUM_CLUSTERS, self.dimension))
        for cluster in range(self.NUM_CLUSTERS):
            members = np.nonzero(self._true_labels == cluster)[0]
            sample_size = max(5, len(members) // 4)
            sample = rng.choice(members, size=min(sample_size, len(members)), replace=False)
            centroids[cluster] = self._points[sample].mean(axis=0)
        return centroids + rng.normal(
            0.0, 1e-3, size=(self.NUM_CLUSTERS, self.dimension)
        )

    def make_job(self) -> KmeansJob:
        config = JobConfig(
            instructions_per_map_unit=110.0,
            instructions_per_reduce_pair=900.0,
            instructions_per_merge_byte=2.0,
            bytes_per_pair=float(self.dimension * 8 + 16),
            l1_mpki=10.0,
            l2_mpki=0.9,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=self.PAPER_EQUIVALENT_UNITS
            / float(self.num_points * self.dimension),
            tasks_per_worker=3.0,
        )
        return KmeansJob(
            self._points, self.NUM_CLUSTERS, self._initial_centroids, config
        )

    def verify_result(self, result: np.ndarray) -> None:
        expected = self._reference_centroids()
        assert result.shape == expected.shape, (
            f"centroid shape {result.shape} != {expected.shape}"
        )
        assert np.allclose(
            np.sort(result, axis=0), np.sort(expected, axis=0), atol=1e-8
        ), "k-means centroids diverge from the reference implementation"

    def _reference_centroids(self) -> np.ndarray:
        """Plain-numpy two-iteration Lloyd reference."""
        centroids = self._initial_centroids.copy()
        for _ in range(2):
            distances = np.linalg.norm(
                self._points[:, None, :] - centroids[None, :, :], axis=2
            )
            assignment = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.NUM_CLUSTERS):
                members = self._points[assignment == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
            centroids = new_centroids
        return centroids
