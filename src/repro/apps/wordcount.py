"""Word Count: count occurrences of each unique word (paper Sec. 3.1).

Keys are words, values are counts.  The paper's workload is a 100 MB text
("Large"); the Phoenix++ scheduler creates 100 map tasks for it on 64
cores, which is the configuration its Sec. 4.3 task-stealing case study
analyzes -- we reproduce the 100-task decomposition exactly.

Architectural character (paper Sec. 7.3): high key cardinality, heavy
distant-core key/value traffic (low ``l2_locality``), non-homogeneous core
utilization, no V/F reassignment needed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import datasets
from repro.apps.base import AppProfile, BenchmarkApp
from repro.apps.calibration import PhaseShares
from repro.mapreduce.containers import Container, HashContainer
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import Emit, JobConfig, MapReduceJob
from repro.mapreduce.splitter import split_evenly

PROFILE = AppProfile(
    name="wordcount",
    label="WC",
    paper_dataset="Large (100 MB)",
    iterations=1,
    l2_locality=0.1,
    has_merge=True,
    lib_init_weight=0.4,
    wall_shares=PhaseShares(lib_init=0.04, map=0.72, reduce=0.16, merge=0.08),
)


class WordCountJob(MapReduceJob):
    """MapReduce job counting word occurrences."""

    name = "wordcount"

    def __init__(self, words: List[str], config: JobConfig):
        super().__init__(config)
        self.words = words

    def split(self, num_tasks: int) -> List[List[str]]:
        return split_evenly(self.words, num_tasks)

    def map(self, chunk: List[str], emit: Emit) -> float:
        work = 0.0
        for word in chunk:
            emit(word, 1)
            # Tokenising/hashing cost grows with word length, so chunk work
            # depends on content, not just element count.
            work += 1.0 + 0.25 * len(word)
        # Chunks dominated by a few hot words run out of a tiny working
        # set (low miss intensity); rare-word-heavy chunks walk cold hash
        # buckets.  This is the content-dependent IPC heterogeneity that
        # makes WC's core utilization non-homogeneous (paper Sec. 4.2).
        unique_ratio = len(set(chunk)) / max(len(chunk), 1)
        miss_weight = 0.25 + 4.0 * unique_ratio
        return work, miss_weight

    def combiner(self) -> SumCombiner:
        return SumCombiner()

    def make_container(self) -> Container:
        return HashContainer(self.combiner())


class WordCountApp(BenchmarkApp):
    """Word Count over a synthetic Zipf-distributed text."""

    profile = PROFILE

    #: Functional token count at scale=1.0; trace_scale re-inflates costs
    #: to the paper's 100 MB (~1.7e7 words) equivalent.
    BASE_NUM_WORDS = 60_000
    PAPER_EQUIVALENT_WORDS = 1.7e7

    def __init__(self, scale: float = 1.0, seed: int = 7):
        super().__init__(scale, seed)
        self.num_words = max(1000, int(self.BASE_NUM_WORDS * scale))
        self._words = datasets.zipf_text(
            self.num_words,
            vocabulary_size=5000,
            num_segments=40,
            seed=self.component_seed("text"),
        )

    def make_job(self) -> WordCountJob:
        config = JobConfig(
            instructions_per_map_unit=90.0,
            instructions_per_reduce_pair=260.0,
            instructions_per_merge_byte=5.0,
            bytes_per_pair=24.0,
            l1_mpki=7.5,
            l2_mpki=0.75,
            lib_init_instructions=PROFILE.lib_init_weight * 5.0e6,
            trace_scale=self.PAPER_EQUIVALENT_WORDS / self.num_words,
            # Phoenix++ creates 100 map tasks for the 100 MB input on 64
            # cores (paper Sec. 4.3).
            tasks_per_worker=100.0 / 64.0,
        )
        return WordCountJob(self._words, config)

    def verify_result(self, result: Dict[str, float]) -> None:
        reference: Dict[str, int] = {}
        for word in self._words:
            reference[word] = reference.get(word, 0) + 1
        assert len(result) == len(reference), (
            f"word count key mismatch: {len(result)} != {len(reference)}"
        )
        for word, count in reference.items():
            assert result[word] == count, (
                f"count for {word!r}: got {result[word]}, want {count}"
            )
