"""Parameter sweeps: seeds (robustness) and system sizes (scalability).

The paper reports single-configuration numbers; a reproduction should
also show that its conclusions are not artifacts of one random seed or
of the 64-core size.  These helpers run the full pipeline across seeds
or die sizes and aggregate the normalized metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    run_app_study,
)

CONFIGS = (VFI1_MESH, VFI2_MESH, VFI2_WINOC)


@dataclass
class SweepResult:
    """Normalized metrics per (parameter value, configuration)."""

    parameter: str
    #: rows[value][config] = {"time": t, "edp": e}
    rows: Dict[object, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def aggregate(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """Per-config (mean, std) over the swept values, per metric."""
        out: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for config in CONFIGS:
            metrics: Dict[str, Tuple[float, float]] = {}
            for metric in ("time", "edp"):
                values = [
                    row[config][metric]
                    for row in self.rows.values()
                    if config in row
                ]
                if values:
                    metrics[metric] = (
                        float(np.mean(values)),
                        float(np.std(values)),
                    )
            out[config] = metrics
        return out

    def spread(self, config: str, metric: str) -> float:
        """Max minus min of a metric across the sweep (stability check)."""
        values = [
            row[config][metric] for row in self.rows.values() if config in row
        ]
        if not values:
            raise KeyError(f"no data for {config}/{metric}")
        return max(values) - min(values)


def seed_sweep(
    app_name: str,
    seeds: Sequence[int],
    scale: float = 1.0,
    num_workers: int = 64,
) -> SweepResult:
    """Run the pipeline for several seeds (dataset + SA randomness)."""
    if not seeds:
        raise ValueError("seeds must be non-empty")
    result = SweepResult(parameter="seed")
    for seed in seeds:
        study = run_app_study(
            app_name, scale=scale, seed=seed, num_workers=num_workers
        )
        result.rows[seed] = {
            config: {
                "time": study.normalized_time(config),
                "edp": study.normalized_edp(config),
            }
            for config in CONFIGS
        }
    return result


def size_sweep(
    app_name: str,
    sizes: Iterable[int] = (16, 36, 64),
    scale: float = 1.0,
    seed: int = 7,
) -> SweepResult:
    """Run the pipeline at several (square) system sizes."""
    result = SweepResult(parameter="num_workers")
    for size in sizes:
        study = run_app_study(
            app_name, scale=scale, seed=seed, num_workers=size
        )
        result.rows[size] = {
            config: {
                "time": study.normalized_time(config),
                "edp": study.normalized_edp(config),
            }
            for config in CONFIGS
        }
    return result
