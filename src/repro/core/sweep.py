"""Parameter sweeps: seeds (robustness) and system sizes (scalability).

The paper reports single-configuration numbers; a reproduction should
also show that its conclusions are not artifacts of one random seed or
of the 64-core size.  These helpers run the full pipeline across seeds
or die sizes and aggregate the normalized metrics.

Sweeps are campaigns of independent units, so they route through
:func:`repro.orchestrator.run_campaign`: pass ``jobs`` to fan the points
out across processes and ``cache_dir`` to reuse results across
invocations.  The defaults (``jobs=1``, no cache) reproduce the
historical serial behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
)
from repro.orchestrator import StudySpec, run_campaign

CONFIGS = (VFI1_MESH, VFI2_MESH, VFI2_WINOC)


@dataclass
class SweepResult:
    """Normalized metrics per (parameter value, configuration)."""

    parameter: str
    #: rows[value][config] = {"time": t, "edp": e}
    rows: Dict[object, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: The campaign's :class:`repro.orchestrator.manifest.RunManifest`.
    manifest: Optional[object] = None

    def aggregate(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """Per-config (mean, std) over the swept values, per metric."""
        out: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for config in CONFIGS:
            metrics: Dict[str, Tuple[float, float]] = {}
            for metric in ("time", "edp"):
                values = [
                    row[config][metric]
                    for row in self.rows.values()
                    if config in row
                ]
                if values:
                    metrics[metric] = (
                        float(np.mean(values)),
                        float(np.std(values)),
                    )
            out[config] = metrics
        return out

    def spread(self, config: str, metric: str) -> float:
        """Max minus min of a metric across the sweep (stability check)."""
        values = [
            row[config][metric] for row in self.rows.values() if config in row
        ]
        if not values:
            raise KeyError(f"no data for {config}/{metric}")
        return max(values) - min(values)


def _sweep_campaign(
    parameter: str,
    specs: "Dict[object, StudySpec]",
    jobs: int,
    cache_dir: Optional[str],
    progress: Optional[Callable] = None,
) -> SweepResult:
    """Resolve one spec per swept value and tabulate normalized metrics."""
    campaign = run_campaign(
        specs.values(), jobs=jobs, cache=cache_dir, progress=progress
    )
    campaign.raise_failures()
    result = SweepResult(parameter=parameter, manifest=campaign.manifest)
    for value, spec in specs.items():
        study = campaign.study(spec)
        result.rows[value] = {
            config: {
                "time": study.normalized_time(config),
                "edp": study.normalized_edp(config),
            }
            for config in CONFIGS
        }
    return result


def seed_sweep(
    app_name: str,
    seeds: Sequence[int],
    scale: float = 1.0,
    num_workers: int = 64,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable] = None,
) -> SweepResult:
    """Run the pipeline for several seeds (dataset + SA randomness)."""
    if not seeds:
        raise ValueError("seeds must be non-empty")
    specs = {
        seed: StudySpec(
            app=app_name, scale=scale, seed=seed, num_workers=num_workers
        )
        for seed in seeds
    }
    return _sweep_campaign("seed", specs, jobs, cache_dir, progress)


def size_sweep(
    app_name: str,
    sizes: Iterable[int] = (16, 36, 64),
    scale: float = 1.0,
    seed: int = 7,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable] = None,
) -> SweepResult:
    """Run the pipeline at several (square) system sizes."""
    specs = {
        size: StudySpec(
            app=app_name, scale=scale, seed=seed, num_workers=size
        )
        for size in sizes
    }
    return _sweep_campaign("num_workers", specs, jobs, cache_dir, progress)
