"""End-to-end experiment orchestration.

:func:`run_app_study` takes one benchmark application through the entire
paper pipeline:

1. run the app functionally -> verified result + calibrated trace;
2. simulate the **NVFI mesh** baseline -> utilization profile + traffic;
3. run the Fig. 3 design flow -> clustering, VFI 1, VFI 2, Eq. (3) policy;
4. simulate **VFI 1 mesh**, **VFI 2 mesh** and **VFI 2 WiNoC**
   (either placement methodology) on the same trace.

Studies are memoized per (app, scale, seed, ...) because several paper
figures slice the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.base import BenchmarkApp
from repro.apps.registry import create_app
from repro.core.design_flow import VfiDesign, design_vfi, structural_bottleneck_workers
from repro.core.platforms import (
    build_nvfi_mesh,
    build_vfi_mesh,
    build_vfi_winoc,
    die_for,
)
from repro.core.traffic import total_node_traffic
from repro.faults import FaultPlan, ResiliencePolicy
from repro.mapreduce.trace import JobTrace
from repro.power.spec import PowerCapSpec, normalize_cap
from repro.sim.config import SimulationParams
from repro.sim.stats import SimulationResult
from repro.sim.system import simulate
from repro.tech.spec import TechSpec, normalize_tech
from repro.telemetry import get_tracer
from repro.utils.rng import spawn_seed


def _normalize_fault_plan(fault_plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Empty plans are indistinguishable from no plan anywhere: results,
    memo keys and cache keys all collapse to the fault-free study."""
    if fault_plan is not None and len(fault_plan) == 0:
        return None
    return fault_plan

#: Canonical configuration keys, in presentation order.
NVFI_MESH = "nvfi_mesh"
VFI1_MESH = "vfi1_mesh"
VFI2_MESH = "vfi2_mesh"
VFI2_WINOC = "vfi2_winoc"


@dataclass
class AppStudy:
    """All simulation outputs for one application."""

    app: BenchmarkApp
    trace: JobTrace
    design: VfiDesign
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.app.profile.label

    def result(self, config: str) -> SimulationResult:
        if config not in self.results:
            raise KeyError(
                f"config {config!r} not simulated; have {sorted(self.results)}"
            )
        return self.results[config]

    def normalized_time(self, config: str, baseline: str = NVFI_MESH) -> float:
        """Execution time relative to the NVFI mesh (paper Figs. 4a, 7)."""
        return (
            self.result(config).total_time_s / self.result(baseline).total_time_s
        )

    def normalized_edp(self, config: str, baseline: str = NVFI_MESH) -> float:
        """Full-system EDP relative to the NVFI mesh (Figs. 4b, 8)."""
        return self.result(config).edp / self.result(baseline).edp

    def phase_share(self, config: str) -> Dict[str, float]:
        """Wall-time share per phase for one configuration."""
        result = self.result(config)
        breakdown = result.phase_breakdown()
        return {
            str(phase): duration / result.total_time_s
            for phase, duration in breakdown.items()
        }


_STUDY_CACHE: Dict[Tuple, AppStudy] = {}


def run_app_study(
    app_name: str,
    scale: float = 1.0,
    seed: int = 7,
    num_workers: int = 64,
    winoc_methodology: str = "max_wireless",
    include_vfi1: bool = True,
    use_cache: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
    tech: Optional[TechSpec] = None,
    power_cap: Optional[PowerCapSpec] = None,
) -> AppStudy:
    """Run the full paper pipeline for one application (memoized).

    When a *fault_plan* is given, every stored configuration is simulated
    under it (the same plan stresses all four systems), while the design
    flow still consumes a clean NVFI characterization: V/F islands are a
    design-time decision, faults are a runtime condition.

    *tech* selects a technology configuration (node, scaling variant,
    per-island core mix; see :class:`repro.tech.TechSpec`).  The paper's
    65 nm homogeneous out-of-order default normalizes to ``None`` and
    takes the exact legacy code path.

    *power_cap* is a runtime power budget enforced by the cap governor
    in every stored configuration; like faults, it is a runtime
    condition, so the design flow still sees the clean NVFI
    characterization.  The unbounded spec normalizes to ``None``.
    """
    fault_plan = _normalize_fault_plan(fault_plan)
    plan_key = fault_plan.to_json() if fault_plan is not None else None
    tech = normalize_tech(tech)
    tech_key = tech.to_json() if tech is not None else None
    power_cap = normalize_cap(power_cap)
    cap_key = power_cap.to_json() if power_cap is not None else None
    key = (
        app_name, scale, seed, num_workers, winoc_methodology, include_vfi1,
        plan_key, tech_key, cap_key,
    )
    if use_cache and key in _STUDY_CACHE:
        return _STUDY_CACHE[key]

    sim_params = SimulationParams(
        fault_plan=fault_plan, resilience=resilience, power_cap=power_cap
    )
    tracer = get_tracer()
    app = create_app(app_name, scale=scale, seed=seed)
    locality = app.profile.l2_locality
    with tracer.wall_span(
        "study.app_run", cat="study", pid="pipeline", app=app_name, seed=seed,
    ):
        trace = app.run(num_workers=num_workers)
    geometry = die_for(num_workers)

    # 1. NVFI-mesh characterization (always fault-free: it feeds the
    #    design flow).  With a fault plan, a second, degraded NVFI run is
    #    what gets stored and compared.
    nvfi = build_nvfi_mesh(geometry, tech=tech)
    with tracer.wall_span(
        "study.sim_nvfi", cat="study", pid="pipeline", app=app_name,
    ):
        nvfi_result = simulate(nvfi, trace, locality=locality)

    # 2. Design flow (Fig. 3) from the measured profile.
    traffic = total_node_traffic(trace, locality)
    with tracer.wall_span(
        "study.design", cat="study", pid="pipeline", app=app_name,
    ):
        design_kwargs = {}
        if tech is not None:
            design_kwargs["ladder"] = tech.ladder()
        design = design_vfi(
            utilization=nvfi_result.utilization,
            traffic=traffic,
            num_islands=geometry.num_islands,
            seed=spawn_seed(seed, app_name, "clustering"),
            structural_workers=structural_bottleneck_workers(trace),
            **design_kwargs,
        )

    results: Dict[str, SimulationResult] = {}
    if fault_plan is None and power_cap is None:
        results[NVFI_MESH] = nvfi_result
    else:
        with tracer.wall_span(
            "study.sim_nvfi_faulted", cat="study", pid="pipeline", app=app_name,
        ):
            results[NVFI_MESH] = simulate(
                nvfi, trace, locality=locality, params=sim_params
            )

    # 3. VFI mesh systems (Eq. 3 stealing active).
    map_seed = spawn_seed(seed, app_name, "mapping")
    if include_vfi1:
        vfi1_platform = build_vfi_mesh(
            design, "vfi1", geometry=geometry, seed=map_seed, tech=tech
        )
        with tracer.wall_span(
            "study.sim_vfi1_mesh", cat="study", pid="pipeline", app=app_name,
        ):
            results[VFI1_MESH] = simulate(
                vfi1_platform,
                trace,
                locality=locality,
                stealing_policy=design.stealing_policy("vfi1"),
                params=sim_params,
            )
    vfi2_platform = build_vfi_mesh(
        design, "vfi2", geometry=geometry, seed=map_seed, tech=tech
    )
    with tracer.wall_span(
        "study.sim_vfi2_mesh", cat="study", pid="pipeline", app=app_name,
    ):
        results[VFI2_MESH] = simulate(
            vfi2_platform,
            trace,
            locality=locality,
            stealing_policy=design.stealing_policy("vfi2"),
            params=sim_params,
        )

    # 4. VFI WiNoC (wireless routing calibrated to the offered load).
    rate_bps = traffic * 8.0 / nvfi_result.total_time_s
    winoc_platform = build_vfi_winoc(
        design,
        "vfi2",
        methodology=winoc_methodology,
        geometry=geometry,
        seed=spawn_seed(seed, app_name, "winoc"),
        traffic_rate_bps=rate_bps,
        tech=tech,
    )
    with tracer.wall_span(
        "study.sim_vfi2_winoc", cat="study", pid="pipeline", app=app_name,
    ):
        results[VFI2_WINOC] = simulate(
            winoc_platform,
            trace,
            locality=locality,
            stealing_policy=design.stealing_policy("vfi2"),
            params=sim_params,
        )

    study = AppStudy(app=app, trace=trace, design=design, results=results)
    if use_cache:
        _STUDY_CACHE[key] = study
    return study


def clear_study_cache() -> None:
    _STUDY_CACHE.clear()


def store_study(
    study: AppStudy,
    app_name: str,
    scale: float = 1.0,
    seed: int = 7,
    num_workers: int = 64,
    winoc_methodology: str = "max_wireless",
    include_vfi1: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    tech: Optional[TechSpec] = None,
    power_cap: Optional[PowerCapSpec] = None,
) -> None:
    """Pre-populate the in-process memo with an externally obtained study.

    The orchestrator (:mod:`repro.orchestrator`) registers studies it
    resolved from worker processes or from the on-disk cache, so later
    direct :func:`run_app_study` calls with the same arguments (e.g. the
    Fig. 6 placement comparison) reuse them instead of re-simulating.
    """
    fault_plan = _normalize_fault_plan(fault_plan)
    plan_key = fault_plan.to_json() if fault_plan is not None else None
    tech = normalize_tech(tech)
    tech_key = tech.to_json() if tech is not None else None
    power_cap = normalize_cap(power_cap)
    cap_key = power_cap.to_json() if power_cap is not None else None
    _STUDY_CACHE[
        (
            app_name, scale, seed, num_workers, winoc_methodology,
            include_vfi1, plan_key, tech_key, cap_key,
        )
    ] = study


def select_winoc_methodology(
    app_name: str,
    scale: float = 1.0,
    seed: int = 7,
    num_workers: int = 64,
) -> str:
    """Pick the better wireless methodology for an app (paper Sec. 6).

    "We will choose between the minimized hop-count and maximized
    wireless utilization wireless placement methodologies depending on
    their achievable performances" -- this runs both VFI-WiNoC variants
    on the app's trace and returns the name of the one with the lower
    network EDP.
    """
    base = run_app_study(
        app_name, scale=scale, seed=seed, num_workers=num_workers,
        winoc_methodology="max_wireless",
    )
    max_wireless_edp = base.result(VFI2_WINOC).network_edp

    geometry = die_for(num_workers)
    rate = base.design.traffic * 8.0 / base.result(NVFI_MESH).total_time_s
    min_hop_platform = build_vfi_winoc(
        base.design,
        "vfi2",
        methodology="min_hop",
        geometry=geometry,
        seed=spawn_seed(seed, app_name, "winoc"),
        traffic_rate_bps=rate,
    )
    min_hop = simulate(
        min_hop_platform,
        base.trace,
        locality=base.app.profile.l2_locality,
        stealing_policy=base.design.stealing_policy("vfi2"),
    )
    if max_wireless_edp <= min_hop.network_edp:
        return "max_wireless"
    return "min_hop"
