"""Traffic-matrix construction for clustering and WiNoC design.

The clustering objective's ``f_ip`` and the WiNoC's inter-cluster link
quotas need the traffic each pair of cores exchanges.  Two components:

* explicit key-value flows recorded in the job trace
  (:meth:`repro.mapreduce.trace.JobTrace.worker_flow_matrix`);
* memory-system traffic implied by each worker's L2 accesses and the
  application's home-bank locality distribution.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.trace import JobTrace
from repro.noc.packets import control_bits, data_bits
from repro.utils.validation import check_probability


def memory_traffic_matrix(trace: JobTrace, locality: float) -> np.ndarray:
    """Worker-to-worker bytes implied by L1-miss traffic.

    Each L1 miss sends a control packet to the home bank and receives a
    data packet back; with probability *locality* the home bank is local
    (no network traffic), otherwise uniformly interleaved.
    """
    check_probability("locality", locality)
    n = trace.num_workers
    accesses = np.zeros(n)
    for record in trace.all_tasks():
        accesses[record.home_worker] += record.cost.l2_accesses
    per_access_bytes = (control_bits() + data_bits()) / 8.0
    remote_share = (1.0 - locality) * (n - 1) / n
    matrix = np.zeros((n, n))
    for worker in range(n):
        volume = accesses[worker] * per_access_bytes * remote_share
        if volume <= 0:
            continue
        share = volume / (n - 1)
        matrix[worker, :] += share
        matrix[worker, worker] -= share
    return matrix


def total_node_traffic(
    trace: JobTrace, locality: float, kv_weight: float = 1.0
) -> np.ndarray:
    """Combined worker-pair traffic (bytes): key-value flows + memory."""
    kv = trace.worker_flow_matrix()
    memory = memory_traffic_matrix(trace, locality)
    return kv_weight * kv + memory


def inter_cluster_traffic(
    node_traffic: np.ndarray, clusters, num_clusters: int
) -> np.ndarray:
    """Aggregate a node-level traffic matrix to cluster level."""
    clusters = np.asarray(clusters, dtype=int)
    n = len(clusters)
    if node_traffic.shape != (n, n):
        raise ValueError(
            f"traffic {node_traffic.shape} does not match {n} nodes"
        )
    one_hot = np.zeros((n, num_clusters))
    one_hot[np.arange(n), clusters] = 1.0
    return one_hot.T @ node_traffic @ one_hot
