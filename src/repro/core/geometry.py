"""First-class die geometry: mesh shape plus VFI island tiling.

The paper's platform is one point in this space -- an 8x8 die split into
four 4x4 quadrant islands with a 3-channel/12-WI wireless overlay.  A
:class:`DieGeometry` names the whole family: a ``rows x columns`` mesh
tiled by ``island_rows x island_columns`` rectangular islands (``K =
island_rows * island_columns``), from which every derived quantity --
island membership, wireless-interface counts, token-ring sizes, channel
assignment -- follows, instead of being hard-coded to 64/4/12.

``DieGeometry.for_cores`` resolves a core count to a concrete die: the
most square factorization of the count, tiled by the most square island
blocks that divide it.  128 cores with 8 islands resolves to a 16x8 die
of 4x4 islands; a 6-island split of the same die has no rectangular
tiling and raises ``ValueError``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.noc.topology import GridGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.vfi.islands import VfiLayout


@dataclass(frozen=True)
class DieGeometry:
    """A ``rows x columns`` mesh tiled by rectangular VFI islands.

    ``island_columns x island_rows`` is the island grid (so the die holds
    ``K = island_columns * island_rows`` islands), and each island is a
    contiguous ``(columns / island_columns) x (rows / island_rows)``
    block.  The paper's die is ``DieGeometry.paper()`` = 8x8 with a 2x2
    island grid of 4x4 blocks.
    """

    columns: int
    rows: int
    island_columns: int = 2
    island_rows: int = 2
    pitch_mm: float = 2.5

    def __post_init__(self) -> None:
        for field_name in ("columns", "rows", "island_columns", "island_rows"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(
                    f"DieGeometry.{field_name} must be a positive int, "
                    f"got {value!r}"
                )
        if self.pitch_mm <= 0:
            raise ValueError(
                f"DieGeometry.pitch_mm must be > 0, got {self.pitch_mm!r}"
            )
        if self.columns % self.island_columns or self.rows % self.island_rows:
            raise ValueError(
                f"DieGeometry: a {self.columns}x{self.rows} die does not "
                f"tile into {self.island_columns}x{self.island_rows} "
                "rectangular islands; pick island_columns/island_rows that "
                "divide the mesh, or resolve a core count with "
                "DieGeometry.for_cores(num_cores, num_islands)"
            )

    # ------------------------------------------------------------------ #
    # Derived shape
    # ------------------------------------------------------------------ #

    @property
    def num_cores(self) -> int:
        return self.columns * self.rows

    @property
    def num_islands(self) -> int:
        """K: the number of VFI islands on the die."""
        return self.island_columns * self.island_rows

    @property
    def island_width(self) -> int:
        """Columns per island block."""
        return self.columns // self.island_columns

    @property
    def island_height(self) -> int:
        """Rows per island block."""
        return self.rows // self.island_rows

    @property
    def cores_per_island(self) -> int:
        return self.island_width * self.island_height

    def grid(self) -> GridGeometry:
        """The plain mesh geometry (no island structure)."""
        return GridGeometry(self.columns, self.rows, pitch_mm=self.pitch_mm)

    def layout(self) -> "VfiLayout":
        """Island membership per node (row-major island ids)."""
        from repro.vfi.islands import rectangular_clusters

        return rectangular_clusters(
            self.grid(),
            island_rows=self.island_rows,
            island_columns=self.island_columns,
        )

    def island_of(self, node: int) -> int:
        column, row = node % self.columns, node // self.columns
        return (
            (row // self.island_height) * self.island_columns
            + column // self.island_width
        )

    # ------------------------------------------------------------------ #
    # Wireless overlay sizing (derived from K, not hard-coded 12/3x4)
    # ------------------------------------------------------------------ #

    def num_wireless_interfaces(self, num_channels: int = 3) -> int:
        """Total WI count: one WI per (island, channel) pair."""
        return self.num_islands * num_channels

    def wis_per_channel(self) -> int:
        """Token-ring size: every island holds one WI of each channel."""
        return self.num_islands

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def paper(cls) -> "DieGeometry":
        """The paper's 64-core die: 8x8 mesh, four 4x4 quadrant islands."""
        return cls(8, 8, island_columns=2, island_rows=2)

    @classmethod
    def from_grid(
        cls, grid: GridGeometry, num_islands: int = 4
    ) -> "DieGeometry":
        """Tile an existing mesh geometry with *num_islands* islands."""
        island_columns, island_rows = _island_tiling(
            grid.columns, grid.rows, num_islands
        )
        return cls(
            grid.columns,
            grid.rows,
            island_columns=island_columns,
            island_rows=island_rows,
            pitch_mm=grid.pitch_mm,
        )

    @classmethod
    def for_cores(
        cls, num_cores: int, num_islands: int = 4
    ) -> "DieGeometry":
        """Resolve a core count to a concrete die.

        The mesh is the most square ``columns x rows`` factorization of
        *num_cores* (``columns >= rows``; a perfect square stays square,
        128 becomes 16x8), and the island grid is the most square
        rectangular tiling of that mesh into *num_islands* blocks.
        Raises ``ValueError`` when no rectangular tiling exists (e.g. 6
        islands on a 16x8 die).
        """
        if not isinstance(num_cores, int) or num_cores <= 0:
            raise ValueError(
                f"DieGeometry.for_cores: num_cores must be a positive int, "
                f"got {num_cores!r}"
            )
        side = math.isqrt(num_cores)
        columns = rows = side
        if side * side != num_cores:
            for candidate_rows in range(side, 0, -1):
                if num_cores % candidate_rows == 0:
                    rows = candidate_rows
                    columns = num_cores // candidate_rows
                    break
        island_columns, island_rows = _island_tiling(
            columns, rows, num_islands
        )
        return cls(
            columns,
            rows,
            island_columns=island_columns,
            island_rows=island_rows,
        )


GeometryLike = Union[DieGeometry, GridGeometry, None]


def as_die(geometry: GeometryLike, num_islands: int = 4) -> DieGeometry:
    """Normalize any accepted geometry argument to a :class:`DieGeometry`.

    ``None`` means the paper die; a bare :class:`GridGeometry` (the
    historical builder argument) is tiled with *num_islands* islands.
    """
    if geometry is None:
        if num_islands == 4:
            return DieGeometry.paper()
        return DieGeometry.from_grid(GridGeometry(8, 8), num_islands)
    if isinstance(geometry, DieGeometry):
        return geometry
    if isinstance(geometry, GridGeometry):
        return DieGeometry.from_grid(geometry, num_islands)
    raise TypeError(
        f"geometry must be DieGeometry, GridGeometry or None, got {geometry!r}"
    )


def _island_tiling(
    columns: int, rows: int, num_islands: int
) -> Tuple[int, int]:
    """Most square ``(island_columns, island_rows)`` tiling, or raise.

    Preference order: squarest island blocks, then squarest island grid,
    then more island columns -- all deterministic, and exactly ``(2, 2)``
    for the paper's 8x8/4-island die (bit-for-bit with the historical
    quadrant layout).
    """
    if not isinstance(num_islands, int) or num_islands <= 0:
        raise ValueError(
            f"DieGeometry: num_islands must be a positive int, "
            f"got {num_islands!r}"
        )
    best: Tuple[Tuple[int, int, int], Tuple[int, int]] = None  # type: ignore
    for island_columns in range(1, num_islands + 1):
        if num_islands % island_columns:
            continue
        island_rows = num_islands // island_columns
        if columns % island_columns or rows % island_rows:
            continue
        block_w = columns // island_columns
        block_h = rows // island_rows
        score = (
            abs(block_w - block_h),
            abs(island_columns - island_rows),
            -island_columns,
        )
        if best is None or score < best[0]:
            best = (score, (island_columns, island_rows))
    if best is None:
        raise ValueError(
            f"DieGeometry: no rectangular {num_islands}-island tiling of a "
            f"{columns}x{rows} die exists; pick a num_islands whose factor "
            "pairs divide the mesh (see DieGeometry.for_cores / "
            "DieGeometry.from_grid)"
        )
    return best[1]
