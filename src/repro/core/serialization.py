"""JSON serialization of designs and study summaries.

Reproducibility artifacts: a :class:`repro.core.design_flow.VfiDesign`
can be saved and reloaded (the exact clustering, both V/F systems, the
bottleneck report and the characterization inputs), and a study's key
metrics can be exported as one JSON document for dashboards or archival.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.core.design_flow import VfiDesign
from repro.core.experiment import AppStudy
from repro.vfi.bottleneck import BottleneckReport
from repro.vfi.clustering import ClusteringResult
from repro.vfi.islands import VfPoint
from repro.vfi.vf_assign import VfAssignment


def _vf_to_dict(assignment: VfAssignment) -> Dict:
    return {
        "points": [
            {"frequency_hz": p.frequency_hz, "voltage_v": p.voltage_v}
            for p in assignment.points
        ],
        "island_utilization": list(assignment.island_utilization),
        "reassigned_islands": list(assignment.reassigned_islands),
    }


def _vf_from_dict(data: Dict) -> VfAssignment:
    return VfAssignment(
        points=tuple(
            VfPoint(entry["frequency_hz"], entry["voltage_v"])
            for entry in data["points"]
        ),
        island_utilization=tuple(data["island_utilization"]),
        reassigned_islands=tuple(data["reassigned_islands"]),
    )


def design_to_dict(design: VfiDesign) -> Dict:
    """Serialize a design to plain JSON-compatible data."""
    return {
        "num_islands": design.num_islands,
        "clustering": {
            "assignment": list(design.clustering.assignment),
            "cost": design.clustering.cost,
            "method": design.clustering.method,
            "evaluations": design.clustering.evaluations,
        },
        "vfi1": _vf_to_dict(design.vfi1),
        "vfi2": _vf_to_dict(design.vfi2),
        "bottleneck": {
            "bottleneck_workers": list(design.bottleneck.bottleneck_workers),
            "average_utilization": design.bottleneck.average_utilization,
            "bottleneck_utilization": design.bottleneck.bottleneck_utilization,
            "body_cv": design.bottleneck.body_cv,
        },
        "utilization": design.utilization.tolist(),
        "traffic": design.traffic.tolist(),
    }


def design_from_dict(data: Dict) -> VfiDesign:
    """Rebuild a design from :func:`design_to_dict` output."""
    return VfiDesign(
        num_islands=int(data["num_islands"]),
        clustering=ClusteringResult(
            assignment=tuple(data["clustering"]["assignment"]),
            cost=float(data["clustering"]["cost"]),
            method=data["clustering"]["method"],
            evaluations=int(data["clustering"]["evaluations"]),
        ),
        vfi1=_vf_from_dict(data["vfi1"]),
        vfi2=_vf_from_dict(data["vfi2"]),
        bottleneck=BottleneckReport(
            bottleneck_workers=list(data["bottleneck"]["bottleneck_workers"]),
            average_utilization=float(data["bottleneck"]["average_utilization"]),
            bottleneck_utilization=float(
                data["bottleneck"]["bottleneck_utilization"]
            ),
            body_cv=float(data["bottleneck"]["body_cv"]),
        ),
        utilization=np.asarray(data["utilization"], dtype=float),
        traffic=np.asarray(data["traffic"], dtype=float),
    )


def save_design(design: VfiDesign, path: str) -> None:
    """Write a design to a JSON file."""
    with open(path, "w") as handle:
        json.dump(design_to_dict(design), handle, indent=1)


def load_design(path: str) -> VfiDesign:
    """Read a design back from :func:`save_design` output."""
    with open(path) as handle:
        return design_from_dict(json.load(handle))


def study_summary_dict(study: AppStudy) -> Dict:
    """One JSON document summarizing a study's key metrics."""
    summary = {
        "app": study.app.profile.name,
        "label": study.label,
        "paper_dataset": study.app.profile.paper_dataset,
        "vfi1": study.design.vfi1.labels(),
        "vfi2": study.design.vfi2.labels(),
        "reassigned_islands": list(study.design.vfi2.reassigned_islands),
        "configs": {},
    }
    for config, result in study.results.items():
        summary["configs"][config] = {
            "total_time_s": result.total_time_s,
            "total_energy_j": result.total_energy_j,
            "edp": result.edp,
            "network_edp": result.network_edp,
            "normalized_time": study.normalized_time(config),
            "normalized_edp": study.normalized_edp(config),
            "average_hops": result.network.average_hops,
            "wireless_fraction": result.network.wireless_fraction,
        }
    return summary


def save_study_summary(study: AppStudy, path: str) -> None:
    """Write :func:`study_summary_dict` to a JSON file."""
    with open(path, "w") as handle:
        json.dump(study_summary_dict(study), handle, indent=1)
