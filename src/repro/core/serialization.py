"""JSON serialization of designs, traces, results and whole studies.

Reproducibility artifacts: a :class:`repro.core.design_flow.VfiDesign`
can be saved and reloaded (the exact clustering, both V/F systems, the
bottleneck report and the characterization inputs), a study's key
metrics can be exported as one JSON document for dashboards or archival,
and a complete :class:`repro.core.experiment.AppStudy` -- trace,
design and every simulated configuration -- round-trips through plain
JSON.  The full-study round trip is what the orchestrator's on-disk
result cache (:mod:`repro.orchestrator.cache`) persists, so every value
is explicitly cast to a builtin type: numpy scalars (``np.float64``,
``np.int64``) are not JSON-serializable and must never leak into the
documents.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

import numpy as np

from repro.apps.registry import create_app
from repro.core.design_flow import VfiDesign
from repro.core.experiment import AppStudy
from repro.energy.metrics import EnergyBreakdown
from repro.faults.impact import FaultImpact
from repro.mapreduce.tasks import Phase, TaskCost
from repro.mapreduce.trace import (
    IterationTrace,
    JobTrace,
    MergeStageTrace,
    PhaseTrace,
    TaskRecord,
)
from repro.power.impact import CapImpact
from repro.sim.stats import NetworkStats, PhaseStats, SimulationResult
from repro.vfi.bottleneck import BottleneckReport
from repro.vfi.clustering import ClusteringResult
from repro.vfi.islands import VfPoint
from repro.vfi.vf_assign import VfAssignment


def _vf_to_dict(assignment: VfAssignment) -> Dict:
    return {
        "points": [
            {"frequency_hz": float(p.frequency_hz), "voltage_v": float(p.voltage_v)}
            for p in assignment.points
        ],
        "island_utilization": [float(u) for u in assignment.island_utilization],
        "reassigned_islands": [int(i) for i in assignment.reassigned_islands],
    }


def _vf_from_dict(data: Dict) -> VfAssignment:
    return VfAssignment(
        points=tuple(
            VfPoint(entry["frequency_hz"], entry["voltage_v"])
            for entry in data["points"]
        ),
        island_utilization=tuple(data["island_utilization"]),
        reassigned_islands=tuple(data["reassigned_islands"]),
    )


def design_to_dict(design: VfiDesign) -> Dict:
    """Serialize a design to plain JSON-compatible data."""
    return {
        "num_islands": int(design.num_islands),
        "clustering": {
            "assignment": [int(c) for c in design.clustering.assignment],
            "cost": float(design.clustering.cost),
            "method": str(design.clustering.method),
            "evaluations": int(design.clustering.evaluations),
        },
        "vfi1": _vf_to_dict(design.vfi1),
        "vfi2": _vf_to_dict(design.vfi2),
        "bottleneck": {
            "bottleneck_workers": [
                int(w) for w in design.bottleneck.bottleneck_workers
            ],
            "average_utilization": float(design.bottleneck.average_utilization),
            "bottleneck_utilization": float(
                design.bottleneck.bottleneck_utilization
            ),
            "body_cv": float(design.bottleneck.body_cv),
        },
        # tolist() recursively converts to builtin floats (traffic is 2-D).
        "utilization": np.asarray(design.utilization, dtype=float).tolist(),
        "traffic": np.asarray(design.traffic, dtype=float).tolist(),
    }


def design_from_dict(data: Dict) -> VfiDesign:
    """Rebuild a design from :func:`design_to_dict` output."""
    return VfiDesign(
        num_islands=int(data["num_islands"]),
        clustering=ClusteringResult(
            assignment=tuple(data["clustering"]["assignment"]),
            cost=float(data["clustering"]["cost"]),
            method=data["clustering"]["method"],
            evaluations=int(data["clustering"]["evaluations"]),
        ),
        vfi1=_vf_from_dict(data["vfi1"]),
        vfi2=_vf_from_dict(data["vfi2"]),
        bottleneck=BottleneckReport(
            bottleneck_workers=list(data["bottleneck"]["bottleneck_workers"]),
            average_utilization=float(data["bottleneck"]["average_utilization"]),
            bottleneck_utilization=float(
                data["bottleneck"]["bottleneck_utilization"]
            ),
            body_cv=float(data["bottleneck"]["body_cv"]),
        ),
        utilization=np.asarray(data["utilization"], dtype=float),
        traffic=np.asarray(data["traffic"], dtype=float),
    )


def save_design(design: VfiDesign, path: str) -> None:
    """Write a design to a JSON file."""
    with open(path, "w") as handle:
        json.dump(design_to_dict(design), handle, indent=1)


def load_design(path: str) -> VfiDesign:
    """Read a design back from :func:`save_design` output."""
    with open(path) as handle:
        return design_from_dict(json.load(handle))


# ---------------------------------------------------------------------- #
# traces
# ---------------------------------------------------------------------- #

#: TaskCost field order used by the compact list encoding below.
_COST_FIELDS = (
    "instructions",
    "l2_accesses",
    "memory_accesses",
    "kv_bytes_in",
    "kv_bytes_out",
)


def _record_to_dict(record: TaskRecord) -> Dict:
    out = {
        "task_id": int(record.task_id),
        "phase": record.phase.value,
        "cost": [float(getattr(record.cost, name)) for name in _COST_FIELDS],
        "home_worker": int(record.home_worker),
    }
    if record.input_bytes_by_worker:
        out["input_bytes_by_worker"] = {
            str(int(worker)): float(nbytes)
            for worker, nbytes in record.input_bytes_by_worker.items()
        }
    if record.partner_worker is not None:
        out["partner_worker"] = int(record.partner_worker)
    return out


def _record_from_dict(data: Dict) -> TaskRecord:
    return TaskRecord(
        task_id=int(data["task_id"]),
        phase=Phase(data["phase"]),
        cost=TaskCost(**dict(zip(_COST_FIELDS, data["cost"]))),
        home_worker=int(data["home_worker"]),
        input_bytes_by_worker={
            int(worker): float(nbytes)
            for worker, nbytes in data.get("input_bytes_by_worker", {}).items()
        },
        partner_worker=data.get("partner_worker"),
    )


def trace_to_dict(trace: JobTrace) -> Dict:
    """Serialize a :class:`JobTrace` to plain JSON-compatible data."""
    return {
        "app_name": trace.app_name,
        "num_workers": int(trace.num_workers),
        "output_bytes": float(trace.output_bytes),
        "iterations": [
            {
                "iteration": int(it.iteration),
                "lib_init": _record_to_dict(it.lib_init),
                "map": [_record_to_dict(r) for r in it.map_phase.tasks],
                "reduce": [_record_to_dict(r) for r in it.reduce_phase.tasks],
                "merge_stages": [
                    {
                        "stage_index": int(stage.stage_index),
                        "tasks": [_record_to_dict(r) for r in stage.tasks],
                    }
                    for stage in it.merge_stages
                ],
            }
            for it in trace.iterations
        ],
    }


def trace_from_dict(data: Dict) -> JobTrace:
    """Rebuild a :class:`JobTrace` from :func:`trace_to_dict` output."""
    iterations = []
    for it in data["iterations"]:
        iterations.append(
            IterationTrace(
                iteration=int(it["iteration"]),
                lib_init=_record_from_dict(it["lib_init"]),
                map_phase=PhaseTrace(
                    Phase.MAP, [_record_from_dict(r) for r in it["map"]]
                ),
                reduce_phase=PhaseTrace(
                    Phase.REDUCE, [_record_from_dict(r) for r in it["reduce"]]
                ),
                merge_stages=[
                    MergeStageTrace(
                        stage_index=int(stage["stage_index"]),
                        tasks=[_record_from_dict(r) for r in stage["tasks"]],
                    )
                    for stage in it["merge_stages"]
                ],
            )
        )
    return JobTrace(
        app_name=data["app_name"],
        num_workers=int(data["num_workers"]),
        iterations=iterations,
        output_bytes=float(data["output_bytes"]),
    )


# ---------------------------------------------------------------------- #
# simulation results
# ---------------------------------------------------------------------- #


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize a :class:`SimulationResult` to JSON-compatible data.

    Fault-free results omit the ``faults`` key entirely, keeping their
    serialized form byte-identical to documents written before the fault
    subsystem existed (and to cache entries of no-fault runs); uncapped
    results omit the ``power`` key under the same rule.
    """
    out = {
        "app_name": result.app_name,
        "platform_name": result.platform_name,
        "total_time_s": float(result.total_time_s),
        "busy_s": [float(v) for v in result.busy_s],
        "committed_instructions": [
            float(v) for v in result.committed_instructions
        ],
        "worker_frequencies_hz": [
            float(v) for v in result.worker_frequencies_hz
        ],
        "issue_width": float(result.issue_width),
        "phases": [
            {
                "phase": p.phase.value,
                "iteration": int(p.iteration),
                "start_s": float(p.start_s),
                "end_s": float(p.end_s),
            }
            for p in result.phases
        ],
        "energy": {
            "core_dynamic_j": float(result.energy.core_dynamic_j),
            "core_static_j": float(result.energy.core_static_j),
            "noc_dynamic_j": float(result.energy.noc_dynamic_j),
            "noc_static_j": float(result.energy.noc_static_j),
        },
        "network": {
            "bits_moved": float(result.network.bits_moved),
            "average_hops": float(result.network.average_hops),
            "wireless_fraction": float(result.network.wireless_fraction),
            "dynamic_energy_j": float(result.network.dynamic_energy_j),
            "static_energy_j": float(result.network.static_energy_j),
        },
    }
    if result.faults is not None:
        out["faults"] = result.faults.to_dict()
    if result.power is not None:
        out["power"] = result.power.to_dict()
    return out


def result_from_dict(data: Dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict`."""
    return SimulationResult(
        app_name=data["app_name"],
        platform_name=data["platform_name"],
        total_time_s=float(data["total_time_s"]),
        busy_s=np.asarray(data["busy_s"], dtype=float),
        committed_instructions=np.asarray(
            data["committed_instructions"], dtype=float
        ),
        worker_frequencies_hz=np.asarray(
            data["worker_frequencies_hz"], dtype=float
        ),
        issue_width=float(data["issue_width"]),
        phases=[
            PhaseStats(
                phase=Phase(p["phase"]),
                iteration=int(p["iteration"]),
                start_s=float(p["start_s"]),
                end_s=float(p["end_s"]),
            )
            for p in data["phases"]
        ],
        energy=EnergyBreakdown(**data["energy"]),
        network=NetworkStats(**data["network"]),
        faults=(
            FaultImpact.from_dict(data["faults"])
            if "faults" in data
            else None
        ),
        power=(
            CapImpact.from_dict(data["power"])
            if "power" in data
            else None
        ),
    )


# ---------------------------------------------------------------------- #
# whole studies
# ---------------------------------------------------------------------- #


def study_to_dict(study: AppStudy) -> Dict:
    """Serialize a complete :class:`AppStudy` to JSON-compatible data.

    The app itself is stored as its (name, scale, seed) construction
    recipe -- app objects are cheap to rebuild (datasets are generated
    lazily by ``make_job``), while the trace, design and every simulated
    configuration are stored in full so nothing is re-simulated on load.
    """
    return {
        "app": {
            "name": study.app.profile.name,
            "scale": float(study.app.scale),
            "seed": int(study.app.seed),
        },
        "trace": trace_to_dict(study.trace),
        "design": design_to_dict(study.design),
        "results": {
            config: result_to_dict(result)
            for config, result in study.results.items()
        },
    }


def study_from_dict(data: Dict) -> AppStudy:
    """Rebuild an :class:`AppStudy` from :func:`study_to_dict` output."""
    app_info = data["app"]
    return AppStudy(
        app=create_app(
            app_info["name"],
            scale=float(app_info["scale"]),
            seed=int(app_info["seed"]),
        ),
        trace=trace_from_dict(data["trace"]),
        design=design_from_dict(data["design"]),
        results={
            config: result_from_dict(entry)
            for config, entry in data["results"].items()
        },
    )


def save_study(study: AppStudy, path: str) -> None:
    """Write a full study to a JSON file."""
    with open(path, "w") as handle:
        json.dump(study_to_dict(study), handle)


def load_study(path: str) -> AppStudy:
    """Read a full study back from :func:`save_study` output."""
    with open(path) as handle:
        return study_from_dict(json.load(handle))


def study_summary_dict(study: AppStudy) -> Dict:
    """One JSON document summarizing a study's key metrics."""
    summary = {
        "app": study.app.profile.name,
        "label": study.label,
        "paper_dataset": study.app.profile.paper_dataset,
        "vfi1": study.design.vfi1.labels(),
        "vfi2": study.design.vfi2.labels(),
        "reassigned_islands": [
            int(i) for i in study.design.vfi2.reassigned_islands
        ],
        "configs": {},
    }
    for config, result in study.results.items():
        summary["configs"][config] = {
            "total_time_s": float(result.total_time_s),
            "total_energy_j": float(result.total_energy_j),
            "edp": float(result.edp),
            "network_edp": float(result.network_edp),
            "normalized_time": float(study.normalized_time(config)),
            "normalized_edp": float(study.normalized_edp(config)),
            "average_hops": float(result.network.average_hops),
            "wireless_fraction": float(result.network.wireless_fraction),
        }
    return summary


def save_study_summary(study: AppStudy, path: str) -> None:
    """Write :func:`study_summary_dict` to a JSON file."""
    with open(path, "w") as handle:
        json.dump(study_summary_dict(study), handle, indent=1)
