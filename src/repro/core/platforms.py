"""Builders for the paper's four evaluated system configurations.

Every builder accepts a :class:`repro.core.geometry.DieGeometry` (or a
bare :class:`GridGeometry`, tiled with the default 2x2 island grid, or
``None`` for the paper's 8x8/4-island die).  Island layout, wireless
overlay sizing and memory-controller placement all derive from the die,
so the same builders produce 64-, 128- and 256-core platforms.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.design_flow import VfiDesign
from repro.core.geometry import DieGeometry, GeometryLike, as_die
from repro.core.traffic import inter_cluster_traffic
from repro.mapping.thread_mapping import (
    ThreadMapping,
    communication_aware_mapping,
    identity_mapping,
    wireless_centric_mapping,
)
from repro.noc.calibration import calibrate_wireless_routing
from repro.noc.energy import NocEnergyParams
from repro.noc.network import NocParams
from repro.noc.placement import (
    center_wireless_placement,
    optimize_wireless_placement,
)
from repro.noc.routing import build_mesh_routing, build_routing_table
from repro.noc.smallworld import SmallWorldConfig, build_small_world
from repro.noc.topology import GridGeometry, build_mesh
from repro.noc.wireless import WirelessSpec, assign_wireless_links
from repro.energy.core_power import CorePowerParams
from repro.sim.config import MemoryParams
from repro.sim.platform import Platform
from repro.tech.spec import TechSpec
from repro.utils.rng import SeedLike, derive_rng, spawn_seed
from repro.vfi.islands import NOMINAL, VfiLayout
from repro.vfi.vf_assign import VfAssignment

#: Dies larger than the paper's 64 cores default to blocked float32
#: dense tables (this block size), keeping peak RSS bounded; the 64-core
#: paper platform keeps the exact unblocked float64 path.
LARGE_DIE_BLOCK_NODES = 64


def default_geometry() -> GridGeometry:
    """The paper's 8x8, 64-core die (mesh only; see :func:`default_die`)."""
    return GridGeometry(8, 8)


def default_die() -> DieGeometry:
    """The paper's 8x8 die with four 4x4 quadrant islands."""
    return DieGeometry.paper()


def geometry_for(num_cores: int) -> GridGeometry:
    """Square die for *num_cores* (must be a square of an even side, so
    the default 2x2 island grid divides it).

    Non-square core counts resolve through
    :meth:`repro.core.geometry.DieGeometry.for_cores` / :func:`die_for`
    instead, which pick the most square rectangular mesh.
    """
    side = int(round(num_cores**0.5))
    if side * side != num_cores:
        raise ValueError(
            f"{num_cores} cores do not form a square grid; use "
            "DieGeometry.for_cores (repro.core.geometry) for rectangular "
            "dies such as 128 = 16x8"
        )
    if side % 2:
        raise ValueError(
            f"side {side} must be even for the default 2x2 island grid; "
            "use DieGeometry.for_cores / DieGeometry.from_grid to pick an "
            "island tiling explicitly"
        )
    return GridGeometry(side, side)


def die_for(num_cores: int, num_islands: int = 4) -> DieGeometry:
    """Concrete die for a core count (most square mesh + island tiling)."""
    return DieGeometry.for_cores(num_cores, num_islands=num_islands)


def memory_params_for(geometry: GeometryLike) -> MemoryParams:
    """Memory controllers at the die corners, whatever the die size."""
    grid = as_die(geometry).grid()
    corners = (
        grid.node_at(0, 0),
        grid.node_at(grid.columns - 1, 0),
        grid.node_at(0, grid.rows - 1),
        grid.node_at(grid.columns - 1, grid.rows - 1),
    )
    return MemoryParams(controller_nodes=corners)


def noc_params_for(die: DieGeometry) -> NocParams:
    """Flow-model parameters sized for the die.

    The paper's 64-core die keeps the exact legacy configuration
    (unblocked float64 dense tables); larger dies switch the dense layer
    to blocked float32 builds so 256-core platforms stay within a
    bounded peak RSS.
    """
    if die.num_cores <= 64:
        return NocParams()
    return NocParams(dense_block_nodes=LARGE_DIE_BLOCK_NODES)


def _tech_platform_kwargs(tech: Optional[TechSpec], num_islands: int) -> dict:
    """Platform fields the technology axis adds.

    Empty for ``tech=None`` (and builders pass the spec through
    :func:`repro.tech.spec.normalize_tech` upstream), so the paper
    platform is constructed with exactly the legacy arguments.
    """
    if tech is None:
        return {}
    node = tech.tech_node()
    mix = tech.mix_for(num_islands)
    defaults = NocEnergyParams()
    return {
        "dvfs_ladder": tech.ladder(),
        "core_power_params": CorePowerParams.from_tech(node),
        "island_core_power": tuple(
            CorePowerParams.from_tech(node, name) for name in mix.types
        ),
        "perf_scales": mix.perf_scales(),
        # The NoC shrinks with the cores: per-bit dynamic energy follows
        # the node's C*V^2 trajectory, switch leakage its leakage one.
        "noc_energy_params": NocEnergyParams(
            router_pj_per_bit=defaults.router_pj_per_bit * node.dynamic_scale,
            wire_pj_per_bit_per_mm=(
                defaults.wire_pj_per_bit_per_mm * node.dynamic_scale
            ),
            wireless_pj_per_bit=(
                defaults.wireless_pj_per_bit * node.dynamic_scale
            ),
            switch_leakage_w=defaults.switch_leakage_w * node.leakage_scale,
        ),
    }


def _check_design(design: VfiDesign, die: DieGeometry) -> None:
    if design.num_islands != die.num_islands:
        raise ValueError(
            f"design has {design.num_islands} islands but the die tiles "
            f"into {die.num_islands}; build the design with "
            f"num_islands={die.num_islands} or pick a matching DieGeometry"
        )


def build_nvfi_mesh(
    geometry: GeometryLike = None,
    name: str = "nvfi-mesh",
    tech: Optional[TechSpec] = None,
) -> Platform:
    """Baseline: every island at nominal V/F, mesh NoC, identity mapping.

    The island layout is kept (it is physically there) but all islands
    run the node's nominal point (1.0 V / 2.5 GHz at the default 65 nm),
    so the platform behaves as a single clock/voltage domain.
    """
    die = as_die(geometry)
    layout = die.layout()
    mesh = build_mesh(die.grid())
    nominal = tech.ladder()[-1] if tech is not None else NOMINAL
    return Platform(
        name=name,
        layout=layout,
        vf_points=[nominal] * layout.num_clusters,
        topology=mesh,
        routing=build_mesh_routing(mesh),
        mapping=identity_mapping(die.num_cores),
        memory_params=memory_params_for(die),
        noc_params=noc_params_for(die),
        **_tech_platform_kwargs(tech, layout.num_clusters),
    )


def vfi_thread_mapping(
    design: VfiDesign,
    layout: VfiLayout,
    seed: SeedLike = None,
    iterations: int = 2000,
) -> ThreadMapping:
    """Place cluster *j*'s workers on island *j*, communication-aware."""
    return communication_aware_mapping(
        design.worker_clusters,
        layout,
        design.traffic,
        iterations=iterations,
        seed=seed,
    )


def build_vfi_mesh(
    design: VfiDesign,
    system: str = "vfi2",
    geometry: GeometryLike = None,
    mapping: Optional[ThreadMapping] = None,
    seed: SeedLike = None,
    name: Optional[str] = None,
    tech: Optional[TechSpec] = None,
) -> Platform:
    """VFI 1 or VFI 2 system on the baseline mesh interconnect."""
    die = as_die(geometry, num_islands=design.num_islands)
    _check_design(design, die)
    layout = die.layout()
    assignment = design.vfi1 if system == "vfi1" else design.vfi2
    if system not in ("vfi1", "vfi2"):
        raise ValueError(f"unknown system {system!r}")
    if mapping is None:
        mapping = vfi_thread_mapping(design, layout, seed=seed)
    mesh = build_mesh(die.grid())
    return Platform(
        name=name or f"{system}-mesh",
        layout=layout,
        vf_points=list(assignment.points),
        topology=mesh,
        routing=build_mesh_routing(mesh),
        mapping=mapping,
        memory_params=memory_params_for(die),
        noc_params=noc_params_for(die),
        **_tech_platform_kwargs(tech, layout.num_clusters),
    )


def build_vfi_winoc(
    design: VfiDesign,
    system: str = "vfi2",
    methodology: str = "max_wireless",
    geometry: GeometryLike = None,
    smallworld_config: SmallWorldConfig = SmallWorldConfig(),
    wireless_spec: WirelessSpec = WirelessSpec(),
    sa_iterations: int = 300,
    seed: SeedLike = 11,
    traffic_rate_bps: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    tech: Optional[TechSpec] = None,
) -> Platform:
    """VFI system on the wireless small-world NoC (paper Secs. 5-6).

    ``methodology`` selects the placement/mapping strategy:

    * ``"max_wireless"`` -- WIs at island centers + "logically near,
      physically far" thread mapping (the configuration the paper finds
      consistently better, Fig. 6);
    * ``"min_hop"`` -- communication-aware mapping + simulated-annealing
      WI placement minimizing traffic-weighted hop count.

    ``traffic_rate_bps`` is an optional *worker-level* sustained traffic
    estimate (bits/s); when given, the wireless routing weights are
    congestion-calibrated so no token channel is oversubscribed
    (:mod:`repro.noc.calibration`).

    Overlay sizing derives from the die: every island holds one WI per
    channel (``K * num_channels`` WIs total), each token ring spans ``K``
    WIs, and the small-world inter-island link quota is checked against
    the ``K``-island pair count (:meth:`SmallWorldConfig.sized_for`).
    """
    if methodology not in ("max_wireless", "min_hop"):
        raise ValueError(f"unknown methodology {methodology!r}")
    die = as_die(geometry, num_islands=design.num_islands)
    _check_design(design, die)
    layout = die.layout()
    grid = die.grid()
    smallworld_config = smallworld_config.sized_for(
        die.num_cores, die.num_islands
    )
    wireless_spec = wireless_spec.sized_for_islands(die.num_islands)
    assignment: VfAssignment = design.vfi1 if system == "vfi1" else design.vfi2
    base_seed = seed if isinstance(seed, int) else 11

    # 1. Thread mapping.
    if methodology == "min_hop":
        mapping = vfi_thread_mapping(
            design, layout, seed=spawn_seed(base_seed, "mapping")
        )
    else:
        # WI anchors are known up front (island centers).
        anchor_placement = center_wireless_placement(
            grid, layout.node_cluster, wireless_spec.num_channels
        )
        wi_nodes = sorted(
            node for nodes in anchor_placement.values() for node in nodes
        )
        mapping = wireless_centric_mapping(
            design.worker_clusters,
            layout,
            design.traffic,
            wi_nodes,
            seed=spawn_seed(base_seed, "mapping"),
        )

    # 2. Node-level traffic implied by the mapping; inter-island volumes
    #    drive the small-world link quotas.
    node_traffic = mapping.map_traffic(design.traffic)
    cluster_traffic = inter_cluster_traffic(
        node_traffic, layout.node_cluster, layout.num_clusters
    )

    # 3. Wireline small-world fabric.
    wireline = build_small_world(
        grid,
        list(layout.node_cluster),
        inter_cluster_traffic=cluster_traffic,
        config=smallworld_config,
        seed=spawn_seed(base_seed, "smallworld"),
        name="small-world",
    )

    # 4. Wireless overlay per methodology.
    if methodology == "max_wireless":
        placement = center_wireless_placement(
            grid, layout.node_cluster, wireless_spec.num_channels
        )
    else:
        placement = optimize_wireless_placement(
            wireline,
            list(layout.node_cluster),
            node_traffic,
            spec=wireless_spec,
            iterations=sa_iterations,
            seed=spawn_seed(base_seed, "placement"),
        )
    winoc = assign_wireless_links(wireline, placement, wireless_spec)

    # 5. Congestion-calibrated routing over the combined fabric.
    rate_matrix = None
    if traffic_rate_bps is not None:
        rate_matrix = mapping.map_traffic(np.asarray(traffic_rate_bps))
    routing = calibrate_wireless_routing(
        winoc,
        list(layout.node_cluster),
        [p.frequency_hz for p in assignment.points],
        rate_matrix,
        wireless=wireless_spec,
    )

    return Platform(
        name=name or f"{system}-winoc-{methodology}",
        layout=layout,
        vf_points=list(assignment.points),
        topology=winoc,
        routing=routing,
        mapping=mapping,
        wireless_spec=wireless_spec,
        memory_params=memory_params_for(die),
        noc_params=noc_params_for(die),
        **_tech_platform_kwargs(tech, layout.num_clusters),
    )
