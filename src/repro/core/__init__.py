"""The paper's contribution: the VFI + WiNoC co-design flow for MapReduce.

:mod:`repro.core.design_flow` implements Fig. 3 -- characterize on a
non-VFI system, cluster workers into islands (Eq. 1), assign V/F (VFI 1),
reassign for bottleneck cores (VFI 2), cap task stealing (Eq. 3).

:mod:`repro.core.platforms` builds the four evaluated system
configurations (NVFI mesh, VFI 1/2 mesh, VFI 2 WiNoC with either
placement methodology).

:mod:`repro.core.experiment` runs a benchmark application through the
whole flow and returns every simulation result the paper's figures need.
"""

from repro.core.design_flow import VfiDesign, design_vfi
from repro.core.experiment import AppStudy, run_app_study
from repro.core.platforms import (
    build_nvfi_mesh,
    build_vfi_mesh,
    build_vfi_winoc,
)
from repro.core.sweep import SweepResult, seed_sweep, size_sweep
from repro.core.traffic import memory_traffic_matrix, total_node_traffic

__all__ = [
    "VfiDesign",
    "design_vfi",
    "build_nvfi_mesh",
    "build_vfi_mesh",
    "build_vfi_winoc",
    "AppStudy",
    "run_app_study",
    "memory_traffic_matrix",
    "total_node_traffic",
    "SweepResult",
    "seed_sweep",
    "size_sweep",
]
