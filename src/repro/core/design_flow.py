"""The VFI design flow of paper Fig. 3.

    characterize on NVFI  ->  VFI clustering (Eq. 1)  ->  V/F assignment
    (VFI 1)  ->  bottleneck detection + V/F reassignment and task-stealing
    modification (VFI 2)

:func:`design_vfi` takes the NVFI characterization (utilization profile +
traffic matrix, typically from an NVFI-mesh simulation of the app's
trace) and produces a :class:`VfiDesign` carrying both V/F systems, the
clustering, and the Eq. (3) stealing policy factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mapreduce.scheduler import CappedStealingPolicy
from repro.mapreduce.trace import JobTrace
from repro.telemetry import get_tracer
from repro.utils.rng import SeedLike
from repro.vfi.bottleneck import BottleneckReport, detect_bottlenecks
from repro.vfi.clustering import (
    ClusteringProblem,
    ClusteringResult,
    solve_simulated_annealing,
)
from repro.vfi.islands import DVFS_LADDER, VfPoint
from repro.vfi.vf_assign import VfAssignment, assign_vf, reassign_for_bottlenecks


@dataclass
class VfiDesign:
    """Output of the design flow for one application."""

    num_islands: int
    clustering: ClusteringResult
    vfi1: VfAssignment
    vfi2: VfAssignment
    bottleneck: BottleneckReport
    utilization: np.ndarray
    traffic: np.ndarray

    @property
    def worker_clusters(self) -> Tuple[int, ...]:
        """Island id per worker."""
        return self.clustering.assignment

    @property
    def was_reassigned(self) -> bool:
        """Did the Sec. 4.2 rule raise any island's V/F (VFI2 != VFI1)?"""
        return bool(self.vfi2.reassigned_islands)

    def worker_frequencies(self, system: str = "vfi2") -> List[float]:
        """Per-worker core frequency under ``"vfi1"`` or ``"vfi2"``."""
        assignment = self._points_for(system)
        return [
            assignment.points[cluster].frequency_hz
            for cluster in self.worker_clusters
        ]

    def stealing_policy(self, system: str = "vfi2") -> CappedStealingPolicy:
        """The paper's Eq. (3)-capped stealing policy for this design."""
        return CappedStealingPolicy(self.worker_frequencies(system))

    def _points_for(self, system: str) -> VfAssignment:
        if system == "vfi1":
            return self.vfi1
        if system == "vfi2":
            return self.vfi2
        raise ValueError(f"unknown system {system!r}; use 'vfi1' or 'vfi2'")


def structural_bottleneck_workers(
    trace: JobTrace, final_merge_stages: int = 0
) -> set:
    """Workers that are bottleneck cores *by construction* (Sec. 4.2).

    The paper attributes bottleneck cores to the master's library
    initialization (and the Merge funnel the master core anchors); the
    master is the lib-init home worker.  ``final_merge_stages`` optionally
    widens the set with the home workers of the last merge stages --
    useful for diagnostics, but note that heterogeneous apps can have
    data-hot cores that coincide with funnel roots by scheduling luck, so
    the default confirmation set is the master alone.
    """
    if final_merge_stages < 0:
        raise ValueError(
            f"final_merge_stages must be >= 0, got {final_merge_stages}"
        )
    workers = set()
    for iteration in trace.iterations:
        workers.add(iteration.lib_init.home_worker)
        if final_merge_stages > 0:
            for stage in iteration.merge_stages[-final_merge_stages:]:
                for record in stage.tasks:
                    workers.add(record.home_worker)
    return workers


def design_vfi(
    utilization: Sequence[float],
    traffic: np.ndarray,
    num_islands: int = 4,
    clustering_iterations: int = 4000,
    seed: SeedLike = None,
    structural_workers: Optional[set] = None,
    ladder: Sequence[VfPoint] = DVFS_LADDER,
) -> VfiDesign:
    """Run the full Fig. 3 flow from an NVFI characterization.

    Parameters
    ----------
    utilization:
        Per-worker busy fraction measured on the non-VFI system.
    traffic:
        Worker-to-worker traffic matrix (``f_ip`` of Eq. 1).
    num_islands:
        Number of equal-size VFIs (four 4x4 islands in the paper).
    structural_workers:
        Workers that are serial bottlenecks by construction (master +
        merge funnel roots; see :func:`structural_bottleneck_workers`).
        When provided, reassignment only triggers if the statistically
        detected hot cores include a structural one -- this is the
        paper's distinction between true bottleneck cores (PCA/HIST/MM)
        and data-driven hot cores that the clustering already placed in
        fast islands (Kmeans/WC).
    ladder:
        DVFS ladder to assign from (the paper's 65 nm ladder by default;
        the technology axis passes the target node's derived ladder).
    """
    utilization = np.asarray(utilization, dtype=float)
    tracer = get_tracer()
    problem = ClusteringProblem(
        traffic=traffic, utilization=utilization, num_clusters=num_islands
    )
    with tracer.wall_span(
        "vfi.clustering", cat="vfi", pid="design-flow",
        iterations=clustering_iterations,
    ):
        clustering = solve_simulated_annealing(
            problem, iterations=clustering_iterations, seed=seed
        )
    with tracer.wall_span("vfi.vf_assign", cat="vfi", pid="design-flow"):
        vfi1 = assign_vf(
            utilization, clustering.assignment, num_islands, ladder=ladder
        )
    with tracer.wall_span("vfi.bottleneck", cat="vfi", pid="design-flow"):
        report = detect_bottlenecks(utilization)
    # Candidates are sorted by descending utilization; the decisive test
    # is whether the *hottest* core is a structural bottleneck (master /
    # funnel root) rather than a data-hot map worker.
    structurally_confirmed = structural_workers is None or bool(
        report.bottleneck_workers
        and report.bottleneck_workers[0] in structural_workers
    )
    if structurally_confirmed:
        with tracer.wall_span("vfi.reassign", cat="vfi", pid="design-flow"):
            vfi2 = reassign_for_bottlenecks(
                vfi1, utilization, clustering.assignment, report, ladder=ladder
            )
    else:
        vfi2 = vfi1
    return VfiDesign(
        num_islands=num_islands,
        clustering=clustering,
        vfi1=vfi1,
        vfi2=vfi2,
        bottleneck=report,
        utilization=utilization,
        traffic=np.asarray(traffic, dtype=float),
    )
