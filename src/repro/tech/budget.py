"""Chip power-budget accounting: the dark-silicon frontier.

At a fixed chip power budget, not every core of a scaled-down die can
run at nominal V/F at once -- the fraction that must stay idle is the
node's *dark silicon*.  This module prices a die (node x core mix) at
its nominal operating point and reports, for any cap:

* the **active-core ceiling** -- the largest number of cores whose
  summed peak power (busy dynamic + leakage at the node's nominal rail)
  fits the cap, activating the cheapest cores first so the ceiling is
  the physical maximum;
* the **dark fraction** -- the remainder of the die that the cap keeps
  off;
* a **throughput proxy** for the active set (per-core perf multiplier x
  node clock, normalized to one 65 nm out-of-order core), which is what
  the ``repro tech frontier`` sweep plots across nodes.

The ceiling is nonincreasing as the cap tightens and nondecreasing as
it relaxes -- a property test in ``tests/tech/test_properties.py`` pins
this for arbitrary node/mix/cap combinations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from repro.tech.cores import CoreMix, CoreType, get_core_type, resolve_mix
from repro.tech.nodes import BASE_FREQ_GHZ, TechNode, get_node
from repro.utils.units import GHZ


def core_peak_power_w(node: TechNode, core_type: CoreType) -> float:
    """Peak per-core power (busy dynamic + leakage) at *node*'s nominal."""
    # Deferred import: repro.energy.core_power derives its defaults from
    # repro.tech.nodes, so a top-level import here would be circular.
    from repro.energy.core_power import CorePowerModel, CorePowerParams

    params = CorePowerParams.from_tech(node, core_type)
    model = CorePowerModel(params)
    nominal = params.nominal
    return model.dynamic_power_w(nominal, 1.0) + model.leakage_power_w(nominal)


def _per_core_powers(
    node: TechNode, mix: CoreMix, num_cores: int
) -> List[float]:
    """One peak-power entry per core, island-major."""
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if num_cores % mix.num_islands:
        raise ValueError(
            f"{num_cores} cores do not split evenly over "
            f"{mix.num_islands} islands (mix {mix.label!r})"
        )
    per_island = num_cores // mix.num_islands
    powers = []
    for name in mix.types:
        powers.extend([core_peak_power_w(node, get_core_type(name))] * per_island)
    return powers


def chip_peak_power_w(node: TechNode, mix: CoreMix, num_cores: int) -> float:
    """Whole-die peak power with every core busy at nominal V/F."""
    return sum(_per_core_powers(node, mix, num_cores))


def active_core_ceiling(
    cap_w: float, node: TechNode, mix: CoreMix, num_cores: int
) -> int:
    """Most cores that can run at nominal under *cap_w*, cheapest first.

    Activating the lowest-power cores first makes the ceiling the
    physical maximum -- any other activation order fits at most as many
    cores.  A cap at or below zero leaves the whole die dark.
    """
    if cap_w <= 0.0:
        return 0
    budget = float(cap_w)
    # Relative tolerance so a cap set exactly at the chip peak lights the
    # whole die regardless of summation order (float rounding differs
    # between the greedy partial sums and one flat sum()).
    slack = budget * 1e-9
    total = 0.0
    active = 0
    for power in sorted(_per_core_powers(node, mix, num_cores)):
        if total + power > budget + slack:
            break
        total += power
        active += 1
    return active


def dark_fraction(
    cap_w: float, node: TechNode, mix: CoreMix, num_cores: int
) -> float:
    """Fraction of the die the cap forces dark at nominal V/F."""
    ceiling = active_core_ceiling(cap_w, node, mix, num_cores)
    return 1.0 - ceiling / num_cores


def throughput_proxy(
    cap_w: float, node: TechNode, mix: CoreMix, num_cores: int
) -> float:
    """Aggregate throughput of the capped active set, in units of one
    65 nm out-of-order core at its nominal clock.

    The cheapest-first activation also happens to favour in-order cores,
    whose perf/W leads -- which is exactly the dark-silicon argument for
    heterogeneity that the frontier sweep quantifies.
    """
    ceiling = active_core_ceiling(cap_w, node, mix, num_cores)
    clock_ratio = node.frequency_nominal_hz / (BASE_FREQ_GHZ * GHZ)
    pairs = sorted(
        zip(
            _per_core_powers(node, mix, num_cores),
            (
                get_core_type(name).perf_scale
                for name in mix.types
                for _ in range(num_cores // mix.num_islands)
            ),
        )
    )
    return sum(perf for _, perf in pairs[:ceiling]) * clock_ratio


def budget_row(
    cap_w: float,
    node: TechNode,
    mix: CoreMix,
    num_cores: int,
) -> Dict:
    """One frontier table row for (node, mix) at *cap_w*."""
    ceiling = active_core_ceiling(cap_w, node, mix, num_cores)
    return {
        "node": node.name,
        "variant": node.variant,
        "mix": mix.label,
        "cap_w": float(cap_w),
        "chip_peak_w": chip_peak_power_w(node, mix, num_cores),
        "active_cores": ceiling,
        "dark_fraction": 1.0 - ceiling / num_cores,
        "throughput": throughput_proxy(cap_w, node, mix, num_cores),
    }


def frontier(
    nodes: Sequence[Union[int, str, TechNode]],
    mixes: Sequence[Union[str, CoreMix]],
    caps_w: Iterable[float],
    num_cores: int = 64,
    num_islands: int = 4,
    variant: str = "itrs",
) -> List[Dict]:
    """The dark-silicon frontier over nodes x mixes x caps.

    Row order is node-major (all mixes and caps of the first node, then
    the second, ...), matching how the report section groups the tables.
    """
    rows = []
    for node in nodes:
        if not isinstance(node, TechNode):
            node = get_node(node, variant)
        for mix in mixes:
            if not isinstance(mix, CoreMix):
                mix = resolve_mix(mix, num_islands)
            for cap in caps_w:
                rows.append(budget_row(cap, node, mix, num_cores))
    return rows
