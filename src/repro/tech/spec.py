"""The canonical technology-configuration unit: :class:`TechSpec`.

A TechSpec names one point of the technology design space -- node,
scaling variant, and per-island core mix -- in canonical, hashable,
JSON-round-trippable form, exactly like :class:`repro.faults.FaultPlan`
does for the fault axis.  The paper's configuration (65 nm, ITRS
variant, homogeneous out-of-order cores) is the default and collapses
to ``None`` wherever the spec is carried as an axis field
(:class:`repro.orchestrator.spec.StudySpec`,
:class:`repro.cluster.fleet.ChipSpec`): the default study keeps exactly
one identity, and its pipeline stays bit-for-bit the pre-tech-axis
computation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.tech.cores import CoreMix, DEFAULT_CORE, resolve_mix
from repro.tech.nodes import (
    PAPER_NODE_NM,
    TechNode,
    VARIANTS,
    dvfs_ladder,
    get_node,
)
from repro.vfi.islands import VfPoint


@dataclass(frozen=True)
class TechSpec:
    """One technology configuration: node x variant x core mix."""

    node: str = f"{PAPER_NODE_NM}nm"
    variant: str = "itrs"
    #: A core-type name (homogeneous), a mix preset (``"big_little"``),
    #: or an explicit per-island tuple of core-type names.
    cores: Union[str, Tuple[str, ...]] = DEFAULT_CORE

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        node = get_node(self.node, self.variant)
        object.__setattr__(self, "node", node.name)
        # The 65 nm tables are the identity in both variants; collapsing
        # the variant keeps the paper node at exactly one cache identity.
        if node.is_paper_node:
            object.__setattr__(self, "variant", "itrs")
        cores = self.cores
        if not isinstance(cores, str):
            cores = tuple(str(name) for name in cores)
            if not cores:
                raise ValueError("cores sequence must be non-empty")
            if len(set(cores)) == 1:
                cores = cores[0]  # homogeneous tuples collapse to the name
        if isinstance(cores, str):
            resolve_mix(cores, 4)  # validate the name against the registry
        else:
            CoreMix(types=cores)
        object.__setattr__(self, "cores", cores)

    # ------------------------------------------------------------------ #

    @property
    def is_default(self) -> bool:
        """Is this the paper's 65 nm homogeneous OoO configuration?"""
        return (
            self.node == f"{PAPER_NODE_NM}nm"
            and self.variant == "itrs"
            and self.cores == DEFAULT_CORE
        )

    @property
    def label(self) -> str:
        cores = self.cores if isinstance(self.cores, str) else "+".join(self.cores)
        return f"{self.node}-{self.variant}/{cores}"

    def tech_node(self) -> TechNode:
        return get_node(self.node, self.variant)

    def ladder(self) -> Tuple[VfPoint, ...]:
        """This node's DVFS ladder (nominal last)."""
        return dvfs_ladder(self.tech_node())

    def mix_for(self, num_islands: int) -> CoreMix:
        """The concrete per-island core mix on a *num_islands* die."""
        return resolve_mix(self.cores, num_islands)

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        cores = self.cores
        return {
            "node": self.node,
            "variant": self.variant,
            "cores": cores if isinstance(cores, str) else list(cores),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TechSpec":
        data = dict(data)
        cores = data.get("cores", DEFAULT_CORE)
        if isinstance(cores, list):
            data["cores"] = tuple(cores)
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TechSpec":
        return cls.from_dict(json.loads(text))


def canonical_tech_json(
    tech: Union[None, str, TechSpec]
) -> Optional[str]:
    """Normalize a tech field to canonical JSON (or ``None``).

    Accepts a :class:`TechSpec`, a JSON string (re-canonicalized through
    a round trip, so key order and whitespace never split a cache), or
    ``None``.  The default spec collapses to ``None`` -- the paper
    configuration keeps exactly one identity, the same rule the fault
    axis applies to empty plans.
    """
    if tech is None:
        return None
    if isinstance(tech, str):
        tech = TechSpec.from_json(tech)
    if not isinstance(tech, TechSpec):
        raise TypeError(
            f"tech must be None, JSON text or TechSpec, got {tech!r}"
        )
    if tech.is_default:
        return None
    return tech.to_json()


def normalize_tech(
    tech: Union[None, str, TechSpec]
) -> Optional[TechSpec]:
    """Decode a tech field to a :class:`TechSpec`, or ``None`` for the
    default configuration (so default-spec runs take the exact legacy
    code path)."""
    text = canonical_tech_json(tech)
    if text is None:
        return None
    return TechSpec.from_json(text)
