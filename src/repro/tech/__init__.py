"""Technology-node scaling and heterogeneous core types.

This package turns the paper's single operating point (65 nm,
homogeneous out-of-order cores at 1.0 V / 2.5 GHz) into a design-space
axis: Lumos-style per-node technology tables (:mod:`repro.tech.nodes`),
out-of-order vs in-order core types with per-island mixes
(:mod:`repro.tech.cores`), chip power-budget / dark-silicon accounting
(:mod:`repro.tech.budget`), and the canonical :class:`TechSpec`
configuration unit (:mod:`repro.tech.spec`) that threads the axis
through platform builders, studies, and cluster fleets.  The default
spec is the paper's configuration and is bit-for-bit inert everywhere
it is carried.
"""

from repro.tech.budget import (
    active_core_ceiling,
    budget_row,
    chip_peak_power_w,
    core_peak_power_w,
    dark_fraction,
    frontier,
    throughput_proxy,
)
from repro.tech.cores import (
    CORE_TYPES,
    CoreMix,
    CoreType,
    DEFAULT_CORE,
    MIX_PRESETS,
    core_type_names,
    get_core_type,
    resolve_mix,
)
from repro.tech.nodes import (
    BASE_DYNAMIC_W,
    BASE_FREQ_GHZ,
    BASE_LEAKAGE_W,
    BASE_VDD_V,
    NODES,
    PAPER_NODE_NM,
    TechNode,
    VARIANTS,
    dvfs_ladder,
    get_node,
    node_names,
    nominal_point,
    paper_node,
)
from repro.tech.spec import TechSpec, canonical_tech_json, normalize_tech

__all__ = [
    "BASE_DYNAMIC_W",
    "BASE_FREQ_GHZ",
    "BASE_LEAKAGE_W",
    "BASE_VDD_V",
    "CORE_TYPES",
    "CoreMix",
    "CoreType",
    "DEFAULT_CORE",
    "MIX_PRESETS",
    "NODES",
    "PAPER_NODE_NM",
    "TechNode",
    "TechSpec",
    "VARIANTS",
    "active_core_ceiling",
    "budget_row",
    "canonical_tech_json",
    "chip_peak_power_w",
    "core_peak_power_w",
    "core_type_names",
    "dark_fraction",
    "dvfs_ladder",
    "frontier",
    "get_core_type",
    "get_node",
    "node_names",
    "nominal_point",
    "normalize_tech",
    "paper_node",
    "resolve_mix",
    "throughput_proxy",
]
