"""Per-node technology tables and parametric DVFS-ladder derivation.

The paper's platform is pinned at one operating point: 65 nm,
out-of-order cores, 1.0 V / 2.5 GHz nominal.  This module generalizes
that point into a Lumos-style technology axis (Wang & Skadron's dark
silicon modeling): every :class:`TechNode` carries the node's nominal
supply, threshold voltage and freq/power/area scale factors **relative
to the 65 nm paper node**, in two scaling variants:

* ``"itrs"`` -- the optimistic ITRS roadmap trajectory (aggressive
  frequency gains and dynamic-power reduction per node);
* ``"cons"`` -- the conservative trajectory (modest frequency gains,
  slower supply scaling), which is where dark silicon bites hardest.

:func:`dvfs_ladder` derives a node's DVFS ladder the same way the
paper's Table 2 grid is laid out: ``num_points`` evenly spaced supply
rails between ``vmin`` and the node's nominal Vdd, with frequency
scaling linearly in voltage (the classic f ~ V approximation above
threshold).  ``vmin`` is the *paper's* 0.6 ratio bounded below by the
near-threshold guard ``vth_guard * vth`` -- ladders never dip into the
region where the :mod:`repro.energy.core_power` ``leakage_gamma`` model
(subthreshold leakage superlinear in V) stops being meaningful.  Rails
snap to a 0.1 mV voltage / 1 kHz frequency grid so derived ladders are
canonical floats; the 65 nm derivation reproduces
:data:`repro.vfi.islands.DVFS_LADDER` bit for bit (pinned by
``tests/tech/test_nodes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.utils.units import GHZ
from repro.utils.validation import check_positive
from repro.vfi.islands import VfPoint

#: Technology-scaling variants (optimistic ITRS vs conservative).
VARIANTS = ("itrs", "cons")

#: The paper's node: every scale factor below is relative to it.
PAPER_NODE_NM = 65

#: Absolute anchors of the 65 nm out-of-order paper core -- the single
#: source of truth for the nominal operating point.
#: :class:`repro.energy.core_power.CorePowerParams` derives its default
#: constants from these (they used to be duplicated literals there).
BASE_FREQ_GHZ = 2.5
BASE_VDD_V = 1.0
BASE_DYNAMIC_W = 1.9
BASE_LEAKAGE_W = 0.25

#: Ladder shape of the paper platform: five rails, Vmin at 0.6 x Vdd.
LADDER_POINTS = 5
VMIN_RATIO = 0.6
#: Near-threshold guard: rails stay at or above ``vth_guard * vth``.
VTH_GUARD = 1.2


@dataclass(frozen=True)
class TechNode:
    """One technology node under one scaling variant.

    Scale factors are relative to the 65 nm paper node at its own
    nominal point (``freq_scale`` multiplies the 2.5 GHz base clock,
    ``dynamic_scale``/``leakage_scale`` multiply the per-core 1.9 W /
    0.25 W anchors, ``area_scale`` multiplies the core footprint).
    """

    nm: int
    variant: str
    vdd_nominal_v: float
    vth_v: float
    freq_scale: float
    dynamic_scale: float
    leakage_scale: float
    area_scale: float

    def __post_init__(self) -> None:
        check_positive("nm", self.nm)
        if self.variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        check_positive("vdd_nominal_v", self.vdd_nominal_v)
        check_positive("vth_v", self.vth_v)
        if self.vth_v >= self.vdd_nominal_v:
            raise ValueError(
                f"vth {self.vth_v} V must stay below nominal Vdd "
                f"{self.vdd_nominal_v} V"
            )
        check_positive("freq_scale", self.freq_scale)
        check_positive("dynamic_scale", self.dynamic_scale)
        check_positive("leakage_scale", self.leakage_scale)
        check_positive("area_scale", self.area_scale)

    @property
    def name(self) -> str:
        return f"{self.nm}nm"

    @property
    def frequency_nominal_hz(self) -> float:
        """Nominal clock at this node (base 2.5 GHz scaled)."""
        return round(BASE_FREQ_GHZ * self.freq_scale, 6) * GHZ

    @property
    def is_paper_node(self) -> bool:
        return self.nm == PAPER_NODE_NM

    def vmin_v(self, vth_guard: float = VTH_GUARD) -> float:
        """Lowest usable supply rail: the paper's 0.6 ratio, bounded
        below by the near-threshold guard."""
        return round(
            max(VMIN_RATIO * self.vdd_nominal_v, vth_guard * self.vth_v), 4
        )

    def to_dict(self) -> Dict:
        return {
            "nm": self.nm,
            "variant": self.variant,
            "vdd_nominal_v": self.vdd_nominal_v,
            "vth_v": self.vth_v,
            "freq_scale": self.freq_scale,
            "dynamic_scale": self.dynamic_scale,
            "leakage_scale": self.leakage_scale,
            "area_scale": self.area_scale,
        }


def _table(variant: str, rows) -> Dict[int, TechNode]:
    return {
        nm: TechNode(nm, variant, *fields) for nm, fields in rows.items()
    }


#: Per-variant node tables.  Columns: vdd_nominal_v, vth_v, freq_scale,
#: dynamic_scale, leakage_scale, area_scale (relative to 65 nm).  The
#: 65 nm row is the identity in both variants so the paper configuration
#: is variant-independent.  Trends follow the Lumos tables (ITRS
#: 2009-2010 FEP device sheets): supply and dynamic power fall with the
#: node, ITRS frequency gains outpace the conservative track, leakage
#: density worsens as vth drops, and area halves per node.
NODES: Dict[str, Dict[int, TechNode]] = {
    "itrs": _table("itrs", {
        90: (1.20, 0.40, 0.78, 1.45, 0.80, 1.92),
        65: (1.00, 0.35, 1.00, 1.00, 1.00, 1.00),
        45: (0.90, 0.32, 1.35, 0.71, 1.08, 0.48),
        32: (0.84, 0.30, 1.47, 0.47, 1.22, 0.24),
        22: (0.76, 0.27, 2.20, 0.38, 1.42, 0.12),
        16: (0.68, 0.24, 2.95, 0.27, 1.66, 0.06),
    }),
    "cons": _table("cons", {
        90: (1.20, 0.40, 0.85, 1.38, 0.82, 1.92),
        65: (1.00, 0.35, 1.00, 1.00, 1.00, 1.00),
        45: (0.93, 0.32, 1.10, 0.74, 1.05, 0.48),
        32: (0.87, 0.30, 1.21, 0.53, 1.15, 0.24),
        22: (0.82, 0.27, 1.31, 0.42, 1.28, 0.12),
        16: (0.78, 0.24, 1.38, 0.32, 1.44, 0.06),
    }),
}

#: Nodes available in every variant, largest geometry first.
NODE_NMS: Tuple[int, ...] = tuple(sorted(NODES["itrs"], reverse=True))


def node_names() -> List[str]:
    """All node names, largest geometry first (``["90nm", ..., "16nm"]``)."""
    return [f"{nm}nm" for nm in NODE_NMS]


def get_node(node: Union[int, str], variant: str = "itrs") -> TechNode:
    """Look up a node by ``65``, ``"65"`` or ``"65nm"`` under *variant*."""
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown technology variant {variant!r}; use one of {VARIANTS}"
        )
    raw = node
    if isinstance(node, str):
        node = node.strip().lower()
        if node.endswith("nm"):
            node = node[:-2]
        try:
            node = int(node)
        except ValueError:
            raise ValueError(
                f"unknown technology node {raw!r}; use one of {node_names()}"
            ) from None
    table = NODES[variant]
    if node not in table:
        raise ValueError(
            f"unknown technology node {raw!r}; use one of {node_names()}"
        )
    return table[node]


def paper_node() -> TechNode:
    """The 65 nm node the paper's constants are anchored at."""
    return NODES["itrs"][PAPER_NODE_NM]


def dvfs_ladder(
    node: TechNode,
    num_points: int = LADDER_POINTS,
    vth_guard: float = VTH_GUARD,
) -> Tuple[VfPoint, ...]:
    """Derive *node*'s DVFS ladder, slowest to fastest (nominal last).

    ``num_points`` supply rails are spaced evenly between
    :meth:`TechNode.vmin_v` and the node's nominal Vdd; each rail's
    frequency scales linearly with its voltage from the node's nominal
    clock.  Rails are snapped to a 0.1 mV / 1 kHz grid, which makes the
    derivation canonical: the 65 nm ladder equals the paper's
    :data:`repro.vfi.islands.DVFS_LADDER` bit for bit.
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    check_positive("vth_guard", vth_guard)
    vdd = node.vdd_nominal_v
    vmin = node.vmin_v(vth_guard)
    if vmin >= vdd:
        raise ValueError(
            f"{node.name}/{node.variant}: vmin {vmin} V (guard "
            f"{vth_guard} x vth {node.vth_v} V) reaches nominal Vdd "
            f"{vdd} V; no ladder headroom"
        )
    fnom_ghz = round(BASE_FREQ_GHZ * node.freq_scale, 6)
    step = (vdd - vmin) / (num_points - 1)
    points = []
    for index in range(num_points):
        voltage = round(vmin + index * step, 4)
        frequency = round(fnom_ghz * voltage / vdd, 6) * GHZ
        points.append(VfPoint(frequency, voltage))
    return tuple(points)


def nominal_point(node: TechNode) -> VfPoint:
    """The node's nominal operating point (top of its DVFS ladder)."""
    return dvfs_ladder(node)[-1]
