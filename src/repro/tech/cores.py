"""Heterogeneous core types and per-island core mixes.

The paper simulates one x86-class out-of-order core everywhere.  This
module adds the second axis of the Lumos design space: an in-order core
that trades single-thread performance for a fraction of the power and
area.  Multipliers are relative to the out-of-order baseline and follow
the Lumos core tables (Niagara2-class in-order vs Nehalem-class
out-of-order): roughly a third of the dynamic power and area for half
the per-core performance.

A :class:`CoreMix` assigns one :class:`CoreType` per VFI -- islands are
the natural heterogeneity granularity on this platform, since a VFI
already shares one clock/voltage domain.  ``"big_little"`` puts the
out-of-order islands in the first half of the die and in-order islands
in the second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.utils.validation import check_positive

#: Name of the paper's homogeneous baseline core.
DEFAULT_CORE = "ooo"


@dataclass(frozen=True)
class CoreType:
    """One core microarchitecture, as multipliers on the OoO baseline."""

    name: str
    #: Single-thread performance relative to the OoO core at equal clock
    #: (IPC proxy; scales effective task throughput).
    perf_scale: float
    #: Peak dynamic power multiplier at equal V/F.
    dynamic_scale: float
    #: Leakage power multiplier (shorter pipelines, smaller structures).
    leakage_scale: float
    #: Core area multiplier (drives how many fit a fixed-area die).
    area_scale: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("core type needs a name")
        check_positive("perf_scale", self.perf_scale)
        check_positive("dynamic_scale", self.dynamic_scale)
        check_positive("leakage_scale", self.leakage_scale)
        check_positive("area_scale", self.area_scale)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "perf_scale": self.perf_scale,
            "dynamic_scale": self.dynamic_scale,
            "leakage_scale": self.leakage_scale,
            "area_scale": self.area_scale,
        }


#: The core-type registry.  ``"ooo"`` is the identity (the paper core);
#: multipliers of ``"io"`` follow the Lumos in-order/out-of-order ratios
#: (power 6.14/19.83 ~ 0.31, area 7.65/26.48 ~ 0.29).
CORE_TYPES: Dict[str, CoreType] = {
    "ooo": CoreType(
        "ooo", 1.0, 1.0, 1.0, 1.0,
        "out-of-order x86-class core (the paper's baseline)",
    ),
    "io": CoreType(
        "io", 0.55, 0.31, 0.35, 0.29,
        "in-order core: ~55% per-core performance at ~31% dynamic power",
    ),
}

#: Named per-island mix recipes (resolved against the island count).
MIX_PRESETS = ("big_little",)


def core_type_names() -> List[str]:
    return sorted(CORE_TYPES)


def get_core_type(name: str) -> CoreType:
    if name not in CORE_TYPES:
        raise ValueError(
            f"unknown core type {name!r}; use one of {core_type_names()}"
        )
    return CORE_TYPES[name]


@dataclass(frozen=True)
class CoreMix:
    """One core type per island (canonical, hashable)."""

    types: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "types", tuple(str(t) for t in self.types))
        if not self.types:
            raise ValueError("core mix must cover at least one island")
        for name in self.types:
            get_core_type(name)

    @classmethod
    def homogeneous(cls, name: str, num_islands: int) -> "CoreMix":
        get_core_type(name)
        if num_islands < 1:
            raise ValueError(f"num_islands must be >= 1, got {num_islands}")
        return cls(types=(name,) * num_islands)

    @classmethod
    def big_little(
        cls,
        num_islands: int,
        big: str = "ooo",
        little: str = "io",
    ) -> "CoreMix":
        """OoO islands in the first half of the die, in-order after.

        Odd island counts round the big half up -- the serial bottleneck
        (master island) always lands on a big core.
        """
        if num_islands < 1:
            raise ValueError(f"num_islands must be >= 1, got {num_islands}")
        big_islands = (num_islands + 1) // 2
        return cls(
            types=(big,) * big_islands + (little,) * (num_islands - big_islands)
        )

    @property
    def num_islands(self) -> int:
        return len(self.types)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.types)) == 1

    @property
    def label(self) -> str:
        if self.is_homogeneous:
            return self.types[0]
        return "+".join(self.types)

    def core_type(self, island: int) -> CoreType:
        return get_core_type(self.types[island])

    def core_types(self) -> List[CoreType]:
        return [get_core_type(name) for name in self.types]

    def perf_scales(self) -> Tuple[float, ...]:
        return tuple(get_core_type(name).perf_scale for name in self.types)


def resolve_mix(
    cores: Union[str, Sequence[str]], num_islands: int
) -> CoreMix:
    """Resolve a TechSpec ``cores`` field to a concrete per-island mix.

    Accepts a core-type name (homogeneous), a mix preset name
    (``"big_little"``), or an explicit per-island sequence whose length
    must match the island count.
    """
    if isinstance(cores, str):
        if cores in CORE_TYPES:
            return CoreMix.homogeneous(cores, num_islands)
        if cores == "big_little":
            return CoreMix.big_little(num_islands)
        raise ValueError(
            f"unknown core mix {cores!r}; use a core type "
            f"({core_type_names()}), a preset ({list(MIX_PRESETS)}) or an "
            "explicit per-island sequence"
        )
    mix = CoreMix(types=tuple(cores))
    if mix.num_islands != num_islands:
        raise ValueError(
            f"core mix {mix.label!r} covers {mix.num_islands} islands, "
            f"die has {num_islands}"
        )
    return mix
