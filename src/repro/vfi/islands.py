"""V/F points, the DVFS ladder and the physical island layout.

The paper's platform exposes five operating points between 0.6 V/1.5 GHz
and the nominal 1.0 V/2.5 GHz (Table 2 uses 0.6/1.5, 0.8/2.0, 0.9/2.25
and 1.0/2.5).  Physically, the 64-core die is divided into four
contiguous 4x4-quadrant islands; the *logical* clustering of workers is
realized by thread mapping (cluster j's workers run on quadrant j).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.noc.topology import GridGeometry
from repro.utils.units import GHZ
from repro.utils.validation import check_positive


@dataclass(frozen=True, order=True)
class VfPoint:
    """One DVFS operating point."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("voltage_v", self.voltage_v)

    @property
    def label(self) -> str:
        return f"{self.voltage_v:.1f}V/{self.frequency_hz / GHZ:g}GHz"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


#: The paper platform's 65 nm DVFS ladder, slowest to fastest (nominal
#: last).  Kept as literals -- this is the golden-pinned default; the
#: technology axis (:func:`repro.tech.nodes.dvfs_ladder`) derives this
#: exact tuple for the 65 nm node and different ladders for other nodes,
#: which flow in through the ``ladder`` parameters below.
DVFS_LADDER: Tuple[VfPoint, ...] = (
    VfPoint(1.50 * GHZ, 0.6),
    VfPoint(1.75 * GHZ, 0.7),
    VfPoint(2.00 * GHZ, 0.8),
    VfPoint(2.25 * GHZ, 0.9),
    VfPoint(2.50 * GHZ, 1.0),
)

NOMINAL = DVFS_LADDER[-1]


def nearest_ladder_point(
    frequency_hz: float, ladder: Sequence[VfPoint] = DVFS_LADDER
) -> VfPoint:
    """Ladder point with frequency nearest to *frequency_hz*."""
    check_positive("frequency_hz", frequency_hz)
    if not ladder:
        raise ValueError("ladder must be non-empty")
    return min(ladder, key=lambda p: abs(p.frequency_hz - frequency_hz))


def ladder_step_up(
    point: VfPoint, steps: int = 1, ladder: Sequence[VfPoint] = DVFS_LADDER
) -> VfPoint:
    """Raise *point* by *steps* ladder positions (saturating at nominal)."""
    ladder = tuple(ladder)
    if point not in ladder:
        raise ValueError(f"{point} is not on the DVFS ladder")
    index = ladder.index(point)
    return ladder[min(index + steps, len(ladder) - 1)]


@dataclass(frozen=True)
class VfiLayout:
    """Physical island layout: cluster id per grid node."""

    geometry: GridGeometry
    node_cluster: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.node_cluster) != self.geometry.num_nodes:
            raise ValueError(
                f"{len(self.node_cluster)} cluster ids for "
                f"{self.geometry.num_nodes} nodes"
            )

    @property
    def num_clusters(self) -> int:
        return len(set(self.node_cluster))

    def members(self) -> Dict[int, List[int]]:
        members: Dict[int, List[int]] = {}
        for node, cid in enumerate(self.node_cluster):
            members.setdefault(cid, []).append(node)
        return members

    def cluster_of(self, node: int) -> int:
        return self.node_cluster[node]


def rectangular_clusters(
    geometry: GridGeometry, island_rows: int, island_columns: int
) -> VfiLayout:
    """Contiguous rectangular islands tiling the die.

    The die is split into an ``island_rows x island_columns`` grid of
    equal rectangular blocks; cluster ids are row-major over that island
    grid.  This is the general form of the paper's quadrant layout --
    ``island_rows = island_columns = 2`` reproduces it exactly.
    """
    check_positive("island_rows", island_rows)
    check_positive("island_columns", island_columns)
    if geometry.columns % island_columns or geometry.rows % island_rows:
        raise ValueError(
            f"{geometry.columns}x{geometry.rows} grid does not tile into "
            f"{island_columns}x{island_rows} rectangular islands; pick a "
            "tiling that divides the mesh (see "
            "repro.core.geometry.DieGeometry.for_cores)"
        )
    block_w = geometry.columns // island_columns
    block_h = geometry.rows // island_rows
    assignment = []
    for node in range(geometry.num_nodes):
        column, row = geometry.coordinates(node)
        assignment.append(
            (row // block_h) * island_columns + column // block_w
        )
    return VfiLayout(geometry, tuple(assignment))


def quadrant_clusters(
    geometry: GridGeometry, clusters_per_side: int = 2
) -> VfiLayout:
    """Contiguous square-quadrant islands (the paper's four 4x4 VFIs).

    Cluster ids are row-major over the quadrant grid: on the 8x8 die,
    cluster 0 is the top-left 4x4 block, cluster 1 top-right, cluster 2
    bottom-left, cluster 3 bottom-right.  Square special case of
    :func:`rectangular_clusters`.
    """
    check_positive("clusters_per_side", clusters_per_side)
    return rectangular_clusters(
        geometry, island_rows=clusters_per_side, island_columns=clusters_per_side
    )


def uniform_vf(layout: VfiLayout, point: VfPoint = NOMINAL) -> List[VfPoint]:
    """Same V/F for every island (the NVFI baseline)."""
    return [point] * layout.num_clusters


def cluster_frequency_vector(
    layout: VfiLayout, points: Sequence[VfPoint]
) -> List[float]:
    """Per-node frequency implied by per-cluster points."""
    if len(points) != layout.num_clusters:
        raise ValueError(
            f"{len(points)} V/F points for {layout.num_clusters} clusters"
        )
    return [points[layout.cluster_of(node)].frequency_hz for node in range(layout.geometry.num_nodes)]
