"""Per-island V/F assignment (VFI 1) and bottleneck reassignment (VFI 2).

The paper computes "V/F design parameters using a non-VFI system" (Fig. 3)
but does not give the closed form.  We use cube-root utilization scaling:

    f_island = nearest_ladder( fmax * (u_island / u_ref)^(1/3) )

with ``u_ref = max(largest island utilization, u_full)``: the hottest
island anchors the scale, so an application whose busiest cores run near
peak IPC keeps (near-)nominal frequency on the island that carries the
critical path -- this is what bounds the VFI execution-time penalty at
the ~10% the paper reports.  The cube root reflects that dynamic energy
scales ~ V^2 f ~ f^3, so equalizing the marginal energy-delay across
islands compresses the frequency spread relative to the utilization
spread.  This rule reproduces the structure of the paper's Table 2:
near-homogeneous apps (MM/HIST/PCA) land on 0.9-1.0 V islands, WC and
LR keep nominal-frequency islands for their hot clusters, and Kmeans
spreads down to 0.6 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.vfi.bottleneck import BottleneckReport, detect_bottlenecks, needs_reassignment
from repro.vfi.islands import (
    DVFS_LADDER,
    NOMINAL,
    VfPoint,
    ladder_step_up,
    nearest_ladder_point,
)
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class VfAssignment:
    """V/F per island, with provenance."""

    points: Tuple[VfPoint, ...]
    island_utilization: Tuple[float, ...]
    reassigned_islands: Tuple[int, ...] = ()

    @property
    def num_islands(self) -> int:
        return len(self.points)

    @property
    def fmax_hz(self) -> float:
        return max(point.frequency_hz for point in self.points)

    def frequencies_hz(self) -> List[float]:
        return [point.frequency_hz for point in self.points]

    def voltages_v(self) -> List[float]:
        return [point.voltage_v for point in self.points]

    def labels(self) -> List[str]:
        return [point.label for point in self.points]


def island_utilizations(
    utilization: Sequence[float], assignment: Sequence[int], num_islands: int
) -> np.ndarray:
    """Mean utilization per island."""
    u = np.asarray(utilization, dtype=float)
    a = np.asarray(assignment, dtype=int)
    if len(u) != len(a):
        raise ValueError("utilization / assignment length mismatch")
    means = np.zeros(num_islands)
    for island in range(num_islands):
        mask = a == island
        if not mask.any():
            raise ValueError(f"island {island} has no workers")
        means[island] = u[mask].mean()
    return means


def assign_vf(
    utilization: Sequence[float],
    assignment: Sequence[int],
    num_islands: int,
    u_full: float = 0.75,
    ladder: Sequence[VfPoint] = DVFS_LADDER,
) -> VfAssignment:
    """Initial (VFI 1) per-island V/F from the NVFI utilization profile.

    ``u_full`` is the island utilization that warrants nominal frequency;
    islands above it stay at nominal, lower islands scale by the cube
    root of their relative utilization and snap to the DVFS *ladder*
    (the paper's 65 nm ladder by default; the tech axis passes a node's
    derived ladder, whose last point is that node's nominal).
    """
    check_in_range("u_full", u_full, 0.0, 1.0, inclusive=False)
    ladder = tuple(ladder)
    if not ladder:
        raise ValueError("ladder must be non-empty")
    nominal = ladder[-1]
    means = island_utilizations(utilization, assignment, num_islands)
    u_ref = max(float(means.max()), u_full)
    points = []
    for mean in means:
        ratio = (mean / u_ref) ** (1.0 / 3.0) if u_ref > 0 else 1.0
        target_hz = nominal.frequency_hz * min(ratio, 1.0)
        points.append(nearest_ladder_point(target_hz, ladder))
    return VfAssignment(
        points=tuple(points),
        island_utilization=tuple(float(m) for m in means),
    )


def reassign_for_bottlenecks(
    initial: VfAssignment,
    utilization: Sequence[float],
    assignment: Sequence[int],
    report: BottleneckReport = None,
    ladder: Sequence[VfPoint] = DVFS_LADDER,
) -> VfAssignment:
    """VFI 2: raise the V/F of islands hosting bottleneck cores.

    Returns *initial* unchanged when the Sec. 4.2 rule decides no
    reassignment is needed.  Only the island(s) containing bottleneck
    workers move (one ladder step up, saturating at nominal); worker
    placement is untouched "so that the traffic patterns remain
    unchanged".
    """
    if report is None:
        report = detect_bottlenecks(utilization)
    if not needs_reassignment(report):
        return initial
    a = np.asarray(assignment, dtype=int)
    affected = sorted({int(a[worker]) for worker in report.bottleneck_workers})
    points = list(initial.points)
    changed = []
    for island in affected:
        raised = ladder_step_up(points[island], ladder=ladder)
        if raised != points[island]:
            points[island] = raised
            changed.append(island)
    if not changed:
        return initial
    return VfAssignment(
        points=tuple(points),
        island_utilization=initial.island_utilization,
        reassigned_islands=tuple(changed),
    )


def vf_table_row(app_label: str, vfi1: VfAssignment, vfi2: VfAssignment) -> Dict:
    """One row of the paper's Table 2."""
    return {
        "application": app_label,
        "vfi1": vfi1.labels(),
        "vfi2": vfi2.labels(),
        "reassigned": list(vfi2.reassigned_islands),
    }
