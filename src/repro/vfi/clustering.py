"""VFI clustering: the 0-1 quadratic program of Eq. (1).

Minimize, over assignment variables ``X[i, j]`` (core *i* in cluster *j*):

    w_c * sum_{i,j,p,q} X[i,j] X[p,q] f[i,p] phi(j, q)
  + w_u * sum_{i,j} X[i,j] (u[i] - ubar[j])^2

subject to every core in exactly one cluster and all ``m`` clusters of
equal size ``n/m``, where

    phi(j, q) = 1          if j != q   (inter-cluster traffic)
              = 1/sqrt(m)  if j == q   (intra-cluster traffic)

and ``ubar[j]`` is the mean of the *j*-th m-quantile of the sorted
utilization values (so clusters are implicitly ordered by utilization
level).  ``f`` and ``u`` are max-normalized and ``w_c = w_u = 1``
(paper Sec. 4.1).

The paper solves this NP-hard program with Gurobi's branch and bound.
Gurobi is unavailable here, so this module provides:

* :func:`solve_branch_and_bound` -- an exact depth-first branch and bound
  with utilization-cost lower bounds, practical up to ~16 cores (used to
  validate the heuristic);
* :func:`solve_simulated_annealing` -- swap-move annealing from the
  utilization-sorted seed, used for the 64-core instances.  On every
  small instance we tested it reaches the B&B optimum (see
  ``tests/vfi/test_clustering.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, derive_rng


@dataclass
class ClusteringProblem:
    """Inputs of Eq. (1), normalized on construction."""

    traffic: np.ndarray  # f[i, p]: packets/unit-time from i to p
    utilization: np.ndarray  # u[i] in [0, 1]
    num_clusters: int
    comm_weight: float = 1.0
    util_weight: float = 1.0

    def __post_init__(self) -> None:
        self.traffic = np.asarray(self.traffic, dtype=float)
        self.utilization = np.asarray(self.utilization, dtype=float)
        n = len(self.utilization)
        if self.traffic.shape != (n, n):
            raise ValueError(
                f"traffic {self.traffic.shape} does not match {n} cores"
            )
        if n % self.num_clusters:
            raise ValueError(
                f"{n} cores do not divide into {self.num_clusters} equal clusters"
            )
        if (self.traffic < 0).any():
            raise ValueError("traffic must be non-negative")
        # Max-normalize f and u (paper Sec. 4.1).
        t_max = self.traffic.max()
        if t_max > 0:
            self.traffic = self.traffic / t_max
        u_max = self.utilization.max()
        if u_max > 0:
            self.utilization = self.utilization / u_max
        self.cluster_size = n // self.num_clusters
        # ubar[j]: mean of the j-th m-quantile of sorted utilizations.
        # Quantile 0 holds the *highest* utilizations so that cluster ids
        # order islands fast-to-slow (matching Table 2 presentation).
        sorted_u = np.sort(self.utilization)[::-1]
        self.cluster_target_util = np.array(
            [
                sorted_u[j * self.cluster_size : (j + 1) * self.cluster_size].mean()
                for j in range(self.num_clusters)
            ]
        )

    @property
    def num_cores(self) -> int:
        return len(self.utilization)

    def phi(self, j: int, q: int) -> float:
        """Normalized communication cost function, Eq. (2)."""
        if j == q:
            return 1.0 / math.sqrt(self.num_clusters)
        return 1.0


@dataclass
class ClusteringResult:
    assignment: Tuple[int, ...]  # cluster id per core
    cost: float
    method: str
    evaluations: int = 0

    def members(self, cluster: int) -> List[int]:
        return [i for i, c in enumerate(self.assignment) if c == cluster]


def cluster_cost(problem: ClusteringProblem, assignment: Sequence[int]) -> float:
    """Evaluate Eq. (1) for a complete assignment."""
    assignment = np.asarray(assignment, dtype=int)
    if len(assignment) != problem.num_cores:
        raise ValueError("assignment length mismatch")
    counts = np.bincount(assignment, minlength=problem.num_clusters)
    if not (counts == problem.cluster_size).all():
        raise ValueError(f"clusters must have equal size; got counts {counts}")
    m = problem.num_clusters
    one_hot = np.zeros((problem.num_cores, m))
    one_hot[np.arange(problem.num_cores), assignment] = 1.0
    cluster_flow = one_hot.T @ problem.traffic @ one_hot  # m x m
    phi = np.full((m, m), 1.0)
    np.fill_diagonal(phi, 1.0 / math.sqrt(m))
    comm = float((cluster_flow * phi).sum())
    util = float(
        (
            (problem.utilization - problem.cluster_target_util[assignment]) ** 2
        ).sum()
    )
    return problem.comm_weight * comm + problem.util_weight * util


def utilization_sorted_assignment(problem: ClusteringProblem) -> Tuple[int, ...]:
    """Quantile seed: highest-utilization cores in cluster 0, and so on.

    This is the exact minimizer of the utilization half of the objective
    (by construction of ``ubar``), making it the natural SA start point.
    """
    order = np.argsort(-problem.utilization, kind="stable")
    assignment = np.empty(problem.num_cores, dtype=int)
    for rank, core in enumerate(order):
        assignment[core] = rank // problem.cluster_size
    return tuple(int(c) for c in assignment)


# ---------------------------------------------------------------------- #
# Exact branch and bound
# ---------------------------------------------------------------------- #


def solve_branch_and_bound(
    problem: ClusteringProblem,
    max_cores: int = 16,
) -> ClusteringResult:
    """Exact DFS branch and bound over the assignment tree.

    Cores are assigned in order; partial cost accumulates the utilization
    term exactly and the communication term over already-assigned pairs
    (both are lower bounds on the completed cost because every term of
    Eq. (1) is non-negative).  An initial incumbent from the utilization
    seed makes pruning effective.
    """
    n = problem.num_cores
    if n > max_cores:
        raise ValueError(
            f"branch and bound limited to {max_cores} cores (got {n}); "
            "use solve_simulated_annealing for larger instances"
        )
    m = problem.num_clusters
    size = problem.cluster_size
    sym_traffic = problem.traffic + problem.traffic.T
    phi_intra = 1.0 / math.sqrt(m)

    seed = list(utilization_sorted_assignment(problem))
    best_cost = cluster_cost(problem, seed)
    best_assignment = list(seed)
    counts = [0] * m
    assignment = [-1] * n
    evaluations = 0

    util = problem.utilization
    targets = problem.cluster_target_util

    def dfs(core: int, partial_cost: float) -> None:
        nonlocal best_cost, best_assignment, evaluations
        if partial_cost >= best_cost:
            return
        if core == n:
            best_cost = partial_cost
            best_assignment = assignment.copy()
            return
        for cluster in range(m):
            if counts[cluster] == size:
                continue
            evaluations += 1
            increment = problem.util_weight * (util[core] - targets[cluster]) ** 2
            for earlier in range(core):
                weight = sym_traffic[core, earlier]
                if weight == 0.0:
                    continue
                phi = phi_intra if assignment[earlier] == cluster else 1.0
                increment += problem.comm_weight * weight * phi
            assignment[core] = cluster
            counts[cluster] += 1
            dfs(core + 1, partial_cost + increment)
            counts[cluster] -= 1
            assignment[core] = -1

    dfs(0, 0.0)
    return ClusteringResult(
        assignment=tuple(best_assignment),
        cost=best_cost,
        method="branch-and-bound",
        evaluations=evaluations,
    )


# ---------------------------------------------------------------------- #
# Simulated annealing
# ---------------------------------------------------------------------- #


def solve_simulated_annealing(
    problem: ClusteringProblem,
    iterations: int = 4000,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.9985,
    seed: SeedLike = None,
) -> ClusteringResult:
    """Swap-move annealing (preserves the equal-size constraint by
    construction).  Deterministic given *seed*."""
    rng = derive_rng(seed)
    assignment = np.array(utilization_sorted_assignment(problem), dtype=int)
    current_cost = cluster_cost(problem, assignment)
    best = assignment.copy()
    best_cost = current_cost
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(0.05 * current_cost, 1e-9)
    )
    n = problem.num_cores
    evaluations = 0
    for _ in range(iterations):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if assignment[a] == assignment[b]:
            continue
        candidate = assignment.copy()
        candidate[a], candidate[b] = candidate[b], candidate[a]
        candidate_cost = cluster_cost(problem, candidate)
        evaluations += 1
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-15)):
            assignment, current_cost = candidate, candidate_cost
            if current_cost < best_cost:
                best, best_cost = assignment.copy(), current_cost
        temperature *= cooling
    return ClusteringResult(
        assignment=tuple(int(c) for c in best),
        cost=best_cost,
        method="simulated-annealing",
        evaluations=evaluations,
    )


def solve(
    problem: ClusteringProblem,
    seed: SeedLike = None,
    exact_threshold: int = 12,
) -> ClusteringResult:
    """Dispatch: exact for small instances, annealing otherwise."""
    if problem.num_cores <= exact_threshold:
        return solve_branch_and_bound(problem)
    return solve_simulated_annealing(problem, seed=seed)


def export_lp(problem: ClusteringProblem, name: str = "vfi_clustering") -> str:
    """Serialize Eq. (1) as an LP-format 0-1 quadratic program.

    The paper solves the clustering with Gurobi; this exporter writes the
    exact instance (max-normalized f and u, equal-size constraints) in the
    LP file format Gurobi/CPLEX/SCIP read, so the built-in solvers can be
    cross-checked against a commercial branch-and-bound when one is
    available.  Variable ``x_i_j`` is 1 when core *i* joins cluster *j*.
    """
    n, m = problem.num_cores, problem.num_clusters
    lines = [f"\\ {name}: Eq. (1) VFI clustering, {n} cores, {m} clusters"]
    # Linear part: utilization term sum_ij X_ij (u_i - ubar_j)^2 (X^2 = X
    # for binaries, so it is linear).
    linear_terms = []
    for i in range(n):
        for j in range(m):
            coefficient = problem.util_weight * float(
                (problem.utilization[i] - problem.cluster_target_util[j]) ** 2
            )
            if coefficient != 0.0:
                linear_terms.append(f"{coefficient:+.9g} x_{i}_{j}")
    # Quadratic part: communication term.
    quadratic_terms = []
    for i in range(n):
        for p in range(n):
            weight = float(problem.traffic[i, p])
            if i == p or weight == 0.0:
                continue
            for j in range(m):
                for q in range(m):
                    coefficient = problem.comm_weight * weight * problem.phi(j, q)
                    quadratic_terms.append(
                        f"{2 * coefficient:+.9g} x_{i}_{j} * x_{p}_{q}"
                    )
    lines.append("Minimize")
    objective = " ".join(linear_terms) if linear_terms else "0 x_0_0"
    lines.append(f" obj: {objective}")
    if quadratic_terms:
        lines.append("  + [ " + " ".join(quadratic_terms) + " ] / 2")
    lines.append("Subject To")
    for i in range(n):
        terms = " + ".join(f"x_{i}_{j}" for j in range(m))
        lines.append(f" assign_{i}: {terms} = 1")
    size = problem.cluster_size
    for j in range(m):
        terms = " + ".join(f"x_{i}_{j}" for i in range(n))
        lines.append(f" size_{j}: {terms} = {size}")
    lines.append("Binary")
    for i in range(n):
        for j in range(m):
            lines.append(f" x_{i}_{j}")
    lines.append("End")
    return "\n".join(lines)
