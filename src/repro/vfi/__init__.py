"""Voltage/Frequency Island design: clustering, V/F assignment, bottleneck
reassignment and VFI-aware task-stealing support (paper Sec. 4).

The design flow (paper Fig. 3):

1. characterize per-core utilization ``u`` and the inter-core traffic
   matrix ``f`` on a non-VFI system;
2. solve the 0-1 quadratic program of Eq. (1) to group the 64 workers
   into four equal clusters (:mod:`repro.vfi.clustering`);
3. assign a V/F pair per island from the island's utilization
   (:mod:`repro.vfi.vf_assign`) -- the *VFI 1* system;
4. detect bottleneck cores and, for nearly homogeneous applications,
   raise the bottleneck island's V/F one ladder step -- the *VFI 2*
   system (:mod:`repro.vfi.bottleneck`, Sec. 4.2);
5. cap task stealing on below-fmax cores with Eq. (3)
   (:func:`repro.mapreduce.scheduler.vfi_task_cap`, re-exported here).
"""

from repro.mapreduce.scheduler import CappedStealingPolicy, vfi_task_cap
from repro.vfi.bottleneck import BottleneckReport, detect_bottlenecks, needs_reassignment
from repro.vfi.clustering import (
    ClusteringProblem,
    ClusteringResult,
    cluster_cost,
    solve_branch_and_bound,
    solve_simulated_annealing,
    utilization_sorted_assignment,
)
from repro.vfi.islands import (
    DVFS_LADDER,
    VfiLayout,
    VfPoint,
    ladder_step_up,
    nearest_ladder_point,
    quadrant_clusters,
)
from repro.vfi.vf_assign import VfAssignment, assign_vf, reassign_for_bottlenecks

__all__ = [
    "ClusteringProblem",
    "ClusteringResult",
    "cluster_cost",
    "solve_branch_and_bound",
    "solve_simulated_annealing",
    "utilization_sorted_assignment",
    "DVFS_LADDER",
    "VfPoint",
    "VfiLayout",
    "quadrant_clusters",
    "nearest_ladder_point",
    "ladder_step_up",
    "VfAssignment",
    "assign_vf",
    "reassign_for_bottlenecks",
    "BottleneckReport",
    "detect_bottlenecks",
    "needs_reassignment",
    "vfi_task_cap",
    "CappedStealingPolicy",
]
