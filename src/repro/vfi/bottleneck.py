"""Bottleneck-core detection (paper Sec. 4.2).

Certain applications (PCA, HIST, MM) show *nearly homogeneous* core
utilization except for a few bottleneck cores -- the master cores doing
library initialization and the funnel roots of the Merge phase.  When the
clustering places such a core in an island assigned a low V/F, the entire
application slows down.

The reassignment rule derived from the paper:

* an application *needs* reassignment when its non-bottleneck utilization
  is nearly homogeneous **and** its bottleneck-to-average utilization
  ratio is significant (Kmeans/WC are skipped because their utilization
  is heterogeneous -- the QP already places the hot cores in fast
  islands; LR is skipped because it has no meaningful bottleneck);
* reassignment raises the V/F of the islands hosting bottleneck cores by
  one ladder step (1.0 V / 2.5 GHz from 0.9 V / 2.25 GHz in the paper),
  leaving every other island -- and the thread placement, hence the
  traffic pattern -- unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BottleneckReport:
    """Outcome of bottleneck analysis on a utilization profile."""

    bottleneck_workers: List[int]
    average_utilization: float
    bottleneck_utilization: float
    #: Coefficient of variation of the non-bottleneck utilizations.
    body_cv: float

    @property
    def ratio(self) -> float:
        """Bottleneck-to-average busy-utilization ratio (paper Fig. 5)."""
        if self.average_utilization == 0:
            return 0.0
        return self.bottleneck_utilization / self.average_utilization

    @property
    def has_bottleneck(self) -> bool:
        return bool(self.bottleneck_workers)


def detect_bottlenecks(
    utilization: Sequence[float],
    ratio_threshold: float = 1.08,
    max_fraction: float = 0.125,
) -> BottleneckReport:
    """Identify bottleneck workers in a utilization profile.

    A worker is a bottleneck candidate when its utilization exceeds
    ``ratio_threshold`` times the profile's 75th percentile -- the robust
    reference for "what a normally busy core looks like" (the mean is
    dragged down by idle-tail cores; the maximum IS the bottleneck).
    Bottleneck cores are *rare by definition* (master threads, merge
    funnel roots): if more than ``max_fraction`` of the cores clear the
    threshold, the profile is heterogeneous (Kmeans/WC-like), not
    homogeneous-with-outliers, and no bottleneck is reported.
    """
    check_positive("ratio_threshold", ratio_threshold)
    check_positive("max_fraction", max_fraction)
    u = np.asarray(utilization, dtype=float)
    if len(u) == 0:
        raise ValueError("utilization profile is empty")
    if (u < 0).any() or (u > 1.0 + 1e-9).any():
        raise ValueError("utilizations must be in [0, 1]")
    mean = float(u.mean())
    body_ref = float(np.percentile(u, 75))
    threshold = ratio_threshold * body_ref
    limit = max(1, int(len(u) * max_fraction))
    all_candidates = [int(i) for i in np.argsort(-u) if u[i] > threshold]
    isolated = 0 < len(all_candidates) <= limit
    candidates = all_candidates if isolated else []
    if candidates:
        body = np.delete(u, candidates)
        bottleneck_util = float(u[candidates].mean())
    else:
        body = u
        bottleneck_util = float(u.max()) if len(u) else 0.0
    body_mean = float(body.mean()) if len(body) else 0.0
    body_cv = float(body.std() / body_mean) if body_mean > 0 else 0.0
    return BottleneckReport(
        bottleneck_workers=candidates,
        average_utilization=mean,
        bottleneck_utilization=bottleneck_util,
        body_cv=body_cv,
    )


def needs_reassignment(
    report: BottleneckReport,
    homogeneity_cv: float = 0.20,
    min_ratio: float = 1.10,
) -> bool:
    """Sec. 4.2 decision rule: homogeneous body + significant bottleneck.

    Heterogeneous profiles (high body CV, e.g. Kmeans/WC) are left to the
    QP, which already co-locates hot workers in fast islands; profiles
    without a real bottleneck (LR) need no action either.
    """
    check_positive("homogeneity_cv", homogeneity_cv)
    check_positive("min_ratio", min_ratio)
    return (
        report.has_bottleneck
        and report.body_cv <= homogeneity_cv
        and report.ratio >= min_ratio
    )
