"""Plain-text tables (paper Tables 1 and 2) and ASCII bar helpers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.apps.registry import paper_dataset_table
from repro.vfi.vf_assign import vf_table_row


def format_table(rows: Sequence[Mapping], columns: Sequence[str] = None) -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    reference: float = None,
) -> str:
    """One horizontal ASCII bar per entry, scaled to *reference* (or max)."""
    if not values:
        return "(no data)"
    scale = reference if reference is not None else max(values.values())
    if scale <= 0:
        scale = 1.0
    lines = []
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * value / scale)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)


def table1_datasets() -> str:
    """Paper Table 1: applications analyzed and datasets used."""
    rows = paper_dataset_table()
    return format_table(
        rows, columns=["application", "input_dataset", "iterations"]
    )


def table2_vf_assignments(studies: Iterable) -> str:
    """Paper Table 2: V/F assignments per island, VFI 1 and VFI 2."""
    rows: List[Dict] = []
    for study in studies:
        row = vf_table_row(study.label, study.design.vfi1, study.design.vfi2)
        flat = {"application": row["application"]}
        for island, label in enumerate(row["vfi1"]):
            flat[f"cluster{island + 1}"] = label
        flat["vfi2"] = ", ".join(
            f"c{i + 1}:{label}"
            for i, label in enumerate(row["vfi2"])
            if row["vfi1"][i] != label
        ) or "(unchanged)"
        rows.append(flat)
    return format_table(rows)
