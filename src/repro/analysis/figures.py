"""Figure-series builders: one function per paper figure.

Every builder consumes :class:`repro.core.experiment.AppStudy` objects
(memoized by :func:`repro.core.experiment.run_app_study`) and returns
plain data -- the same series the paper plots -- so benchmarks can both
assert on the *shape* and print the numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    AppStudy,
    run_app_study,
)
from repro.core.platforms import build_vfi_winoc
from repro.mapreduce.tasks import Phase
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed

#: Paper Fig. 2 order.
FIG2_APPS = ("kmeans", "pca", "matrix_multiply", "histogram")
#: Paper Fig. 4/5 apps (the three needing V/F reassignment).
FIG4_APPS = ("pca", "histogram", "matrix_multiply")
#: Paper Fig. 7/8 present all six.
ALL_APPS = (
    "histogram",
    "linear_regression",
    "wordcount",
    "pca",
    "kmeans",
    "matrix_multiply",
)


def figure2_utilization(
    studies: Mapping[str, AppStudy]
) -> Dict[str, np.ndarray]:
    """Fig. 2: per-core utilization, sorted highest to lowest, per app."""
    series = {}
    for name in FIG2_APPS:
        study = studies[name]
        utilization = study.result(NVFI_MESH).utilization
        series[study.label] = np.sort(utilization)[::-1]
    return series


def figure4_vfi1_vs_vfi2(
    studies: Mapping[str, AppStudy]
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Fig. 4: normalized execution time (a) and EDP (b), VFI1 vs VFI2."""
    out: Dict[str, Dict[str, Tuple[float, float]]] = {
        "execution_time": {},
        "edp": {},
    }
    for name in FIG4_APPS:
        study = studies[name]
        out["execution_time"][study.label] = (
            study.normalized_time(VFI1_MESH),
            study.normalized_time(VFI2_MESH),
        )
        out["edp"][study.label] = (
            study.normalized_edp(VFI1_MESH),
            study.normalized_edp(VFI2_MESH),
        )
    return out


def figure5_bottleneck_utilization(
    studies: Mapping[str, AppStudy]
) -> Dict[str, Tuple[float, float]]:
    """Fig. 5: (average, bottleneck) core utilization per app."""
    out = {}
    for name in FIG4_APPS:
        study = studies[name]
        report = study.design.bottleneck
        out[study.label] = (
            report.average_utilization,
            report.bottleneck_utilization,
        )
    return out


def figure6_placement_comparison(
    app_names: Iterable[str] = ALL_APPS,
    scale: float = 1.0,
    seed: int = 7,
) -> Dict[str, float]:
    """Fig. 6: network EDP of max-wireless-utilization relative to
    min-hop-count placement (values < 1 mean max-wireless wins)."""
    out = {}
    for name in app_names:
        study = run_app_study(name, scale=scale, seed=seed)
        max_wireless = study.result(VFI2_WINOC)
        # Build and simulate the min-hop-count methodology on the same
        # design and trace.
        rate = (
            study.design.traffic
            * 8.0
            / study.result(NVFI_MESH).total_time_s
        )
        platform = build_vfi_winoc(
            study.design,
            "vfi2",
            methodology="min_hop",
            seed=spawn_seed(seed, name, "winoc"),
            traffic_rate_bps=rate,
        )
        min_hop = simulate(
            platform,
            study.trace,
            locality=study.app.profile.l2_locality,
            stealing_policy=study.design.stealing_policy("vfi2"),
        )
        out[study.label] = max_wireless.network_edp / min_hop.network_edp
    return out


def figure7_phase_times(
    studies: Mapping[str, AppStudy]
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 7: per-phase execution time, normalized to the app's NVFI
    total, for VFI mesh and VFI WiNoC.

    Returns ``{app_label: {config_label: {phase: normalized_time}}}``.
    """
    phase_order = (Phase.MAP, Phase.REDUCE, Phase.MERGE, Phase.LIB_INIT)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in ALL_APPS:
        study = studies[name]
        baseline = study.result(NVFI_MESH).total_time_s
        per_config = {}
        for config, label in ((VFI2_MESH, "VFI Mesh"), (VFI2_WINOC, "VFI WiNoC")):
            result = study.result(config)
            per_config[label] = {
                str(phase): result.phase_duration_s(phase) / baseline
                for phase in phase_order
            }
        out[study.label] = per_config
    return out


def figure8_full_system_edp(
    studies: Mapping[str, AppStudy]
) -> Dict[str, Tuple[float, float]]:
    """Fig. 8: full-system EDP of (VFI Mesh, VFI WiNoC) relative to NVFI
    mesh, per app."""
    out = {}
    for name in ALL_APPS:
        study = studies[name]
        out[study.label] = (
            study.normalized_edp(VFI2_MESH),
            study.normalized_edp(VFI2_WINOC),
        )
    return out


def collect_studies(
    app_names: Iterable[str] = ALL_APPS,
    scale: float = 1.0,
    seed: int = 7,
    jobs: int = 1,
    cache_dir=None,
    progress=None,
) -> Dict[str, AppStudy]:
    """Run (or fetch cached) studies for *app_names*.

    With the defaults this is the historical serial, process-memoized
    path.  ``jobs > 1`` fans the apps out across worker processes and
    ``cache_dir`` persists each study to the orchestrator's on-disk
    cache, so repeated report/benchmark runs resolve instantly; both go
    through :func:`repro.orchestrator.run_campaign`.
    """
    from repro.orchestrator import StudySpec, run_campaign

    specs = {
        name: StudySpec(app=name, scale=scale, seed=seed)
        for name in app_names
    }
    campaign = run_campaign(
        specs.values(), jobs=jobs, cache=cache_dir, progress=progress
    )
    campaign.raise_failures()
    return {name: campaign.study(spec) for name, spec in specs.items()}


def average_edp_savings(studies: Mapping[str, AppStudy]) -> Tuple[float, float]:
    """(average, maximum) WiNoC EDP savings vs NVFI mesh (paper: 33.7%,
    66.2%)."""
    savings = [
        1.0 - studies[name].normalized_edp(VFI2_WINOC) for name in ALL_APPS
    ]
    return float(np.mean(savings)), float(np.max(savings))
