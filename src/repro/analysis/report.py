"""Markdown report generation.

:func:`generate_report` runs (or reuses) the six application studies and
renders a complete paper-vs-measured markdown report -- the programmatic
counterpart of ``EXPERIMENTS.md`` -- suitable for CI artifacts or for
checking a modified configuration against the paper's shapes.
"""

from __future__ import annotations

import io
from typing import Mapping, Optional

from repro.analysis.figures import (
    ALL_APPS,
    average_edp_savings,
    collect_studies,
    figure2_utilization,
    figure4_vfi1_vs_vfi2,
    figure5_bottleneck_utilization,
    figure7_phase_times,
    figure8_full_system_edp,
)
from repro.analysis.tables import table1_datasets, table2_vf_assignments
from repro.core.experiment import AppStudy, NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC


def _md_table(rows, columns) -> str:
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = "\n".join(
        "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
        for row in rows
    )
    return f"{header}\n{rule}\n{body}"


#: Column order of the degradation table (shared by report and CLI).
DEGRADATION_COLUMNS = (
    "config",
    "makespan x",
    "energy %",
    "EDP x",
    "re-executed",
    "substituted",
    "lost busy (ms)",
    "events",
)


def degradation_rows(clean: AppStudy, faulted: AppStudy) -> list:
    """Per-configuration degradation of *faulted* relative to *clean*.

    Both studies must come from the same (app, scale, seed, workers)
    pipeline -- only the fault plan may differ.  Configurations present
    in both are compared; each row quantifies makespan inflation, energy
    delta, EDP inflation and the resilience work the run performed.
    """
    rows = []
    for config in (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC):
        if config not in clean.results or config not in faulted.results:
            continue
        base = clean.result(config)
        hurt = faulted.result(config)
        impact = hurt.faults
        row = {
            "config": config,
            "makespan x": f"{hurt.total_time_s / base.total_time_s:.3f}",
            "energy %": f"{(hurt.total_energy_j / base.total_energy_j - 1) * 100:+.1f}",
            "EDP x": f"{hurt.edp / base.edp:.3f}",
            "re-executed": 0,
            "substituted": 0,
            "lost busy (ms)": "0.0",
            "events": "0/0 skipped",
        }
        if impact is not None:
            row["re-executed"] = impact.reexecuted_tasks
            row["substituted"] = impact.substituted_tasks
            row["lost busy (ms)"] = f"{impact.lost_busy_s * 1e3:.1f}"
            row["events"] = (
                f"{len(impact.events_applied)}/{impact.events_skipped} skipped"
            )
        rows.append(row)
    return rows


def degradation_section(
    clean_studies: Mapping[str, AppStudy],
    faulted_studies: Mapping[str, AppStudy],
) -> str:
    """Markdown "fault degradation" section comparing two study sets.

    *clean_studies* and *faulted_studies* map app names to studies run
    without and with a fault plan (the orchestrator's ``fault_plans``
    axis produces exactly this pairing).  Apps present in both are
    reported; the section states what broke (from the first faulted
    result's impact record) and tabulates the damage per configuration.
    """
    out = io.StringIO()
    write = out.write
    write("## Fault degradation\n\n")
    wrote_any = False
    for name, faulted in faulted_studies.items():
        if name not in clean_studies:
            continue
        clean = clean_studies[name]
        rows = degradation_rows(clean, faulted)
        if not rows:
            continue
        wrote_any = True
        impact = next(
            (r.faults for r in faulted.results.values() if r.faults is not None),
            None,
        )
        write(f"### {faulted.label}\n\n")
        if impact is not None:
            notes = []
            if impact.failed_workers:
                notes.append(f"failed cores {impact.failed_workers}")
            if impact.throttled_islands:
                notes.append(f"throttled islands {impact.throttled_islands}")
            if impact.bottleneck_reassignments:
                notes.append(
                    f"{impact.bottleneck_reassignments} bottleneck "
                    "reassignment(s)"
                )
            if notes:
                write("Injected: " + ", ".join(notes) + ".\n\n")
        write(_md_table(rows, list(DEGRADATION_COLUMNS)) + "\n\n")
    if not wrote_any:
        write("No app present in both the clean and the faulted study set.\n\n")
    return out.getvalue()


#: Column order of the cluster policy-comparison table (report + CLI).
CLUSTER_COLUMNS = (
    "policy",
    "done/rej",
    "retry/preempt",
    "throughput (/ks)",
    "goodput (/ks)",
    "latency p50/p95 (s)",
    "wait mean (s)",
    "deadline hit",
    "energy (kJ)",
    "fleet EDP (MJ·s)",
)


def cluster_rows(results) -> list:
    """One throughput/latency/energy row per cluster policy run.

    *results* is an iterable of
    :class:`repro.cluster.record.ClusterRunResult`, typically the same
    arrival trace served by every registered policy.
    """
    rows = []
    for result in results:
        report = result.report
        rows.append(
            {
                "policy": result.policy,
                "done/rej": f"{report.completed}/{report.rejected}",
                "retry/preempt": (
                    f"{report.retries}/{report.preemptions}"
                    if report.retries or report.preemptions
                    else "-"
                ),
                "throughput (/ks)": (
                    f"{report.throughput_jobs_per_s * 1e3:.2f}"
                ),
                "goodput (/ks)": (
                    f"{report.goodput_jobs_per_s * 1e3:.2f}"
                ),
                "latency p50/p95 (s)": (
                    f"{report.latency_p50_s:.1f}/{report.latency_p95_s:.1f}"
                ),
                "wait mean (s)": f"{report.queue_wait_mean_s:.1f}",
                "deadline hit": (
                    f"{report.deadlines_met}/{report.deadlined}"
                    if report.deadlined
                    else "n/a"
                ),
                "energy (kJ)": f"{report.total_energy_j / 1e3:.2f}",
                "fleet EDP (MJ·s)": f"{report.fleet_edp / 1e6:.3f}",
            }
        )
    return rows


def cluster_section(results) -> str:
    """Markdown "cluster service" section: per-policy SLO comparison.

    Groups the runs by arrival trace (several policies serving the same
    trace form one comparison table); states the workload and fleet each
    group ran on.
    """
    out = io.StringIO()
    write = out.write
    write("## Cluster service — policy comparison\n\n")
    results = list(results)
    if not results:
        write("No cluster runs recorded.\n\n")
        return out.getvalue()
    by_trace: dict = {}
    for result in results:
        by_trace.setdefault(result.trace.trace_key, []).append(result)
    for grouped in by_trace.values():
        first = grouped[0]
        trace = first.trace
        fleet = first.fleet
        write(
            f"### workload `{trace.name}` (seed {trace.seed}, "
            f"{len(trace)} jobs) on {len(fleet)} × "
            f"{fleet.chips[0].num_workers}-core chips\n\n"
        )
        write(
            f"Queue bound {first.max_queue_depth}; trace "
            f"`{trace.trace_key[:12]}`.\n\n"
        )
        write(_md_table(cluster_rows(grouped), list(CLUSTER_COLUMNS)) + "\n\n")
    return out.getvalue()


#: Column order of the dark-silicon frontier table (report + CLI).
TECH_FRONTIER_COLUMNS = (
    "node",
    "variant",
    "mix",
    "cap (W)",
    "chip peak (W)",
    "active cores",
    "dark %",
    "throughput",
)

#: Default shape of the frontier sweep when none is given: the paper
#: node plus two shrinks, homogeneous OoO vs big.LITTLE, three caps.
TECH_DEFAULT_NODES = ("65nm", "45nm", "32nm")
TECH_DEFAULT_MIXES = ("ooo", "big_little")
TECH_DEFAULT_CAPS_W = (40.0, 80.0, 120.0)


def tech_node_rows(nodes, variant: str = "itrs") -> list:
    """One per-node row: rails, clock, per-core peak power, ladder span."""
    from repro.tech import core_peak_power_w, dvfs_ladder, get_core_type, get_node

    rows = []
    ooo = get_core_type("ooo")
    io = get_core_type("io")
    for node in nodes:
        resolved = get_node(node, variant)
        ladder = dvfs_ladder(resolved)
        rows.append(
            {
                "node": resolved.name,
                "variant": resolved.variant,
                "Vdd (V)": f"{resolved.vdd_nominal_v:.2f}",
                "Vth (V)": f"{resolved.vth_v:.2f}",
                "clock (GHz)": f"{resolved.frequency_nominal_hz / 1e9:.2f}",
                "OoO peak (W)": f"{core_peak_power_w(resolved, ooo):.2f}",
                "IO peak (W)": f"{core_peak_power_w(resolved, io):.2f}",
                "ladder (V)": f"{ladder[0].voltage_v:.2f}-{ladder[-1].voltage_v:.2f}",
                "area x": f"{resolved.area_scale:.2f}",
            }
        )
    return rows


def tech_frontier_rows(
    nodes=TECH_DEFAULT_NODES,
    mixes=TECH_DEFAULT_MIXES,
    caps_w=TECH_DEFAULT_CAPS_W,
    num_cores: int = 64,
    variant: str = "itrs",
) -> list:
    """Formatted dark-silicon frontier rows (shared by report and CLI)."""
    from repro.tech import frontier

    rows = []
    for raw in frontier(nodes, mixes, caps_w, num_cores=num_cores, variant=variant):
        rows.append(
            {
                "node": raw["node"],
                "variant": raw["variant"],
                "mix": raw["mix"],
                "cap (W)": f"{raw['cap_w']:g}",
                "chip peak (W)": f"{raw['chip_peak_w']:.1f}",
                "active cores": f"{raw['active_cores']}/{num_cores}",
                "dark %": f"{raw['dark_fraction'] * 100:.1f}",
                "throughput": f"{raw['throughput']:.2f}",
            }
        )
    return rows


def tech_study_rows(tech_studies: Mapping[str, AppStudy]) -> list:
    """One measured row per technology configuration of the same app.

    *tech_studies* maps a tech label (``"default (65nm)"`` or a
    :attr:`repro.tech.TechSpec.label`) to the study run under it.
    """
    rows = []
    for label, study in tech_studies.items():
        result = study.result(VFI2_WINOC)
        rows.append(
            {
                "tech": label,
                "config": VFI2_WINOC,
                "time (ms)": f"{result.total_time_s * 1e3:.1f}",
                "energy (J)": f"{result.total_energy_j:.1f}",
                "EDP": f"{result.edp:.3g}",
                "time vs NVFI": f"{study.normalized_time(VFI2_WINOC):.3f}",
                "EDP vs NVFI": f"{study.normalized_edp(VFI2_WINOC):.3f}",
            }
        )
    return rows


def tech_section(
    tech_studies: Optional[Mapping[str, AppStudy]] = None,
    nodes=TECH_DEFAULT_NODES,
    mixes=TECH_DEFAULT_MIXES,
    caps_w=TECH_DEFAULT_CAPS_W,
    num_cores: int = 64,
    variant: str = "itrs",
) -> str:
    """Markdown "technology frontier" section: nodes + dark silicon.

    Renders the per-node technology table and the dark-silicon frontier
    (active-core ceiling and throughput proxy per node x core mix x
    power cap).  When *tech_studies* maps tech labels to measured
    studies of one app (the ``repro tech frontier`` sweep produces
    exactly this), the section closes with the measured comparison.
    """
    out = io.StringIO()
    write = out.write
    write("## Technology frontier — nodes, core mixes and dark silicon\n\n")
    write(
        "Scale factors are relative to the paper's 65 nm out-of-order "
        "platform (1.00 V, 2.5 GHz, 1.9 W dynamic + 0.25 W leakage per "
        "core); the 65 nm row is the identity, so the default pipeline "
        "is untouched by the tech axis.\n\n"
    )
    node_columns = [
        "node", "variant", "Vdd (V)", "Vth (V)", "clock (GHz)",
        "OoO peak (W)", "IO peak (W)", "ladder (V)", "area x",
    ]
    write(_md_table(tech_node_rows(nodes, variant), node_columns) + "\n\n")
    write(
        f"Dark-silicon frontier on a {num_cores}-core die: the largest "
        "active set whose summed peak power fits the cap (cheapest cores "
        "first), and its aggregate throughput in units of one 65 nm OoO "
        "core at nominal clock.\n\n"
    )
    write(
        _md_table(
            tech_frontier_rows(nodes, mixes, caps_w, num_cores, variant),
            list(TECH_FRONTIER_COLUMNS),
        )
        + "\n\n"
    )
    if variant == "itrs":
        write(
            "The same frontier under conservative (post-Dennard) scaling: "
            "leakage falls much more slowly with the node, so the dark "
            "fraction grows faster than the ITRS projection above.\n\n"
        )
        write(
            _md_table(
                tech_frontier_rows(nodes, mixes, caps_w, num_cores, "cons"),
                list(TECH_FRONTIER_COLUMNS),
            )
            + "\n\n"
        )
    if tech_studies:
        first = next(iter(tech_studies.values()))
        write(f"### Measured sweep — {first.label}\n\n")
        write(
            _md_table(
                tech_study_rows(tech_studies),
                [
                    "tech", "config", "time (ms)", "energy (J)", "EDP",
                    "time vs NVFI", "EDP vs NVFI",
                ],
            )
            + "\n\n"
        )
    return out.getvalue()


#: Column order of the measured power-cap frontier table (report + CLI).
POWER_FRONTIER_COLUMNS = (
    "cap (W)",
    "time (ms)",
    "throughput (/s)",
    "energy (J)",
    "EDP",
    "peak power (W)",
    "throttle events",
    "throttled islands",
    "throttled (s)",
    "unmet",
)


def power_frontier_table(
    power_studies: Mapping[Optional[float], AppStudy],
    config: str = VFI2_WINOC,
) -> list:
    """Formatted cap-sweep frontier rows (shared by report and CLI).

    *power_studies* maps the chip cap in watts (``None`` = uncapped
    baseline) to the study run under it -- exactly what
    :func:`repro.power.run_cap_sweep` returns.
    """
    from repro.power import frontier_rows

    rows = []
    for raw in frontier_rows(power_studies, config=config):
        rows.append(
            {
                "cap (W)": (
                    "uncapped" if raw["cap_w"] is None else f"{raw['cap_w']:g}"
                ),
                "time (ms)": f"{raw['time_s'] * 1e3:.1f}",
                "throughput (/s)": f"{raw['throughput_per_s']:.4f}",
                "energy (J)": f"{raw['energy_j']:.1f}",
                "EDP": f"{raw['edp']:.3g}",
                "peak power (W)": (
                    "n/a"
                    if raw["peak_power_w"] is None
                    else f"{raw['peak_power_w']:.1f}"
                ),
                "throttle events": raw["throttle_events"],
                "throttled islands": (
                    ",".join(str(i) for i in raw["throttled_islands"]) or "-"
                ),
                "throttled (s)": f"{raw['throttled_s']:.2f}",
                "unmet": raw["unmet_boundaries"],
            }
        )
    return rows


def power_residency_rows(
    power_studies: Mapping[Optional[float], AppStudy],
    config: str = VFI2_WINOC,
) -> list:
    """Island-seconds of DVFS-ladder residency per cap level.

    One row per capped study; one column per ladder step observed in any
    run (step indices ascend toward nominal).
    """
    impacts = []
    for cap_w, study in power_studies.items():
        if cap_w is None:
            continue
        impacts.append((cap_w, study.result(config).power))
    impacts.sort(key=lambda item: -item[0])
    steps = sorted({
        step for _, impact in impacts if impact is not None
        for step in impact.residency_s
    })
    rows = []
    for cap_w, impact in impacts:
        row = {"cap (W)": f"{cap_w:g}"}
        for step in steps:
            seconds = 0.0 if impact is None else impact.residency_s.get(step, 0.0)
            row[f"step {step} (s)"] = f"{seconds:.2f}"
        rows.append(row)
    return rows


def power_section(
    power_studies: Mapping[Optional[float], AppStudy],
    config: str = VFI2_WINOC,
) -> str:
    """Markdown "power-cap frontier" section: measured sweep + residency.

    *power_studies* maps chip caps in watts (``None`` = uncapped) to
    studies of the same app/scale/seed -- the
    :func:`repro.power.run_cap_sweep` output.  The frontier table walks
    the caps loosest-first, so throughput should read non-increasing
    down the column; the residency table shows where the governor parked
    each capped run on the DVFS ladder.
    """
    out = io.StringIO()
    write = out.write
    write("## Power-cap frontier — throughput/energy/EDP under caps\n\n")
    if not power_studies:
        write("No cap sweep recorded.\n\n")
        return out.getvalue()
    first = next(iter(power_studies.values()))
    write(
        f"Cap sweep of **{first.label}** ({config}): the governor "
        "re-decides island V/F at every phase boundary, stepping the "
        "cheapest-throughput-loss island down the ladder until the "
        "estimated chip power fits the cap (master islands shielded), "
        "and re-raising when activity headroom returns.\n\n"
    )
    write(
        _md_table(
            power_frontier_table(power_studies, config),
            list(POWER_FRONTIER_COLUMNS),
        )
        + "\n\n"
    )
    residency = power_residency_rows(power_studies, config)
    if residency:
        columns = list(residency[0].keys())
        write(
            "DVFS-ladder residency per cap (island-seconds at each ladder "
            "step; higher steps are faster):\n\n"
        )
        write(_md_table(residency, columns) + "\n\n")
    return out.getvalue()


def generate_report(
    studies: Optional[Mapping[str, AppStudy]] = None,
    scale: float = 1.0,
    seed: int = 7,
    jobs: int = 1,
    cache_dir=None,
    progress=None,
    tracer=None,
    faulted_studies: Optional[Mapping[str, AppStudy]] = None,
    cluster_results=None,
    tech_studies: Optional[Mapping[str, AppStudy]] = None,
    power_studies: Optional[Mapping[Optional[float], AppStudy]] = None,
) -> str:
    """Render the full reproduction report as markdown.

    ``jobs``/``cache_dir``/``progress`` are forwarded to
    :func:`repro.analysis.figures.collect_studies` (and are ignored when
    pre-built *studies* are passed in).  When a
    :class:`repro.telemetry.RecordingTracer` that observed the runs is
    passed as *tracer*, the report closes with the measured per-phase
    timelines from its spans instead of leaving phase timing to be
    recomputed from aggregate statistics.  *faulted_studies* (apps run
    under a fault plan, keyed like *studies*) appends the fault
    degradation section.  *cluster_results* (an iterable of
    :class:`repro.cluster.record.ClusterRunResult`) appends the cluster
    service policy-comparison section.  *tech_studies* (one app measured
    under several technology configurations, keyed by tech label)
    appends the technology-frontier / dark-silicon section.
    *power_studies* (one app measured under a sweep of chip power caps,
    keyed by the cap in watts with ``None`` for the uncapped baseline --
    the :func:`repro.power.run_cap_sweep` output) appends the power-cap
    frontier section.
    """
    if studies is None:
        studies = collect_studies(
            scale=scale, seed=seed, jobs=jobs, cache_dir=cache_dir,
            progress=progress,
        )
    out = io.StringIO()
    write = out.write

    write("# Reproduction report\n\n")
    write(
        "Generated by `repro.analysis.report.generate_report` "
        f"(scale={scale}, seed={seed}).\n\n"
    )

    write("## Table 1 — applications and datasets\n\n")
    write("```\n" + table1_datasets() + "\n```\n\n")

    write("## Table 2 — V/F assignments\n\n")
    write("```\n" + table2_vf_assignments(studies.values()) + "\n```\n\n")

    write("## Figure 2 — core utilization profiles (NVFI mesh)\n\n")
    rows = []
    for label, values in figure2_utilization(studies).items():
        rows.append(
            {
                "app": label,
                "mean": f"{values.mean():.3f}",
                "max": f"{values.max():.3f}",
                "cv": f"{values.std() / values.mean():.3f}",
            }
        )
    write(_md_table(rows, ["app", "mean", "max", "cv"]) + "\n\n")

    write("## Figure 4 — VFI 1 vs VFI 2 (normalized to NVFI mesh)\n\n")
    fig4 = figure4_vfi1_vs_vfi2(studies)
    rows = [
        {
            "app": label,
            "time VFI1": f"{fig4['execution_time'][label][0]:.3f}",
            "time VFI2": f"{fig4['execution_time'][label][1]:.3f}",
            "EDP VFI1": f"{fig4['edp'][label][0]:.3f}",
            "EDP VFI2": f"{fig4['edp'][label][1]:.3f}",
        }
        for label in fig4["execution_time"]
    ]
    write(
        _md_table(rows, ["app", "time VFI1", "time VFI2", "EDP VFI1", "EDP VFI2"])
        + "\n\n"
    )

    write("## Figure 5 — bottleneck vs average utilization\n\n")
    rows = [
        {
            "app": label,
            "average": f"{avg:.3f}",
            "bottleneck": f"{hot:.3f}",
            "ratio": f"{hot / avg:.2f}",
        }
        for label, (avg, hot) in figure5_bottleneck_utilization(studies).items()
    ]
    write(_md_table(rows, ["app", "average", "bottleneck", "ratio"]) + "\n\n")

    write("## Figure 7 — per-phase execution time (normalized)\n\n")
    rows = []
    for app_label, configs in figure7_phase_times(studies).items():
        for config_label, phases in configs.items():
            rows.append(
                {
                    "app": app_label,
                    "config": config_label,
                    **{k: f"{v:.3f}" for k, v in phases.items()},
                    "total": f"{sum(phases.values()):.3f}",
                }
            )
    write(
        _md_table(
            rows,
            ["app", "config", "map", "reduce", "merge", "lib_init", "total"],
        )
        + "\n\n"
    )

    write("## Figure 8 — full-system EDP vs NVFI mesh\n\n")
    rows = [
        {"app": label, "VFI Mesh": f"{mesh:.3f}", "VFI WiNoC": f"{winoc:.3f}"}
        for label, (mesh, winoc) in figure8_full_system_edp(studies).items()
    ]
    write(_md_table(rows, ["app", "VFI Mesh", "VFI WiNoC"]) + "\n\n")
    average, maximum = average_edp_savings(studies)
    write(
        f"WiNoC EDP savings vs NVFI mesh: **average {average * 100:.1f}%** "
        f"(paper: 33.7%), **max {maximum * 100:.1f}%** (paper: 66.2%).\n\n"
    )

    write("## Per-configuration summary\n\n")
    rows = []
    for name in ALL_APPS:
        study = studies[name]
        for config in (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC):
            if config not in study.results:
                continue
            result = study.result(config)
            rows.append(
                {
                    "app": study.label,
                    "config": config,
                    "time (ms)": f"{result.total_time_s * 1e3:.1f}",
                    "energy (J)": f"{result.total_energy_j:.1f}",
                    "EDP": f"{result.edp:.3g}",
                    "avg hops": f"{result.network.average_hops:.2f}",
                    "wireless %": f"{result.network.wireless_fraction * 100:.1f}",
                }
            )
    write(
        _md_table(
            rows,
            ["app", "config", "time (ms)", "energy (J)", "EDP", "avg hops", "wireless %"],
        )
        + "\n"
    )

    if tracer is not None and getattr(tracer, "enabled", False):
        from repro.telemetry.summary import PHASE_ORDER, phase_summary

        measured = phase_summary(tracer)
        if measured:
            write("\n## Telemetry — measured per-phase timelines\n\n")
            write(
                "Recorded by `repro.telemetry` during the simulations "
                "above (simulated time per platform, summed over all "
                "traced runs: every iteration of every app).\n\n"
            )
            rows = []
            for platform, phases in measured.items():
                rows.append(
                    {
                        "platform": platform,
                        **{
                            phase: f"{phases.get(phase, 0.0) * 1e3:.3f}"
                            for phase in PHASE_ORDER
                        },
                        "total (ms)": f"{sum(phases.values()) * 1e3:.3f}",
                    }
                )
            write(
                _md_table(rows, ["platform", *PHASE_ORDER, "total (ms)"]) + "\n"
            )

    if faulted_studies:
        write("\n")
        write(degradation_section(studies, faulted_studies))
    if cluster_results:
        write("\n")
        write(cluster_section(cluster_results))
    if tech_studies:
        write("\n")
        write(tech_section(tech_studies))
    if power_studies:
        write("\n")
        write(power_section(power_studies))
    return out.getvalue()
