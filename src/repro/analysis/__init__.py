"""Result analysis: table formatting and figure-series builders.

Each paper table/figure has a builder that turns :class:`AppStudy`
results into plain data structures (dicts of floats / numpy arrays), plus
ASCII renderers so benchmarks and examples can print the same rows/series
the paper reports.
"""

from repro.analysis.figures import (
    figure2_utilization,
    figure4_vfi1_vs_vfi2,
    figure5_bottleneck_utilization,
    figure6_placement_comparison,
    figure7_phase_times,
    figure8_full_system_edp,
)
from repro.analysis.report import generate_report
from repro.analysis.tables import (
    ascii_bars,
    format_table,
    table1_datasets,
    table2_vf_assignments,
)

__all__ = [
    "generate_report",
    "format_table",
    "ascii_bars",
    "table1_datasets",
    "table2_vf_assignments",
    "figure2_utilization",
    "figure4_vfi1_vs_vfi2",
    "figure5_bottleneck_utilization",
    "figure6_placement_comparison",
    "figure7_phase_times",
    "figure8_full_system_edp",
]
