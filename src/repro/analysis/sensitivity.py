"""Sensitivity of the headline conclusions to calibrated constants.

The substituted power/energy models carry calibrated 65-nm constants
(core dynamic/leakage watts, pJ/bit wire and wireless energies).  The
paper's qualitative conclusions should not hinge on their exact values;
this module re-simulates a study's configurations under perturbed
constants and reports how the normalized EDP ordering responds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.experiment import AppStudy, NVFI_MESH, VFI2_MESH, VFI2_WINOC
from repro.core.platforms import build_nvfi_mesh, build_vfi_mesh, build_vfi_winoc, geometry_for
from repro.energy.core_power import CorePowerParams
from repro.noc.energy import NocEnergyParams
from repro.sim.system import simulate
from repro.utils.rng import spawn_seed

#: The constants the sensitivity sweep perturbs, with the attribute they
#: live on: (params-class, attribute).
PERTURBABLE = {
    "core_dynamic": ("core", "dynamic_w_nominal"),
    "core_leakage": ("core", "leakage_w_nominal"),
    "wire_energy": ("noc", "wire_pj_per_bit_per_mm"),
    "wireless_energy": ("noc", "wireless_pj_per_bit"),
    "router_energy": ("noc", "router_pj_per_bit"),
}


@dataclass
class SensitivityRow:
    parameter: str
    multiplier: float
    #: normalized (to this variant's NVFI mesh) EDP per configuration
    vfi_mesh_edp: float
    vfi_winoc_edp: float

    @property
    def winoc_beats_mesh(self) -> bool:
        return self.vfi_winoc_edp < self.vfi_mesh_edp

    @property
    def vfi_saves_edp(self) -> bool:
        return self.vfi_mesh_edp < 1.0


def _perturbed_params(parameter: str, multiplier: float):
    domain, attribute = PERTURBABLE[parameter]
    core = CorePowerParams()
    noc = NocEnergyParams()
    if domain == "core":
        core = replace(core, **{attribute: getattr(core, attribute) * multiplier})
    else:
        noc = replace(noc, **{attribute: getattr(noc, attribute) * multiplier})
    return core, noc


def resimulate_with_power(
    study: AppStudy,
    core_power_params: Optional[CorePowerParams] = None,
    noc_energy_params: Optional[NocEnergyParams] = None,
    seed: int = 7,
) -> Dict[str, float]:
    """Re-simulate NVFI mesh / VFI2 mesh / VFI2 WiNoC with new power
    constants; return each VFI config's EDP normalized to the variant's
    own NVFI baseline."""
    app = study.app
    name = app.profile.name
    geometry = geometry_for(study.trace.num_workers)
    locality = app.profile.l2_locality
    rate = study.design.traffic * 8.0 / study.result(NVFI_MESH).total_time_s

    def adjust(platform):
        return platform.with_power(core_power_params, noc_energy_params)

    nvfi = simulate(adjust(build_nvfi_mesh(geometry)), study.trace, locality=locality)
    mesh = simulate(
        adjust(
            build_vfi_mesh(
                study.design, "vfi2", geometry=geometry,
                seed=spawn_seed(seed, name, "mapping"),
            )
        ),
        study.trace,
        locality=locality,
        stealing_policy=study.design.stealing_policy("vfi2"),
    )
    winoc = simulate(
        adjust(
            build_vfi_winoc(
                study.design, "vfi2", geometry=geometry,
                seed=spawn_seed(seed, name, "winoc"),
                traffic_rate_bps=rate,
            )
        ),
        study.trace,
        locality=locality,
        stealing_policy=study.design.stealing_policy("vfi2"),
    )
    return {
        VFI2_MESH: mesh.edp / nvfi.edp,
        VFI2_WINOC: winoc.edp / nvfi.edp,
    }


def sensitivity_sweep(
    study: AppStudy,
    multipliers: tuple = (0.5, 2.0),
    parameters: Optional[List[str]] = None,
    seed: int = 7,
) -> List[SensitivityRow]:
    """Perturb each constant by each multiplier and collect the EDPs."""
    rows: List[SensitivityRow] = []
    for parameter in parameters or list(PERTURBABLE):
        for multiplier in multipliers:
            core, noc = _perturbed_params(parameter, multiplier)
            edps = resimulate_with_power(study, core, noc, seed=seed)
            rows.append(
                SensitivityRow(
                    parameter=parameter,
                    multiplier=multiplier,
                    vfi_mesh_edp=edps[VFI2_MESH],
                    vfi_winoc_edp=edps[VFI2_WINOC],
                )
            )
    return rows
