"""Power and energy models: cores (McPAT-style), NoC aggregation, EDP.

The paper feeds GEM5 activity statistics into McPAT for processor power
and uses synthesized-netlist / HSPICE numbers for the network.  Here the
core model is an analytic McPAT-class abstraction -- dynamic power
scaling with ``V^2 f`` and activity, leakage scaling superlinearly with
``V`` -- and the network energy comes from
:class:`repro.noc.energy.NocEnergyModel`.
"""

from repro.energy.core_power import CorePowerModel, CorePowerParams
from repro.energy.metrics import EnergyBreakdown, edp, normalized

__all__ = [
    "CorePowerModel",
    "CorePowerParams",
    "EnergyBreakdown",
    "edp",
    "normalized",
]
