"""Analytic per-core power model (McPAT-class abstraction).

For an out-of-order x86-class core in 65 nm at the paper's nominal
1.0 V / 2.5 GHz we use ~1.9 W peak dynamic and ~0.25 W leakage per core
(64 cores = ~140 W chip at full tilt, consistent with McPAT numbers for
this class of multicore).  The nominal anchors live in
:mod:`repro.tech.nodes` (``BASE_DYNAMIC_W`` / ``BASE_LEAKAGE_W``) and
the defaults here are derived from the 65 nm table entry, so the energy
model and the technology axis can never drift apart; other nodes and
core types come in through :meth:`CorePowerParams.from_tech`.  Scaling:

* dynamic:  P_dyn = P_dyn_nom * a * (V / V_nom)^2 * (f / f_nom)
  with activity ``a`` = 1 when busy, ``idle_activity`` when clock-gated;
* leakage:  P_leak = P_leak_nom * (V / V_nom)^gamma, gamma ~ 2.5
  (subthreshold leakage is superlinear in supply voltage).

Energy over an interval = busy_time * (P_dyn + P_leak)
                        + idle_time * (idle_activity * P_dyn + P_leak).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.tech.cores import CoreType, DEFAULT_CORE, get_core_type
from repro.tech.nodes import (
    BASE_DYNAMIC_W,
    BASE_LEAKAGE_W,
    TechNode,
    nominal_point,
    paper_node,
)
from repro.vfi.islands import NOMINAL, VfPoint
from repro.utils.validation import check_positive, check_probability

#: Defaults of the analytic model that are *not* per-node table entries.
IDLE_ACTIVITY = 0.05
LEAKAGE_GAMMA = 2.5


@dataclass(frozen=True)
class CorePowerParams:
    dynamic_w_nominal: float = BASE_DYNAMIC_W * paper_node().dynamic_scale
    leakage_w_nominal: float = BASE_LEAKAGE_W * paper_node().leakage_scale
    #: Clock-gated idle dynamic activity factor.
    idle_activity: float = IDLE_ACTIVITY
    #: Leakage voltage exponent.
    leakage_gamma: float = LEAKAGE_GAMMA
    nominal: VfPoint = NOMINAL

    def __post_init__(self) -> None:
        check_positive("dynamic_w_nominal", self.dynamic_w_nominal)
        check_positive("leakage_w_nominal", self.leakage_w_nominal, allow_zero=True)
        check_probability("idle_activity", self.idle_activity)
        check_positive("leakage_gamma", self.leakage_gamma)

    @classmethod
    def from_tech(
        cls,
        node: TechNode,
        core_type: Union[str, CoreType, None] = None,
        idle_activity: float = IDLE_ACTIVITY,
        leakage_gamma: float = LEAKAGE_GAMMA,
    ) -> "CorePowerParams":
        """Parameters for one core of *core_type* at *node*'s nominal.

        The node tables scale the 65 nm anchors; the core type then
        multiplies dynamic/leakage on top (the out-of-order baseline is
        the identity).  ``from_tech(paper_node())`` equals the default
        ``CorePowerParams()`` bit for bit.
        """
        if core_type is None:
            core_type = get_core_type(DEFAULT_CORE)
        elif isinstance(core_type, str):
            core_type = get_core_type(core_type)
        return cls(
            dynamic_w_nominal=(
                BASE_DYNAMIC_W * node.dynamic_scale * core_type.dynamic_scale
            ),
            leakage_w_nominal=(
                BASE_LEAKAGE_W * node.leakage_scale * core_type.leakage_scale
            ),
            idle_activity=idle_activity,
            leakage_gamma=leakage_gamma,
            nominal=nominal_point(node),
        )


class CorePowerModel:
    """Power/energy of one core across DVFS operating points."""

    def __init__(self, params: CorePowerParams = CorePowerParams()):
        self.params = params

    def dynamic_power_w(self, point: VfPoint, activity: float = 1.0) -> float:
        """Dynamic power at *point* with the given activity factor."""
        check_probability("activity", activity)
        p = self.params
        v_scale = (point.voltage_v / p.nominal.voltage_v) ** 2
        f_scale = point.frequency_hz / p.nominal.frequency_hz
        return p.dynamic_w_nominal * activity * v_scale * f_scale

    def leakage_power_w(self, point: VfPoint) -> float:
        p = self.params
        v_scale = (point.voltage_v / p.nominal.voltage_v) ** p.leakage_gamma
        return p.leakage_w_nominal * v_scale

    def energy_j(
        self, point: VfPoint, busy_s: float, idle_s: float
    ) -> float:
        """Core energy over an interval split into busy and idle time."""
        if busy_s < 0 or idle_s < 0:
            raise ValueError(
                f"busy_s/idle_s must be >= 0, got {busy_s}, {idle_s}"
            )
        p_busy = self.dynamic_power_w(point, 1.0) + self.leakage_power_w(point)
        p_idle = (
            self.dynamic_power_w(point, self.params.idle_activity)
            + self.leakage_power_w(point)
        )
        return busy_s * p_busy + idle_s * p_idle
