"""Analytic per-core power model (McPAT-class abstraction).

For an out-of-order x86-class core in 65 nm at the paper's nominal
1.0 V / 2.5 GHz we use ~1.9 W peak dynamic and ~0.25 W leakage per core
(64 cores = ~140 W chip at full tilt, consistent with McPAT numbers for
this class of multicore).  Scaling:

* dynamic:  P_dyn = P_dyn_nom * a * (V / V_nom)^2 * (f / f_nom)
  with activity ``a`` = 1 when busy, ``idle_activity`` when clock-gated;
* leakage:  P_leak = P_leak_nom * (V / V_nom)^gamma, gamma ~ 2.5
  (subthreshold leakage is superlinear in supply voltage).

Energy over an interval = busy_time * (P_dyn + P_leak)
                        + idle_time * (idle_activity * P_dyn + P_leak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vfi.islands import NOMINAL, VfPoint
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class CorePowerParams:
    dynamic_w_nominal: float = 1.9
    leakage_w_nominal: float = 0.25
    #: Clock-gated idle dynamic activity factor.
    idle_activity: float = 0.05
    #: Leakage voltage exponent.
    leakage_gamma: float = 2.5
    nominal: VfPoint = NOMINAL

    def __post_init__(self) -> None:
        check_positive("dynamic_w_nominal", self.dynamic_w_nominal)
        check_positive("leakage_w_nominal", self.leakage_w_nominal, allow_zero=True)
        check_probability("idle_activity", self.idle_activity)
        check_positive("leakage_gamma", self.leakage_gamma)


class CorePowerModel:
    """Power/energy of one core across DVFS operating points."""

    def __init__(self, params: CorePowerParams = CorePowerParams()):
        self.params = params

    def dynamic_power_w(self, point: VfPoint, activity: float = 1.0) -> float:
        """Dynamic power at *point* with the given activity factor."""
        check_probability("activity", activity)
        p = self.params
        v_scale = (point.voltage_v / p.nominal.voltage_v) ** 2
        f_scale = point.frequency_hz / p.nominal.frequency_hz
        return p.dynamic_w_nominal * activity * v_scale * f_scale

    def leakage_power_w(self, point: VfPoint) -> float:
        p = self.params
        v_scale = (point.voltage_v / p.nominal.voltage_v) ** p.leakage_gamma
        return p.leakage_w_nominal * v_scale

    def energy_j(
        self, point: VfPoint, busy_s: float, idle_s: float
    ) -> float:
        """Core energy over an interval split into busy and idle time."""
        if busy_s < 0 or idle_s < 0:
            raise ValueError(
                f"busy_s/idle_s must be >= 0, got {busy_s}, {idle_s}"
            )
        p_busy = self.dynamic_power_w(point, 1.0) + self.leakage_power_w(point)
        p_idle = (
            self.dynamic_power_w(point, self.params.idle_activity)
            + self.leakage_power_w(point)
        )
        return busy_s * p_busy + idle_s * p_idle
