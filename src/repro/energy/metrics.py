"""Energy/EDP metrics and normalization helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-delay product: the paper's primary figure of merit."""
    if energy_j < 0 or delay_s < 0:
        raise ValueError(f"energy/delay must be >= 0, got {energy_j}, {delay_s}")
    return energy_j * delay_s


def normalized(value: float, baseline: float) -> float:
    """Value relative to a baseline (the paper normalizes to NVFI mesh)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be > 0, got {baseline}")
    return value / baseline


@dataclass
class EnergyBreakdown:
    """Full-system energy split, in joules."""

    core_dynamic_j: float = 0.0
    core_static_j: float = 0.0
    noc_dynamic_j: float = 0.0
    noc_static_j: float = 0.0

    @property
    def core_j(self) -> float:
        return self.core_dynamic_j + self.core_static_j

    @property
    def noc_j(self) -> float:
        return self.noc_dynamic_j + self.noc_static_j

    @property
    def total_j(self) -> float:
        return self.core_j + self.noc_j

    def as_dict(self) -> Dict[str, float]:
        return {
            "core_dynamic_j": self.core_dynamic_j,
            "core_static_j": self.core_static_j,
            "noc_dynamic_j": self.noc_dynamic_j,
            "noc_static_j": self.noc_static_j,
            "total_j": self.total_j,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            core_dynamic_j=self.core_dynamic_j + other.core_dynamic_j,
            core_static_j=self.core_static_j + other.core_static_j,
            noc_dynamic_j=self.noc_dynamic_j + other.noc_dynamic_j,
            noc_static_j=self.noc_static_j + other.noc_static_j,
        )
