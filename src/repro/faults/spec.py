"""Declarative fault events and deterministic fault plans.

A :class:`FaultSpec` names one timed degradation event; a
:class:`FaultPlan` is a canonically ordered, frozen, hashable collection
of them.  Plans are fully deterministic: the same plan replayed on the
same seed produces byte-identical simulator traces, and a plan
round-trips through canonical JSON (sorted keys, no whitespace) so the
orchestrator can hash it into cache keys.

Five event kinds cover the degradation modes a VFI platform sees in the
field:

* ``CORE_FAILURE`` -- the worker's core dies permanently at ``time_s``;
  any execution in flight is killed and re-executed elsewhere.
* ``CORE_SLOWDOWN`` -- a straggler: the worker's effective frequency is
  divided by ``magnitude`` (> 1) from ``time_s`` on.
* ``ISLAND_THROTTLE`` -- power-cap emulation: the island drops
  ``magnitude`` steps down the DVFS ladder (V and f together, via the
  existing VFI V/F tables).
* ``LINK_FAILURE`` -- the wireline link ``(a, b)`` disappears; routes
  are rebuilt around the hole.
* ``CHANNEL_LOSS`` -- a wireless channel drops out; all of its links
  disappear and its flows fall back onto the wireline fabric.

Faults are permanent for the remainder of the run -- "recovery" is what
the :class:`repro.faults.policy.ResiliencePolicy` layer does in
response, never the fault healing itself.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


class FaultInjectionError(RuntimeError):
    """A fault plan cannot be applied (disconnection, no survivors, or a
    strict resilience policy refusing to reroute)."""


class FaultKind(enum.Enum):
    CORE_FAILURE = "core_failure"
    CORE_SLOWDOWN = "core_slowdown"
    ISLAND_THROTTLE = "island_throttle"
    LINK_FAILURE = "link_failure"
    CHANNEL_LOSS = "channel_loss"


#: Expected ``target`` arity per kind (worker / island / link endpoints /
#: channel index).
_TARGET_ARITY = {
    FaultKind.CORE_FAILURE: 1,
    FaultKind.CORE_SLOWDOWN: 1,
    FaultKind.ISLAND_THROTTLE: 1,
    FaultKind.LINK_FAILURE: 2,
    FaultKind.CHANNEL_LOSS: 1,
}


@dataclass(frozen=True)
class FaultSpec:
    """One timed degradation event.

    ``target`` identifies the victim resource: ``(worker,)`` for core
    events, ``(island,)`` for throttles, ``(a, b)`` for link failures,
    ``(channel,)`` for channel losses.  ``magnitude`` is the slowdown
    factor (> 1) for stragglers and the integer ladder-step count
    (>= 1) for throttles; other kinds ignore it.
    """

    kind: FaultKind
    time_s: float
    target: Tuple[int, ...]
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        object.__setattr__(self, "time_s", float(self.time_s))
        object.__setattr__(
            self, "target", tuple(int(t) for t in self.target)
        )
        object.__setattr__(self, "magnitude", float(self.magnitude))
        check_positive("time_s", self.time_s, allow_zero=True)
        arity = _TARGET_ARITY[self.kind]
        if len(self.target) != arity:
            raise ValueError(
                f"{self.kind.value} target must have {arity} element(s), "
                f"got {self.target!r}"
            )
        if any(t < 0 for t in self.target):
            raise ValueError(f"target ids must be >= 0, got {self.target!r}")
        if self.kind is FaultKind.CORE_SLOWDOWN and self.magnitude <= 1.0:
            raise ValueError(
                f"slowdown magnitude must be > 1, got {self.magnitude!r}"
            )
        if self.kind is FaultKind.ISLAND_THROTTLE:
            if self.magnitude < 1.0 or self.magnitude != int(self.magnitude):
                raise ValueError(
                    f"throttle magnitude must be an integer >= 1 (ladder "
                    f"steps), got {self.magnitude!r}"
                )
        if self.kind is FaultKind.LINK_FAILURE and self.target[0] == self.target[1]:
            raise ValueError(f"link failure targets a self-link: {self.target!r}")

    @property
    def sort_key(self) -> Tuple:
        """Canonical event ordering: time, then kind, target, magnitude."""
        return (self.time_s, self.kind.value, self.target, self.magnitude)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "time_s": float(self.time_s),
            "target": [int(t) for t in self.target],
            "magnitude": float(self.magnitude),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(data["kind"]),
            time_s=float(data["time_s"]),
            target=tuple(int(t) for t in data["target"]),
            magnitude=float(data.get("magnitude", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A canonically ordered, hashable set of fault events.

    The event tuple is sorted by :attr:`FaultSpec.sort_key` at
    construction, so two plans built from the same events in any order
    compare, hash and serialize identically.  ``seed`` records the
    sampling seed when the plan came from :meth:`sample` (documentation
    only -- replay uses the events, never the seed).
    """

    events: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=lambda e: e.sort_key))
        object.__setattr__(self, "events", events)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------ #
    # canonical JSON
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        out: Dict = {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed is not None:
            out["seed"] = int(self.seed)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultSpec.from_dict(entry) for entry in data.get("events", [])
            ),
            seed=data.get("seed"),
            name=str(data.get("name", "")),
        )

    def to_json(self) -> str:
        """Canonical encoding: sorted keys, no whitespace -- the exact
        bytes the orchestrator hashes into cache keys."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    @classmethod
    def sample(
        cls,
        seed: SeedLike,
        num_workers: int,
        horizon_s: float,
        num_islands: int = 4,
        failures: int = 0,
        stragglers: int = 0,
        throttles: int = 0,
        link_candidates: Sequence[Tuple[int, int]] = (),
        link_failures: int = 0,
        num_channels: int = 0,
        channel_losses: int = 0,
        max_slowdown: float = 4.0,
        max_throttle_steps: int = 2,
        name: str = "sampled",
    ) -> "FaultPlan":
        """Draw a random plan from a :class:`numpy.random.Generator`.

        Event times are uniform over ``(0, horizon_s)``; victims are
        uniform over their resource populations.  Fully deterministic for
        a given integer *seed* (see :func:`repro.utils.rng.derive_rng`).
        """
        check_positive("num_workers", num_workers)
        check_positive("horizon_s", horizon_s)
        if link_failures > 0 and not link_candidates:
            raise ValueError("link_failures > 0 requires link_candidates")
        if channel_losses > 0 and num_channels <= 0:
            raise ValueError("channel_losses > 0 requires num_channels > 0")
        rng = derive_rng(seed)
        events: List[FaultSpec] = []
        for _ in range(int(failures)):
            events.append(
                FaultSpec(
                    FaultKind.CORE_FAILURE,
                    float(rng.uniform(0.0, horizon_s)),
                    (int(rng.integers(num_workers)),),
                )
            )
        for _ in range(int(stragglers)):
            events.append(
                FaultSpec(
                    FaultKind.CORE_SLOWDOWN,
                    float(rng.uniform(0.0, horizon_s)),
                    (int(rng.integers(num_workers)),),
                    magnitude=float(rng.uniform(1.25, max_slowdown)),
                )
            )
        for _ in range(int(throttles)):
            events.append(
                FaultSpec(
                    FaultKind.ISLAND_THROTTLE,
                    float(rng.uniform(0.0, horizon_s)),
                    (int(rng.integers(num_islands)),),
                    magnitude=float(rng.integers(1, max_throttle_steps + 1)),
                )
            )
        for _ in range(int(link_failures)):
            a, b = link_candidates[int(rng.integers(len(link_candidates)))]
            events.append(
                FaultSpec(
                    FaultKind.LINK_FAILURE,
                    float(rng.uniform(0.0, horizon_s)),
                    (int(a), int(b)),
                )
            )
        for _ in range(int(channel_losses)):
            events.append(
                FaultSpec(
                    FaultKind.CHANNEL_LOSS,
                    float(rng.uniform(0.0, horizon_s)),
                    (int(rng.integers(num_channels)),),
                )
            )
        plan_seed = seed if isinstance(seed, int) else None
        return cls(events=tuple(events), seed=plan_seed, name=name)
