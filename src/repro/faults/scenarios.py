"""Preset fault scenarios for studies and the ``repro faults`` CLI.

Each scenario is a deterministic function of the fault-free makespan
(*horizon_s*) and the die size: event times are fixed fractions of the
horizon, targets are fixed functions of the worker count.  The same
(app, scale, seed, num_workers) therefore always yields the same plan --
the determinism contract extends from the simulator up through the CLI.
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.spec import FaultKind, FaultPlan, FaultSpec

#: Scenario names accepted by :func:`preset_plan` (and the CLI).
SCENARIOS = (
    "core_failure",
    "straggler",
    "throttle",
    "link_failure",
    "channel_loss",
    "mixed",
)


def _victim_worker(num_workers: int) -> int:
    return num_workers // 4


def _straggler_worker(num_workers: int) -> int:
    worker = num_workers // 3
    if worker == _victim_worker(num_workers):
        worker = (worker + 1) % num_workers
    return worker


def preset_plan(
    scenario: str,
    horizon_s: float,
    num_workers: int,
    link: Tuple[int, int] = (0, 1),
) -> FaultPlan:
    """Build the named scenario against a measured fault-free horizon.

    *horizon_s* is the baseline makespan (typically the NVFI-mesh
    ``total_time_s``); events land at fixed fractions of it so every
    scenario bites mid-run regardless of app or scale.  *link* is the
    wireline link the ``link_failure`` events target -- ``(0, 1)`` is a
    mesh edge on every die size.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}, got {scenario!r}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s!r}")
    if num_workers < 4:
        raise ValueError(f"num_workers must be >= 4, got {num_workers!r}")

    victim = _victim_worker(num_workers)
    straggler = _straggler_worker(num_workers)
    events = {
        "core_failure": [
            FaultSpec(FaultKind.CORE_FAILURE, 0.25 * horizon_s, (victim,)),
        ],
        "straggler": [
            FaultSpec(FaultKind.CORE_SLOWDOWN, 0.2 * horizon_s, (straggler,), 2.5),
        ],
        "throttle": [
            FaultSpec(FaultKind.ISLAND_THROTTLE, 0.3 * horizon_s, (1,), 2.0),
        ],
        "link_failure": [
            FaultSpec(FaultKind.LINK_FAILURE, 0.25 * horizon_s, link),
        ],
        "channel_loss": [
            FaultSpec(FaultKind.CHANNEL_LOSS, 0.25 * horizon_s, (0,)),
        ],
    }
    if scenario == "mixed":
        chosen = (
            events["straggler"]
            + events["core_failure"]
            + [FaultSpec(FaultKind.ISLAND_THROTTLE, 0.3 * horizon_s, (1,), 1.0)]
            + [FaultSpec(FaultKind.LINK_FAILURE, 0.35 * horizon_s, link)]
            + [FaultSpec(FaultKind.CHANNEL_LOSS, 0.3 * horizon_s, (0,))]
        )
    else:
        chosen = events[scenario]
    return FaultPlan(events=tuple(chosen), name=scenario)
