"""Degradation accounting for one fault-injected simulation run.

:class:`FaultImpact` is the plain-data record a fault-injected
:class:`repro.sim.system.SystemSimulator` run attaches to its
:class:`repro.sim.stats.SimulationResult`.  It carries no simulator
state -- only builtin types -- so it serializes to JSON alongside the
result and survives the orchestrator's on-disk cache round trip.

This module must stay import-light (no numpy, no simulator imports):
``repro.sim.stats`` imports it, and the fault engine lives one layer
above in :mod:`repro.faults.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class FaultImpact:
    """What a fault plan did to one simulation run."""

    #: Events that actually applied to the platform, in activation order
    #: (each entry is a ``FaultSpec.to_dict()`` payload).
    events_applied: List[Dict] = field(default_factory=list)
    #: Events that named a resource the platform does not have (e.g. a
    #: channel loss on a pure-wire mesh) and were skipped leniently.
    events_skipped: int = 0
    #: Workers whose cores failed during the run, in failure order.
    failed_workers: List[int] = field(default_factory=list)
    #: Task executions killed mid-run and re-executed elsewhere/later.
    reexecuted_tasks: int = 0
    #: Barrier-phase tasks that ran on a substitute for a dead home worker.
    substituted_tasks: int = 0
    #: Core-seconds burnt on executions that never completed.
    lost_busy_s: float = 0.0
    #: Islands with at least one throttle step applied.
    throttled_islands: List[int] = field(default_factory=list)
    #: Times the resilience layer shielded a master island by moving its
    #: throttle steps onto another island (Sec. 4.2 analogue).
    bottleneck_reassignments: int = 0

    def to_dict(self) -> Dict:
        """JSON-compatible encoding (builtins only)."""
        return {
            "events_applied": [dict(e) for e in self.events_applied],
            "events_skipped": int(self.events_skipped),
            "failed_workers": [int(w) for w in self.failed_workers],
            "reexecuted_tasks": int(self.reexecuted_tasks),
            "substituted_tasks": int(self.substituted_tasks),
            "lost_busy_s": float(self.lost_busy_s),
            "throttled_islands": [int(i) for i in self.throttled_islands],
            "bottleneck_reassignments": int(self.bottleneck_reassignments),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultImpact":
        return cls(
            events_applied=[dict(e) for e in data.get("events_applied", [])],
            events_skipped=int(data.get("events_skipped", 0)),
            failed_workers=[int(w) for w in data.get("failed_workers", [])],
            reexecuted_tasks=int(data.get("reexecuted_tasks", 0)),
            substituted_tasks=int(data.get("substituted_tasks", 0)),
            lost_busy_s=float(data.get("lost_busy_s", 0.0)),
            throttled_islands=[int(i) for i in data.get("throttled_islands", [])],
            bottleneck_reassignments=int(data.get("bottleneck_reassignments", 0)),
        )
