"""The fault engine: applies a :class:`FaultPlan` to a running simulation.

One :class:`FaultEngine` instance is owned by one
:class:`repro.sim.system.SystemSimulator` run.  The simulator asks it, at
every phase boundary, which pending events have become due
(:meth:`activate_due`) and then pulls the *effective* degraded view of
the platform from it:

* :meth:`effective_platform` -- the platform with failed links/channels
  removed (routes rebuilt via weighted Dijkstra -- XY routing cannot
  steer around holes) and throttled islands stepped down the DVFS
  ladder.  Degraded platforms share the base platform's NoC static cache;
  the topology mutation epoch keys keep the tables honest.
* :meth:`effective_worker_freqs` -- per-worker frequencies after island
  throttling and straggler slowdowns.
* :meth:`effective_policy` -- the stealing policy with Eq. (3) caps
  recomputed against the degraded frequency map.
* :attr:`fail_time` -- per-worker absolute failure times (``inf`` for
  survivors), armed up front so the scheduler can kill executions that
  would cross a failure even before the boundary hook has run.

The engine also implements the resilience decisions themselves: the
bottleneck shield (a throttle aimed at a master island is moved onto the
fastest non-master island, the fault-time analogue of the paper's
Sec. 4.2 bottleneck reassignment) and substitute selection for
barrier-phase tasks whose home worker is dead.

Everything is deterministic: events activate in canonical plan order,
ties break on fixed keys, and no call reads global random state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.faults.impact import FaultImpact
from repro.faults.policy import ResiliencePolicy
from repro.faults.spec import (
    FaultInjectionError,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.noc.routing import build_routing_table
from repro.noc.wireless import channels_of
from repro.telemetry import get_tracer
from repro.vfi.islands import VfPoint, nearest_ladder_point

if TYPE_CHECKING:  # runtime import is deferred: sim.config imports the
    # faults leaf modules, so importing the platform here at module scope
    # would close a cycle through the package __init__.
    from repro.sim.platform import Platform


class FaultEngine:
    """Deterministic fault activation + resilience reactions for one run."""

    def __init__(
        self,
        platform: Platform,
        plan: FaultPlan,
        policy: Optional[ResiliencePolicy] = None,
        tracer=None,
    ):
        self.base_platform = platform
        self.plan = plan
        self.policy = policy or ResiliencePolicy()
        self.tracer = tracer if tracer is not None else get_tracer()

        num_workers = platform.num_cores
        num_islands = platform.layout.num_clusters
        for event in plan.events:
            if event.kind in (FaultKind.CORE_FAILURE, FaultKind.CORE_SLOWDOWN):
                if event.target[0] >= num_workers:
                    raise ValueError(
                        f"{event.kind.value} targets worker {event.target[0]}, "
                        f"platform has {num_workers} workers"
                    )
            elif event.kind is FaultKind.ISLAND_THROTTLE:
                if event.target[0] >= num_islands:
                    raise ValueError(
                        f"throttle targets island {event.target[0]}, "
                        f"platform has {num_islands} islands"
                    )
            # Link/channel targets are checked leniently at activation:
            # plans are written against a platform family, and a mesh
            # simply has no channel to lose.

        #: Absolute failure time per worker (inf = survives the run).
        #: Armed up front from every CORE_FAILURE in the plan -- the map
        #: scheduler consults this while packing tasks, which may run
        #: ahead of the boundary-driven activation below.
        self.fail_time = np.full(num_workers, np.inf)
        for event in plan.events:
            if event.kind is FaultKind.CORE_FAILURE:
                victim = event.target[0]
                self.fail_time[victim] = min(
                    self.fail_time[victim], event.time_s
                )

        #: Per-worker straggler slowdown divisors (1.0 = nominal).
        self.slowdown = np.ones(num_workers)
        #: Accumulated ladder steps per throttled island.
        self.throttle_steps: Dict[int, int] = {}
        #: Keys of wireline/wireless links removed so far.
        self.removed_links: Set[FrozenSet[int]] = set()
        self.lost_channels: Set[int] = set()
        #: Workers that run lib-init (set by :meth:`begin`); the islands
        #: holding them are the shielded "master" islands.
        self.master_workers: Set[int] = set()

        self._pending: List[FaultSpec] = list(plan.events)
        self._applied: List[FaultSpec] = []
        self._skipped = 0
        self._bottleneck_reassignments = 0
        self._shielded_islands: Set[int] = set()
        self._reexecuted = 0
        self._substituted = 0
        self._lost_busy = 0.0
        self._failed_workers: List[int] = []

        self._base_link_keys = {
            link.key for link in platform.topology.links
        }
        self._topo_cache: Dict[FrozenSet[FrozenSet[int]], object] = {}
        self._platform_cache: Dict[Tuple, Platform] = {}

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    def begin(self, trace) -> None:
        """Learn which workers are masters (lib-init owners) from the
        trace, before the first phase runs."""
        self.master_workers = {
            iteration.lib_init.home_worker for iteration in trace.iterations
        }

    def activate_due(self, now: float) -> Tuple[bool, bool]:
        """Apply every pending event with ``time_s <= now``.

        Returns ``(platform_dirty, freqs_dirty)``: whether the caller
        must refresh the effective platform (fabric or island V/F
        changed) and/or the effective worker-frequency map.
        """
        platform_dirty = False
        freqs_dirty = False
        while self._pending and self._pending[0].time_s <= now:
            event = self._pending.pop(0)
            applied, p_dirty, f_dirty = self._apply(event)
            platform_dirty |= p_dirty
            freqs_dirty |= f_dirty
            if applied:
                self._applied.append(event)
                if self.tracer.enabled:
                    self.tracer.span(
                        f"fault.{event.kind.value}",
                        event.time_s,
                        0.0,
                        cat="fault",
                        pid="faults",
                        tid=event.kind.value,
                    )
                    self.tracer.counter_add(
                        "faults.events_applied", 1.0, key=event.kind.value
                    )
            else:
                self._skipped += 1
                if self.tracer.enabled:
                    self.tracer.counter_add(
                        "faults.events_skipped", 1.0, key=event.kind.value
                    )
        return platform_dirty, freqs_dirty

    def _apply(self, event: FaultSpec) -> Tuple[bool, bool, bool]:
        """Apply one event; returns (applied, platform_dirty, freqs_dirty)."""
        if event.kind is FaultKind.CORE_FAILURE:
            self._failed_workers.append(event.target[0])
            # fail_time was armed at construction; the frequency map is
            # unchanged but caps must be rebuilt without the dead worker
            # contributing stolen work, so refresh the policy view.
            return True, False, True
        if event.kind is FaultKind.CORE_SLOWDOWN:
            self.slowdown[event.target[0]] *= event.magnitude
            return True, False, True
        if event.kind is FaultKind.ISLAND_THROTTLE:
            island = event.target[0]
            self.throttle_steps[island] = self.throttle_steps.get(
                island, 0
            ) + int(event.magnitude)
            return True, True, True
        if event.kind is FaultKind.LINK_FAILURE:
            key = frozenset(event.target)
            if key not in self._base_link_keys or key in self.removed_links:
                return False, False, False
            if not self.policy.reroute_failed_links:
                raise FaultInjectionError(
                    f"link {sorted(key)} failed at t={event.time_s:.6f}s and "
                    f"the resilience policy forbids rerouting"
                )
            self.removed_links.add(key)
            return True, True, False
        if event.kind is FaultKind.CHANNEL_LOSS:
            channel = event.target[0]
            channels = channels_of(self.base_platform.topology)
            if channel not in channels or channel in self.lost_channels:
                return False, False, False
            if not self.policy.reroute_failed_links:
                raise FaultInjectionError(
                    f"wireless channel {channel} lost at "
                    f"t={event.time_s:.6f}s and the resilience policy "
                    f"forbids rerouting"
                )
            self.lost_channels.add(channel)
            for link in self.base_platform.topology.wireless_links():
                if link.channel == channel:
                    self.removed_links.add(link.key)
            return True, True, False
        raise AssertionError(f"unhandled fault kind {event.kind!r}")

    # ------------------------------------------------------------------ #
    # effective degraded views
    # ------------------------------------------------------------------ #

    def effective_vf_points(self) -> Tuple[VfPoint, ...]:
        """Island V/F after throttling and the master-island shield.

        When the policy enables bottleneck reassignment, throttle steps
        landing on an island that contains master cores are moved onto
        the non-master island currently running at the highest V/F
        (lowest index on ties) -- the power cap is still honored
        somewhere, but never on the critical serial path.
        """
        base_points = list(self.base_platform.vf_points)
        steps = dict(self.throttle_steps)
        if steps and self.policy.rerun_bottleneck_reassignment:
            master_islands = {
                self.base_platform.island_of_worker(worker)
                for worker in self.master_workers
            }
            non_masters = [
                island
                for island in range(len(base_points))
                if island not in master_islands
            ]
            for island in sorted(steps):
                if island not in master_islands or steps[island] <= 0:
                    continue
                if not non_masters:
                    continue  # nowhere to shed the cap; throttle stands
                victim = max(
                    non_masters,
                    key=lambda i: (base_points[i], -i),
                )
                steps[victim] = steps.get(victim, 0) + steps[island]
                steps[island] = 0
                if island not in self._shielded_islands:
                    self._shielded_islands.add(island)
                    self._bottleneck_reassignments += 1
                    if self.tracer.enabled:
                        self.tracer.counter_add(
                            "faults.bottleneck_reassignments", 1.0
                        )
        ladder = self.base_platform.ladder
        points = []
        for island, point in enumerate(base_points):
            down = steps.get(island, 0)
            if down > 0:
                ladder_index = ladder.index(
                    nearest_ladder_point(point.frequency_hz, ladder)
                )
                point = ladder[max(ladder_index - down, 0)]
            points.append(point)
        return tuple(points)

    def effective_platform(self) -> Platform:
        """The degraded platform: links removed, islands throttled.

        Returns the base platform object itself while nothing structural
        has changed, so the no-fault prefix of a run shares every cached
        table with a clean simulation.  Degraded platforms are cached per
        (removed-link set, V/F assignment) and share the base platform's
        NoC static cache -- the topology epoch in the cache keys prevents
        any cross-talk between intact and degraded tables.
        """
        vf_points = self.effective_vf_points()
        if not self.removed_links and vf_points == tuple(
            self.base_platform.vf_points
        ):
            return self.base_platform
        cache_key = (frozenset(self.removed_links), vf_points)
        platform = self._platform_cache.get(cache_key)
        if platform is not None:
            return platform

        from repro.sim.platform import Platform

        base = self.base_platform
        topology = base.topology
        routing = base.routing
        if self.removed_links:
            topo_key = frozenset(self.removed_links)
            topology = self._topo_cache.get(topo_key)
            if topology is None:
                topology = base.topology.without_links(
                    self.removed_links,
                    name=f"{base.topology.name}-degraded",
                )
                if not topology.is_connected():
                    raise FaultInjectionError(
                        f"removing links "
                        f"{sorted(sorted(k) for k in self.removed_links)} "
                        f"disconnects topology {base.topology.name!r}"
                    )
                self._topo_cache[topo_key] = topology
            # XY routing cannot steer around holes; degraded fabrics
            # always route via the weighted shortest-path table.
            routing = build_routing_table(topology)

        platform = Platform(
            name=f"{base.name}+degraded",
            layout=base.layout,
            vf_points=list(vf_points),
            topology=topology,
            routing=routing,
            mapping=base.mapping,
            core_params=base.core_params,
            memory_params=base.memory_params,
            noc_params=base.noc_params,
            wireless_spec=base.wireless_spec,
            core_power_params=base.core_power_params,
            noc_energy_params=base.noc_energy_params,
            dvfs_ladder=base.dvfs_ladder,
            island_core_power=base.island_core_power,
            perf_scales=base.perf_scales,
        )
        # Share the base static cache: epoch-aware keys keep degraded
        # tables separate while V/F-only degradations reuse the base
        # fabric's tables outright.
        platform._noc_static_cache = base._noc_static_cache
        platform.network = platform.build_network()
        self._platform_cache[cache_key] = platform
        return platform

    def effective_worker_freqs(self, platform: Platform) -> np.ndarray:
        """Per-worker frequency map after throttling and stragglers.

        Dead workers keep their nominal entry -- executions before the
        failure instant still run at full speed, and everything after it
        is excluded via :attr:`fail_time`, never via frequency.
        """
        return np.array(platform.effective_worker_frequencies()) / self.slowdown

    def effective_policy(self, base_policy, platform: Platform):
        """Stealing policy against the degraded frequency map.

        Eq. (3) caps are recomputed from the effective frequencies when
        the resilience policy asks for rebalancing; other policy types
        (and opted-out runs) pass through unchanged.
        """
        from repro.mapreduce.scheduler import CappedStealingPolicy

        if base_policy is None:
            return None
        if not self.policy.rebalance_steal_caps:
            return base_policy
        if not isinstance(base_policy, CappedStealingPolicy):
            return base_policy
        freqs = self.effective_worker_freqs(platform)
        return CappedStealingPolicy(
            core_frequencies_hz=[float(f) for f in freqs],
            fmax_hz=float(freqs.max()),
        )

    # ------------------------------------------------------------------ #
    # substitution + accounting
    # ------------------------------------------------------------------ #

    def substitute_for(
        self, worker: int, now: float, freqs: np.ndarray
    ) -> Optional[int]:
        """Pick a surviving stand-in for a barrier-phase task whose home
        worker is dead at *now*.  Returns ``None`` when nobody survives."""
        num_workers = len(self.fail_time)
        if self.policy.substitute_order == "fastest":
            best = None
            for candidate in range(num_workers):
                if self.fail_time[candidate] <= now:
                    continue
                if best is None or freqs[candidate] > freqs[best]:
                    best = candidate
            return best
        # "ring": walk upward from the victim, wrapping once.
        for offset in range(1, num_workers + 1):
            candidate = (worker + offset) % num_workers
            if self.fail_time[candidate] > now:
                return candidate
        return None

    def note_recovery(
        self,
        reexecutions: int,
        substitutions: int,
        lost: List[Tuple[int, float, float, int]],
    ) -> None:
        """Fold one committed phase's recovery bookkeeping into the
        impact record (and telemetry): *lost* entries are
        ``(worker, start_s, duration_s, task_id)`` intervals burnt on
        executions that a core failure killed."""
        self._reexecuted += int(reexecutions)
        self._substituted += int(substitutions)
        for worker, start_s, duration_s, task_id in lost:
            self._lost_busy += float(duration_s)
            if self.tracer.enabled:
                self.tracer.span(
                    f"lost/task{task_id}",
                    start_s,
                    duration_s,
                    cat="fault",
                    pid="faults",
                    tid=f"worker{worker}",
                )
        if self.tracer.enabled:
            if reexecutions:
                self.tracer.counter_add(
                    "faults.reexecuted_tasks", float(reexecutions)
                )
            if substitutions:
                self.tracer.counter_add(
                    "faults.substituted_tasks", float(substitutions)
                )

    def impact(self) -> FaultImpact:
        """Snapshot of the degradation accounting so far."""
        return FaultImpact(
            events_applied=[event.to_dict() for event in self._applied],
            events_skipped=self._skipped,
            failed_workers=list(self._failed_workers),
            reexecuted_tasks=self._reexecuted,
            substituted_tasks=self._substituted,
            lost_busy_s=self._lost_busy,
            throttled_islands=sorted(
                island
                for island, steps in self.throttle_steps.items()
                if steps > 0
            ),
            bottleneck_reassignments=self._bottleneck_reassignments,
        )
