"""Deterministic fault injection and resilience policies.

``repro.faults`` models what real VFI silicon does when it degrades:
cores die, stragglers slow, power caps throttle islands down the DVFS
ladder, wires break, and wireless channels drop out.  A
:class:`FaultPlan` declares *what* breaks and when (or samples it from a
seeded generator); a :class:`ResiliencePolicy` declares what the
surviving system does about it; the :class:`FaultEngine` applies both to
one :class:`repro.sim.system.SystemSimulator` run and accounts for the
damage in a :class:`FaultImpact`.

The determinism contract: the same plan on the same platform and trace
produces bit-identical results and byte-identical telemetry exports, and
a run with no plan (or an empty one) is bit-for-bit the unfaulted
simulator.
"""

from repro.faults.engine import FaultEngine
from repro.faults.impact import FaultImpact
from repro.faults.policy import ResiliencePolicy
from repro.faults.scenarios import SCENARIOS, preset_plan
from repro.faults.spec import (
    FaultInjectionError,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultEngine",
    "FaultImpact",
    "FaultInjectionError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "SCENARIOS",
    "preset_plan",
]
