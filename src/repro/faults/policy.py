"""Resilience reactions to injected faults.

A :class:`ResiliencePolicy` is the declarative knob set that decides
*how* the system reacts to a :class:`repro.faults.spec.FaultPlan` -- the
plan says what breaks, the policy says what the surviving system does
about it:

* ``rebalance_steal_caps`` -- recompute the Eq. (3) stealing caps of a
  :class:`repro.mapreduce.scheduler.CappedStealingPolicy` against the
  degraded (slowed/throttled) frequency map instead of keeping the
  design-time caps.
* ``rerun_bottleneck_reassignment`` -- when a throttled island contains
  master cores, shield it by moving the throttle steps onto the fastest
  non-master island (the fault-time analogue of the paper's Sec. 4.2
  bottleneck reassignment).
* ``reroute_failed_links`` -- rebuild shortest-path routes around failed
  wireline links / lost wireless channels.  When ``False``, link and
  channel faults raise :class:`repro.faults.spec.FaultInjectionError`
  instead of degrading silently (strict mode for platforms that must not
  lose fabric).
* ``substitute_order`` -- how barrier-phase tasks pick a stand-in for a
  dead home worker: ``"ring"`` walks the worker ring from the victim
  (deterministic, load-spreading), ``"fastest"`` always picks the
  fastest surviving core (greedy, may hot-spot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

_SUBSTITUTE_ORDERS = ("ring", "fastest")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Declarative reaction knobs for fault-injected runs."""

    rebalance_steal_caps: bool = True
    rerun_bottleneck_reassignment: bool = True
    reroute_failed_links: bool = True
    substitute_order: str = "ring"

    def __post_init__(self) -> None:
        if self.substitute_order not in _SUBSTITUTE_ORDERS:
            raise ValueError(
                f"substitute_order must be one of {_SUBSTITUTE_ORDERS}, "
                f"got {self.substitute_order!r}"
            )

    def to_dict(self) -> Dict:
        return {
            "rebalance_steal_caps": bool(self.rebalance_steal_caps),
            "rerun_bottleneck_reassignment": bool(
                self.rerun_bottleneck_reassignment
            ),
            "reroute_failed_links": bool(self.reroute_failed_links),
            "substitute_order": self.substitute_order,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResiliencePolicy":
        return cls(
            rebalance_steal_caps=bool(data.get("rebalance_steal_caps", True)),
            rerun_bottleneck_reassignment=bool(
                data.get("rerun_bottleneck_reassignment", True)
            ),
            reroute_failed_links=bool(data.get("reroute_failed_links", True)),
            substitute_order=str(data.get("substitute_order", "ring")),
        )
