"""repro: Energy-efficient MapReduce on VFI-enabled wireless-NoC multicore
platforms.

A self-contained reproduction of Duraisamy et al., "Energy Efficient
MapReduce with VFI-enabled Multicore Platforms" (DAC 2015): a
Phoenix++-style MapReduce engine, the six benchmark applications, a
64-core full-system performance/energy simulator with mesh and wireless
small-world NoCs, the VFI clustering / V/F-assignment / task-stealing
design flow, and builders for every table and figure in the paper's
evaluation.

Quick start::

    from repro import run_app_study

    study = run_app_study("wordcount")
    print(study.normalized_time("vfi2_winoc"), study.normalized_edp("vfi2_winoc"))

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
per-figure reproduction harnesses.
"""

from repro.apps import APP_NAMES, create_app
from repro.core.design_flow import VfiDesign, design_vfi
from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    AppStudy,
    run_app_study,
)
from repro.core.platforms import (
    build_nvfi_mesh,
    build_vfi_mesh,
    build_vfi_winoc,
)
from repro.mapreduce import JobConfig, MapReduceJob, run_job
from repro.orchestrator import (
    StudyCache,
    StudySpec,
    expand_grid,
    run_campaign,
)
from repro.power import CapImpact, PowerCapSpec, run_cap_sweep
from repro.sim import Platform, SystemSimulator, simulate
from repro.tech import TechNode, TechSpec, get_node
from repro.telemetry import (
    NullTracer,
    RecordingTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__version__ = "1.4.0"

__all__ = [
    "APP_NAMES",
    "create_app",
    "run_job",
    "MapReduceJob",
    "JobConfig",
    "design_vfi",
    "VfiDesign",
    "build_nvfi_mesh",
    "build_vfi_mesh",
    "build_vfi_winoc",
    "Platform",
    "SystemSimulator",
    "simulate",
    "run_app_study",
    "AppStudy",
    "StudySpec",
    "StudyCache",
    "expand_grid",
    "run_campaign",
    "TechNode",
    "TechSpec",
    "get_node",
    "PowerCapSpec",
    "CapImpact",
    "run_cap_sweep",
    "NVFI_MESH",
    "VFI1_MESH",
    "VFI2_MESH",
    "VFI2_WINOC",
    "NullTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "__version__",
]
