"""Structured event tracing, metrics and profiling hooks.

The simulator, NoC model, scheduler, VFI design flow and experiment
orchestrator are instrumented against one process-wide :class:`Tracer`.
The default tracer is a :class:`NullTracer` whose every operation is a
no-op behind an ``enabled`` flag, so instrumentation costs nothing
unless a recording tracer is installed::

    from repro.telemetry import RecordingTracer, use_tracer
    from repro.telemetry.export import write_chrome_trace

    tracer = RecordingTracer()
    with use_tracer(tracer):
        study = run_app_study("wordcount", use_cache=False)
    write_chrome_trace(tracer, "wordcount.trace.json")  # open in Perfetto

Two time domains coexist:

* **simulated time** -- spans and counter samples stamped with the
  discrete-event clock (phases, tasks, channel occupancy).  These are
  deterministic: the same seed produces byte-identical exports.
* **wall time** -- spans measured with ``time.perf_counter`` (design-flow
  stages, orchestrator units).  Excluded from exports by default so the
  deterministic property survives; pass ``include_wall=True`` to keep
  them (on their own trace-process track).

``repro trace`` on the command line records a full study, writes the
Chrome trace-event JSON and prints per-phase / per-island summaries.
"""

from repro.telemetry.tracer import (
    NULL_TRACER,
    Histogram,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "Histogram",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
