"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome trace-event format (the ``chrome://tracing`` / Perfetto
interchange format) wants integer ``pid``/``tid`` fields, microsecond
timestamps and strict JSON.  Track names -- platform names, worker ids --
are mapped to stable small integers and attached via ``process_name`` /
``thread_name`` metadata events so the UI shows the real names.

Wall-clock spans are excluded by default: simulated-time events are
deterministic for a given seed (byte-identical exports, safe to cache or
diff), wall-clock ones are not.  Pass ``include_wall=True`` to keep them.

The JSONL exporter writes everything -- spans, counter samples, counter
totals and histograms -- one self-describing JSON object per line, for
ad-hoc analysis with ``jq`` / pandas.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.telemetry.tracer import RecordingTracer, TrackId


def _track_sort_key(track: TrackId) -> Tuple[int, object]:
    # Integers first (workers, channels, in numeric order), then strings.
    if isinstance(track, bool) or not isinstance(track, (int, float)):
        return (1, str(track))
    return (0, track)


def _micro(seconds: float) -> float:
    return round(float(seconds) * 1e6, 3)


def chrome_trace_dict(
    tracer: RecordingTracer, include_wall: bool = False
) -> Dict:
    """Render a tracer as a Chrome trace-event JSON object.

    Every span becomes a complete (``ph="X"``) event and every counter
    sample a ``ph="C"`` event; metadata (``ph="M"``) events name the
    process and thread tracks.  The result is loadable in Perfetto and
    ``chrome://tracing`` as-is.
    """
    spans = [s for s in tracer.spans if include_wall or not s.wall]
    samples = tracer.samples

    # Stable integer ids for the (pid, tid) name tracks.
    pid_names = sorted(
        {s.pid for s in spans} | {s.pid for s in samples}, key=_track_sort_key
    )
    pid_ids = {name: index + 1 for index, name in enumerate(pid_names)}
    tid_names: Dict[TrackId, List[TrackId]] = {}
    for event in [*spans, *samples]:
        tids = tid_names.setdefault(event.pid, [])
        if event.tid not in tids:
            tids.append(event.tid)
    tid_ids = {
        pid: {
            name: index + 1
            for index, name in enumerate(sorted(tids, key=_track_sort_key))
        }
        for pid, tids in tid_names.items()
    }

    events: List[Dict] = []
    for pid in pid_names:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_ids[pid],
                "tid": 0,
                "args": {"name": str(pid)},
            }
        )
        for tid in sorted(tid_ids[pid], key=_track_sort_key):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_ids[pid],
                    "tid": tid_ids[pid][tid],
                    "args": {"name": str(tid)},
                }
            )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat or "default",
                "pid": pid_ids[span.pid],
                "tid": tid_ids[span.pid][span.tid],
                "ts": _micro(span.start_s),
                "dur": _micro(span.duration_s),
                "args": {str(k): v for k, v in span.args.items()},
            }
        )
    for sample in samples:
        events.append(
            {
                "ph": "C",
                "name": sample.name,
                "pid": pid_ids[sample.pid],
                "tid": tid_ids[sample.pid][sample.tid],
                "ts": _micro(sample.ts_s),
                "args": {sample.series: sample.value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: RecordingTracer,
    path: Union[str, Path],
    include_wall: bool = False,
) -> None:
    """Write :func:`chrome_trace_dict` to *path* as strict JSON."""
    document = chrome_trace_dict(tracer, include_wall=include_wall)
    with open(path, "w") as handle:
        json.dump(
            document, handle, sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )


def jsonl_records(
    tracer: RecordingTracer, include_wall: bool = False
) -> List[Dict]:
    """All recorded telemetry as a flat list of typed records."""
    records: List[Dict] = []
    for span in tracer.spans:
        if span.wall and not include_wall:
            continue
        records.append(
            {
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "pid": str(span.pid),
                "tid": str(span.tid),
                "start_s": float(span.start_s),
                "duration_s": float(span.duration_s),
                "wall": bool(span.wall),
                "args": {str(k): v for k, v in span.args.items()},
            }
        )
    for sample in tracer.samples:
        records.append(
            {
                "type": "sample",
                "name": sample.name,
                "pid": str(sample.pid),
                "tid": str(sample.tid),
                "ts_s": float(sample.ts_s),
                "series": sample.series,
                "value": float(sample.value),
            }
        )
    for (name, key), value in sorted(
        tracer.counters.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        records.append(
            {"type": "counter", "name": name, "key": str(key), "total": float(value)}
        )
    for name in sorted(tracer.histograms):
        records.append(
            {
                "type": "histogram",
                "name": name,
                **tracer.histograms[name].to_dict(),
            }
        )
    return records


def write_jsonl(
    tracer: RecordingTracer,
    path: Union[str, Path],
    include_wall: bool = False,
) -> None:
    """Write every telemetry record to *path*, one JSON object per line."""
    with open(path, "w") as handle:
        for record in jsonl_records(tracer, include_wall=include_wall):
            handle.write(
                json.dumps(
                    record, sort_keys=True, separators=(",", ":"),
                    allow_nan=False,
                )
            )
            handle.write("\n")
