"""Summaries computed from recorded telemetry.

These roll a :class:`repro.telemetry.RecordingTracer` up into the tables
the paper's figures are built from -- per-phase wall time (Fig. 7) and
per-island busy time / task counts (Figs. 2, 5) -- directly from the
recorded spans, so a figure can cite the measured timeline instead of
recomputing it from aggregate statistics.

Span categories consumed here (as emitted by the instrumentation):

* ``sim.phase`` -- one span per phase instance; ``pid`` is the platform
  name, the span name is the :class:`repro.mapreduce.tasks.Phase` value.
* ``sim.task`` -- one span per executed task; ``tid`` is the worker id,
  args carry ``compute_s`` / ``stall_s``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.tracer import RecordingTracer, TrackId

#: Presentation order for phase rows (Fig. 7's grouping).
PHASE_ORDER = ("map", "reduce", "merge", "lib_init")


def trace_platforms(tracer: RecordingTracer) -> List[TrackId]:
    """Platform names (span pids) that recorded simulated phases."""
    seen: List[TrackId] = []
    for span in tracer.spans_by(cat="sim.phase"):
        if span.pid not in seen:
            seen.append(span.pid)
    return seen


def phase_summary(
    tracer: RecordingTracer, pid: Optional[TrackId] = None
) -> Dict[TrackId, Dict[str, float]]:
    """Total duration per phase name, per platform.

    Sums the recorded ``sim.phase`` spans across iterations, exactly as
    :meth:`repro.sim.stats.SimulationResult.phase_duration_s` sums its
    :class:`PhaseStats` -- the two agree to the float because the spans
    are emitted from the same start/end pairs.
    """
    out: Dict[TrackId, Dict[str, float]] = {}
    for span in tracer.spans_by(cat="sim.phase", pid=pid):
        phases = out.setdefault(span.pid, {})
        phases[span.name] = phases.get(span.name, 0.0) + span.duration_s
    return out


def island_summary(
    tracer: RecordingTracer,
    pid: TrackId,
    worker_clusters: Sequence[int],
) -> List[Dict[str, object]]:
    """Per-island busy time, stall time and task counts for one platform."""
    num_islands = max(worker_clusters) + 1 if len(worker_clusters) else 0
    busy = [0.0] * num_islands
    stall = [0.0] * num_islands
    tasks = [0] * num_islands
    workers = [0] * num_islands
    for cluster in worker_clusters:
        workers[cluster] += 1
    for span in tracer.spans_by(cat="sim.task", pid=pid):
        island = worker_clusters[int(span.tid)]
        busy[island] += span.duration_s
        stall[island] += float(span.args.get("stall_s", 0.0))
        tasks[island] += 1
    return [
        {
            "island": island,
            "workers": workers[island],
            "tasks": tasks[island],
            "busy_s": busy[island],
            "stall_s": stall[island],
        }
        for island in range(num_islands)
    ]


# ---------------------------------------------------------------------- #
# plain-text rendering (kept dependency-free: telemetry is imported by
# the low-level layers and must not pull in the analysis package)
# ---------------------------------------------------------------------- #


def _render(rows: List[Dict[str, object]]) -> str:
    if not rows:
        return "(no data)"
    columns = list(rows[0])
    cells = [[str(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(widths[i]) for i, c in enumerate(row)) for row in cells]
    return "\n".join(lines)


def format_phase_table(
    tracer: RecordingTracer, pid: Optional[TrackId] = None
) -> str:
    """Per-phase duration table (ms), one row per recorded platform."""
    summary = phase_summary(tracer, pid=pid)
    rows = []
    for platform, phases in summary.items():
        row: Dict[str, object] = {"platform": platform}
        for phase in PHASE_ORDER:
            row[phase] = f"{phases.get(phase, 0.0) * 1e3:.3f} ms"
        row["total"] = f"{sum(phases.values()) * 1e3:.3f} ms"
        rows.append(row)
    return _render(rows)


def format_island_table(
    tracer: RecordingTracer,
    pid: TrackId,
    worker_clusters: Sequence[int],
) -> str:
    """Per-island busy/stall/task table for one platform."""
    rows = []
    for entry in island_summary(tracer, pid, worker_clusters):
        rows.append(
            {
                "island": entry["island"],
                "workers": entry["workers"],
                "tasks": entry["tasks"],
                "busy": f"{float(entry['busy_s']) * 1e3:.3f} ms",
                "stall": f"{float(entry['stall_s']) * 1e3:.3f} ms",
                "stall %": (
                    f"{100.0 * float(entry['stall_s']) / float(entry['busy_s']):.1f}"
                    if float(entry["busy_s"]) > 0
                    else "0.0"
                ),
            }
        )
    return _render(rows)
