"""The process-wide tracer: spans, counters, histograms.

Design constraints, in priority order:

1. **Zero overhead when off.**  Every instrumentation site guards with
   ``if tracer.enabled:`` before building event arguments, and the
   default :class:`NullTracer` makes that a single attribute load plus a
   branch.  Hot loops capture the tracer once (at simulator/network
   construction), not per event.
2. **Determinism.**  Simulated-time events carry timestamps from the
   discrete-event clock and are recorded in execution order, so two runs
   of the same seed produce identical event lists.  Wall-clock spans are
   kept on a separate time domain (``wall=True``) that exporters drop by
   default.
3. **Plain data.**  Events are small dataclasses; aggregates (counters,
   histograms) are dicts of builtins.  Exporters and summaries live in
   sibling modules and never require numpy.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

TrackId = Union[int, str]


@dataclass
class Span:
    """One completed interval on a (pid, tid) track."""

    name: str
    cat: str
    pid: TrackId
    tid: TrackId
    start_s: float
    duration_s: float
    args: Dict[str, object] = field(default_factory=dict)
    #: True for wall-clock spans (non-deterministic timestamps).
    wall: bool = False

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class Sample:
    """One counter sample (a point on a Chrome counter track)."""

    name: str
    pid: TrackId
    tid: TrackId
    ts_s: float
    value: float
    series: str = "value"


class Histogram:
    """Streaming histogram: count/sum/min/max plus log2 buckets.

    Buckets are powers of two of the recorded value (``floor(log2 v)``),
    which is deterministic and needs no a-priori range.  Zero and
    negative values land in a dedicated underflow bucket.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = math.floor(math.log2(value)) if value > 0.0 else -1075
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": int(self.count),
            "total": float(self.total),
            "mean": float(self.mean),
            "min": float(self.min) if self.count else 0.0,
            "max": float(self.max) if self.count else 0.0,
            "buckets": {str(k): int(v) for k, v in sorted(self.buckets.items())},
        }


class Tracer:
    """Interface shared by :class:`NullTracer` and :class:`RecordingTracer`.

    All methods are no-ops here; instrumentation sites may call them
    unconditionally for cold paths, or guard with :attr:`enabled` before
    assembling per-event arguments on hot paths.
    """

    enabled = False

    def span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        cat: str = "",
        pid: TrackId = 0,
        tid: TrackId = 0,
        wall: bool = False,
        **args: object,
    ) -> None:
        """Record one completed interval."""

    def sample(
        self,
        name: str,
        ts_s: float,
        value: float,
        pid: TrackId = 0,
        tid: TrackId = 0,
        series: str = "value",
    ) -> None:
        """Record one counter sample (a Chrome ``C`` event)."""

    def counter_add(self, name: str, value: float = 1.0, key: TrackId = "") -> None:
        """Accumulate into the ``(name, key)`` running total."""

    def histogram_record(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""

    @contextmanager
    def wall_span(
        self,
        name: str,
        cat: str = "",
        pid: TrackId = "wall",
        tid: TrackId = 0,
        **args: object,
    ) -> Iterator[None]:
        """Measure the enclosed block with ``time.perf_counter``."""
        yield


class NullTracer(Tracer):
    """The default: records nothing, costs one branch per guard."""


#: Shared no-op instance; ``get_tracer`` returns it unless one is set.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """In-memory tracer collecting spans, samples, counters, histograms.

    Wall-clock spans are timestamped relative to the tracer's creation
    so exported wall tracks start near zero.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.samples: List[Sample] = []
        self.counters: Dict[Tuple[str, TrackId], float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._wall_origin = time.perf_counter()

    # ------------------------------------------------------------------ #

    def span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        cat: str = "",
        pid: TrackId = 0,
        tid: TrackId = 0,
        wall: bool = False,
        **args: object,
    ) -> None:
        self.spans.append(
            Span(name, cat, pid, tid, float(start_s), float(duration_s), args, wall)
        )

    def sample(
        self,
        name: str,
        ts_s: float,
        value: float,
        pid: TrackId = 0,
        tid: TrackId = 0,
        series: str = "value",
    ) -> None:
        self.samples.append(
            Sample(name, pid, tid, float(ts_s), float(value), series)
        )

    def counter_add(self, name: str, value: float = 1.0, key: TrackId = "") -> None:
        slot = (name, key)
        self.counters[slot] = self.counters.get(slot, 0.0) + value

    def histogram_record(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.record(float(value))

    @contextmanager
    def wall_span(
        self,
        name: str,
        cat: str = "",
        pid: TrackId = "wall",
        tid: TrackId = 0,
        **args: object,
    ) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.span(
                name,
                start - self._wall_origin,
                end - start,
                cat=cat,
                pid=pid,
                tid=tid,
                wall=True,
                **args,
            )

    # ------------------------------------------------------------------ #
    # queries (used by summaries, exporters and tests)
    # ------------------------------------------------------------------ #

    def spans_by(
        self,
        cat: Optional[str] = None,
        pid: Optional[TrackId] = None,
        wall: Optional[bool] = None,
    ) -> List[Span]:
        """Spans filtered by category / pid / time domain."""
        out = []
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            if pid is not None and span.pid != pid:
                continue
            if wall is not None and span.wall != wall:
                continue
            out.append(span)
        return out

    def counter_total(self, name: str, key: Optional[TrackId] = None) -> float:
        """Total of one counter: one key, or summed over all keys."""
        if key is not None:
            return self.counters.get((name, key), 0.0)
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def clear(self) -> None:
        self.spans.clear()
        self.samples.clear()
        self.counters.clear()
        self.histograms.clear()


# ---------------------------------------------------------------------- #
# the process-wide tracer
# ---------------------------------------------------------------------- #

_TRACER: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed process-wide tracer."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install *tracer* globally (``None`` restores the null tracer).

    Components capture the tracer when they are constructed (simulators,
    network models), so install the tracer *before* building the objects
    whose activity should be recorded.  Returns the previous tracer.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
