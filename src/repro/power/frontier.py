"""Cap-sweep drivers: measured throughput/energy/EDP frontiers.

The sweep runs one app through the orchestrator at several chip-level
power caps (always including the uncapped baseline, which shares its
cache identity with every other campaign) and extracts the raw frontier
rows -- makespan, throughput, energy, EDP and the governor's
cap-enforcement accounting per cap level.  :mod:`repro.analysis.report`
formats these rows into the power-cap report section; the ``repro
power sweep`` CLI drives the same functions.

Default cap levels are fractions of the *estimated* uncapped chip peak
(:func:`chip_peak_power_w`), so the same sweep shape works across die
sizes and technology nodes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.power.spec import PowerCapSpec

#: Cap levels of the default sweep, as fractions of the estimated
#: uncapped chip peak: from barely binding down to deeply throttled.
DEFAULT_CAP_FRACTIONS = (0.9, 0.75, 0.6, 0.45)


def chip_peak_power_w(
    num_workers: int = 64,
    num_islands: Optional[int] = None,
    tech=None,
) -> float:
    """Estimated uncapped chip peak power (all cores busy at nominal).

    With ``tech=None`` this is the paper platform: every core at the
    65 nm nominal point.  A :class:`repro.tech.TechSpec` prices each
    island's cores at its node/core-type nominal instead.
    """
    from repro.core.geometry import DieGeometry
    from repro.energy.core_power import CorePowerModel, CorePowerParams
    from repro.tech.spec import normalize_tech

    if num_islands is None:
        num_islands = DieGeometry.for_cores(num_workers).num_islands
    tech = normalize_tech(tech)
    if tech is None:
        model = CorePowerModel(CorePowerParams())
        nominal = model.params.nominal
        per_core = (
            model.dynamic_power_w(nominal, 1.0) + model.leakage_power_w(nominal)
        )
        return num_workers * per_core
    node = tech.tech_node()
    mix = tech.mix_for(num_islands)
    cores_per_island = num_workers // num_islands
    total = 0.0
    for core_type in mix.types:
        model = CorePowerModel(CorePowerParams.from_tech(node, core_type))
        nominal = model.params.nominal
        total += cores_per_island * (
            model.dynamic_power_w(nominal, 1.0) + model.leakage_power_w(nominal)
        )
    return total


def default_caps_w(
    num_workers: int = 64,
    tech=None,
    fractions: Sequence[float] = DEFAULT_CAP_FRACTIONS,
) -> Tuple[float, ...]:
    """Default sweep cap levels (watts), tightest last."""
    peak = chip_peak_power_w(num_workers, tech=tech)
    return tuple(round(peak * fraction, 1) for fraction in fractions)


def cap_sweep_specs(
    app: str,
    caps_w: Sequence[float],
    scale: float = 1.0,
    seed: int = 7,
    num_workers: int = 64,
    tech=None,
    fault_plan=None,
):
    """The campaign specs of a cap sweep: uncapped baseline + one unit
    per cap level, all sharing the other axes."""
    from repro.orchestrator.spec import expand_grid

    caps: List[Union[None, PowerCapSpec]] = [None]
    caps.extend(PowerCapSpec(chip_cap_w=float(cap)) for cap in caps_w)
    return expand_grid(
        [app],
        scales=[scale],
        seeds=[seed],
        num_workers=[num_workers],
        fault_plans=[fault_plan],
        tech=[tech],
        power_caps=caps,
    )


def run_cap_sweep(
    app: str,
    caps_w: Optional[Sequence[float]] = None,
    scale: float = 1.0,
    seed: int = 7,
    num_workers: int = 64,
    tech=None,
    fault_plan=None,
    jobs: int = 1,
    cache=None,
    progress=None,
):
    """Run a cap sweep through the orchestrator.

    Returns ``(cap_studies, campaign)`` where *cap_studies* maps the
    chip cap in watts (``None`` = uncapped baseline, first) to its
    :class:`repro.core.experiment.AppStudy`, in loosest-to-tightest
    order, and *campaign* is the orchestrator result (for manifests).
    """
    from repro.orchestrator.executor import run_campaign

    if caps_w is None:
        caps_w = default_caps_w(num_workers, tech=tech)
    caps_w = tuple(sorted((float(c) for c in caps_w), reverse=True))
    specs = cap_sweep_specs(
        app, caps_w, scale=scale, seed=seed, num_workers=num_workers,
        tech=tech, fault_plan=fault_plan,
    )
    campaign = run_campaign(specs, jobs=jobs, cache=cache, progress=progress)
    campaign.raise_failures()
    cap_studies: Dict[Optional[float], object] = {}
    for spec in specs:
        cap = spec.cap()
        cap_studies[None if cap is None else cap.chip_cap_w] = (
            campaign.study(spec)
        )
    return cap_studies, campaign


def frontier_rows(
    cap_studies: Mapping[Optional[float], object],
    config: str = "vfi2_winoc",
) -> List[Dict]:
    """Raw frontier rows, loosest cap first (uncapped leading).

    Each row carries the measured makespan/throughput/energy/EDP of
    *config* plus the governor's accounting (throttle events, residency
    below nominal, unmet boundaries, observed peak power).  Formatting
    lives in :func:`repro.analysis.report.power_section`.
    """
    def order(item):
        cap = item[0]
        return (0, 0.0) if cap is None else (1, -cap)

    rows = []
    for cap_w, study in sorted(cap_studies.items(), key=order):
        result = study.result(config)
        impact = result.power
        row = {
            "cap_w": cap_w,
            "config": config,
            "time_s": result.total_time_s,
            "throughput_per_s": 1.0 / result.total_time_s,
            "energy_j": result.total_energy_j,
            "edp": result.edp,
            "throttle_events": 0,
            "throttled_islands": [],
            "throttled_s": 0.0,
            "unmet_boundaries": 0,
            "peak_power_w": None,
        }
        if impact is not None:
            row.update(
                throttle_events=len(impact.throttle_events),
                throttled_islands=list(impact.throttled_islands),
                throttled_s=impact.throttled_s,
                unmet_boundaries=impact.unmet_boundaries,
                peak_power_w=impact.peak_power_w,
            )
        rows.append(row)
    return rows
