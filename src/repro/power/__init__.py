"""Runtime power management: caps, the governor, and cap-sweep frontiers.

The power axis mirrors the fault and tech axes end to end:

* :class:`PowerCapSpec` -- a canonical, content-addressable power
  budget (chip-level and/or per-island caps); the unbounded default
  collapses to ``None`` everywhere it is carried.
* :class:`CapGovernor` -- deterministic phase-boundary enforcement
  inside the simulator: per-island power estimation, cheapest-loss
  ladder step-downs with the master-island shield, automatic
  re-raising under returning headroom.
* :class:`CapImpact` -- the plain-data accounting record a capped run
  attaches to its :class:`repro.sim.stats.SimulationResult`.
* :mod:`repro.power.frontier` -- cap-sweep drivers producing the
  measured throughput/energy/EDP frontier.
"""

from repro.power.frontier import (
    DEFAULT_CAP_FRACTIONS,
    cap_sweep_specs,
    chip_peak_power_w,
    default_caps_w,
    frontier_rows,
    run_cap_sweep,
)
from repro.power.governor import CapGovernor
from repro.power.impact import CapImpact
from repro.power.spec import PowerCapSpec, canonical_cap_json, normalize_cap

__all__ = [
    "CapGovernor",
    "CapImpact",
    "DEFAULT_CAP_FRACTIONS",
    "PowerCapSpec",
    "canonical_cap_json",
    "cap_sweep_specs",
    "chip_peak_power_w",
    "default_caps_w",
    "frontier_rows",
    "normalize_cap",
    "run_cap_sweep",
]
