"""Cap-enforcement accounting for one power-capped simulation run.

:class:`CapImpact` is the plain-data record a power-capped
:class:`repro.sim.system.SystemSimulator` run attaches to its
:class:`repro.sim.stats.SimulationResult`.  It carries no simulator
state -- only builtin types -- so it serializes to JSON alongside the
result and survives the orchestrator's on-disk cache round trip.

This module must stay import-light (no numpy, no simulator imports):
``repro.sim.stats`` imports it, and the cap governor lives one layer
above in :mod:`repro.power.governor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CapImpact:
    """What a power cap did to one simulation run."""

    #: The chip-level cap enforced (watts), or ``None`` when only
    #: per-island caps were set.
    cap_w: Optional[float] = None
    #: Phase boundaries at which the governor polled island power.
    boundaries_polled: int = 0
    #: Boundaries where the cap stayed exceeded even with every
    #: throttleable island at the ladder floor.
    unmet_boundaries: int = 0
    #: Governor decisions, in application order (each entry records the
    #: boundary time, island, and the ladder move it made).
    throttle_events: List[Dict] = field(default_factory=list)
    #: Island-seconds of residency per DVFS-ladder index (nominal is the
    #: highest index), summed over islands and keyed by ladder index.
    residency_s: Dict[int, float] = field(default_factory=dict)
    #: Island-seconds spent *below* the island's base operating point
    #: (i.e. actually throttled by the governor; the per-index residency
    #: above also counts islands' native below-nominal V/F designs).
    throttled_s: float = 0.0
    #: Islands that spent at least one boundary below their base point.
    throttled_islands: List[int] = field(default_factory=list)
    #: Largest estimated chip power the governor observed (watts),
    #: measured *after* its throttle decision at each boundary.
    peak_power_w: float = 0.0

    def to_dict(self) -> Dict:
        """JSON-compatible encoding (builtins only)."""
        return {
            "cap_w": None if self.cap_w is None else float(self.cap_w),
            "boundaries_polled": int(self.boundaries_polled),
            "unmet_boundaries": int(self.unmet_boundaries),
            "throttle_events": [dict(e) for e in self.throttle_events],
            "residency_s": {
                str(int(step)): float(seconds)
                for step, seconds in sorted(self.residency_s.items())
            },
            "throttled_s": float(self.throttled_s),
            "throttled_islands": [int(i) for i in self.throttled_islands],
            "peak_power_w": float(self.peak_power_w),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CapImpact":
        cap_w = data.get("cap_w")
        return cls(
            cap_w=None if cap_w is None else float(cap_w),
            boundaries_polled=int(data.get("boundaries_polled", 0)),
            unmet_boundaries=int(data.get("unmet_boundaries", 0)),
            throttle_events=[dict(e) for e in data.get("throttle_events", [])],
            residency_s={
                int(step): float(seconds)
                for step, seconds in data.get("residency_s", {}).items()
            },
            throttled_s=float(data.get("throttled_s", 0.0)),
            throttled_islands=[int(i) for i in data.get("throttled_islands", [])],
            peak_power_w=float(data.get("peak_power_w", 0.0)),
        )
