"""The cap governor: enforces a :class:`PowerCapSpec` on a running run.

One :class:`CapGovernor` instance is owned by one
:class:`repro.sim.system.SystemSimulator` run.  The simulator polls it
at every phase boundary (the same hook shape as
:class:`repro.faults.engine.FaultEngine`): the governor estimates
per-island power from the platform's :class:`CorePowerModel` accounting
and the measured busy activity since the last poll, and decides a
per-island DVFS assignment that honors the caps:

* per-island caps throttle their island down the (tech-derived) ladder
  until the island budget is met;
* the chip-level cap then steps islands down
  **cheapest-throughput-loss-first** (loss = activity x cores x
  frequency drop x core-type performance scale), shielding master
  islands -- the islands holding lib-init owners -- exactly as PR 4's
  bottleneck reassignment does, falling back to masters only when no
  other island has ladder headroom;
* the assignment is recomputed from nominal at every boundary, so
  islands **re-raise automatically** when activity headroom returns.

Everything is deterministic: decisions are pure functions of the
(platform, cap, measured activity) triple, ties break on fixed keys,
and no call reads global random state.  With an unbounded spec no
governor is constructed at all, so uncapped runs take the exact legacy
code path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.power.impact import CapImpact
from repro.power.spec import PowerCapSpec
from repro.telemetry import get_tracer
from repro.vfi.islands import VfPoint, nearest_ladder_point

if TYPE_CHECKING:  # runtime import is deferred: sim.config imports the
    # power leaf modules, so importing the platform here at module scope
    # would close a cycle through the package __init__.
    from repro.sim.platform import Platform


class CapGovernor:
    """Deterministic phase-boundary power-cap enforcement for one run."""

    def __init__(
        self,
        platform: Platform,
        cap: PowerCapSpec,
        tracer=None,
    ):
        self.cap = cap
        self.tracer = tracer if tracer is not None else get_tracer()

        #: Workers that run lib-init (set by :meth:`begin`); the islands
        #: holding them are the shielded "master" islands.
        self.master_workers: Set[int] = set()

        self._steps: List[int] = []
        self._activities: Optional[np.ndarray] = None
        self._last_busy: Optional[np.ndarray] = None
        self._last_time = 0.0
        self._boundaries = 0
        self._unmet = 0
        self._events: List[Dict] = []
        self._residency: Dict[int, float] = {}
        self._throttled: Set[int] = set()
        self._throttled_s = 0.0
        self._peak_power = 0.0

        self.rebase(platform)

    # ------------------------------------------------------------------ #
    # base platform (stacks under the fault engine's degraded view)
    # ------------------------------------------------------------------ #

    def rebase(self, platform: Platform) -> None:
        """(Re)target the governor at *platform*.

        Called once at construction and again whenever the fault engine
        swaps the platform underneath (the governor's ladder steps stack
        on top of fault throttling, never the other way around).
        """
        self.base_platform = platform
        ladder = platform.ladder
        num_islands = platform.layout.num_clusters
        self._base_indices = tuple(
            ladder.index(nearest_ladder_point(point.frequency_hz, ladder))
            for point in platform.vf_points
        )
        members: List[List[int]] = [[] for _ in range(num_islands)]
        for worker in range(platform.num_cores):
            members[platform.island_of_worker(worker)].append(worker)
        self._island_workers = tuple(
            np.array(workers, dtype=int) for workers in members
        )
        if len(self._steps) != num_islands:
            self._steps = [0] * num_islands
        self._platform_cache: Dict[Tuple[int, ...], Platform] = {}

    def begin(self, trace) -> None:
        """Learn which workers are masters (lib-init owners) from the
        trace, before the first phase runs."""
        self.master_workers = {
            iteration.lib_init.home_worker for iteration in trace.iterations
        }

    # ------------------------------------------------------------------ #
    # the phase-boundary poll
    # ------------------------------------------------------------------ #

    def poll(self, now: float, busy_s: np.ndarray) -> bool:
        """Observe activity up to *now* and re-decide island V/F.

        *busy_s* is the cumulative per-worker busy time of the run so
        far.  Returns whether the effective platform changed (the caller
        must refresh its platform view and frequency/policy maps).
        """
        num_islands = len(self._steps)
        busy = np.asarray(busy_s, dtype=float)
        elapsed = now - self._last_time
        if elapsed > 0.0:
            # Close the residency interval the old assignment covered.
            for island in range(num_islands):
                index = self._index_of(island, self._steps[island])
                self._residency[index] = (
                    self._residency.get(index, 0.0) + elapsed
                )
                if self._steps[island] > 0:
                    self._throttled_s += elapsed
            delta = busy if self._last_busy is None else busy - self._last_busy
            activities = np.empty(num_islands)
            for island, workers in enumerate(self._island_workers):
                if len(workers) == 0:
                    activities[island] = 0.0
                    continue
                mean = float(np.mean(delta[workers])) / elapsed
                activities[island] = min(max(mean, 0.0), 1.0)
            self._activities = activities
            self._last_time = now
        elif self._activities is None:
            # First poll at t=0: nothing measured yet, assume full tilt
            # (the conservative direction for a cap).
            self._activities = np.ones(num_islands)
        self._last_busy = busy.copy()

        old_steps = list(self._steps)
        steps, met = self._decide(self._activities)
        self._steps = steps
        self._boundaries += 1
        if not met:
            self._unmet += 1
        power = self._chip_power_w(steps, self._activities)
        self._peak_power = max(self._peak_power, power)

        ladder = self.base_platform.ladder
        changed = False
        for island in range(num_islands):
            if steps[island] > 0:
                self._throttled.add(island)
            if steps[island] == old_steps[island]:
                continue
            changed = True
            from_index = self._index_of(island, old_steps[island])
            to_index = self._index_of(island, steps[island])
            self._events.append({
                "t_s": float(now),
                "island": int(island),
                "from_step": int(from_index),
                "to_step": int(to_index),
                "from_hz": float(ladder[from_index].frequency_hz),
                "to_hz": float(ladder[to_index].frequency_hz),
            })
            if self.tracer.enabled:
                kind = "down" if steps[island] > old_steps[island] else "up"
                self.tracer.counter_add(
                    f"power.throttle_{kind}", 1.0, key=f"island{island}"
                )
        return changed

    def _decide(self, activities: np.ndarray) -> Tuple[List[int], bool]:
        """The ladder assignment honoring the caps at *activities*.

        Recomputed from nominal every boundary -- re-raising under
        returning headroom is the zero case, not a special path.
        Returns ``(steps_down_per_island, every_binding_cap_met)``.
        """
        num_islands = len(self._steps)
        steps = [0] * num_islands
        met = True

        # Per-island budgets first: strictly local decisions.
        for island, cap_w in self.cap.island_caps_w:
            if island >= num_islands:
                continue  # lenient, like fault plans on a smaller die
            while (
                self._island_power_w(island, steps[island], activities[island])
                > cap_w
            ):
                if self._base_indices[island] - steps[island] <= 0:
                    met = False
                    break
                steps[island] += 1

        # Then the chip budget: cheapest-throughput-loss-first.
        chip_cap = self.cap.chip_cap_w
        if chip_cap is not None:
            master_islands = {
                self.base_platform.island_of_worker(worker)
                for worker in self.master_workers
            }
            while self._chip_power_w(steps, activities) > chip_cap:
                victim = self._pick_victim(steps, activities, master_islands)
                if victim is None:
                    met = False
                    break
                steps[victim] += 1
        return steps, met

    def _pick_victim(
        self,
        steps: List[int],
        activities: np.ndarray,
        master_islands: Set[int],
    ) -> Optional[int]:
        """The island whose next ladder step costs the least throughput.

        Master islands are shielded: they are only candidates when no
        other island has ladder headroom left (the cap must be honored
        somewhere, but never on the critical serial path while there is
        any alternative).
        """
        def loss_of(island: int) -> Tuple[float, int]:
            current = self._point(island, steps[island])
            lower = self._point(island, steps[island] + 1)
            scale = 1.0
            if self.base_platform.perf_scales is not None:
                scale = self.base_platform.perf_scales[island]
            drop = (current.frequency_hz - lower.frequency_hz) * scale
            workers = len(self._island_workers[island])
            return (float(activities[island]) * workers * drop, island)

        candidates = [
            island
            for island in range(len(steps))
            if island not in master_islands
            and self._base_indices[island] - steps[island] > 0
        ]
        if not candidates:
            candidates = [
                island
                for island in range(len(steps))
                if self._base_indices[island] - steps[island] > 0
            ]
        if not candidates:
            return None
        return min(candidates, key=loss_of)

    # ------------------------------------------------------------------ #
    # power accounting
    # ------------------------------------------------------------------ #

    def _index_of(self, island: int, steps_down: int) -> int:
        return max(self._base_indices[island] - steps_down, 0)

    def _point(self, island: int, steps_down: int) -> VfPoint:
        return self.base_platform.ladder[self._index_of(island, steps_down)]

    def _island_power_w(
        self, island: int, steps_down: int, activity: float
    ) -> float:
        """Estimated power of *island* at *steps_down* with *activity*.

        Mean power over an interval with busy fraction ``a`` is
        ``P_dyn(a + (1-a) * idle_activity) + P_leak`` per core --
        dynamic power is linear in the activity factor, so the busy/idle
        split folds into one blended activity.
        """
        workers = len(self._island_workers[island])
        if workers == 0:
            return 0.0
        model = self.base_platform.core_power_of(island)
        point = self._point(island, steps_down)
        activity = float(activity)
        blend = activity + (1.0 - activity) * model.params.idle_activity
        return workers * (
            model.dynamic_power_w(point, blend) + model.leakage_power_w(point)
        )

    def _chip_power_w(self, steps: List[int], activities: np.ndarray) -> float:
        return sum(
            self._island_power_w(island, steps[island], activities[island])
            for island in range(len(steps))
        )

    def estimated_chip_power_w(self) -> float:
        """The current post-decision chip power estimate (watts)."""
        if self._activities is None:
            return self._chip_power_w(
                self._steps, np.ones(len(self._steps))
            )
        return self._chip_power_w(self._steps, self._activities)

    def throughput_proxy_hz(self) -> float:
        """Sum of effective worker frequencies under the current
        assignment -- the monotone proxy the frontier/property tests
        compare across cap levels."""
        total = 0.0
        for island in range(len(self._steps)):
            scale = 1.0
            if self.base_platform.perf_scales is not None:
                scale = self.base_platform.perf_scales[island]
            total += (
                len(self._island_workers[island])
                * self._point(island, self._steps[island]).frequency_hz
                * scale
            )
        return total

    # ------------------------------------------------------------------ #
    # effective view + accounting
    # ------------------------------------------------------------------ #

    def effective_platform(self) -> Platform:
        """The platform under the current ladder assignment.

        Returns the base platform object itself while every island sits
        at its base point, so uncapped stretches of a run share every
        cached table with a clean simulation.  Capped platforms are
        cached per assignment and share the base platform's NoC static
        cache and bulk routing (the fabric never changes -- only V/F).
        """
        steps = tuple(self._steps)
        if not any(steps):
            return self.base_platform
        platform = self._platform_cache.get(steps)
        if platform is not None:
            return platform
        base = self.base_platform
        points = [
            self._point(island, down) for island, down in enumerate(steps)
        ]
        platform = base.with_vf(points, name=f"{base.name}+capped")
        platform._bulk_routing = base._bulk_routing
        platform._noc_static_cache = base._noc_static_cache
        platform.network = platform.build_network()
        self._platform_cache[steps] = platform
        return platform

    def finish(self, total_time_s: float) -> None:
        """Close the final residency interval at the run's end."""
        elapsed = total_time_s - self._last_time
        if elapsed > 0.0:
            for island in range(len(self._steps)):
                index = self._index_of(island, self._steps[island])
                self._residency[index] = (
                    self._residency.get(index, 0.0) + elapsed
                )
                if self._steps[island] > 0:
                    self._throttled_s += elapsed
            self._last_time = total_time_s

    def impact(self) -> CapImpact:
        """Snapshot of the cap-enforcement accounting so far."""
        return CapImpact(
            cap_w=self.cap.chip_cap_w,
            boundaries_polled=self._boundaries,
            unmet_boundaries=self._unmet,
            throttle_events=[dict(e) for e in self._events],
            residency_s=dict(self._residency),
            throttled_s=self._throttled_s,
            throttled_islands=sorted(self._throttled),
            peak_power_w=self._peak_power,
        )
