"""The canonical power-cap unit: :class:`PowerCapSpec`.

A PowerCapSpec names one runtime power budget -- a chip-level cap, an
optional set of per-island caps, or both -- in canonical, hashable,
JSON-round-trippable form, exactly like :class:`repro.faults.FaultPlan`
does for the fault axis and :class:`repro.tech.spec.TechSpec` for the
technology axis.  The unbounded configuration (no chip cap, no island
caps) is the default and collapses to ``None`` wherever the spec is
carried as an axis field (:class:`repro.orchestrator.spec.StudySpec`,
:class:`repro.cluster.fleet.ChipSpec`): the uncapped study keeps
exactly one identity, and its pipeline stays bit-for-bit the
pre-power-axis computation.

This module must stay import-light (no numpy, no simulator imports):
``repro.sim.config`` imports it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from numbers import Real
from typing import Dict, Optional, Tuple, Union


@dataclass(frozen=True)
class PowerCapSpec:
    """One runtime power budget: chip cap and/or per-island caps."""

    #: Chip-level budget in watts the governor enforces, or ``None``
    #: for no chip-level bound.
    chip_cap_w: Optional[float] = None
    #: Per-island budgets as ``(island, watts)`` pairs (canonically
    #: sorted by island); islands not named are unbounded.
    island_caps_w: Tuple[Tuple[int, float], ...] = ()
    #: Optional human-readable tag (carried through JSON, shown in
    #: labels; does not affect enforcement).
    name: Optional[str] = None

    def __post_init__(self) -> None:
        chip_cap = self.chip_cap_w
        if chip_cap is not None:
            chip_cap = float(chip_cap)
            if chip_cap <= 0.0:
                raise ValueError(f"chip_cap_w must be > 0, got {chip_cap}")
        object.__setattr__(self, "chip_cap_w", chip_cap)
        caps = []
        for island, watts in self.island_caps_w:
            island = int(island)
            watts = float(watts)
            if island < 0:
                raise ValueError(f"island must be >= 0, got {island}")
            if watts <= 0.0:
                raise ValueError(
                    f"island {island} cap must be > 0 W, got {watts}"
                )
            caps.append((island, watts))
        caps.sort()
        islands = [island for island, _ in caps]
        if len(set(islands)) != len(islands):
            raise ValueError(f"duplicate island caps: {islands}")
        object.__setattr__(self, "island_caps_w", tuple(caps))
        if self.name is not None:
            object.__setattr__(self, "name", str(self.name))

    # ------------------------------------------------------------------ #

    @property
    def is_default(self) -> bool:
        """Is this the unbounded (no-cap) configuration?"""
        return self.chip_cap_w is None and not self.island_caps_w

    @property
    def label(self) -> str:
        if self.is_default:
            return "uncapped"
        parts = []
        if self.chip_cap_w is not None:
            parts.append(f"{self.chip_cap_w:g}W")
        for island, watts in self.island_caps_w:
            parts.append(f"isl{island}@{watts:g}W")
        text = "+".join(parts)
        if self.name:
            text = f"{self.name}({text})"
        return text

    def island_cap(self, island: int) -> Optional[float]:
        """The budget for *island*, or ``None`` when unbounded."""
        for capped, watts in self.island_caps_w:
            if capped == island:
                return watts
        return None

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        return {
            "chip_cap_w": self.chip_cap_w,
            "island_caps_w": [
                [island, watts] for island, watts in self.island_caps_w
            ],
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PowerCapSpec":
        data = dict(data)
        caps = data.get("island_caps_w", ())
        data["island_caps_w"] = tuple(
            (island, watts) for island, watts in caps
        )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "PowerCapSpec":
        return cls.from_dict(json.loads(text))


def canonical_cap_json(
    cap: Union[None, str, Real, PowerCapSpec]
) -> Optional[str]:
    """Normalize a power-cap field to canonical JSON (or ``None``).

    Accepts a :class:`PowerCapSpec`, a bare number (a chip-level cap in
    watts -- the common sweep case), a JSON string (re-canonicalized
    through a round trip, so key order and whitespace never split a
    cache), or ``None``.  The unbounded spec collapses to ``None`` --
    the uncapped configuration keeps exactly one identity, the same
    rule the fault and tech axes apply to their defaults.
    """
    if cap is None:
        return None
    if isinstance(cap, Real) and not isinstance(cap, bool):
        cap = PowerCapSpec(chip_cap_w=float(cap))
    if isinstance(cap, str):
        cap = PowerCapSpec.from_json(cap)
    if not isinstance(cap, PowerCapSpec):
        raise TypeError(
            f"power_cap must be None, watts, JSON text or PowerCapSpec, "
            f"got {cap!r}"
        )
    if cap.is_default:
        return None
    return cap.to_json()


def normalize_cap(
    cap: Union[None, str, Real, PowerCapSpec]
) -> Optional[PowerCapSpec]:
    """Decode a power-cap field to a :class:`PowerCapSpec`, or ``None``
    for the unbounded configuration (so uncapped runs take the exact
    legacy code path)."""
    text = canonical_cap_json(cap)
    if text is None:
        return None
    return PowerCapSpec.from_json(text)
