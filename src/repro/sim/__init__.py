"""Full-system performance and energy simulation.

Replays a platform-independent :class:`repro.mapreduce.trace.JobTrace` on
a :class:`repro.sim.platform.Platform` (cores + VFI islands + NoC) with a
discrete-event scheduler:

* cores execute tasks at their island's frequency; per-task time is
  compute (instructions / IPC / f) plus memory stalls (L1-miss traffic to
  distributed S-NUCA L2 banks over the NoC, with MLP overlap) plus
  explicit key-value pull streams in Reduce/Merge;
* the Map phase honors Phoenix++ task stealing -- default greedy or the
  paper's Eq. (3)-capped policy -- with steal decisions driven by
  simulated completion times;
* network latencies come from the contention-aware flow model
  (:mod:`repro.noc.network`); each phase is relaxed to a fixed point
  (durations -> flows -> latencies -> durations);
* energy integrates McPAT-style core power over busy/idle time per
  island V/F plus per-bit NoC transfer energy and switch leakage.

The result object carries everything the paper's figures need: phase
times (Fig. 7), per-core utilization (Figs. 2, 5), full-system and
network-only EDP (Figs. 4, 6, 8).
"""

from repro.sim.adaptive import (
    PhaseAdaptiveSimulator,
    VfSchedule,
    phase_adaptive_schedule,
)
from repro.sim.config import CoreParams, MemoryParams, SimulationParams
from repro.sim.memory import MemorySystem
from repro.sim.platform import Platform
from repro.sim.stats import PhaseStats, SimulationResult
from repro.sim.system import SystemSimulator, simulate

__all__ = [
    "PhaseAdaptiveSimulator",
    "VfSchedule",
    "phase_adaptive_schedule",
    "CoreParams",
    "MemoryParams",
    "SimulationParams",
    "MemorySystem",
    "Platform",
    "SystemSimulator",
    "simulate",
    "SimulationResult",
    "PhaseStats",
]
