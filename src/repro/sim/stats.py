"""Simulation results: timing, utilization, energy, network statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.energy.metrics import EnergyBreakdown, edp
from repro.faults.impact import FaultImpact
from repro.mapreduce.tasks import Phase
from repro.power.impact import CapImpact


@dataclass
class PhaseStats:
    """Timing of one phase instance (one iteration's Map, etc.)."""

    phase: Phase
    iteration: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class NetworkStats:
    """Aggregate interconnect statistics for a run."""

    bits_moved: float = 0.0
    average_hops: float = 0.0
    wireless_fraction: float = 0.0
    dynamic_energy_j: float = 0.0
    static_energy_j: float = 0.0

    @property
    def energy_j(self) -> float:
        return self.dynamic_energy_j + self.static_energy_j


@dataclass
class SimulationResult:
    """Everything the paper's tables and figures consume."""

    app_name: str
    platform_name: str
    total_time_s: float
    busy_s: np.ndarray  # per worker
    committed_instructions: np.ndarray  # per worker
    worker_frequencies_hz: np.ndarray  # per worker
    issue_width: float
    phases: List[PhaseStats] = field(default_factory=list)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    network: NetworkStats = field(default_factory=NetworkStats)
    #: Degradation accounting; ``None`` for fault-free runs (the common
    #: case keeps its serialized form byte-identical to before faults
    #: existed).
    faults: Optional[FaultImpact] = None
    #: Cap-enforcement accounting; ``None`` for uncapped runs (the
    #: common case keeps its serialized form byte-identical to before
    #: the power axis existed).
    power: Optional[CapImpact] = None

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def utilization(self) -> np.ndarray:
        """Per-worker utilization as the paper defines it (Sec. 4.1):
        instructions committed per cycle, normalized by issue width.

        Memory stalls and idle time both depress it, exactly as in the
        GEM5 measurement the paper's Fig. 2 plots."""
        if self.total_time_s <= 0:
            raise ValueError("run has zero duration")
        cycles = self.total_time_s * self.worker_frequencies_hz
        return np.clip(
            self.committed_instructions / (cycles * self.issue_width), 0.0, 1.0
        )

    @property
    def busy_fraction(self) -> np.ndarray:
        """Per-worker busy-time fraction (scheduling occupancy)."""
        return np.clip(self.busy_s / self.total_time_s, 0.0, 1.0)

    def phase_duration_s(self, phase: Phase) -> float:
        """Total wall time of *phase* across iterations (paper Fig. 7)."""
        return sum(p.duration_s for p in self.phases if p.phase is phase)

    def phase_breakdown(self) -> Dict[Phase, float]:
        breakdown: Dict[Phase, float] = {}
        for stats in self.phases:
            breakdown[stats.phase] = (
                breakdown.get(stats.phase, 0.0) + stats.duration_s
            )
        return breakdown

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def edp(self) -> float:
        """Full-system energy-delay product (paper Figs. 4b, 8)."""
        return edp(self.energy.total_j, self.total_time_s)

    @property
    def network_edp(self) -> float:
        """Network-only EDP (paper Fig. 6)."""
        return edp(self.network.energy_j, self.total_time_s)

    def summary(self) -> Dict[str, float]:
        return {
            "total_time_s": self.total_time_s,
            "total_energy_j": self.total_energy_j,
            "edp": self.edp,
            "network_edp": self.network_edp,
            "avg_utilization": float(self.utilization.mean()),
            "wireless_fraction": self.network.wireless_fraction,
            "average_hops": self.network.average_hops,
        }
