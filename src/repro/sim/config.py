"""Simulation configuration: core, memory-hierarchy and solver parameters.

Defaults reflect the paper's GEM5 setup (Sec. 7): x86-class cores, 64 KB
private L1s, a 32 MB shared L2 distributed as one 512 KB S-NUCA bank per
core, MOESI directory coherence, four memory controllers at the die
corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# Imported from the leaf modules (not the ``repro.faults`` package) so the
# faults engine can in turn import the platform without a cycle.
from repro.faults.policy import ResiliencePolicy
from repro.faults.spec import FaultPlan
from repro.power.spec import PowerCapSpec
from repro.utils.validation import check_in_range, check_positive

#: Valid adaptive-relaxation convergence criteria.
RELAXATION_CRITERIA = ("phase_end", "worker_residual")


@dataclass(frozen=True)
class CoreParams:
    """Core microarchitecture abstraction."""

    #: Sustained instructions per cycle on compute-bound code.
    ipc: float = 1.8
    #: Issue width; the paper's utilization metric is committed
    #: instructions per cycle normalized by issue width (Sec. 4.1).
    issue_width: float = 2.0
    #: Memory-level parallelism: how many outstanding misses overlap, i.e.
    #: the divisor applied to raw miss round-trip time when charging
    #: stall cycles.
    mlp_overlap: float = 3.0

    def __post_init__(self) -> None:
        check_positive("ipc", self.ipc)
        check_positive("issue_width", self.issue_width)
        check_positive("mlp_overlap", self.mlp_overlap)
        if self.ipc > self.issue_width:
            raise ValueError(
                f"ipc {self.ipc} cannot exceed issue width {self.issue_width}"
            )


@dataclass(frozen=True)
class MemoryParams:
    """Cache/memory hierarchy parameters."""

    #: L2 bank access time (cycles at the bank's island clock).
    l2_bank_cycles: float = 12.0
    #: DRAM access time at the memory controller (seconds; off-chip,
    #: frequency independent).
    dram_latency_s: float = 50e-9
    #: MOESI directory overhead: average extra control messages per miss
    #: (invalidations, acks, forwards), as a multiplier on control bits.
    coherence_control_factor: float = 1.4
    #: Memory-controller nodes (die corners on the 8x8 grid).
    controller_nodes: Tuple[int, ...] = (0, 7, 56, 63)

    def __post_init__(self) -> None:
        check_positive("l2_bank_cycles", self.l2_bank_cycles)
        check_positive("dram_latency_s", self.dram_latency_s)
        check_positive("coherence_control_factor", self.coherence_control_factor)
        if not self.controller_nodes:
            raise ValueError("need at least one memory controller node")


@dataclass(frozen=True)
class SimulationParams:
    """Solver knobs.

    Phase relaxation (durations -> flows -> latencies) runs in one of two
    modes:

    * **adaptive** (default): iterate until the phase end time changes by
      less than ``relaxation_rtol`` relative to the phase duration,
      bounded by ``max_relaxation_iterations`` rounds.  The converged
      schedule is committed directly -- no extra scheduling pass.
    * **legacy** (``relaxation_rtol=None``): exactly
      ``relaxation_iterations`` rounds followed by one final scheduling
      pass, reproducing the historical fixed-round behaviour bit-for-bit
      (used by the equivalence tests).
    """

    #: Legacy fixed-round count (only used when ``relaxation_rtol`` is
    #: ``None``).
    relaxation_iterations: int = 2
    #: KV stream chunking granularity (bytes per packet payload).
    kv_chunk_bytes: float = 256.0
    #: Relative tolerance on the phase end time for adaptive relaxation;
    #: ``None`` selects the legacy fixed-round mode.
    relaxation_rtol: Optional[float] = 1e-5
    #: Upper bound on adaptive relaxation rounds (safety net for
    #: oscillating fixed points).
    max_relaxation_iterations: int = 10
    #: Adaptive convergence criterion: ``"phase_end"`` watches the phase
    #: end time (default, historical behaviour); ``"worker_residual"``
    #: watches the largest per-worker busy-time change between rounds
    #: relative to the phase duration (stricter: load can migrate between
    #: workers without moving the makespan).
    relaxation_criterion: str = "phase_end"
    #: Timed degradation events injected into the run; ``None`` (or an
    #: empty plan) is the bit-identical fault-free simulator.
    fault_plan: Optional[FaultPlan] = None
    #: How the system reacts to injected faults; ``None`` selects the
    #: default :class:`repro.faults.policy.ResiliencePolicy`.
    resilience: Optional[ResiliencePolicy] = None
    #: Runtime power budget the cap governor enforces at phase
    #: boundaries; ``None`` (or the unbounded spec) is the bit-identical
    #: uncapped simulator.
    power_cap: Optional[PowerCapSpec] = None

    def __post_init__(self) -> None:
        check_positive("relaxation_iterations", self.relaxation_iterations)
        check_positive("kv_chunk_bytes", self.kv_chunk_bytes)
        if self.relaxation_rtol is not None:
            check_positive("relaxation_rtol", self.relaxation_rtol)
        check_positive("max_relaxation_iterations", self.max_relaxation_iterations)
        if self.relaxation_criterion not in RELAXATION_CRITERIA:
            raise ValueError(
                f"relaxation_criterion must be one of {RELAXATION_CRITERIA}, "
                f"got {self.relaxation_criterion!r}"
            )
