"""The full-system discrete-event simulator.

Replays a :class:`repro.mapreduce.trace.JobTrace` on a
:class:`repro.sim.platform.Platform`:

* **library init** runs serially on the master worker's core;
* the **Map** phase is event-driven: each core pulls from its queue and
  then steals according to the configured policy, with steal decisions
  ordered by simulated completion times -- this is where the paper's
  Eq. (3) cap changes behaviour;
* **Reduce** runs one task per worker after a barrier, each pulling its
  key-value partition slices from every producer core over the NoC;
* **Merge** runs the funnel stages with a barrier per stage, each merge
  task pulling its partner's buffer across the NoC.

Each phase is relaxed to a latency/traffic fixed point: durations are
computed with the current NoC load estimate, the implied flows are
re-registered, latencies refreshed, and the phase re-scheduled.  By
default the loop runs until the phase end time converges
(``SimulationParams.relaxation_rtol`` relative change, bounded by
``max_relaxation_iterations``); setting ``relaxation_rtol=None``
reproduces the legacy fixed-round schedule
(``relaxation_iterations`` rounds plus a final pass) bit-for-bit.
Energy is recorded once, for the committed schedule.

Flow registration is vectorized: per-phase miss traffic enters the NoC
through one mat-vec over precomputed per-node resource rows
(:meth:`repro.sim.memory.MemorySystem.add_miss_flows_batch`) and
key-value streams through one batched
:meth:`repro.noc.network.FlowNetworkModel.add_flows` call; map-task
durations are evaluated as one broadcasted (records x workers) matrix
per relaxation round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.energy.metrics import EnergyBreakdown
from repro.mapreduce.scheduler import StealingPolicy, TaskQueueSet
from repro.mapreduce.tasks import Phase, Task
from repro.mapreduce.trace import JobTrace, TaskRecord
from repro.noc.packets import kv_stream_bits
from repro.sim.config import SimulationParams
from repro.sim.memory import MemorySystem
from repro.sim.platform import Platform
from repro.sim.stats import NetworkStats, PhaseStats, SimulationResult
from repro.telemetry import get_tracer


@dataclass
class _ScheduledTask:
    record: TaskRecord
    worker: int
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class SystemSimulator:
    """Simulates one trace on one platform.

    Parameters
    ----------
    platform:
        Hardware configuration (fresh network state per simulator).
    locality:
        The application's L2-access locality (see
        :class:`repro.sim.memory.MemorySystem`).
    stealing_policy:
        Map-phase stealing policy; ``None`` selects Phoenix++'s default
        greedy stealing.
    params:
        Solver knobs.
    """

    def __init__(
        self,
        platform: Platform,
        locality: float = 0.0,
        stealing_policy: Optional[StealingPolicy] = None,
        params: SimulationParams = SimulationParams(),
    ):
        self.platform = platform
        # Fresh network per simulation so runs never share load/energy state.
        platform.network = platform.build_network()
        # Telemetry: captured once (install a tracer before construction).
        # Simulated-time spans are grouped under the platform name.
        self.tracer = get_tracer()
        platform.network.trace_label = platform.name
        self.memory = MemorySystem(platform, locality)
        self.policy = stealing_policy
        self.params = params
        self._kv_chunk_bits = kv_stream_bits(params.kv_chunk_bytes)
        # Bulk key-value streams use the wire-preferring message class;
        # the memory system already holds the pairwise-energy tables for
        # that class, so share them instead of rebuilding.
        self._bulk_energy = self.memory.pairwise_bulk
        n = platform.num_cores
        self._worker_nodes = np.array(
            [platform.node_of_worker(w) for w in range(n)]
        )
        self._worker_freqs = np.array(platform.worker_frequencies())

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, trace: JobTrace) -> SimulationResult:
        if trace.num_workers != self.platform.num_cores:
            raise ValueError(
                f"trace has {trace.num_workers} workers, platform has "
                f"{self.platform.num_cores} cores"
            )
        busy = np.zeros(self.platform.num_cores)
        self._committed = np.zeros(self.platform.num_cores)
        phases: List[PhaseStats] = []
        now = 0.0
        for iteration in trace.iterations:
            now = self._run_lib_init(iteration.lib_init, now, busy, phases, iteration.iteration)
            now = self._run_map(
                iteration.map_phase.tasks, now, busy, phases, iteration.iteration
            )
            now = self._run_reduce(
                iteration.reduce_phase.tasks, now, busy, phases, iteration.iteration
            )
            for stage in iteration.merge_stages:
                now = self._run_merge_stage(
                    stage.tasks, now, busy, phases, iteration.iteration
                )
        total_time = now
        return self._finalize(trace, total_time, busy, phases)

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #

    def _run_lib_init(
        self,
        record: TaskRecord,
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        self.platform.network.reset_flows()
        self.memory.refresh_latencies()
        worker = record.home_worker
        duration = self._task_time(record, worker)
        busy[worker] += duration
        self._record_task_energy(record, worker)
        phases.append(
            PhaseStats(Phase.LIB_INIT, iteration, start, start + duration)
        )
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks(
                [_ScheduledTask(record, worker, start, duration)], Phase.LIB_INIT
            )
        return start + duration

    def _relax_phase(self, schedule_fn, start: float, kv: bool, legacy_rounds: int):
        """Drive one phase to its latency/traffic fixed point.

        ``schedule_fn`` reschedules the phase under the current latency
        estimate and returns a tuple whose first two entries are
        ``(schedule, end)``; the committed result tuple is returned.

        Adaptive mode (``relaxation_rtol`` set) iterates until the phase
        end time moves by less than ``rtol`` relative to the phase
        duration and commits the converged schedule directly.  Legacy mode
        (``relaxation_rtol=None``) runs exactly ``legacy_rounds``
        register/refresh rounds followed by one final scheduling pass,
        reproducing the historical fixed-round behaviour.
        """
        params = self.params
        rtol = params.relaxation_rtol
        if rtol is None:
            for _ in range(legacy_rounds):
                result = schedule_fn()
                schedule, end = result[0], result[1]
                self._register_phase_flows(
                    schedule, max(end - start, 1e-12), kv=kv
                )
                self.memory.refresh_latencies()
            # Final schedule under converged latencies.
            return schedule_fn()
        result = schedule_fn()
        for _ in range(params.max_relaxation_iterations):
            schedule, end = result[0], result[1]
            self._register_phase_flows(schedule, max(end - start, 1e-12), kv=kv)
            self.memory.refresh_latencies()
            result = schedule_fn()
            new_end = result[1]
            if abs(new_end - end) <= rtol * max(new_end - start, 1e-12):
                break
        return result

    def _run_map(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        instructions = np.array([r.cost.instructions for r in records])
        l2 = np.array([r.cost.l2_accesses for r in records])
        mem = np.array([r.cost.memory_accesses for r in records])

        def schedule_fn():
            durations = self._map_durations(instructions, l2, mem)
            return self._schedule_map(records, start, durations)

        schedule, end, queues = self._relax_phase(
            schedule_fn, start, kv=False,
            legacy_rounds=self.params.relaxation_iterations,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
            self._record_task_energy(item.record, item.worker)
        phases.append(PhaseStats(Phase.MAP, iteration, start, end))
        if self.tracer.enabled:
            # Stealing statistics come from the committed schedule's queue
            # set only, so the counters reflect what actually ran.
            tracer = self.tracer
            pid = self.platform.name
            tracer.counter_add(
                "sched.steal_attempts", queues.steal_attempts, key=pid
            )
            tracer.counter_add("sched.steals", queues.steals, key=pid)
            tracer.counter_add(
                "sched.cap_rejections", queues.cap_rejections, key=pid
            )
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.MAP)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _map_durations(
        self, instructions: np.ndarray, l2: np.ndarray, mem: np.ndarray
    ) -> np.ndarray:
        """(records, workers) task durations under current latencies.

        Broadcasts the exact per-element operation order of
        :meth:`_task_time_parts`, so entries are bit-identical to the
        per-call scalar path."""
        core = self.platform.core_params
        compute = (instructions[:, None] / core.ipc) / self._worker_freqs[None, :]
        round_trip = self.memory.l2_round_trip_all_s()[self._worker_nodes]
        extra = self.memory.memory_extra_all_s()[self._worker_nodes]
        stall = (
            l2[:, None] * round_trip[None, :] + mem[:, None] * extra[None, :]
        ) / core.mlp_overlap
        return compute + stall

    def _schedule_map(
        self,
        records: Sequence[TaskRecord],
        start: float,
        durations: np.ndarray,
    ) -> Tuple[List[_ScheduledTask], float, TaskQueueSet]:
        """Event-driven map scheduling with stealing.

        ``durations[i, w]`` is the precomputed runtime of ``records[i]``
        on worker ``w`` under the current latency estimate.  Returns the
        queue set as well so the caller can fold its stealing statistics
        for the committed schedule only.
        """
        num_workers = self.platform.num_cores
        tasks = [
            Task(
                task_id=record.task_id,
                phase=Phase.MAP,
                payload=record,
                home_worker=record.home_worker,
            )
            for record in records
        ]
        row_of = {id(record): index for index, record in enumerate(records)}
        policy = self.policy or _fresh_default_policy()
        queues = TaskQueueSet(num_workers, policy)
        queues.load(tasks)
        heap: List[Tuple[float, int]] = [(start, w) for w in range(num_workers)]
        heapq.heapify(heap)
        schedule: List[_ScheduledTask] = []
        end = start
        while heap and queues.remaining > 0:
            now, worker = heapq.heappop(heap)
            task = queues.next_task(worker)
            if task is None:
                # Capped out or nothing to steal: this core is done.
                continue
            record: TaskRecord = task.payload
            duration = float(durations[row_of[id(record)], worker])
            schedule.append(_ScheduledTask(record, worker, now, duration))
            end = max(end, now + duration)
            heapq.heappush(heap, (now + duration, worker))
        if queues.remaining > 0:
            # Every worker is capped (possible only with a user-supplied
            # fmax above all cores): run leftovers on the fastest core.
            fastest = int(np.argmax(self._worker_freqs))
            now = end
            for worker, task in queues.force_drain(fastest):
                record = task.payload
                duration = float(durations[row_of[id(record)], worker])
                schedule.append(_ScheduledTask(record, worker, now, duration))
                now += duration
            end = now
        return schedule, end, queues

    def _run_reduce(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        schedule, end = self._relax_phase(
            lambda: self._schedule_parallel(records, start),
            start, kv=True,
            legacy_rounds=self.params.relaxation_iterations,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
            self._record_task_energy(item.record, item.worker, kv=True)
        phases.append(PhaseStats(Phase.REDUCE, iteration, start, end))
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.REDUCE)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _run_merge_stage(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        if not records:
            return start
        schedule, end = self._relax_phase(
            lambda: self._schedule_parallel(records, start),
            start, kv=True, legacy_rounds=1,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
            self._record_task_energy(item.record, item.worker, kv=True)
        phases.append(PhaseStats(Phase.MERGE, iteration, start, end))
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.MERGE)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _schedule_parallel(
        self, records: Sequence[TaskRecord], start: float
    ) -> Tuple[List[_ScheduledTask], float]:
        """One task per owning worker, all starting at the barrier."""
        schedule = []
        end = start
        for record in records:
            worker = record.home_worker
            duration = self._task_time(record, worker) + self._kv_pull_time(
                record, worker
            )
            schedule.append(_ScheduledTask(record, worker, start, duration))
            end = max(end, start + duration)
        return schedule, end

    # ------------------------------------------------------------------ #
    # task-level models
    # ------------------------------------------------------------------ #

    def _task_time(self, record: TaskRecord, worker: int) -> float:
        """Compute + memory-stall time of one task on *worker*'s core."""
        compute, stall = self._task_time_parts(record, worker)
        return compute + stall

    def _task_time_parts(
        self, record: TaskRecord, worker: int
    ) -> Tuple[float, float]:
        """(compute, memory stall) seconds of one task on *worker*'s core."""
        platform = self.platform
        node = platform.node_of_worker(worker)
        frequency = platform.frequency_of_worker(worker)
        cost = record.cost
        compute = cost.instructions / platform.core_params.ipc / frequency
        stall = self.memory.task_stall_s(
            node,
            cost.l2_accesses,
            cost.memory_accesses,
            platform.core_params.mlp_overlap,
        )
        return compute, stall

    def _kv_sources(self, record: TaskRecord) -> List[Tuple[int, float]]:
        """(source worker, bytes) pairs this task pulls over the NoC."""
        sources: List[Tuple[int, float]] = []
        for src, nbytes in record.input_bytes_by_worker.items():
            if src != record.home_worker and nbytes > 0:
                sources.append((src, nbytes))
        if record.partner_worker is not None and record.cost.kv_bytes_in > 0:
            if record.partner_worker != record.home_worker:
                sources.append((record.partner_worker, record.cost.kv_bytes_in))
        return sources

    def _kv_pull_time(self, record: TaskRecord, worker: int) -> float:
        """Time to stream the task's remote key-value inputs.

        Evaluated from the memory system's refreshed bulk-class matrices
        (zero-payload head latency, raw serialization rate and effective
        path capacity), so each source costs a few table lookups instead
        of two path walks."""
        sources = self._kv_sources(record)
        if not sources:
            return 0.0
        memory = self.memory
        base = memory.bulk_base_latency_s
        raw = memory.bulk_raw_bottleneck_bps
        effective = memory.bulk_capacity_bps
        dst = self._worker_nodes[worker]
        total = 0.0
        for src_worker, nbytes in sources:
            src = self._worker_nodes[src_worker]
            bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
            line_rate = raw[src, dst]
            head = base[src, dst] + (
                min(bits, self._kv_chunk_bits) / line_rate
                if np.isfinite(line_rate)
                else 0.0
            )
            capacity = effective[src, dst]
            streaming = bits / capacity if np.isfinite(capacity) else 0.0
            total += head + streaming
        # Plain float: this feeds schedule timestamps that end up in JSON
        # telemetry exports.
        return float(total)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def _trace_phase(self, stats: PhaseStats) -> None:
        """One span per phase instance on the platform's ``phases`` track."""
        self.tracer.span(
            stats.phase.value,
            stats.start_s,
            stats.duration_s,
            cat="sim.phase",
            pid=self.platform.name,
            tid="phases",
            iteration=stats.iteration,
        )

    def _trace_tasks(
        self, schedule: Sequence[_ScheduledTask], phase: Phase
    ) -> None:
        """Per-task execution spans, one track per worker.

        A task's span covers its busy interval on the core; args split it
        into compute, memory stall and (for kv phases) remote pull time,
        so per-core busy/stall timelines fall out of the trace directly.
        """
        tracer = self.tracer
        pid = self.platform.name
        for item in schedule:
            compute, stall = self._task_time_parts(item.record, item.worker)
            kv_pull = max(item.duration_s - compute - stall, 0.0)
            tracer.span(
                f"{phase.value}:{item.record.task_id}",
                item.start_s,
                item.duration_s,
                cat="sim.task",
                pid=pid,
                tid=item.worker,
                phase=phase.value,
                task_id=item.record.task_id,
                compute_s=compute,
                stall_s=stall,
                kv_pull_s=kv_pull,
            )
            tracer.counter_add("sim.busy_s", item.duration_s, key=f"{pid}/w{item.worker}")
            tracer.counter_add("sim.stall_s", stall, key=f"{pid}/w{item.worker}")

    # ------------------------------------------------------------------ #
    # flows and energy
    # ------------------------------------------------------------------ #

    def _register_phase_flows(
        self,
        schedule: Sequence[_ScheduledTask],
        phase_duration: float,
        kv: bool = False,
    ) -> None:
        """Convert a phase schedule into sustained flows on the NoC.

        Miss traffic is registered with one batched mat-vec over every
        node's accumulated access rate; key-value streams are registered
        with one batched ``add_flows`` call."""
        network = self.platform.network
        network.reset_flows()
        accesses_per_node = np.zeros(self.platform.num_cores)
        for item in schedule:
            node = self._worker_nodes[item.worker]
            accesses_per_node[node] += item.record.cost.l2_accesses
        self.memory.add_miss_flows_batch(accesses_per_node / phase_duration)
        if kv:
            srcs: List[int] = []
            dsts: List[int] = []
            rates: List[float] = []
            for item in schedule:
                dst = self._worker_nodes[item.worker]
                for src_worker, nbytes in self._kv_sources(item.record):
                    bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
                    srcs.append(self._worker_nodes[src_worker])
                    dsts.append(dst)
                    rates.append(bits / phase_duration)
            network.add_flows(srcs, dsts, rates, bulk=True)

    def _record_task_energy(
        self, record: TaskRecord, worker: int, kv: bool = False
    ) -> None:
        self._committed[worker] += record.cost.instructions
        node = self.platform.node_of_worker(worker)
        self.memory.record_miss_energy(
            node, record.cost.l2_accesses, record.cost.memory_accesses
        )
        if kv:
            for src_worker, nbytes in self._kv_sources(record):
                src = self.platform.node_of_worker(src_worker)
                bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
                self._bulk_energy.record(src, node, bits)

    # ------------------------------------------------------------------ #

    def _finalize(
        self,
        trace: JobTrace,
        total_time: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
    ) -> SimulationResult:
        platform = self.platform
        breakdown = EnergyBreakdown()
        for worker in range(platform.num_cores):
            point = platform.vf_of_worker(worker)
            busy_s = float(min(busy[worker], total_time))
            idle_s = max(total_time - busy_s, 0.0)
            power = platform.core_power
            breakdown.core_dynamic_j += (
                power.dynamic_power_w(point, 1.0) * busy_s
                + power.dynamic_power_w(point, power.params.idle_activity) * idle_s
            )
            breakdown.core_static_j += power.leakage_power_w(point) * total_time
        network = platform.network
        breakdown.noc_dynamic_j = network.energy.dynamic_joules
        breakdown.noc_static_j = network.static_energy(total_time)
        stats = NetworkStats(
            bits_moved=network.energy.bits_moved,
            average_hops=network.energy.average_hops,
            wireless_fraction=network.energy.wireless_fraction,
            dynamic_energy_j=breakdown.noc_dynamic_j,
            static_energy_j=breakdown.noc_static_j,
        )
        return SimulationResult(
            app_name=trace.app_name,
            platform_name=platform.name,
            total_time_s=total_time,
            busy_s=busy,
            committed_instructions=self._committed.copy(),
            worker_frequencies_hz=np.array(platform.worker_frequencies()),
            issue_width=platform.core_params.issue_width,
            phases=phases,
            energy=breakdown,
            network=stats,
        )


def _fresh_default_policy() -> StealingPolicy:
    from repro.mapreduce.scheduler import DefaultStealingPolicy

    return DefaultStealingPolicy()


def simulate(
    platform: Platform,
    trace: JobTrace,
    locality: float = 0.0,
    stealing_policy: Optional[StealingPolicy] = None,
    params: SimulationParams = SimulationParams(),
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run *trace*."""
    simulator = SystemSimulator(
        platform, locality=locality, stealing_policy=stealing_policy, params=params
    )
    return simulator.run(trace)
